#!/usr/bin/env python
"""Run the kernel benchmark harness (thin wrapper over the CLI verb).

Examples::

    python scripts/bench.py --out BENCH_kernel.json
    python scripts/bench.py --quick --baseline BENCH_kernel.json \
        --tolerance 0.2 --normalize
"""

import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.cli import main  # noqa: E402


if __name__ == "__main__":
    sys.exit(main(["bench", *sys.argv[1:]]))
