#!/usr/bin/env python
"""Regenerate every table and figure of the paper and write a markdown
report.

    python scripts/reproduce_all.py [--fidelity smoke|bench|paper]
                                    [--out report.md] [--seed N] [--jobs N]

At `bench` fidelity the full suite takes a few minutes on one core; at
`paper` fidelity it matches the published run lengths (50,000 transactions
x 5 replications per point) and takes correspondingly long.  `--jobs N`
fans the simulation cells of each sweep out over N worker processes
(`--jobs 0` uses every CPU); the report is bit-identical to a serial run
for the same seed.
"""

import argparse
import sys
import time


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fidelity", default="bench",
                        choices=["smoke", "bench", "paper"])
    parser.add_argument("--out", default=None,
                        help="write markdown here (default: stdout)")
    parser.add_argument("--seed", type=int, default=101)
    parser.add_argument("--jobs", type=int, default=1,
                        help="worker processes per sweep (0 = all CPUs)")
    parser.add_argument("--no-plots", action="store_true")
    args = parser.parse_args()

    from repro.analysis.report import generate_report

    started = time.time()
    report = generate_report(fidelity=args.fidelity, seed=args.seed,
                             include_plots=not args.no_plots,
                             jobs=args.jobs)
    elapsed = time.time() - started
    report += f"\n\n_Generated in {elapsed:,.0f}s wall time._\n"
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(report)
        print(f"wrote {args.out} ({elapsed:,.0f}s)")
    else:
        print(report)
    return 0


if __name__ == "__main__":
    sys.exit(main())
