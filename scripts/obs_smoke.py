#!/usr/bin/env python
"""The CI ``obs-smoke`` gate: decomposition exactness, sim vs live.

Two checks, artifacts under ``obs/``:

1. **Traced sharded cells** (both protocols, 2PC + 2PC-opt): every
   finished transaction's phase spans must sum exactly to its measured
   response time and no phase may go negative (committed transactions
   additionally require a non-negative lock-wait residual). Exports the
   decomposition table and the per-transaction phase CSV.

2. **Loopback live decompose** (both protocols, the PR 5 calibration
   scenario): runs the scenario in the simulator and as real endpoint
   processes over TCP, pairs the common committed population, and
   requires (a) zero invariant violations in either world — the live
   merge additionally enforces this with a hard ``AssertionError`` —
   and (b) the shaped ``network`` phase (propagation + transmission +
   slack net of coordination carve-outs) to agree with the simulator
   within NETWORK_TOLERANCE relative. Exports both decompositions, the
   divergence report, and the merged per-process Chrome trace.

Exit status is non-zero on any violation, so the job fails loudly.

Usage::

    python scripts/obs_smoke.py [--out obs] [--skip-live]
"""

import argparse
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.core.config import SimulationConfig  # noqa: E402
from repro.core.runner import run_simulation  # noqa: E402
from repro.live.harness import run_live  # noqa: E402
from repro.live.scenario import ScenarioSpec, run_reference  # noqa: E402
from repro.obs.decompose import (  # noqa: E402
    common_committed,
    compare,
    decompose_records,
)
from repro.obs.export import (  # noqa: E402
    write_merged_chrome_trace,
    write_phases_csv,
)
from repro.obs.spans import check_records  # noqa: E402

#: acceptance gate on the live network phase's relative disagreement
NETWORK_TOLERANCE = 0.05


def sharded_cells(out_dir):
    failures = []
    for protocol in ("s2pl", "g2pl"):
        for commit in ("2pc", "2pc-opt"):
            config = SimulationConfig(
                protocol=protocol, n_clients=6, n_items=12,
                n_shards=4, n_regions=2, intra_region_latency=1.0,
                network_latency=100.0, cross_shard_probability=0.5,
                commit_protocol=commit, total_transactions=120,
                warmup_transactions=20, record_history=False,
                trace=True)
            result = run_simulation(config, seed=11)
            finished = [r for r in result.trace.txns
                        if not r.get("unfinished")]
            violations = check_records(finished)
            name = f"{protocol}-{commit}"
            decomposition = decompose_records(
                [r for r in finished if r["measured"]], label=name)
            print(decomposition.describe())
            write_phases_csv(
                os.path.join(out_dir, f"{name}.phases.csv"), finished)
            if violations:
                failures.append(f"{name}: {violations[0]} "
                                f"(+{len(violations) - 1} more)")
            coordinated = sum(1 for r in finished
                              if r["commit_coord"] > 0.0)
            print(f"  {name}: {len(finished)} txns, "
                  f"{coordinated} paid 2PC wire, "
                  f"{len(violations)} violations")
    return failures


def live_decompose(out_dir):
    failures = []
    for protocol in ("s2pl", "g2pl"):
        spec = ScenarioSpec(
            protocol=protocol, mode="calibrate", n_clients=4,
            latency=2.0, think=1.0, repeats=3, trace_export=True,
            probe_interval=50.0)
        reference = run_reference(spec)
        live = run_live(spec, time_scale=0.02)
        sim_records, live_records = common_committed(
            reference, live.merged)
        report = compare(
            decompose_records(sim_records, label=f"sim:{protocol}"),
            decompose_records(live_records, label=f"live:{protocol}"))
        text = "\n".join([report.sim.describe(), report.live.describe(),
                          report.describe()])
        print(text)
        with open(os.path.join(out_dir, f"{protocol}-divergence.txt"),
                  "w", encoding="utf-8") as handle:
            handle.write(text + "\n")
        write_merged_chrome_trace(
            os.path.join(out_dir, f"{protocol}-live.chrome.json"),
            live.merged.payloads)
        write_phases_csv(
            os.path.join(out_dir, f"{protocol}-live.phases.csv"),
            live.merged.records.values())
        bad = report.sim.violations + report.live.violations
        if bad:
            failures.append(f"live {protocol}: {len(bad)} invariant "
                            f"violations (first: {bad[0]})")
        if report.network_agreement > NETWORK_TOLERANCE:
            failures.append(
                f"live {protocol}: network phase diverges "
                f"{100.0 * report.network_agreement:.2f}% from the "
                f"simulator (gate {100.0 * NETWORK_TOLERANCE:.0f}%)")
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", default="obs",
                        help="artifact directory (default: obs/)")
    parser.add_argument("--skip-live", action="store_true",
                        help="skip the multi-process loopback half")
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)
    failures = sharded_cells(args.out)
    if not args.skip_live:
        failures.extend(live_decompose(args.out))
    if failures:
        print("\nobs-smoke FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nobs-smoke OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
