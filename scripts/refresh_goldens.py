#!/usr/bin/env python
"""Regenerate the fast-path replay goldens (tests/golden/).

The goldens are canonical fingerprints of full simulation results (see
``repro.perf.fingerprint``).  They pin the kernel's exact trajectories:
every kernel optimization must reproduce them byte for byte, at jobs=1
and jobs=N, traced and untraced, faulted and fault-free.

Only rerun this script when a change *intentionally* alters trajectories
(e.g. a protocol fix) — never to paper over an unexplained diff from a
"pure" performance change, which by definition must not move them.
"""

import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src"))

from repro.core.runner import run_simulation  # noqa: E402
from repro.perf.fingerprint import (  # noqa: E402
    fingerprint_digest,
    result_fingerprint,
)
from repro.perf.goldens import (  # noqa: E402
    GOLDEN_CELLS,
    GOLDEN_DIR,
    golden_config,
    golden_path,
)


def main():
    os.makedirs(GOLDEN_DIR, exist_ok=True)
    for name in GOLDEN_CELLS:
        config, seed = golden_config(name)
        result = run_simulation(config, seed=seed)
        fingerprint = result_fingerprint(result)
        payload = {
            "cell": name,
            "seed": seed,
            "digest": fingerprint_digest(fingerprint),
            "fingerprint": fingerprint,
        }
        path = golden_path(name)
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {path} (digest {payload['digest'][:12]}...)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
