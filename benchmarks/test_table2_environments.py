"""Table 2: networking environments simulated."""

from repro.analysis import render_pairs
from repro.core.experiments import table2_environments

from conftest import emit


def test_table2_environments(benchmark, report):
    rows = benchmark(table2_environments)
    emit(report, render_pairs("Table 2: Networking Environments (latency "
                              "in simulation time units)", rows))
    latencies = {name: latency for _desc, name, latency in rows}
    assert latencies == {"SS_LAN": 1.0, "MS_LAN": 50.0, "CAN": 100.0,
                         "MAN": 250.0, "S_WAN": 500.0, "L_WAN": 750.0}
