"""Figures 2-4 (and 8): mean response time vs network latency.

Paper claims reproduced here:
* pr < 1.0 — g-2PL outperforms s-2PL over the entire latency range, with
  a 19.5%-26.9% response-time improvement in the presence of updates
  (Figures 2-3), and the flatter slope demonstrates its WAN scalability.
* pr = 1.0 — s-2PL is better (g-2PL grants only at window ends, so reads
  are penalized; Figure 4).
"""

from repro.analysis import ascii_plot, render_experiment
from repro.core.experiments import latency_sweep_experiment

from conftest import emit

SEED = 101


def run_sweep(read_probability, fidelity, jobs=1):
    return latency_sweep_experiment(read_probability, fidelity=fidelity,
                                    seed=SEED, jobs=jobs)


def test_fig02_pr00_all_writes(benchmark, report, fidelity, jobs,
                               strict_claims):
    results = benchmark.pedantic(run_sweep, args=(0.0, fidelity, jobs),
                                 rounds=1, iterations=1)
    response = results["response"]
    emit(report,
         "Figure 2 " + "=" * 50,
         render_experiment(response, improvement_between=("s2pl", "g2pl")),
         ascii_plot(response),
         "paper: g-2PL below s-2PL over the whole range, ~20-25% better")
    if strict_claims:
        for latency in response.series["s2pl"].xs:
            assert response.improvement_at(latency) > 0, latency
        wan_improvements = [response.improvement_at(x)
                            for x in (250.0, 500.0, 750.0)]
        assert all(imp > 8.0 for imp in wan_improvements)


def test_fig03_fig08_pr06(benchmark, report, fidelity, jobs):
    results = benchmark.pedantic(run_sweep, args=(0.6, fidelity, jobs),
                                 rounds=1, iterations=1)
    response, aborts = results["response"], results["aborts"]
    emit(report,
         "Figure 3 " + "=" * 50,
         render_experiment(response, improvement_between=("s2pl", "g2pl")),
         ascii_plot(response),
         "paper: g-2PL better across the range (19.5%-26.9% improvement)",
         "",
         "Figure 8 " + "=" * 50,
         render_experiment(aborts),
         "paper: abort percentages of the two protocols fairly close "
         "(37.5-41.5%), roughly flat in latency")
    for latency in response.series["s2pl"].xs:
        assert response.improvement_at(latency) > 0, latency
    # Abort percentages are "fairly close": within 15 points everywhere.
    for s_ab, g_ab in zip(aborts.series["s2pl"].ys,
                          aborts.series["g2pl"].ys):
        assert abs(s_ab - g_ab) < 15.0
    # And flat across WAN latencies (paper: "stays fairly constant").
    g_wan = [aborts.series["g2pl"].y_at(x) for x in (250.0, 500.0, 750.0)]
    assert max(g_wan) - min(g_wan) < 10.0


def test_fig04_pr10_read_only(benchmark, report, fidelity, jobs):
    results = benchmark.pedantic(run_sweep, args=(1.0, fidelity, jobs),
                                 rounds=1, iterations=1)
    response = results["response"]
    emit(report,
         "Figure 4 " + "=" * 50,
         render_experiment(response, improvement_between=("s2pl", "g2pl")),
         ascii_plot(response),
         "paper: only here (read-only) is s-2PL better — g-2PL grants "
         "only at window ends, penalizing reads")
    for latency in response.series["s2pl"].xs:
        assert response.improvement_at(latency) < 0, latency
