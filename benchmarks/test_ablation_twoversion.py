"""Ablation A7: g-2PL's MR1W vs two-version 2PL (§3.4's remark).

"With the MR1W optimization the g-2PL protocol ... behaves similar to
the two-copy version s-2PL protocol, which allows more concurrency than
the standard s-2PL protocol." Both let a writer execute concurrently with
the readers of the current version and park its updates until the readers
finish — MR1W on the forward list, 2V-2PL at the server via certify
locks. This bench races s-2PL, 2V-2PL, g-2PL without MR1W, and full
g-2PL on the paper's s-WAN workload.
"""

from repro import SimulationConfig, run_replications

from conftest import emit

SEED = 33
PROTOCOLS = ("s2pl", "2v2pl", "g2pl-basic", "g2pl")


def run_ablation(fidelity, read_probability=0.6):
    config = SimulationConfig(
        read_probability=read_probability, network_latency=500.0,
        total_transactions=fidelity.transactions,
        warmup_transactions=fidelity.warmup, record_history=False)
    return {protocol: run_replications(
                config.replace(protocol=protocol),
                replications=fidelity.replications, base_seed=SEED)
            for protocol in PROTOCOLS}


def test_ablation_two_version(benchmark, report, fidelity):
    results_by_pr = benchmark.pedantic(
        lambda fid: {pr: run_ablation(fid, pr) for pr in (0.0, 0.6)},
        args=(fidelity,), rounds=1, iterations=1)
    lines = ["Ablation A7: MR1W vs two-version 2PL (s-WAN, 50 clients)"]
    for pr, results in results_by_pr.items():
        base = results["s2pl"].mean_response_time
        lines.append(f"  pr={pr}:")
        for protocol in PROTOCOLS:
            r = results[protocol]
            improvement = 100.0 * (base - r.mean_response_time) / base
            lines.append(
                f"    {protocol:10} response={r.response_time}  "
                f"aborts={r.abort_percentage}  vs s-2PL: {improvement:+.1f}%")
    lines.append("paper (§3.4): MR1W gives g-2PL two-copy-s-2PL-style "
                 "reader/writer overlap on top of the round savings. "
                 "Measured: with reads in the mix the overlap dominates "
                 "(2V-2PL shines); pure-write workloads have no overlap "
                 "to exploit, and g-2PL's round savings win.")
    emit(report, *lines)
    writes_only, mixed = results_by_pr[0.0], results_by_pr[0.6]
    # Pure writes: 2V has nothing to overlap (plus a commit round trip);
    # g-2PL's saved rounds win.
    assert (writes_only["g2pl"].mean_response_time
            < writes_only["2v2pl"].mean_response_time)
    # Mixed: both concurrency boosters beat the baseline.
    base = mixed["s2pl"].mean_response_time
    assert mixed["2v2pl"].mean_response_time < base
    assert mixed["g2pl"].mean_response_time < base
