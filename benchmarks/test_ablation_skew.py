"""Ablation A6: access skew — "the hotter the data, the bigger the gain".

§3.4 of the paper: "the more a certain data item is requested such as hot
data items, more is the performance gain, since the grouping effect is
emphasized when the forward list is longer." We sweep a Zipf-like skew
over the item popularity (0 = the paper's uniform access) and report the
g-2PL improvement together with the measured mean forward-list length.
"""

from repro import SimulationConfig, run_replications
from repro.core.runner import run_simulation

from conftest import emit

SEED = 33
SKEWS = (0.0, 0.75, 1.5)


def run_ablation(fidelity):
    config = SimulationConfig(
        read_probability=0.25, network_latency=500.0,
        total_transactions=fidelity.transactions,
        warmup_transactions=fidelity.warmup, record_history=False)
    rows = []
    for skew in SKEWS:
        cell = {}
        for protocol in ("s2pl", "g2pl"):
            cell[protocol] = run_replications(
                config.replace(protocol=protocol, access_skew=skew),
                replications=fidelity.replications, base_seed=SEED)
        # one extra single run to read the mean FL length statistic
        probe = run_simulation(
            config.replace(protocol="g2pl", access_skew=skew), seed=SEED,
            check_serializability=False)
        rows.append((skew, cell, probe.server_stats["mean_fl_length"]))
    return rows


def test_ablation_access_skew(benchmark, report, fidelity):
    rows = benchmark.pedantic(run_ablation, args=(fidelity,),
                              rounds=1, iterations=1)
    lines = ["Ablation A6: access skew (pr=0.25, s-WAN, 50 clients)",
             f"  {'skew':>5}  {'s2pl':>12}  {'g2pl':>12}  "
             f"{'improvement':>11}  {'mean FL':>8}"]
    improvements = {}
    fl_lengths = {}
    for skew, cell, mean_fl in rows:
        s = cell["s2pl"].mean_response_time
        g = cell["g2pl"].mean_response_time
        improvements[skew] = 100.0 * (s - g) / s
        fl_lengths[skew] = mean_fl
        lines.append(f"  {skew:>5}  {s:12,.0f}  {g:12,.0f}  "
                     f"{improvements[skew]:+10.1f}%  {mean_fl:8.2f}")
    lines.append("paper (§3.4): hotter items -> longer forward lists -> "
                 "larger grouping gain")
    emit(report, *lines)
    # Skew concentrates requests: forward lists grow...
    assert fl_lengths[1.5] > fl_lengths[0.0]
    # ...and g-2PL keeps (or grows) a positive advantage.
    assert improvements[1.5] > 0
