"""Figure 11: % transactions aborted vs forward-list length (read-only,
single-segment LAN).

Paper claim reproduced here: a longer collection window (longer forward
list) lets the server reorder more requests together, cutting the
deadlock probability — aborts decrease monotonically-ish with the cap and
flatten once the cap stops binding (the paper reports <1% beyond length 5
at its load; our 50-client load has higher absolute levels, same shape).
"""

from repro.analysis import ascii_plot, render_experiment
from repro.core.experiments import figure_aborts_vs_fl_length

from conftest import emit

SEED = 101


def test_fig11_aborts_vs_fl_length(benchmark, report, fidelity, jobs):
    result = benchmark.pedantic(
        figure_aborts_vs_fl_length,
        kwargs=dict(fidelity=fidelity, seed=SEED, jobs=jobs),
        rounds=1, iterations=1)
    emit(report,
         "Figure 11 " + "=" * 50,
         render_experiment(result),
         ascii_plot(result),
         "paper: aborts fall as the forward list grows, <1% beyond "
         "length 5 at the paper's load; same shape here at 50 clients")
    ys = result.series["g2pl"].ys
    xs = result.series["g2pl"].xs
    short = ys[xs.index(1)]
    long = ys[xs.index(10)]
    assert long < short  # longer windows -> fewer deadlock aborts
    assert short - long > 5.0  # and the effect is substantial
