"""Ablation A1: contribution of each g-2PL ingredient.

Compares s-2PL, g-2PL without MR1W (lock grouping + deadlock avoidance
only), full g-2PL (with MR1W), and g-2PL with the read-only forward-list
expansion, on the paper's s-WAN mixed workload. Deadlock avoidance is not
separable: without consistent forward-list ordering the system genuinely
deadlocks, so it is part of the baseline grouping.
"""

from repro import SimulationConfig, run_replications

from conftest import emit

SEED = 33
PROTOCOLS = ("s2pl", "g2pl-basic", "g2pl", "g2pl-ro")


def run_ablation(fidelity, read_probability=0.6, jobs=1):
    config = SimulationConfig(
        read_probability=read_probability, network_latency=500.0,
        total_transactions=fidelity.transactions,
        warmup_transactions=fidelity.warmup, record_history=False)
    out = {}
    for protocol in PROTOCOLS:
        out[protocol] = run_replications(
            config.replace(protocol=protocol),
            replications=fidelity.replications, base_seed=SEED, jobs=jobs)
    return out


def test_ablation_components(benchmark, report, fidelity, jobs,
                             strict_claims):
    results = benchmark.pedantic(run_ablation, args=(fidelity, 0.6, jobs),
                                 rounds=1, iterations=1)
    base = results["s2pl"].mean_response_time
    lines = ["Ablation A1: g-2PL component contributions "
             "(pr=0.6, s-WAN, 50 clients)"]
    for protocol in PROTOCOLS:
        r = results[protocol]
        improvement = 100.0 * (base - r.mean_response_time) / base
        lines.append(
            f"  {protocol:10} response={r.response_time}  "
            f"aborts={r.abort_percentage}  vs s-2PL: {improvement:+.1f}%")
    emit(report, *lines)
    if strict_claims:
        # Lock grouping alone already beats the baseline here...
        assert results["g2pl-basic"].mean_response_time < base
        # ...and the full protocol does too.
        assert results["g2pl"].mean_response_time < base
