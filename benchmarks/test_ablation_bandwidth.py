"""Ablation A2: finite bandwidth — when does g-2PL's bigger message lose?

The paper's premise (§2) is that at gigabit rates the message size does
not matter, only the rounds. This ablation makes the transport rate
finite: g-2PL's grouped messages (data + piggybacked forward lists,
multiple read copies) are larger than s-2PL's, so as bandwidth shrinks
the transmission term grows faster for g-2PL and its advantage erodes —
quantifying exactly the "high bandwidth-delay product" assumption.
"""

from repro import SimulationConfig, run_replications

from conftest import emit

SEED = 33
BANDWIDTHS = (None, 10.0, 1.0, 0.1, 0.02)


def run_ablation(fidelity, jobs=1):
    config = SimulationConfig(
        read_probability=0.6, network_latency=250.0,
        total_transactions=fidelity.transactions,
        warmup_transactions=fidelity.warmup, record_history=False)
    rows = []
    for bandwidth in BANDWIDTHS:
        cell = {}
        for protocol in ("s2pl", "g2pl"):
            cell[protocol] = run_replications(
                config.replace(protocol=protocol, bandwidth=bandwidth),
                replications=fidelity.replications, base_seed=SEED,
                jobs=jobs)
        rows.append((bandwidth, cell))
    return rows


def test_ablation_bandwidth(benchmark, report, fidelity, jobs,
                            strict_claims):
    rows = benchmark.pedantic(run_ablation, args=(fidelity, jobs),
                              rounds=1, iterations=1)
    lines = ["Ablation A2: response time vs bandwidth "
             "(pr=0.6, MAN latency 250)",
             f"  {'bandwidth':>10}  {'s2pl':>12}  {'g2pl':>12}  advantage"]
    improvements = {}
    for bandwidth, cell in rows:
        s = cell["s2pl"].mean_response_time
        g = cell["g2pl"].mean_response_time
        improvements[bandwidth] = 100.0 * (s - g) / s
        label = "inf" if bandwidth is None else f"{bandwidth:g}"
        lines.append(f"  {label:>10}  {s:12,.0f}  {g:12,.0f}  "
                     f"{improvements[bandwidth]:+.1f}%")
    lines.append("expected: the g-2PL advantage erodes as bandwidth "
                 "shrinks (its messages are larger)")
    emit(report, *lines)
    if strict_claims:
        assert improvements[None] > 0      # rounds dominate: g-2PL wins
        assert improvements[0.02] < improvements[None]  # size bites
