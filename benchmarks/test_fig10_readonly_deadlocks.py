"""Figure 10: read-only deadlock aborts vs network latency.

Paper claims: the fraction of transactions aborted due to read-deadlocks
is never more than a little over 5% and is the dominant effect only in
LAN-range latencies; the read-only optimization (§3.3, future work)
eliminates read-only dependencies entirely. The paper does not state the
client count for this figure; the published magnitudes arise at light
load (5 clients here — at 50 clients the read-read waits saturate and the
abort level is much higher, see EXPERIMENTS.md).
"""

from repro.analysis import ascii_plot, render_experiment
from repro.core.experiments import figure_readonly_aborts_vs_latency

from conftest import emit

SEED = 101


def test_fig10_readonly_aborts(benchmark, report, fidelity, jobs):
    result = benchmark.pedantic(
        figure_readonly_aborts_vs_latency,
        kwargs=dict(fidelity=fidelity, seed=SEED, jobs=jobs),
        rounds=1, iterations=1)
    emit(report,
         "Figure 10 " + "=" * 50,
         render_experiment(result),
         ascii_plot(result),
         "paper: <= a little over 5%, decreasing with latency; the "
         "read-only optimization (g2pl-ro) removes read deadlocks")
    basic = result.series["g2pl"].ys
    optimized = result.series["g2pl-ro"].ys
    # Magnitude band of the paper at light load.
    assert max(basic) < 12.0
    assert any(y > 0 for y in basic)  # read deadlocks do occur
    # The read-only optimization eliminates them.
    assert max(optimized) == 0.0
