"""Figure 9 (Figure 8 rides the pr=0.6 sweep in test_fig02_04): percentage
of transactions aborted vs latency at pr=0.8.

Paper claims reproduced here: abort percentages of the two protocols are
in the same band, decrease as the read probability grows (compare with
Figure 8's pr=0.6 levels), and are roughly flat above the single-segment
LAN. Deviation recorded in EXPERIMENTS.md: in this reproduction basic
g-2PL aborts *more* than s-2PL at high read probabilities, because
window-serialised reads wait for each other (read-read wait edges) while
s-2PL readers share locks; the paper's read-only optimization (`g2pl-ro`)
closes most of that gap.
"""

from repro.analysis import ascii_plot, render_experiment
from repro.core.experiments import latency_sweep_experiment

from conftest import emit

SEED = 101


def test_fig09_pr08(benchmark, report, fidelity, jobs):
    results = benchmark.pedantic(
        latency_sweep_experiment,
        kwargs=dict(read_probability=0.8, fidelity=fidelity, seed=SEED,
                    jobs=jobs),
        rounds=1, iterations=1)
    aborts = results["aborts"]
    emit(report,
         "Figure 9 " + "=" * 50,
         render_experiment(aborts),
         ascii_plot(aborts),
         "paper: ~19.5-22.5%, flat above ss-LAN, g-2PL slightly lower; "
         "measured: same flatness, but basic g-2PL sits above s-2PL here "
         "(read-read window waits; see EXPERIMENTS.md)")
    s_series = aborts.series["s2pl"].ys
    g_series = aborts.series["g2pl"].ys
    # Lower absolute levels than the pr=0.6 sweep (aborts fall with pr)...
    assert max(s_series) < 45.0
    # ...and flat across WAN latencies for both protocols.
    assert max(s_series[2:]) - min(s_series[2:]) < 10.0
    assert max(g_series[2:]) - min(g_series[2:]) < 10.0
