"""Figures 12-15: scalability with the number of clients (s-WAN).

Paper claims reproduced here: with 25 hot items at latency 500, g-2PL
outperforms s-2PL at high load for both pr=0.25 and pr=0.75 (Figures 12
and 14), and beyond a certain load a higher fraction of transactions is
aborted under s-2PL (Figures 13 and 15 cross over).
"""

from repro.analysis import ascii_plot, render_experiment
from repro.core.experiments import clients_sweep_experiment

from conftest import emit

SEED = 101


def _emit_pair(report, fig_resp, fig_ab, results, pr):
    response, aborts = results["response"], results["aborts"]
    emit(report,
         f"Figure {fig_resp} " + "=" * 50,
         render_experiment(response, improvement_between=("s2pl", "g2pl")),
         ascii_plot(response),
         f"paper: g-2PL outperforms s-2PL at high load (pr={pr})",
         "",
         f"Figure {fig_ab} " + "=" * 50,
         render_experiment(aborts),
         ascii_plot(aborts),
         "paper: abort fractions close; beyond a certain load s-2PL "
         "aborts more")
    return response, aborts


def test_fig12_13_pr025(benchmark, report, fidelity, jobs):
    results = benchmark.pedantic(
        clients_sweep_experiment,
        kwargs=dict(read_probability=0.25, fidelity=fidelity, seed=SEED,
                    jobs=jobs),
        rounds=1, iterations=1)
    response, aborts = _emit_pair(report, 12, 13, results, 0.25)
    # g-2PL response at or below s-2PL at high load.
    for clients in (50, 100, 150):
        assert response.improvement_at(clients) > 0, clients
    # Abort crossover: at the heaviest load s-2PL aborts at least as much.
    assert (aborts.series["s2pl"].y_at(150)
            >= aborts.series["g2pl"].y_at(150) - 3.0)


def test_fig14_15_pr075(benchmark, report, fidelity, jobs):
    results = benchmark.pedantic(
        clients_sweep_experiment,
        kwargs=dict(read_probability=0.75, fidelity=fidelity, seed=SEED,
                    jobs=jobs),
        rounds=1, iterations=1)
    response, aborts = _emit_pair(report, 14, 15, results, 0.75)
    # Paper: g-2PL outperforms s-2PL at high load (the margin is thinner
    # at pr=0.75 than at pr=0.25).
    assert response.improvement_at(150) > -5.0
    assert response.improvement_at(100) > -5.0
    # Low load: little between them (both near-idle).
    assert aborts.series["s2pl"].y_at(10) < 30.0
