"""Table 1: simulation parameters."""

from repro.analysis import render_pairs
from repro.core.experiments import table1_parameters

from conftest import emit


def test_table1_parameters(benchmark, report):
    rows = benchmark(table1_parameters)
    emit(report, render_pairs("Table 1: Simulation Parameters", rows))
    as_dict = dict(rows)
    assert as_dict["Number of servers"].startswith("1")
    assert as_dict["Number of hot data items"] == "25"
    assert as_dict["Multiprogramming level at clients"] == "1"
    assert "1-5" in as_dict["Data items accessed by a transaction"]
    assert "1-3" in as_dict["Computation time per operation"]
    assert "2-10" in as_dict["Idle time between transactions"]
