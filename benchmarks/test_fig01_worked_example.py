"""Figure 1: the worked example of exclusive access (3 clients).

Paper: total execution time 15 units under s-2PL vs 12 under g-2PL (20%
reduction). Measured from "lock first available" to "final release at the
server" the implementation gives exactly 15 vs 11 — the paper's own round
arithmetic (m·(2L+P) vs (m+1)·L+m·P) counts one extra unit for g-2PL; see
EXPERIMENTS.md.
"""

import pytest

from repro.core.worked_example import run_worked_example

from conftest import emit


def test_fig01_worked_example(benchmark, report):
    result = benchmark.pedantic(run_worked_example, rounds=1, iterations=1)
    emit(report,
         "Figure 1: worked example, 3 exclusive-access clients "
         "(latency 2, processing 1)",
         f"  s-2PL: {result.s2pl_span:g} units, {result.s2pl_rounds} rounds"
         f"  (paper: 15 units)",
         f"  g-2PL: {result.g2pl_span:g} units, {result.g2pl_rounds} rounds"
         f"  (paper: 12 units)",
         f"  improvement: {result.improvement_percentage:.1f}% "
         f"(paper: 20%)")
    assert result.s2pl_span == pytest.approx(15.0)
    assert result.g2pl_span == pytest.approx(11.0)
    assert result.g2pl_rounds < result.s2pl_rounds


def test_fig01_scaling_in_clients(benchmark, report):
    """The round saving grows with the chain: (m-1) hops saved."""
    spans = benchmark.pedantic(
        lambda: {m: run_worked_example(n_clients=m) for m in (2, 3, 5, 8)},
        rounds=1, iterations=1)
    lines = ["Figure 1 (extended): span vs number of chained clients"]
    for m, result in spans.items():
        lines.append(f"  m={m}: s-2PL {result.s2pl_span:g} vs g-2PL "
                     f"{result.g2pl_span:g} "
                     f"({result.improvement_percentage:.1f}%)")
    emit(report, *lines)
    for m, result in spans.items():
        assert result.s2pl_span == pytest.approx(m * (2 * 2 + 1))
        assert result.g2pl_span == pytest.approx((m + 1) * 2 + m * 1)
