"""Ablation A5: comparing against a caching protocol (paper's future work).

c-2PL (caching 2PL with server callbacks) against s-2PL and g-2PL. The
classic result this reproduces: client caching pays off when reads
dominate and re-reference is high (read-only, hot data), but under update
contention the callback traffic makes it worse than plain s-2PL — and
g-2PL keeps its lead in the update range.
"""

from repro import SimulationConfig, run_replications

from conftest import emit

SEED = 33
READ_PROBABILITIES = (0.25, 0.6, 0.9, 1.0)
PROTOCOLS = ("s2pl", "c2pl", "g2pl")


def run_ablation(fidelity):
    config = SimulationConfig(
        network_latency=500.0,
        total_transactions=fidelity.transactions,
        warmup_transactions=fidelity.warmup, record_history=False)
    rows = []
    for pr in READ_PROBABILITIES:
        cell = {}
        for protocol in PROTOCOLS:
            cell[protocol] = run_replications(
                config.replace(protocol=protocol, read_probability=pr),
                replications=fidelity.replications, base_seed=SEED)
        rows.append((pr, cell))
    return rows


def test_ablation_c2pl(benchmark, report, fidelity):
    rows = benchmark.pedantic(run_ablation, args=(fidelity,),
                              rounds=1, iterations=1)
    header = "  ".join(f"{p:>12}" for p in PROTOCOLS)
    lines = ["Ablation A5: caching 2PL vs s-2PL vs g-2PL "
             "(s-WAN, 50 clients)",
             f"  {'pr':>4}  {header}"]
    cells = dict(rows)
    for pr, cell in rows:
        values = "  ".join(
            f"{cell[p].mean_response_time:12,.0f}" for p in PROTOCOLS)
        lines.append(f"  {pr:>4}  {values}")
    lines.append("expected: c-2PL wins read-only (cache hits), loses "
                 "under update contention (callbacks); g-2PL leads the "
                 "update range")
    emit(report, *lines)
    # Caching wins read-only.
    assert (cells[1.0]["c2pl"].mean_response_time
            < cells[1.0]["s2pl"].mean_response_time)
    # g-2PL leads at update-heavy workloads.
    for pr in (0.25, 0.6):
        assert (cells[pr]["g2pl"].mean_response_time
                < cells[pr]["s2pl"].mean_response_time)
        assert (cells[pr]["g2pl"].mean_response_time
                < cells[pr]["c2pl"].mean_response_time)
