"""Ablation A4: the read-only forward-list expansion at high read shares.

The paper's future work (§6): apply the read-only optimization so g-2PL
stops penalizing reads. Measured: `g2pl-ro` recovers s-2PL's read-only
response (grafted readers never wait for windows) and removes the read
deadlocks, while keeping the grouping wins for update transactions.
"""

from repro import SimulationConfig, run_replications

from conftest import emit

SEED = 33
READ_PROBABILITIES = (0.6, 0.8, 0.9, 1.0)


def run_ablation(fidelity):
    config = SimulationConfig(
        network_latency=500.0,
        total_transactions=fidelity.transactions,
        warmup_transactions=fidelity.warmup, record_history=False)
    rows = []
    for pr in READ_PROBABILITIES:
        cell = {}
        for protocol in ("s2pl", "g2pl", "g2pl-ro"):
            cell[protocol] = run_replications(
                config.replace(protocol=protocol, read_probability=pr),
                replications=fidelity.replications, base_seed=SEED)
        rows.append((pr, cell))
    return rows


def test_ablation_readonly_optimization(benchmark, report, fidelity):
    rows = benchmark.pedantic(run_ablation, args=(fidelity,),
                              rounds=1, iterations=1)
    lines = ["Ablation A4: read-only FL expansion (s-WAN, 50 clients)",
             f"  {'pr':>4}  {'s2pl':>12}  {'g2pl':>12}  {'g2pl-ro':>12}"]
    cells = dict(rows)
    for pr, cell in rows:
        lines.append(
            f"  {pr:>4}  "
            f"{cell['s2pl'].mean_response_time:12,.0f}  "
            f"{cell['g2pl'].mean_response_time:12,.0f}  "
            f"{cell['g2pl-ro'].mean_response_time:12,.0f}")
    lines.append("expected: g2pl-ro matches s-2PL at pr=1.0 and beats "
                 "basic g-2PL at high pr")
    emit(report, *lines)
    at_10 = cells[1.0]
    # With every read grafted, read-only behaviour equals s-2PL's.
    assert (abs(at_10["g2pl-ro"].mean_response_time
                - at_10["s2pl"].mean_response_time)
            < 0.05 * at_10["s2pl"].mean_response_time)
    assert (at_10["g2pl-ro"].mean_response_time
            < at_10["g2pl"].mean_response_time)
    # At pr=0.8/0.9 the optimization beats basic g-2PL too.
    for pr in (0.8, 0.9):
        assert (cells[pr]["g2pl-ro"].mean_response_time
                < cells[pr]["g2pl"].mean_response_time)
