"""Ablation A3: forward-list ordering disciplines (§6 future work).

FIFO (the paper's default) vs readers-first vs writers-first as the
tiebreak of the window's linear extension.
"""

from repro import SimulationConfig, run_replications

from conftest import emit

SEED = 33
ORDERINGS = ("fifo", "reads_first", "writes_first")


def run_ablation(fidelity):
    config = SimulationConfig(
        protocol="g2pl", read_probability=0.6, network_latency=500.0,
        total_transactions=fidelity.transactions,
        warmup_transactions=fidelity.warmup, record_history=False)
    return {ordering: run_replications(
                config.replace(fl_ordering=ordering),
                replications=fidelity.replications, base_seed=SEED)
            for ordering in ORDERINGS}


def test_ablation_fl_ordering(benchmark, report, fidelity):
    results = benchmark.pedantic(run_ablation, args=(fidelity,),
                                 rounds=1, iterations=1)
    lines = ["Ablation A3: g-2PL forward-list ordering disciplines "
             "(pr=0.6, s-WAN)"]
    for ordering, r in results.items():
        lines.append(f"  {ordering:12} response={r.response_time}  "
                     f"aborts={r.abort_percentage}")
    emit(report, *lines)
    # All disciplines must remain functional and broadly comparable
    # (ordering is a tiebreak below the precedence constraints).
    values = [r.mean_response_time for r in results.values()]
    assert max(values) < 2.5 * min(values)
