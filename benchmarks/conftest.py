"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper and prints the
series (text table + ASCII plot) so `pytest benchmarks/ --benchmark-only -s`
doubles as the reproduction report. Scale is controlled by the
REPRO_BENCH_FIDELITY environment variable: `smoke`, `bench` (default), or
`paper` (the published 50,000-transaction, 5-replication runs — slow).
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.config import Fidelity


@pytest.fixture(scope="session")
def fidelity():
    name = os.environ.get("REPRO_BENCH_FIDELITY", "bench").upper()
    return Fidelity[name]


@pytest.fixture(scope="session")
def report():
    """Collects the rendered figures; printed at the end of the session."""
    blocks = []
    yield blocks
    if blocks:
        print("\n\n" + "\n\n".join(blocks))


def emit(report, *blocks):
    text = "\n".join(blocks)
    report.append(text)
    print("\n" + text)
