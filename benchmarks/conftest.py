"""Benchmark configuration.

Each benchmark regenerates one table or figure of the paper and prints the
series (text table + ASCII plot) so `pytest benchmarks/ --benchmark-only -s`
doubles as the reproduction report. Scale is controlled by the
REPRO_BENCH_FIDELITY environment variable: `smoke`, `bench` (default), or
`paper` (the published 50,000-transaction, 5-replication runs — slow).
REPRO_BENCH_JOBS sets the number of worker processes each sweep fans out
over (default 1 = serial; `0` or `auto` = all CPUs); results are
bit-identical whatever the job count.
"""

import os
import sys
from pathlib import Path

import pytest

sys.path.insert(0, str(Path(__file__).parent))

from repro.core.config import Fidelity


@pytest.fixture(scope="session")
def fidelity():
    name = os.environ.get("REPRO_BENCH_FIDELITY", "bench").upper()
    return Fidelity[name]


@pytest.fixture(scope="session")
def strict_claims(fidelity):
    """Whether to assert the paper-claim thresholds.

    The quantitative claims are calibrated for bench/paper run lengths;
    at smoke scale (300 transactions, 1 replication) a single run is too
    noisy for them, and the suite only exercises the figure pipeline.
    """
    return fidelity is not Fidelity.SMOKE


@pytest.fixture(scope="session")
def jobs():
    from repro.core.parallel import resolve_jobs

    value = os.environ.get("REPRO_BENCH_JOBS", "1")
    return resolve_jobs(None if value.lower() == "auto" else int(value))


@pytest.fixture(scope="session")
def report():
    """Collects the rendered figures; printed at the end of the session."""
    blocks = []
    yield blocks
    if blocks:
        print("\n\n" + "\n\n".join(blocks))


def emit(report, *blocks):
    text = "\n".join(blocks)
    report.append(text)
    print("\n" + text)
