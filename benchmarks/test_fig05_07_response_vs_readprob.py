"""Figures 5-7: mean response time vs read probability, three networks.

Paper claims reproduced here: at low read probabilities g-2PL wins by
grouping requests; only near pr=1.0 does s-2PL win; the crossover sits
around 0.85 in the ss-LAN and moves toward higher read probabilities at
higher latencies.
"""

from repro.analysis import ascii_plot, find_crossover, render_experiment
from repro.core.experiments import figure_response_vs_read_probability
from repro.network.presets import NetworkEnvironment

from conftest import emit

SEED = 101


def run_figure(environment, fidelity, jobs=1):
    return figure_response_vs_read_probability(environment,
                                               fidelity=fidelity, seed=SEED,
                                               jobs=jobs)


def check_and_emit(report, figure_number, result, environment):
    crossover = find_crossover(result)
    emit(report,
         f"Figure {figure_number} " + "=" * 50,
         render_experiment(result, improvement_between=("s2pl", "g2pl")),
         ascii_plot(result),
         f"measured crossover read probability: "
         f"{crossover if crossover is None else round(crossover, 3)} "
         f"(paper: ~0.85 at latency 1, moving right with latency)")
    # g-2PL wins at low read probabilities...
    for pr in (0.0, 0.2, 0.4, 0.6):
        assert result.improvement_at(pr) > 0, (environment, pr)
    # ...and s-2PL wins at read-only.
    assert result.improvement_at(1.0) < 0
    assert crossover is not None
    assert 0.6 < crossover < 1.0
    return crossover


def test_fig05_ss_lan(benchmark, report, fidelity, jobs):
    result = benchmark.pedantic(
        run_figure, args=(NetworkEnvironment.SS_LAN, fidelity, jobs),
        rounds=1, iterations=1)
    check_and_emit(report, 5, result, "ss-LAN")


def test_fig06_man(benchmark, report, fidelity, jobs):
    result = benchmark.pedantic(
        run_figure, args=(NetworkEnvironment.MAN, fidelity, jobs),
        rounds=1, iterations=1)
    check_and_emit(report, 6, result, "MAN")


def test_fig07_l_wan(benchmark, report, fidelity, jobs):
    result = benchmark.pedantic(
        run_figure, args=(NetworkEnvironment.L_WAN, fidelity, jobs),
        rounds=1, iterations=1)
    check_and_emit(report, 7, result, "l-WAN")
