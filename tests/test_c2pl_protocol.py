"""Protocol-level tests for caching 2PL (c-2PL)."""

import pytest

from helpers import Harness, R, W, spec


def test_second_read_is_a_cache_hit():
    h = Harness("c2pl", n_clients=1, latency=10.0)
    h.launch(1, spec((0, R), think=1.0), txn_id=1)
    h.launch(1, spec((0, R), think=1.0), delay=50.0, txn_id=2)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert outcomes[1].response_time == pytest.approx(21.0)  # miss
    assert outcomes[2].response_time == pytest.approx(1.0)   # pure local hit
    client = h.clients[1]
    assert client.cache_hits == 1
    assert client.cache_misses == 1
    h.check_serializable()


def test_write_recalls_cached_copies():
    h = Harness("c2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, R), think=1.0), txn_id=1)     # client 1 caches 0
    h.launch(2, spec((0, W), think=1.0), delay=50.0, txn_id=2)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert h.server.callbacks_sent == 1
    # Client 1's copy is gone; its next read misses.
    assert 0 not in h.clients[1]._cache
    h.check_serializable()


def test_cached_read_never_stale():
    h = Harness("c2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, R), think=1.0), txn_id=1)
    h.launch(2, spec((0, W), think=1.0), delay=50.0, txn_id=2)
    h.launch(1, spec((0, R), think=1.0), delay=120.0, txn_id=3)
    h.run()
    reads = [r for r in h.history.reads() if r.txn_id == 3]
    assert reads[0].version == 1  # saw the new version, not the stale cache
    h.check_serializable()


def test_busy_cache_defers_recall_until_commit():
    h = Harness("c2pl", n_clients=2, latency=10.0)
    # Client 1 reads item 0 twice within a long transaction (cache use),
    # while client 2 writes it: the recall must wait for txn 1's commit.
    h.launch(1, spec((0, R), think=1.0), txn_id=1)          # warm the cache
    h.launch(1, spec((0, R), (1, R), think=40.0), delay=40.0, txn_id=2)
    h.launch(2, spec((0, W), think=1.0), delay=60.0, txn_id=3)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    # Strictness: the writer could not finish before the cached reader.
    assert outcomes[3].end_time > outcomes[2].end_time
    h.check_serializable()


def test_callback_deadlock_detected():
    """A writer waiting on a busy cached copy forms a wait-for edge; if the
    cache user in turn waits on the writer's locks, someone aborts."""
    h = Harness("c2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, R), think=1.0), txn_id=1)  # client 1 caches item 0
    # txn 2 at client 1: uses cached 0, then wants 1.
    h.launch(1, spec((0, R), (1, W), think=5.0), delay=40.0, txn_id=2)
    # txn 3 at client 2: takes 1, then writes 0 (recall blocks on txn 2).
    h.launch(2, spec((1, W), (0, W), think=5.0), delay=40.0, txn_id=3)
    outcomes = h.run()
    aborted = [o for o in outcomes.values() if not o.committed]
    assert len(aborted) == 1
    h.check_serializable()


def test_writer_caches_its_own_update():
    h = Harness("c2pl", n_clients=1, latency=10.0)
    h.launch(1, spec((0, W), think=1.0), txn_id=1)
    h.launch(1, spec((0, R), think=1.0), delay=60.0, txn_id=2)
    outcomes = h.run()
    assert outcomes[2].response_time == pytest.approx(1.0)  # local hit
    reads = [r for r in h.history.reads() if r.txn_id == 2]
    assert reads[0].version == 1
    h.check_serializable()


def test_aborted_writer_update_not_cached():
    h = Harness("c2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, W), (1, W), think=1.0), txn_id=1)
    h.launch(2, spec((1, W), (0, W), think=1.0), txn_id=2)
    outcomes = h.run()
    aborted = [o for o in outcomes.values() if not o.committed]
    assert len(aborted) == 1
    victim_client = aborted[0].client_id
    # The victim's locally written values were dropped from its cache.
    for item_id, entry in h.clients[victim_client]._cache.items():
        assert entry[0] <= h.store.read(item_id).version
    h.check_serializable()


def test_cache_capacity_evicts_lru():
    h = Harness("c2pl", n_clients=1, n_items=4, latency=10.0,
                cache_capacity=2)
    h.launch(1, spec((0, R), (1, R), (2, R), think=1.0), txn_id=1)
    h.run()
    client = h.clients[1]
    assert len(client._cache) == 2
    assert 0 not in client._cache  # the oldest entry was evicted
    assert 1 in client._cache and 2 in client._cache


def test_read_only_workload_faster_than_s2pl():
    """With everything cacheable, c-2PL beats s-2PL on repeat reads."""
    from repro import SimulationConfig, run_simulation

    results = {}
    for proto in ("s2pl", "c2pl"):
        cfg = SimulationConfig(protocol=proto, n_clients=5, n_items=5,
                               read_probability=1.0, network_latency=100.0,
                               total_transactions=150,
                               warmup_transactions=30, seed=7)
        results[proto] = run_simulation(cfg).mean_response_time
    assert results["c2pl"] < results["s2pl"]
