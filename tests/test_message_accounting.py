"""Message and round accounting: the paper's §3.2 arithmetic.

For m clients exclusively accessing one item in a single collection
window, s-2PL needs 3m messages and 3m rounds (request, grant, release
per client, all sequential once the item is contended), while g-2PL needs
2m+1 messages on the critical path (m requests happen in parallel; then
grant, m-1 forwards, final return) — the release of one client rides the
grant of the next.
"""

import pytest

from repro.core.config import SimulationConfig
from repro.core.worked_example import _RecordingStore, _write_spec
from repro.network.topology import UniformTopology
from repro.network.transport import Network
from repro.protocols.registry import make_protocol
from repro.protocols.transaction import Transaction
from repro.sim.engine import Simulator
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder


def run_contended_chain(protocol, m=3, latency=2.0):
    """m clients, one exclusive item, all requests in one window/queue.
    Returns the network's per-message-type counters."""
    config = SimulationConfig(
        protocol=protocol, n_clients=m, n_items=1, network_latency=latency,
        read_probability=0.0, total_transactions=10,
        warmup_transactions=0)
    sim = Simulator()
    store = _RecordingStore(range(1))
    network = Network(sim, UniformTopology(latency))
    server, clients = make_protocol(
        protocol, sim, config, store, WriteAheadLog(), HistoryRecorder(),
        list(range(1, m + 1)))
    network.add_site(server)
    for client in clients.values():
        network.add_site(client)

    def launch(client_id, txn_id):
        def body():
            txn = Transaction(txn_id, client_id, _write_spec(1.0),
                              birth=sim.now)
            outcome = yield sim.spawn(clients[client_id].execute(txn))
            return outcome
        sim.spawn(body())

    for index in range(m):
        launch(index + 1, index + 1)
    sim.run()
    return network.stats


def test_s2pl_message_count_is_3m():
    for m in (2, 3, 5):
        stats = run_contended_chain("s2pl", m)
        per_type = stats.per_type
        assert per_type["LockRequest"] == m
        assert per_type["DataShip"] == m
        assert per_type["CommitRelease"] == m
        assert stats.messages_sent == 3 * m


def test_g2pl_data_moves_are_m_plus_2():
    """The data moves once per handoff instead of twice: here the first
    simultaneous request wins a solo window (ship + return) and the other
    m-1 share one chained window (ship + m-2 forwards + return), so the
    item moves m+2 times versus 2m under s-2PL (m grants + m releases)."""
    for m in (2, 3, 5):
        stats = run_contended_chain("g2pl", m)
        per_type = stats.per_type
        assert per_type["LockRequest"] == m
        data_moves = per_type.get("GShip", 0) + per_type.get(
            "ReturnToServer", 0)
        assert data_moves == m + 2
        # TxnDone notifications are off the critical path but on the wire.
        assert per_type.get("TxnDone", 0) == m


def test_g2pl_ships_less_data_than_s2pl():
    """Data units on the wire: s-2PL ships each version twice (grant +
    release), g-2PL once per hop."""
    for m in (3, 5):
        s_stats = run_contended_chain("s2pl", m)
        g_stats = run_contended_chain("g2pl", m)
        assert g_stats.data_units_sent < s_stats.data_units_sent


def test_completion_time_gap_matches_round_arithmetic():
    """End-to-end: the last transaction completes (m-1) x latency earlier
    under g-2PL — one saved round per handoff."""
    import repro.core.worked_example as we

    for m in (3, 5):
        result = we.run_worked_example(n_clients=m, latency=2.0,
                                       processing=1.0)
        saved = result.s2pl_span - result.g2pl_span
        assert saved == pytest.approx((m - 1) * 2.0)
