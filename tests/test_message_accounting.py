"""Message and round accounting: the paper's §3.2 arithmetic.

For m clients exclusively accessing one item in a single collection
window, s-2PL needs 3m messages and 3m rounds (request, grant, release
per client, all sequential once the item is contended), while g-2PL needs
2m+1 messages on the critical path (m requests happen in parallel; then
grant, m-1 forwards, final return) — the release of one client rides the
grant of the next.
"""

import pytest

from repro.core.config import SimulationConfig
from repro.core.worked_example import _RecordingStore, _write_spec
from repro.network.topology import UniformTopology
from repro.network.transport import Network
from repro.protocols.registry import make_protocol
from repro.protocols.transaction import Transaction
from repro.sim.engine import Simulator
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder


def run_contended_chain(protocol, m=3, latency=2.0):
    """m clients, one exclusive item, all requests in one window/queue.
    Returns the network's per-message-type counters."""
    config = SimulationConfig(
        protocol=protocol, n_clients=m, n_items=1, network_latency=latency,
        read_probability=0.0, total_transactions=10,
        warmup_transactions=0)
    sim = Simulator()
    store = _RecordingStore(range(1))
    network = Network(sim, UniformTopology(latency))
    server, clients = make_protocol(
        protocol, sim, config, store, WriteAheadLog(), HistoryRecorder(),
        list(range(1, m + 1)))
    network.add_site(server)
    for client in clients.values():
        network.add_site(client)

    def launch(client_id, txn_id):
        def body():
            txn = Transaction(txn_id, client_id, _write_spec(1.0),
                              birth=sim.now)
            outcome = yield sim.spawn(clients[client_id].execute(txn))
            return outcome
        sim.spawn(body())

    for index in range(m):
        launch(index + 1, index + 1)
    sim.run()
    return network.stats


def test_s2pl_message_count_is_3m():
    for m in (2, 3, 5):
        stats = run_contended_chain("s2pl", m)
        per_type = stats.per_type
        assert per_type["LockRequest"] == m
        assert per_type["DataShip"] == m
        assert per_type["CommitRelease"] == m
        assert stats.messages_sent == 3 * m


def test_g2pl_data_moves_are_m_plus_2():
    """The data moves once per handoff instead of twice: here the first
    simultaneous request wins a solo window (ship + return) and the other
    m-1 share one chained window (ship + m-2 forwards + return), so the
    item moves m+2 times versus 2m under s-2PL (m grants + m releases)."""
    for m in (2, 3, 5):
        stats = run_contended_chain("g2pl", m)
        per_type = stats.per_type
        assert per_type["LockRequest"] == m
        data_moves = per_type.get("GShip", 0) + per_type.get(
            "ReturnToServer", 0)
        assert data_moves == m + 2
        # TxnDone notifications are off the critical path but on the wire.
        assert per_type.get("TxnDone", 0) == m


def test_g2pl_ships_less_data_than_s2pl():
    """Data units on the wire: s-2PL ships each version twice (grant +
    release), g-2PL once per hop."""
    for m in (3, 5):
        s_stats = run_contended_chain("s2pl", m)
        g_stats = run_contended_chain("g2pl", m)
        assert g_stats.data_units_sent < s_stats.data_units_sent


def _uncontended_sharded_run(protocol, commit_protocol="2pc", txns=10):
    """One client, four single-item shards, every transaction touching
    all four items: each commit is a 4-op, 4-home transaction, so the
    per-commit rounds are exactly the closed form."""
    from repro.core.runner import run_simulation

    config = SimulationConfig(
        protocol=protocol, n_clients=1, n_items=4, n_shards=4,
        cross_shard_probability=1.0, commit_protocol=commit_protocol,
        min_ops=4, max_ops=4, read_probability=0.0, network_latency=5.0,
        total_transactions=txns, warmup_transactions=0, trace=True,
        seed=3)
    result = run_simulation(config)
    summary = result.trace.summary
    assert summary.committed == txns
    return summary


def test_sharded_s2pl_classic_2pc_rounds_match_closed_form():
    """Classic 2PC: request + grant per op, then prepare, vote, decide —
    2m+3 sequential rounds (the m=4-op transaction pays 11)."""
    from repro.obs.rounds import expected_txn_rounds

    summary = _uncontended_sharded_run("s2pl", "2pc")
    expected = expected_txn_rounds("s2pl", 4, n_homes=4)
    assert summary.rounds_total == summary.committed * expected
    # message counts: one PrepareRequest / PrepareVote / CommitDecision
    # per participant shard per transaction
    per_kind = summary.msgs_by_kind
    assert per_kind["PrepareRequest"] == 4 * summary.committed
    assert per_kind["PrepareVote"] == 4 * summary.committed
    assert per_kind["CommitDecision"] == 4 * summary.committed


def test_sharded_s2pl_opt_commit_rounds_match_closed_form():
    """2pc-opt: votes ride the last grants and the decision doubles as
    the release — back to 2m+1, two rounds saved per commit."""
    from repro.obs.rounds import expected_txn_rounds

    classic = _uncontended_sharded_run("s2pl", "2pc")
    opt = _uncontended_sharded_run("s2pl", "2pc-opt")
    expected = expected_txn_rounds("s2pl", 4, n_homes=4,
                                   commit_protocol="2pc-opt")
    assert opt.rounds_total == opt.committed * expected
    assert (classic.rounds_total - opt.rounds_total
            == 2 * opt.committed)
    # no separate prepare phase on the wire
    assert "PrepareRequest" not in opt.msgs_by_kind
    assert "PrepareVote" not in opt.msgs_by_kind
    assert opt.msgs_by_kind["CommitDecision"] == 4 * opt.committed


def test_sharded_g2pl_commits_without_commit_messages():
    """Non-fault sharded g-2PL: the client commits locally and TxnDone
    retires the chains — zero 2PC messages, 3m rounds (request + ship +
    return per op)."""
    from repro.obs.rounds import expected_txn_rounds

    summary = _uncontended_sharded_run("g2pl")
    expected = expected_txn_rounds("g2pl", 4, n_homes=4)
    assert summary.rounds_total == summary.committed * expected
    for kind in ("PrepareRequest", "PrepareVote", "CommitDecision",
                 "ChainCommit"):
        assert kind not in summary.msgs_by_kind


def test_completion_time_gap_matches_round_arithmetic():
    """End-to-end: the last transaction completes (m-1) x latency earlier
    under g-2PL — one saved round per handoff."""
    import repro.core.worked_example as we

    for m in (3, 5):
        result = we.run_worked_example(n_clients=m, latency=2.0,
                                       processing=1.0)
        saved = result.s2pl_span - result.g2pl_span
        assert saved == pytest.approx((m - 1) * 2.0)
