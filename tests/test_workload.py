"""Unit tests for workload generation (Table 1 semantics)."""

import pytest

from repro.locking.modes import LockMode
from repro.sim import RandomStreams
from repro.workload.generator import WorkloadGenerator, WorkloadParams
from repro.workload.spec import Operation, TransactionSpec


def make_generator(seed=1, **overrides):
    params = WorkloadParams(**overrides)
    return WorkloadGenerator(params, RandomStreams(seed))


class TestParams:
    def test_defaults_match_table1(self):
        p = WorkloadParams()
        assert p.n_items == 25
        assert (p.min_ops, p.max_ops) == (1, 5)
        assert (p.think_min, p.think_max) == (1.0, 3.0)
        assert (p.idle_min, p.idle_max) == (2.0, 10.0)

    def test_read_probability_validated(self):
        with pytest.raises(ValueError):
            WorkloadParams(read_probability=1.5)
        with pytest.raises(ValueError):
            WorkloadParams(read_probability=-0.1)

    def test_ops_range_validated(self):
        with pytest.raises(ValueError):
            WorkloadParams(min_ops=0)
        with pytest.raises(ValueError):
            WorkloadParams(min_ops=4, max_ops=2)
        with pytest.raises(ValueError):
            WorkloadParams(max_ops=30, n_items=25)

    def test_time_ranges_validated(self):
        with pytest.raises(ValueError):
            WorkloadParams(think_min=5, think_max=2)
        with pytest.raises(ValueError):
            WorkloadParams(idle_min=-1)


class TestSpec:
    def test_spec_requires_operations(self):
        with pytest.raises(ValueError):
            TransactionSpec(operations=())

    def test_spec_rejects_duplicate_items(self):
        op = Operation(item_id=3, mode=LockMode.READ, think_time=1.0)
        with pytest.raises(ValueError, match="duplicate"):
            TransactionSpec(operations=(op, op))

    def test_spec_properties(self):
        ops = (Operation(0, LockMode.READ, 1.0),
               Operation(1, LockMode.WRITE, 2.0))
        s = TransactionSpec(operations=ops)
        assert s.n_ops == 2
        assert s.items == (0, 1)
        assert s.n_writes == 1
        assert not s.is_read_only


class TestGenerator:
    def test_ops_within_bounds_and_distinct(self):
        gen = make_generator()
        for _ in range(200):
            s = gen.next_spec(client_id=1)
            assert 1 <= s.n_ops <= 5
            assert len(set(s.items)) == s.n_ops
            assert all(0 <= item < 25 for item in s.items)
            assert all(1.0 <= op.think_time <= 3.0 for op in s.operations)

    def test_read_probability_zero_is_all_writes(self):
        gen = make_generator(read_probability=0.0)
        for _ in range(50):
            s = gen.next_spec(1)
            assert s.n_writes == s.n_ops

    def test_read_probability_one_is_read_only(self):
        gen = make_generator(read_probability=1.0)
        for _ in range(50):
            assert gen.next_spec(1).is_read_only

    def test_read_fraction_approximates_probability(self):
        gen = make_generator(read_probability=0.6)
        reads = ops = 0
        for _ in range(500):
            s = gen.next_spec(1)
            ops += s.n_ops
            reads += s.n_ops - s.n_writes
        assert 0.55 < reads / ops < 0.65

    def test_idle_time_within_bounds(self):
        gen = make_generator()
        for _ in range(100):
            assert 2.0 <= gen.idle_time(1) <= 10.0

    def test_stagger_within_idle_max(self):
        gen = make_generator()
        for client in range(10):
            assert 0.0 <= gen.initial_stagger(client) <= 10.0

    def test_deterministic_per_seed(self):
        a, b = make_generator(seed=5), make_generator(seed=5)
        for client in (1, 2, 3):
            assert a.next_spec(client).items == b.next_spec(client).items

    def test_clients_are_independent_streams(self):
        gen = make_generator(seed=5)
        fresh = make_generator(seed=5)
        # Consuming many specs for client 1 must not shift client 2.
        expected = fresh.next_spec(2).items
        for _ in range(100):
            gen.next_spec(1)
        assert gen.next_spec(2).items == expected

    def test_generated_counter(self):
        gen = make_generator()
        for _ in range(7):
            gen.next_spec(1)
        assert gen.generated == 7


class TestHomePoolCache:
    """Regression: the cached home-shard pools must not change any draw."""

    SHARDED = dict(n_items=24, n_shards=4, cross_shard_probability=0.3)

    def test_cached_pools_match_partition(self):
        from repro.protocols.sharding import partition_items

        gen = make_generator(**self.SHARDED)
        pools = partition_items(24, 4)
        for client in range(1, 9):
            assert gen._home_pool(client) == pools[gen.home_shard(client)]

    def test_cache_preserves_draw_sequence(self):
        # The reference generator recomputes the partition on every local
        # draw, as the pre-cache implementation did; both must produce a
        # byte-identical spec sequence from the same seed.
        from repro.protocols.sharding import partition_items

        cached = make_generator(seed=3, **self.SHARDED)
        reference = make_generator(seed=3, **self.SHARDED)
        reference._home_pool = lambda client_id: partition_items(
            reference.params.n_items, reference.params.n_shards
        )[reference.home_shard(client_id)]
        for _ in range(200):
            for client in (1, 2, 3, 4, 5):
                want = reference.next_spec(client)
                got = cached.next_spec(client)
                assert got.operations == want.operations
