"""End-to-end live smoke: real processes, real TCP, calibrated vs sim.

Each case launches 1 server + N client OS processes over loopback with
userspace-shaped latency, merges their results, and compares against the
simulator running the *same scenario code*:

* the merged history is serializable and strict,
* the committed transaction sets are identical (calibrate mode is fully
  deterministic by construction),
* per-transaction sequential round counts match the simulator exactly
  (s-2PL: 3 per commit; g-2PL: 2m+1 per epoch over the contenders),
* live response times track the simulator within the documented
  tolerance (see EXPERIMENTS.md appendix C).

These are the assertions CI's ``live-smoke`` job runs.
"""

import pytest

from repro.live.harness import calibrate
from repro.live.scenario import ScenarioSpec
from repro.obs.rounds import expected_rounds

#: documented smoke tolerance on the mean relative response-time delta;
#: loopback runs typically land near 3-5% (EXPERIMENTS.md appendix C)
RESPONSE_TOLERANCE = 0.25

pytestmark = pytest.mark.live


@pytest.mark.parametrize("protocol", ["s2pl", "g2pl"])
def test_live_calibrate_matches_simulator(protocol):
    spec = ScenarioSpec(protocol=protocol, mode="calibrate", n_clients=4,
                        latency=2.0, think=1.0, repeats=2)
    report = calibrate(spec, time_scale=0.02)
    assert report.serializable, "merged live history not serializable"
    assert report.strict, "merged live history not strict"
    assert report.committed_match, (
        "live committed set differs from simulator")
    m = spec.n_clients - 1
    assert report.n_compared == m * spec.repeats
    assert report.rounds_exact, (
        f"round mismatches: {report.round_mismatches}")
    # the per-txn totals are the paper's arithmetic
    live_total = sum(
        record["rounds_sequential"]
        for record in report.live.merged.measured_committed().values())
    assert live_total == expected_rounds(protocol, m) * spec.repeats
    assert report.mean_relative_delta < RESPONSE_TOLERANCE
    # no round charge may be left without an owning transaction record
    assert report.live.merged.orphans == []


def test_live_workload_history_is_serializable_and_rounds_match():
    spec = ScenarioSpec(protocol="g2pl", mode="workload", n_clients=3,
                        latency=2.0, duration=60.0, seed=7)
    report = calibrate(spec, time_scale=0.01)
    assert report.serializable and report.strict
    assert report.n_compared > 0
    assert report.rounds_exact, (
        f"round mismatches: {report.round_mismatches}")
    assert report.mean_relative_delta < RESPONSE_TOLERANCE
