"""Scenario layer: sim-side reference runs and result merging."""

import pytest

from repro.live.results import MergedRun
from repro.live.scenario import (
    ScenarioSpec,
    TXN_ID_STRIDE,
    run_reference,
    txn_id_for,
)
from repro.obs.rounds import expected_rounds


def test_spec_round_trips_through_dict():
    spec = ScenarioSpec(protocol="g2pl", mode="workload", n_clients=6,
                        latency=3.0, seed=9, duration=77.0)
    assert ScenarioSpec.from_dict(spec.to_dict()) == spec


def test_spec_rejects_bad_modes_and_sizes():
    with pytest.raises(ValueError):
        ScenarioSpec(mode="nope")
    with pytest.raises(ValueError):
        ScenarioSpec(mode="calibrate", n_clients=1)
    with pytest.raises(ValueError):
        ScenarioSpec(repeats=0)


def test_txn_ids_are_disjoint_per_client():
    assert txn_id_for(3, 7) == 3 * TXN_ID_STRIDE + 7
    with pytest.raises(ValueError):
        txn_id_for(1, TXN_ID_STRIDE)


@pytest.mark.parametrize("protocol", ["s2pl", "g2pl"])
def test_calibrate_reference_matches_paper_arithmetic(protocol):
    """The staggered contended scenario must still produce the paper's
    closed forms (3m / 2m+1 per epoch) — the stagger fixes arrival order
    without changing the window composition."""
    spec = ScenarioSpec(protocol=protocol, mode="calibrate", n_clients=5,
                        latency=2.0, think=1.0, repeats=3)
    ref = run_reference(spec)
    m = spec.n_clients - 1
    measured = [r for r in ref.trace.txns
                if r["measured"] and r["committed"]]
    assert len(measured) == m * spec.repeats
    total = sum(r["rounds_sequential"] for r in measured)
    assert total == expected_rounds(protocol, m) * spec.repeats
    # calibrate histories are single-item write chains: always clean
    assert len(ref.history.aborted) == 0
    assert len(ref.history.committed) == (m + 1) * spec.repeats


def test_calibrate_reference_is_deterministic():
    spec = ScenarioSpec(protocol="g2pl", mode="calibrate", n_clients=4,
                        repeats=2)
    a, b = run_reference(spec), run_reference(spec)
    assert {r["txn"]: r["rounds"] for r in a.trace.txns} \
        == {r["txn"]: r["rounds"] for r in b.trace.txns}
    assert [o.response_time for o, _ in a.outcomes] \
        == [o.response_time for o, _ in b.outcomes]


def test_workload_reference_runs_and_validates():
    spec = ScenarioSpec(protocol="s2pl", mode="workload", n_clients=3,
                        latency=2.0, duration=80.0, seed=5)
    ref = run_reference(spec)
    assert len(ref.history.committed) > 0
    # every committed outcome was measured and recorded
    committed = {o.txn_id for o, _ in ref.outcomes if o.committed}
    assert committed == ref.history.committed


def _payload(site, role, records=(), partials=(), outcomes=(),
             history=None, net=None):
    history = history or {"accesses": [], "committed": [], "aborted": [],
                          "commit_times": {}}
    net = net or {"messages_sent": 0, "data_units_sent": 0.0,
                  "per_type": {}}
    return {"role": role, "site": site, "protocol": "s2pl",
            "mode": "calibrate", "outcomes": list(outcomes),
            "txn_records": list(records), "partial_records": list(partials),
            "history": history, "net": net,
            "engine": {"processed_events": 0, "peak_heap_depth": 0,
                       "cancelled_events": 0, "end_time": 0.0}}


def _record(txn, rounds, response=10.0):
    return {"txn": txn, "client": 1, "rounds": rounds,
            "rounds_sequential": sum(rounds.values()), "propagation": 4.0,
            "transmission": 0.0, "slack": 0.0, "server_queue": 0.0,
            "client_think": 1.0, "committed": True, "measured": True,
            "start": 0.0, "end": response, "response": response,
            "n_ops": 1, "abort_reason": None}


def test_merge_folds_partial_charges_into_owner_record():
    owner = _payload(1, "client",
                     records=[_record(1_000_001, {"request": 1})])
    server = _payload(0, "server", partials=[
        {"txn": 1_000_001, "client": 1, "rounds": {"grant": 1},
         "propagation": 2.0, "transmission": 0.0, "slack": 0.5,
         "server_queue": 0.0, "client_think": 0.0}])
    merged = MergedRun([server, owner])
    record = merged.records[1_000_001]
    assert record["rounds"] == {"request": 1, "grant": 1}
    assert record["rounds_sequential"] == 2
    assert record["propagation"] == 6.0
    # lock_wait recomputed from the merged components
    assert record["lock_wait"] == pytest.approx(10.0 - (6.0 + 0.5 + 1.0))
    assert merged.orphans == []


def test_merge_reports_orphan_partials():
    server = _payload(0, "server", partials=[
        {"txn": 42, "client": None, "rounds": {"grant": 1},
         "propagation": 0.0, "transmission": 0.0, "slack": 0.0,
         "server_queue": 0.0, "client_think": 0.0}])
    merged = MergedRun([server])
    assert len(merged.orphans) == 1
    assert merged.orphans[0]["txn"] == 42
    assert merged.orphans[0]["site"] == 0


def test_merge_rejects_double_finish():
    a = _payload(1, "client", records=[_record(7, {"request": 1})])
    b = _payload(2, "client", records=[_record(7, {"request": 1})])
    with pytest.raises(ValueError, match="two endpoints"):
        MergedRun([a, b])


def test_merge_rebuilds_history_in_time_order():
    a = _payload(1, "client", history={
        "accesses": [[1_000_001, 0, "WRITE", 1, 5.0]],
        "committed": [1_000_001], "aborted": [],
        "commit_times": {"1000001": 6.0}})
    b = _payload(2, "client", history={
        "accesses": [[2_000_001, 0, "WRITE", 2, 3.0]],
        "committed": [2_000_001], "aborted": [],
        "commit_times": {"2000001": 4.0}})
    merged = MergedRun([a, b])
    times = [access.time for access in merged.history.accesses]
    assert times == sorted(times)
    assert merged.history.committed == {1_000_001, 2_000_001}
    assert merged.history.commit_times[2_000_001] == 4.0
