"""Determinism regression suite for the parallel execution engine.

The headline guarantee: fanning simulation cells out over a process pool
(`jobs>1`) produces results bit-identical to the serial runner for the
same configs and seeds — same per-run response times, abort percentages,
message counts, everything. These tests pin that guarantee for both
protocols, plus the `jobs=1` pool bypass and per-cell error propagation.
"""

import pytest

from repro import SimulationConfig
from repro.core.parallel import (
    CellError,
    SimulationCell,
    replication_seed,
    resolve_jobs,
    run_cells,
)
from repro.core.runner import compare_protocols, run_replications


def tiny_config(**overrides):
    defaults = dict(n_clients=6, n_items=8, network_latency=25.0,
                    read_probability=0.5, total_transactions=80,
                    warmup_transactions=10, seed=17, record_history=False)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


def assert_runs_identical(a, b):
    """Bit-identical per-run metrics: the full response-time series, the
    abort accounting, and the message/data counters."""
    assert a.seed == b.seed
    assert a.config == b.config
    assert a.metrics.response_times == b.metrics.response_times
    assert a.metrics.committed == b.metrics.committed
    assert a.metrics.aborted == b.metrics.aborted
    assert a.metrics.abort_reasons == b.metrics.abort_reasons
    assert a.abort_percentage == b.abort_percentage
    assert a.messages_sent == b.messages_sent
    assert a.data_units_sent == b.data_units_sent
    assert a.duration == b.duration
    assert a.server_stats == b.server_stats


class TestDeterminism:
    @pytest.mark.parametrize("protocol", ["s2pl", "g2pl"])
    def test_replications_parallel_matches_serial(self, protocol):
        config = tiny_config(protocol=protocol)
        serial = run_replications(config, replications=3, jobs=1)
        parallel = run_replications(config, replications=3, jobs=2)
        assert len(serial.runs) == len(parallel.runs) == 3
        for a, b in zip(serial.runs, parallel.runs):
            assert_runs_identical(a, b)
        assert serial.response_time.mean == parallel.response_time.mean
        assert (serial.response_time.half_width
                == parallel.response_time.half_width)
        assert (serial.abort_percentage.mean
                == parallel.abort_percentage.mean)

    def test_compare_protocols_parallel_matches_serial(self):
        config = tiny_config()
        serial = compare_protocols(config, ("s2pl", "g2pl"),
                                   replications=2, jobs=1)
        parallel = compare_protocols(config, ("s2pl", "g2pl"),
                                     replications=2, jobs=2)
        assert set(serial) == set(parallel) == {"s2pl", "g2pl"}
        for protocol in serial:
            for a, b in zip(serial[protocol].runs, parallel[protocol].runs):
                assert_runs_identical(a, b)
        # Common random numbers survive the fan-out.
        s_seeds = [run.seed for run in parallel["s2pl"].runs]
        g_seeds = [run.seed for run in parallel["g2pl"].runs]
        assert s_seeds == g_seeds

    def test_parallel_seed_scheme_matches_serial(self):
        result = run_replications(tiny_config(), replications=3,
                                  base_seed=100, jobs=2)
        assert [run.seed for run in result.runs] == [
            replication_seed(100, index) for index in range(3)]
        assert [run.seed for run in result.runs] == [100, 100 + 7919,
                                                     100 + 2 * 7919]


class TestSerialBypass:
    def test_jobs1_never_builds_a_pool(self, monkeypatch):
        import repro.core.parallel as parallel_module

        def forbidden(*args, **kwargs):
            raise AssertionError("jobs=1 must not construct a process pool")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor",
                            forbidden)
        result = run_replications(tiny_config(), replications=2, jobs=1)
        assert len(result.runs) == 2

    def test_single_cell_skips_the_pool_even_with_jobs2(self, monkeypatch):
        import repro.core.parallel as parallel_module

        def forbidden(*args, **kwargs):
            raise AssertionError("one cell needs no pool")

        monkeypatch.setattr(parallel_module, "ProcessPoolExecutor",
                            forbidden)
        results = run_cells([SimulationCell(tiny_config(), seed=5)], jobs=2)
        assert len(results) == 1 and results[0].seed == 5

    def test_empty_cell_list(self):
        assert run_cells([], jobs=4) == []

    def test_ordered_reassembly(self):
        cells = [SimulationCell(tiny_config(), seed=seed)
                 for seed in (31, 3, 77, 12)]
        results = run_cells(cells, jobs=1)
        assert [r.seed for r in results] == [31, 3, 77, 12]


class TestErrorPropagation:
    def test_serial_failure_carries_cell_context(self):
        cells = [SimulationCell(tiny_config(), seed=1),
                 SimulationCell(tiny_config(protocol="mystery"), seed=42)]
        with pytest.raises(CellError, match="mystery") as excinfo:
            run_cells(cells, jobs=1)
        assert "seed=42" in str(excinfo.value)
        assert excinfo.value.cell is cells[1]

    def test_parallel_failure_carries_cell_context(self):
        cells = [SimulationCell(tiny_config(), seed=1),
                 SimulationCell(tiny_config(protocol="mystery"), seed=42)]
        with pytest.raises(CellError, match="mystery") as excinfo:
            run_cells(cells, jobs=2)
        assert "seed=42" in str(excinfo.value)
        assert excinfo.value.cell == cells[1]


class TestProgressAndJobs:
    def test_progress_callback_serial(self):
        seen = []
        run_cells([SimulationCell(tiny_config(), seed=s) for s in (1, 2, 3)],
                  jobs=1, progress=lambda done, total: seen.append((done,
                                                                    total)))
        assert seen == [(1, 3), (2, 3), (3, 3)]

    def test_progress_callback_parallel(self):
        seen = []
        run_cells([SimulationCell(tiny_config(), seed=s) for s in (1, 2, 3)],
                  jobs=2, progress=lambda done, total: seen.append((done,
                                                                    total)))
        assert seen[-1] == (3, 3)
        assert [done for done, _ in seen] == sorted(done for done, _ in seen)

    def test_resolve_jobs(self):
        import os

        cpus = os.cpu_count() or 1
        assert resolve_jobs(1) == 1
        assert resolve_jobs(3) == 3
        assert resolve_jobs(0) == cpus
        assert resolve_jobs(None) == cpus
        assert resolve_jobs("auto") == cpus
        with pytest.raises(ValueError):
            resolve_jobs(-2)


class TestRunReplicationsAPI:
    def test_jobs_parameter_validates_replications(self):
        with pytest.raises(ValueError):
            run_replications(tiny_config(), replications=0, jobs=2)
