"""Tests for the fault-injection layer: spec parsing, transport behaviour,
the reliable channel, crash recovery, and end-to-end determinism."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.runner import run_replications, run_simulation
from repro.network.faults import (
    ClientCrash,
    FaultInjector,
    FaultSpec,
    FaultStats,
    PartitionWindow,
    derive_recovery_times,
)
from repro.network.reliable import Reliable, ReliableAck, ReliableLink
from repro.network.topology import Site, UniformTopology
from repro.network.transport import Network
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.rng import RandomStreams


class Recorder(Site):
    def __init__(self, site_id, sim):
        super().__init__(site_id)
        self.sim = sim
        self.received = []

    def receive(self, envelope):
        self.received.append((self.sim.now, envelope.src, envelope.payload))


def make_faulty_net(spec, seed=1, latency=10.0, n_sites=3, bandwidth=None):
    sim = Simulator()
    injector = FaultInjector(FaultSpec.parse(spec),
                             RandomStreams(seed).spawn("faults"))
    net = Network(sim, UniformTopology(latency), bandwidth=bandwidth,
                  faults=injector)
    sites = [net.add_site(Recorder(i, sim)) for i in range(n_sites)]
    return sim, net, sites, injector


# -- spec parsing and validation ---------------------------------------------


class TestFaultSpec:
    def test_parse_full_spec(self):
        spec = FaultSpec.parse(
            "loss=0.05, dup=0.01, jitter=50, crash=3@10000:20000, "
            "crash=5@7000, part=5000:6000:1+2, rto=1200, backoff=3")
        assert spec.message_loss == 0.05
        assert spec.duplicate_probability == 0.01
        assert spec.extra_jitter == 50.0
        assert spec.crashes == (ClientCrash(3, 10000.0, 20000.0),
                                ClientCrash(5, 7000.0, None))
        assert spec.partitions == (
            PartitionWindow(5000.0, 6000.0, sites=(1, 2)),)
        assert spec.retry_timeout == 1200.0
        assert spec.retry_backoff == 3.0

    def test_parse_is_identity_on_spec_instances(self):
        spec = FaultSpec(message_loss=0.1)
        assert FaultSpec.parse(spec) is spec

    def test_parse_rejects_bad_clauses(self):
        with pytest.raises(ValueError, match="key=value"):
            FaultSpec.parse("loss")
        with pytest.raises(ValueError, match="unknown fault key"):
            FaultSpec.parse("bogus=1")
        with pytest.raises(ValueError, match="CLIENT@AT"):
            FaultSpec.parse("crash=3")
        with pytest.raises(ValueError, match="START:END:SITE"):
            FaultSpec.parse("part=5:6")

    def test_probabilities_validated(self):
        with pytest.raises(ValueError, match="message_loss"):
            FaultSpec(message_loss=1.0)
        with pytest.raises(ValueError, match="duplicate_probability"):
            FaultSpec(duplicate_probability=-0.1)
        with pytest.raises(ValueError, match="extra_jitter"):
            FaultSpec(extra_jitter=-5.0)
        with pytest.raises(ValueError, match="retry_backoff"):
            FaultSpec(retry_backoff=0.5)

    def test_crash_window_validated(self):
        with pytest.raises(ValueError, match="restart_at"):
            ClientCrash(1, at=100.0, restart_at=50.0)
        with pytest.raises(ValueError, match=">= 0"):
            ClientCrash(1, at=-1.0)
        assert ClientCrash(1, at=5.0).down_until == float("inf")

    def test_partition_window_validated(self):
        with pytest.raises(ValueError, match="start < end"):
            PartitionWindow(10.0, 10.0, sites=(1,))
        with pytest.raises(ValueError, match="isolates no sites"):
            PartitionWindow(0.0, 10.0)

    def test_spec_is_picklable(self):
        import pickle

        spec = FaultSpec.parse("loss=0.05,crash=2@100:200,part=5:6:1")
        assert pickle.loads(pickle.dumps(spec)) == spec

    def test_derive_recovery_times_defaults(self):
        spec = FaultSpec(extra_jitter=25.0)
        rto, max_interval, chain, sweep = derive_recovery_times(spec, 500.0)
        round_trip = 2.0 * 525.0
        assert rto == pytest.approx(1.25 * round_trip + 1.0)
        assert max_interval == pytest.approx(16.0 * rto)
        assert chain == pytest.approx(10.0 * (round_trip + 10.0))
        assert sweep == pytest.approx(2.0 * rto)

    def test_derive_recovery_times_overrides(self):
        spec = FaultSpec(retry_timeout=100.0, max_retry_interval=900.0,
                         chain_timeout=5000.0, sweep_interval=250.0)
        assert derive_recovery_times(spec, 500.0) == (
            100.0, 900.0, 5000.0, 250.0)

    def test_stats_as_dict_prefixes_keys(self):
        stats = FaultStats(delivered=3, dropped_loss=1)
        as_dict = stats.as_dict()
        assert as_dict["faults_delivered"] == 3
        assert as_dict["faults_dropped_loss"] == 1
        assert all(key.startswith("faults_") for key in as_dict)


# -- transport-level fault behaviour -----------------------------------------


class TestFaultyTransport:
    def test_loss_drops_some_messages(self):
        sim, net, sites, injector = make_faulty_net("loss=0.5")
        for i in range(400):
            net.send(0, 1, i)
        sim.run()
        stats = injector.stats
        assert stats.delivered + stats.dropped_loss == 400
        assert 0 < stats.dropped_loss < 400
        assert len(sites[1].received) == stats.delivered

    def test_duplication_schedules_second_copies(self):
        sim, net, sites, injector = make_faulty_net("dup=0.9")
        for i in range(100):
            net.send(0, 1, i)
        sim.run()
        assert injector.stats.duplicated > 0
        assert len(sites[1].received) == 100 + injector.stats.duplicated

    def test_jitter_delays_within_bound_and_keeps_fifo(self):
        sim, net, sites, _ = make_faulty_net("jitter=50", latency=10.0)
        for i in range(50):
            net.send(0, 1, i)
        sim.run()
        payloads = [p for (_, _, p) in sites[1].received]
        assert payloads == list(range(50))
        # All sends happen at t=0, so even the FIFO clamp never pushes a
        # delivery past the worst single draw: latency + max jitter.
        for when, _, _ in sites[1].received:
            assert 10.0 <= when <= 60.0

    def test_partition_severs_only_inside_window(self):
        sim, net, sites, injector = make_faulty_net("part=0:100:1")
        net.send(0, 1, "during")       # severed: site 1 partitioned
        net.send(0, 2, "bystander")    # unaffected pair
        sim.call_later(150.0, net.send, 0, 1, "after")
        sim.run()
        assert injector.stats.dropped_partition == 1
        assert [p for (_, _, p) in sites[1].received] == ["after"]
        assert [p for (_, _, p) in sites[2].received] == ["bystander"]

    def test_crash_severs_overlapping_flights(self):
        # latency 10: a t=0 send lands at t=10, inside the [5, 100) crash
        # window of site 1, so it is severed; t=150 is after the restart.
        sim, net, sites, injector = make_faulty_net("crash=1@5:100")
        net.send(0, 1, "into-crash")
        net.send(0, 2, "bystander")
        sim.call_later(150.0, net.send, 0, 1, "after-restart")
        sim.run()
        assert injector.stats.dropped_crash == 1
        assert [p for (_, _, p) in sites[1].received] == ["after-restart"]
        assert [p for (_, _, p) in sites[2].received] == ["bystander"]

    def test_failure_detector_windows(self):
        injector = make_faulty_net("crash=1@5:100")[3]
        assert not injector.is_crashed(1, 4.9)
        assert injector.is_crashed(1, 5.0)
        assert injector.is_crashed(1, 99.9)
        assert not injector.is_crashed(1, 100.0)
        assert not injector.is_crashed(2, 50.0)
        # crashed_during: any overlap, including crash+restart inside it
        assert injector.crashed_during(1, 0.0, 6.0)
        assert injector.crashed_during(1, 50.0, 60.0)
        assert injector.crashed_during(1, 99.0, 500.0)
        assert not injector.crashed_during(1, 100.0, 500.0)
        assert not injector.crashed_during(2, 0.0, 500.0)
        assert injector.crash_sites() == {1}

    def test_dropped_message_still_reports_would_be_arrival(self):
        sim, net, _, _ = make_faulty_net("part=0:100:1", latency=10.0)
        envelope = net.send(0, 1, "doomed")
        assert envelope.deliver_time == 10.0


# -- the reliable channel ----------------------------------------------------


class ReliableSite(Site):
    """Minimal site speaking the reliable channel on both ends."""

    def __init__(self, site_id, sim):
        super().__init__(site_id)
        self.sim = sim
        self.link = None
        self.delivered = []

    def receive(self, envelope):
        payload = self.link.on_receive(envelope)
        if payload is not None:
            self.delivered.append(payload)


def make_reliable_pair(spec, seed=1, rto=30.0):
    sim = Simulator()
    injector = FaultInjector(FaultSpec.parse(spec),
                             RandomStreams(seed).spawn("faults"))
    net = Network(sim, UniformTopology(10.0), faults=injector)
    a = net.add_site(ReliableSite(0, sim))
    b = net.add_site(ReliableSite(1, sim))
    for site in (a, b):
        site.link = ReliableLink(sim, site, rto=rto)
    return sim, a, b


class TestReliableLink:
    def test_exactly_once_under_loss_and_duplication(self):
        sim, a, b = make_reliable_pair("loss=0.3,dup=0.2")
        for i in range(60):
            a.link.send(1, i)
        sim.run()
        # Every message arrives exactly once (retransmission may reorder
        # relative to later sequence numbers, so compare as a multiset).
        assert sorted(b.delivered) == list(range(60))
        assert a.link.retransmissions > 0

    def test_duplicates_suppressed_counted(self):
        sim, a, b = make_reliable_pair("dup=0.9")
        for i in range(40):
            a.link.send(1, i)
        sim.run()
        assert b.delivered == list(range(40))
        assert b.link.duplicates_suppressed > 0

    def test_no_faults_no_retransmissions(self):
        sim, a, b = make_reliable_pair("jitter=0")
        for i in range(10):
            a.link.send(1, i)
        sim.run()
        assert b.delivered == list(range(10))
        assert a.link.retransmissions == 0

    def test_crash_stops_retransmission_and_restart_bumps_incarnation(self):
        sim, a, b = make_reliable_pair("loss=0.3")
        a.link.send(1, "x")
        a.link.crash()
        assert a.link._pending == {}
        incarnation = a.link.incarnation
        a.link.restart()
        assert a.link.incarnation == incarnation + 1
        assert a.link._next_seq == 0

    def test_ack_frames_are_channel_internal(self):
        sim, a, b = make_reliable_pair("jitter=0")
        a.link.send(1, "payload")
        sim.run()
        assert b.delivered == ["payload"]
        assert a.delivered == []  # the ack never reaches the protocol

    def test_rto_must_be_positive(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ReliableLink(sim, None, rto=0.0)

    def test_wrappers_are_frozen_values(self):
        assert Reliable(inner="m", seq=3) == Reliable(inner="m", seq=3)
        assert ReliableAck(seq=3) == ReliableAck(seq=3)


# -- end-to-end: protocols under faults --------------------------------------


SMOKE_FAULTS = "loss=0.05,dup=0.01,jitter=25,crash=2@6000:12000"


def faulted_config(protocol, **overrides):
    kwargs = dict(protocol=protocol, n_clients=4, n_items=6,
                  total_transactions=40, warmup_transactions=5,
                  faults=SMOKE_FAULTS, record_history=True)
    kwargs.update(overrides)
    return SimulationConfig(**kwargs)


class TestFaultedRuns:
    @pytest.mark.parametrize("protocol", ["s2pl", "g2pl"])
    def test_completes_serializable_under_loss_and_crash(self, protocol):
        result = run_simulation(faulted_config(protocol), seed=3)
        assert result.serializability is not None and result.serializability.ok
        assert result.metrics.committed > 0
        assert result.server_stats["faults_dropped_loss"] > 0
        assert result.server_stats["retransmissions"] > 0

    def test_crash_without_restart_is_survivable(self):
        result = run_simulation(
            faulted_config("s2pl", faults="loss=0.03,crash=1@4000"), seed=2)
        assert result.serializability.ok
        assert result.metrics.committed > 0

    def test_config_parses_fault_strings(self):
        config = faulted_config("s2pl")
        assert isinstance(config.faults, FaultSpec)
        assert config.faults.message_loss == 0.05

    def test_crash_requires_capable_protocol(self):
        with pytest.raises(ValueError, match="crash"):
            run_simulation(faulted_config("c2pl", faults="crash=1@100"),
                           seed=1)

    def test_crash_on_unknown_client_rejected(self):
        with pytest.raises(ValueError, match="unknown client"):
            run_simulation(faulted_config("s2pl", faults="crash=9@100"),
                           seed=1)

    def test_same_seed_reruns_are_bit_identical(self):
        first = run_simulation(faulted_config("g2pl"), seed=5)
        second = run_simulation(faulted_config("g2pl"), seed=5)
        assert first.metrics.mean_response_time \
            == second.metrics.mean_response_time
        assert first.duration == second.duration
        assert first.messages_sent == second.messages_sent
        assert first.server_stats == second.server_stats

    def test_faulted_sweep_bit_identical_across_jobs(self):
        config = SimulationConfig(
            protocol="g2pl", n_clients=3, n_items=5, total_transactions=30,
            warmup_transactions=5, record_history=True,
            faults="loss=0.05,dup=0.02,jitter=10,crash=2@3000:8000")
        serial = run_replications(config, replications=2, jobs=1)
        fanned = run_replications(config, replications=2, jobs=2)
        for a, b in zip(serial.runs, fanned.runs):
            assert a.metrics.mean_response_time \
                == b.metrics.mean_response_time
            assert a.metrics.abort_percentage == b.metrics.abort_percentage
            assert a.duration == b.duration
            assert a.messages_sent == b.messages_sent
            assert a.server_stats == b.server_stats

    def test_g2pl_stranded_chain_recovers(self, monkeypatch):
        # Regression: a chain whose only member died after handing the item
        # off left the item stranded forever (the watchdog kept re-arming on
        # an empty pending set) and the run livelocked. Repair now recovers
        # the item from the store. Run with a step cap so a regression fails
        # fast instead of hanging the suite.
        def capped(self, event):
            fired = []
            event.add_callback(fired.append)
            steps = 0
            while not fired and self.step():
                steps += 1
                if steps > 3_000_000:
                    raise AssertionError("livelock: step cap exceeded")
            if not fired:
                raise SimulationError(
                    "simulation ran out of events before the awaited "
                    "event fired")
            return event._value

        monkeypatch.setattr(Simulator, "_run_until_event", capped)
        config = SimulationConfig(
            protocol="g2pl", n_clients=6, n_items=8, total_transactions=80,
            warmup_transactions=10, record_history=True,
            faults="loss=0.03,dup=0.01,jitter=25,crash=2@8000:20000")
        result = run_simulation(config, seed=1)
        assert result.serializability.ok
        assert result.metrics.committed > 0

    def test_cli_run_accepts_faults(self, capsys):
        from repro.cli import main

        assert main(["run", "--protocol", "s2pl", "--clients", "3",
                     "--items", "5", "--transactions", "20", "--warmup", "2",
                     "--faults", "loss=0.1,jitter=20"]) == 0
        out = capsys.readouterr().out
        assert "faults_dropped_loss" in out
        assert "retransmissions" in out
