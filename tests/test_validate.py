"""Unit tests for the history recorder and the serializability checker."""

import pytest

from repro.locking.modes import LockMode
from repro.validate.history import HistoryRecorder
from repro.validate.serializability import build_conflict_graph, check_history

R, W = LockMode.READ, LockMode.WRITE


def history(*events, committed=(), aborted=()):
    """events: (txn, item, mode, version) tuples in time order."""
    h = HistoryRecorder()
    for time, (txn, item, mode, version) in enumerate(events):
        h.record_access(txn, item, mode, version, float(time))
    for txn in committed:
        h.record_commit(txn)
    for txn in aborted:
        h.record_abort(txn)
    return h


def test_empty_history_is_serializable():
    report = check_history(HistoryRecorder())
    assert report.ok
    assert report.n_txns == 0


def test_serial_writes_are_serializable():
    h = history(("a", 0, W, 1), ("b", 0, W, 2), committed=("a", "b"))
    report = check_history(h)
    assert report.ok
    assert report.n_edges == 1  # ww: a -> b


def test_write_read_edge():
    h = history(("a", 0, W, 1), ("b", 0, R, 1), committed=("a", "b"))
    edges, anomalies = build_conflict_graph(h)
    assert not anomalies
    assert edges == {"a": {"b"}}


def test_read_write_edge():
    h = history(("a", 0, R, 0), ("b", 0, W, 1), committed=("a", "b"))
    edges, _ = build_conflict_graph(h)
    assert edges == {"a": {"b"}}


def test_classic_nonserializable_cycle_detected():
    # a reads 0 before b writes it; b reads 1 before... a writes 1 after b
    # read it: a -> b (rw on item 0), b -> a (rw on item 1).
    h = history(
        ("a", 0, R, 0), ("b", 1, R, 0),
        ("b", 0, W, 1), ("a", 1, W, 1),
        committed=("a", "b"))
    report = check_history(h)
    assert not report.serializable
    assert set(report.cycle) == {"a", "b"}


def test_aborted_transactions_ignored():
    h = history(
        ("a", 0, R, 0), ("b", 1, R, 0),
        ("b", 0, W, 1), ("a", 1, W, 1),
        committed=("a",), aborted=("b",))
    assert check_history(h).ok


def test_version_gap_is_an_anomaly():
    h = history(("a", 0, W, 1), ("b", 0, W, 3), committed=("a", "b"))
    report = check_history(h)
    assert not report.ok
    assert any("gaps" in a for a in report.anomalies)


def test_duplicate_version_is_an_anomaly():
    h = history(("a", 0, W, 1), ("b", 0, W, 1), committed=("a", "b"))
    report = check_history(h)
    assert any("written by both" in a for a in report.anomalies)


def test_read_of_unwritten_version_is_an_anomaly():
    h = history(("a", 0, R, 7), committed=("a",))
    report = check_history(h)
    assert any("read version" in a for a in report.anomalies)


def test_own_write_read_does_not_self_edge():
    h = history(("a", 0, W, 1), ("a", 0, R, 1), committed=("a",))
    edges, anomalies = build_conflict_graph(h)
    assert not anomalies
    assert edges == {}


def test_commit_after_abort_rejected():
    h = HistoryRecorder()
    h.record_abort("t")
    with pytest.raises(ValueError):
        h.record_commit("t")
    h2 = HistoryRecorder()
    h2.record_commit("u")
    with pytest.raises(ValueError):
        h2.record_abort("u")


def test_disabled_recorder_records_nothing():
    h = HistoryRecorder(enabled=False)
    h.record_access("t", 0, W, 1, 0.0)
    h.record_commit("t")
    assert len(h) == 0
    assert not h.committed


def test_reads_writes_filters():
    h = history(("a", 0, R, 0), ("a", 1, W, 1), ("b", 0, R, 0),
                committed=("a",), aborted=("b",))
    assert len(h.reads()) == 1
    assert len(h.writes()) == 1
    assert len(h.reads(committed_only=False)) == 2


def test_long_chain_serializable():
    events = []
    for i in range(50):
        events.append((f"t{i}", 0, W, i + 1))
    h = history(*events, committed=[f"t{i}" for i in range(50)])
    report = check_history(h)
    assert report.ok
    assert report.n_edges == 49


def test_report_str():
    good = check_history(history(("a", 0, W, 1), committed=("a",)))
    assert "serializable" in str(good)
    bad = check_history(history(("a", 0, R, 9), committed=("a",)))
    assert "NOT OK" in str(bad)
