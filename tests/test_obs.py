"""Tests for the observability stack: round accounting, tracing,
schema validation, exporters, and probes."""

import json

import pytest

from repro.analysis.tables import render_rounds_table
from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.obs.probes import ProbeSampler
from repro.obs.rounds import (
    contended_round_profile,
    expected_rounds,
    round_table,
)
from repro.obs.schema import validate_events, validate_trace
from repro.obs.export import (
    write_chrome_trace,
    write_jsonl,
    write_probes_csv,
)
from repro.obs.summary import TraceSummary
from repro.sim.engine import Simulator


def traced_config(protocol, **overrides):
    base = dict(protocol=protocol, n_clients=6, n_items=10,
                total_transactions=100, warmup_transactions=10,
                record_history=False, trace=True, probe_interval=200.0)
    base.update(overrides)
    return SimulationConfig(**base)


class TestRoundAccounting:
    """The paper's arithmetic: s-2PL costs 3m sequential message rounds
    to drain m contenders on one item; g-2PL costs 2m+1."""

    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_s2pl_three_m(self, m):
        profile = contended_round_profile("s2pl", m)
        assert profile.rounds_total == 3 * m
        assert profile.matches_expectation
        assert profile.rounds_by_kind == {
            "request": m, "grant": m, "release": m}

    @pytest.mark.parametrize("m", [2, 4, 8])
    def test_g2pl_two_m_plus_one(self, m):
        profile = contended_round_profile("g2pl", m)
        assert profile.rounds_total == 2 * m + 1
        assert profile.matches_expectation
        # m requests; one server grant to the chain head; m-1 merged
        # release+grant handoffs; one final return to the server.
        assert profile.rounds_by_kind == {
            "request": m, "grant": 1, "handoff": m - 1, "release": 1}

    def test_expected_rounds_closed_forms(self):
        assert expected_rounds("s2pl", 5) == 15
        assert expected_rounds("g2pl", 5) == 11
        assert expected_rounds("g2pl-basic", 3) == 7

    def test_mean_rounds_per_commit(self):
        profile = contended_round_profile("g2pl", 4)
        assert profile.mean_rounds_per_commit == pytest.approx(9 / 4)

    def test_round_table_renders(self):
        table = render_rounds_table(round_table(ms=(2,)))
        assert "s2pl" in table and "g2pl" in table
        assert "NO" not in table  # every row matches its expectation


class TestTracedRun:
    def test_trace_summary_agrees_with_metrics(self):
        result = run_simulation(traced_config("g2pl"))
        summary = result.trace.summary
        assert summary.committed == result.metrics.committed
        assert summary.aborted == result.metrics.aborted

    def test_traced_message_counts_match_network_accounting(self):
        # The tracer counts sends independently at a different layer;
        # both totals and the per-kind breakdown must agree exactly.
        for protocol in ("s2pl", "g2pl"):
            result = run_simulation(traced_config(protocol))
            summary = result.trace.summary
            assert summary.messages_sent == result.messages_sent
            per_type = {}
            for record in result.trace.events:
                if record[1] == "msg.send":
                    kind = record[2]["kind"]
                    per_type[kind] = per_type.get(kind, 0) + 1
            assert per_type == summary.msgs_by_kind

    def test_response_decomposition_sums_to_response(self):
        # lock_wait is the residual, so the components always add up.
        result = run_simulation(traced_config("s2pl"))
        for record in result.trace.txns:
            explained = (record["propagation"] + record["transmission"]
                         + record["slack"] + record["server_queue"]
                         + record["client_think"] + record["lock_wait"])
            assert explained == pytest.approx(record["response"])

    def test_txn_records_cover_every_finished_transaction(self):
        config = traced_config("g2pl")
        result = run_simulation(config)
        measured = [r for r in result.trace.txns if r["measured"]]
        assert len(measured) == (result.metrics.committed
                                 + result.metrics.aborted)

    def test_engine_stats_populated(self):
        result = run_simulation(traced_config("s2pl"))
        assert result.engine_stats["processed_events"] > 0
        assert result.engine_stats["peak_heap_depth"] > 0
        assert "events/sec" in result.engine_summary()

    def test_untraced_run_has_no_trace(self):
        config = SimulationConfig(protocol="s2pl", n_clients=4,
                                  total_transactions=40,
                                  warmup_transactions=4,
                                  record_history=False)
        result = run_simulation(config)
        assert result.trace is None
        assert result.engine_stats["processed_events"] > 0


class TestTracerClose:
    """Regression: transactions in flight when the run ends used to
    linger in the tracer's live table — exporters dropped them and
    ``partial_records`` misreported them as foreign charges."""

    def test_run_ending_mid_transaction_emits_unfinished_records(self):
        # Six clients, so several transactions are always in flight when
        # the 100th finisher closes the run.
        result = run_simulation(traced_config("g2pl"))
        unfinished = [r for r in result.trace.txns if r.get("unfinished")]
        assert unfinished
        for record in unfinished:
            assert record["measured"] is False
            assert record["committed"] is False
            assert record["abort_reason"] == "unfinished"
            assert record["response"] >= 0.0
        assert validate_trace(result.trace) == []
        # Summaries aggregate finished work only; the unfinished tail
        # must not leak into them.
        summary = result.trace.summary
        assert summary.committed == result.metrics.committed
        assert summary.aborted == result.metrics.aborted

    def test_close_drains_live_accumulators(self):
        from repro.locking.modes import LockMode
        from repro.obs.tracer import Tracer
        from repro.protocols.transaction import Transaction
        from repro.workload.spec import Operation, TransactionSpec

        sim = Simulator()
        tracer = Tracer(sim)
        spec = TransactionSpec(operations=(
            Operation(0, LockMode.READ, 1.0),))
        tracer.txn_begin(Transaction(1, 1, spec, birth=0.0))
        assert len(tracer.partial_records()) == 1
        records = tracer.close()
        assert [r["txn"] for r in records] == [1]
        assert records[0]["unfinished"] is True
        assert tracer.partial_records() == []
        assert tracer.close() == records  # idempotent once drained


class TestSchema:
    @pytest.mark.parametrize("protocol", ["s2pl", "g2pl"])
    def test_faulted_traced_run_validates(self, protocol):
        config = traced_config(
            protocol, faults="loss=0.05,dup=0.01,jitter=25,crash=2@6000:12000")
        result = run_simulation(config)
        assert validate_trace(result.trace) == []

    def test_unknown_kind_caught(self):
        errors = validate_events([(0.0, "bogus.kind", {})])
        assert any("unknown kind" in e for e in errors)

    def test_missing_field_caught(self):
        errors = validate_events([(0.0, "lock.grant", {"txn": 1})])
        assert any("missing fields" in e for e in errors)

    def test_time_disorder_caught(self):
        events = [(5.0, "txn.begin", {"txn": 1, "client": 1}),
                  (3.0, "txn.begin", {"txn": 2, "client": 2})]
        errors = validate_events(events)
        assert any("time-ordered" in e for e in errors)

    def test_error_cap(self):
        events = [(0.0, "bogus", {})] * 50
        errors = validate_events(events, max_errors=5)
        assert errors[-1].startswith("...")
        assert len(errors) == 6


class TestExporters:
    @pytest.fixture(scope="class")
    def traced(self):
        config = traced_config("g2pl", faults="loss=0.03,jitter=10")
        return config, run_simulation(config)

    def test_jsonl_round_trips(self, traced, tmp_path):
        config, result = traced
        path = write_jsonl(tmp_path / "t.jsonl", result.trace,
                           config=config, seed=result.seed)
        rows = [json.loads(line) for line in open(path, encoding="utf-8")]
        assert rows[0]["type"] == "header"
        assert rows[0]["seed"] == result.seed
        assert (rows[0]["summary"]["committed"]
                == result.trace.summary.committed)
        by_type = {}
        for row in rows[1:]:
            by_type[row["type"]] = by_type.get(row["type"], 0) + 1
        assert by_type["event"] == len(result.trace.events)
        assert by_type["txn"] == len(result.trace.txns)
        assert by_type["probe"] == len(result.trace.probes)

    def test_chrome_trace_loads(self, traced, tmp_path):
        _, result = traced
        path = write_chrome_trace(tmp_path / "t.chrome.json", result.trace)
        doc = json.load(open(path, encoding="utf-8"))
        events = doc["traceEvents"]
        spans = [e for e in events if e.get("ph") == "X"
                 and e.get("cat") == "txn"]
        assert len(spans) == len(result.trace.txns)
        flights = [e for e in events if e.get("ph") == "X"
                   and e.get("cat") == "msg"]
        assert len(flights) == result.trace.summary.messages_sent
        counters = [e for e in events if e.get("ph") == "C"]
        assert len(counters) == len(result.trace.probes)
        for event in events:
            assert event.get("dur", 0.0) >= 0.0

    def test_probes_csv(self, traced, tmp_path):
        _, result = traced
        path = write_probes_csv(tmp_path / "t.csv", result.trace)
        lines = open(path, encoding="utf-8").read().splitlines()
        assert lines[0] == "time,series,value"
        assert len(lines) == 1 + len(result.trace.probes)


class TestProbes:
    def test_samples_on_interval(self):
        result = run_simulation(traced_config("s2pl", probe_interval=500.0))
        times = sorted({t for t, _, _ in result.trace.probes})
        assert len(times) > 2
        for time in times:
            assert time % 500.0 == pytest.approx(0.0)

    def test_standard_gauges_present(self):
        result = run_simulation(traced_config("g2pl"))
        names = {name for _, name, _ in result.trace.probes}
        assert {"heap_pending", "in_flight_msgs", "lock_queue_depth",
                "fl_occupancy"} <= names

    def test_probe_summary_aggregates(self):
        result = run_simulation(traced_config("s2pl"))
        series = result.trace.summary.probe_series
        cell = series["heap_pending"]
        samples = [v for _, n, v in result.trace.probes
                   if n == "heap_pending"]
        assert cell["n"] == len(samples)
        assert cell["sum"] == pytest.approx(sum(samples))
        assert cell["max"] == max(samples)

    def test_bad_interval_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            ProbeSampler(sim, None, 0.0, [])
        with pytest.raises(ValueError):
            SimulationConfig(probe_interval=-1.0)


class TestSummaryMerge:
    def test_merge_of_nothing_is_none(self):
        assert TraceSummary.merge([]) is None
        assert TraceSummary.merge([None, None]) is None

    def test_merge_sums_and_maxima(self):
        a = TraceSummary(committed=3, rounds_total=9,
                         rounds_by_kind={"request": 3, "grant": 3},
                         messages_sent=10, response_sum=30.0,
                         peak_heap_depth=7, processed_events=100)
        b = TraceSummary(committed=2, rounds_total=5,
                         rounds_by_kind={"request": 2, "handoff": 1},
                         messages_sent=4, response_sum=12.0,
                         peak_heap_depth=11, processed_events=50)
        merged = TraceSummary.merge([a, None, b])
        assert merged.runs == 2
        assert merged.committed == 5
        assert merged.rounds_total == 14
        assert merged.rounds_by_kind == {"request": 5, "grant": 3,
                                         "handoff": 1}
        assert merged.messages_sent == 14
        assert merged.peak_heap_depth == 11
        assert merged.processed_events == 150
        assert merged.mean_rounds_per_commit == pytest.approx(14 / 5)
        assert merged.mean_response_time == pytest.approx(42.0 / 5)

    def test_describe_renders(self):
        summary = TraceSummary(committed=2, rounds_total=6,
                               response_sum=20.0, lock_wait_sum=10.0)
        text = summary.describe()
        assert "mean sequential rounds per commit: 3.00" in text
        assert "lock_wait 50.0%" in text
