"""Tests for the experiment drivers (at smoke scale)."""

from repro.core.config import Fidelity
from repro.core.experiments import (
    CLIENT_SWEEP,
    READ_PROBABILITY_SWEEP,
    clients_sweep_experiment,
    figure_aborts_vs_fl_length,
    figure_readonly_aborts_vs_latency,
    figure_response_vs_latency,
    figure_response_vs_read_probability,
    latency_sweep_experiment,
    table1_parameters,
    table2_environments,
)
from repro.network.presets import NetworkEnvironment


def test_sweep_parallel_bit_identical_to_serial():
    serial = latency_sweep_experiment(0.6, fidelity="smoke",
                                      latencies=(1.0, 250.0), jobs=1)
    parallel = latency_sweep_experiment(0.6, fidelity="smoke",
                                        latencies=(1.0, 250.0), jobs=2)
    for metric in ("response", "aborts"):
        assert set(serial[metric].series) == set(parallel[metric].series)
        for name in serial[metric].series:
            a = serial[metric].series[name]
            b = parallel[metric].series[name]
            assert a.xs == b.xs
            assert a.ys == b.ys
            assert a.half_widths == b.half_widths


def test_single_protocol_sweep_supports_jobs():
    serial = figure_aborts_vs_fl_length(fidelity="smoke", lengths=(1, 8),
                                        n_clients=20, jobs=1)
    parallel = figure_aborts_vs_fl_length(fidelity="smoke", lengths=(1, 8),
                                          n_clients=20, jobs=2)
    assert serial.series["g2pl"].ys == parallel.series["g2pl"].ys
    assert (serial.series["g2pl"].half_widths
            == parallel.series["g2pl"].half_widths)


def test_latency_sweep_produces_both_metrics():
    results = latency_sweep_experiment(0.6, fidelity="smoke",
                                       latencies=(1.0, 250.0))
    assert set(results) == {"response", "aborts"}
    response = results["response"]
    assert set(response.series) == {"s2pl", "g2pl"}
    assert response.series["s2pl"].xs == [1.0, 250.0]
    assert all(y > 0 for y in response.series["s2pl"].ys)
    aborts = results["aborts"]
    assert all(0 <= y <= 100 for y in aborts.series["g2pl"].ys)
    assert response.experiment_id == "figure3"
    assert aborts.experiment_id == "figure8"


def test_figure_ids_match_read_probability():
    result = figure_response_vs_latency(0.0, fidelity="smoke",
                                        latencies=(1.0,))
    assert result.experiment_id == "figure2"
    result = figure_response_vs_latency(1.0, fidelity="smoke",
                                        latencies=(1.0,))
    assert result.experiment_id == "figure4"


def test_read_probability_sweep():
    result = figure_response_vs_read_probability(
        NetworkEnvironment.SS_LAN, fidelity="smoke",
        read_probabilities=(0.0, 1.0))
    assert result.experiment_id == "figure5"
    assert result.series["s2pl"].xs == [0.0, 1.0]
    # read-only is far cheaper than write-only under s-2PL
    series = result.series["s2pl"]
    assert series.y_at(1.0) < series.y_at(0.0)


def test_readonly_aborts_experiment():
    result = figure_readonly_aborts_vs_latency(
        fidelity="smoke", latencies=(1, 5), n_clients=4)
    assert set(result.series) == {"g2pl", "g2pl-ro"}
    assert max(result.series["g2pl-ro"].ys) == 0.0


def test_fl_length_experiment():
    result = figure_aborts_vs_fl_length(fidelity="smoke", lengths=(1, 8),
                                        n_clients=20)
    series = result.series["g2pl"]
    assert series.y_at(1) >= series.y_at(8)


def test_clients_sweep_ids():
    results = clients_sweep_experiment(0.25, fidelity="smoke",
                                       client_counts=(5, 10))
    assert results["response"].experiment_id == "figure12"
    assert results["aborts"].experiment_id == "figure13"
    results = clients_sweep_experiment(0.75, fidelity="smoke",
                                       client_counts=(5,))
    assert results["response"].experiment_id == "figure14"
    assert results["aborts"].experiment_id == "figure15"


def test_default_sweeps_match_paper_axes():
    assert READ_PROBABILITY_SWEEP[0] == 0.0
    assert READ_PROBABILITY_SWEEP[-1] == 1.0
    assert len(READ_PROBABILITY_SWEEP) == 11
    assert max(CLIENT_SWEEP) == 150


def test_fidelity_accepts_string_and_enum():
    a = figure_response_vs_latency(0.0, fidelity="smoke", latencies=(1.0,))
    b = figure_response_vs_latency(0.0, fidelity=Fidelity.SMOKE,
                                   latencies=(1.0,))
    assert a.series["s2pl"].ys == b.series["s2pl"].ys


def test_tables():
    t1 = dict(table1_parameters())
    assert t1["Number of hot data items"] == "25"
    t2 = table2_environments()
    assert len(t2) == 6
    assert t2[0][1] == "SS_LAN" and t2[-1][2] == 750.0
