"""End-to-end tests for the repro.adapt protocol family.

Three claims are pinned here:

1. **The controllers actually engage** — hybrid runs switch modes, the
   window controller holds, speculation extends chains, and each leaves
   its decision trail in the trace.
2. **Neutralised adaptation is byte-identical to static g-2PL** — with
   thresholds set so no controller ever acts, every adaptive variant
   reproduces the plain g-2PL trajectory exactly (fingerprints compared
   modulo the protocol name and the adapt counters themselves).  This is
   the golden-safety property the RNG-stream isolation exists for.
3. **Unsupported combinations fail loudly** — lp+hybrid, faults with
   speculation, adapt flags on static protocols, and sharded adaptive
   runs are configuration errors, not silent misbehaviour.
"""

import pytest

from repro.core.config import ADAPTIVE_PROTOCOLS, SimulationConfig
from repro.core.runner import run_simulation
from repro.perf.fingerprint import result_fingerprint

#: Counters added by AdaptiveG2PLServer.adapt_stats (and the window
#: ledger it exposes); stripped before identity comparisons because the
#: static baseline, by design, does not report them.
ADAPT_STAT_KEYS = (
    "window_enqueued", "window_frozen", "window_purged", "window_holds",
    "mode_switches", "windows_single", "windows_grouped",
    "spec_extensions", "spec_hits", "spec_misses",
)


def _config(**overrides):
    base = dict(protocol="g2pl", n_clients=6, n_items=8,
                read_probability=0.6, network_latency=100.0,
                total_transactions=120, warmup_transactions=20,
                record_history=False, seed=11)
    base.update(overrides)
    seed = base.pop("seed")
    return SimulationConfig(**base), seed


def _neutral_fingerprint(result):
    fp = result_fingerprint(result)
    fp.pop("protocol")
    for key in ADAPT_STAT_KEYS:
        fp["server_stats"].pop(key, None)
    return fp


# ---------------------------------------------------------------------------
# The controllers engage and trace their decisions
# ---------------------------------------------------------------------------

class TestControllersEngage:
    def test_hybrid_switches_modes_and_traces(self):
        config, seed = _config(protocol="hybrid", trace=True)
        result = run_simulation(config, seed=seed)
        stats = result.server_stats
        assert stats["mode_switches"] > 0
        assert stats["windows_single"] > 0
        switch_events = [fields for _, kind, fields in result.trace.events
                         if kind == "hybrid.switch"]
        assert len(switch_events) == stats["mode_switches"]
        for fields in switch_events:
            assert fields["mode"] in ("single", "grouped")
            assert fields["epoch"] >= 1
            assert 0.0 <= fields["score"] < 1.0

    def test_window_controller_holds_under_steady_load(self):
        config, seed = _config(protocol="g2pl-adaptive", n_clients=10,
                               n_items=5, max_ops=3, trace=True)
        result = run_simulation(config, seed=seed)
        stats = result.server_stats
        assert stats["window_holds"] > 0
        holds = [fields for _, kind, fields in result.trace.events
                 if kind == "window.hold"]
        assert len(holds) == stats["window_holds"]

    def test_speculation_extends_and_accounts_exactly(self):
        config, seed = _config(protocol="g2pl-spec", n_clients=4,
                               n_items=5, network_latency=400.0,
                               total_transactions=100,
                               warmup_transactions=15, trace=True, seed=7)
        result = run_simulation(config, seed=seed)
        stats = result.server_stats
        assert stats["spec_extensions"] > 0
        # every extension resolves as a hit or a home-landing repair
        # (any still pending when the run closes are neither)
        assert stats["spec_hits"] + stats["spec_misses"] \
            <= stats["spec_extensions"]
        assert stats["spec_hits"] > 0
        extends = [fields for _, kind, fields in result.trace.events
                   if kind == "spec.extend"]
        assert len(extends) == stats["spec_extensions"]

    def test_window_ledger_balances_in_all_variants(self):
        """enqueued == frozen + purged + still-pending; the runner's
        assert_invariants enforces this at close, so a finished run with
        the counters present is the proof."""
        for protocol in sorted(ADAPTIVE_PROTOCOLS):
            config, seed = _config(protocol=protocol)
            result = run_simulation(config, seed=seed)
            stats = result.server_stats
            assert stats["window_enqueued"] >= stats["window_frozen"]
            metrics = result.metrics
            assert metrics.finished + metrics.warmup_discarded == 120


# ---------------------------------------------------------------------------
# Satellite: adaptive probe gauges appear exactly when adaptive
# ---------------------------------------------------------------------------

class TestProbeGauges:
    ADAPT_GAUGES = {"window_occupancy", "adapt_hold_pending",
                    "hybrid_single_items", "spec_outstanding"}

    def test_adaptive_traced_run_exposes_window_occupancy(self):
        config, seed = _config(protocol="hybrid", trace=True,
                               probe_interval=150.0)
        result = run_simulation(config, seed=seed)
        names = {name for _, name, _ in result.trace.probes}
        assert self.ADAPT_GAUGES <= names

    def test_static_traced_run_does_not(self):
        """Regression guard: the gauges are gated on the adaptive server
        type, so static-protocol probe traces (and their goldens) carry
        no adaptive series."""
        config, seed = _config(protocol="g2pl", trace=True,
                               probe_interval=150.0)
        result = run_simulation(config, seed=seed)
        names = {name for _, name, _ in result.trace.probes}
        assert not (self.ADAPT_GAUGES & names)


# ---------------------------------------------------------------------------
# Neutralised adaptation replays static g-2PL byte for byte
# ---------------------------------------------------------------------------

class TestStaticIdentity:
    NEUTRAL = {
        # never crosses low threshold: stays grouped forever
        "hybrid": dict(hybrid_low=0.0),
        # max_hold=0 clamps the hold law to zero: never holds, never
        # draws from the adapt RNG stream
        "g2pl-adaptive": dict(window_max=0.0),
        # quiescence bound far beyond the run horizon: never speculates
        "g2pl-spec": dict(spec_margin=1e9),
    }

    @pytest.mark.parametrize("protocol", sorted(ADAPTIVE_PROTOCOLS))
    def test_neutralised_variant_matches_g2pl_exactly(self, protocol):
        base_config, seed = _config()
        baseline = _neutral_fingerprint(run_simulation(base_config,
                                                       seed=seed))
        config, seed = _config(protocol=protocol, **self.NEUTRAL[protocol])
        adaptive = _neutral_fingerprint(run_simulation(config, seed=seed))
        assert adaptive == baseline

    def test_engaged_hybrid_diverges(self):
        """Sanity check on the comparison itself: with live thresholds
        the trajectory must differ, or the identity test proves
        nothing."""
        base_config, seed = _config()
        baseline = _neutral_fingerprint(run_simulation(base_config,
                                                       seed=seed))
        config, seed = _config(protocol="hybrid")
        engaged = _neutral_fingerprint(run_simulation(config, seed=seed))
        assert engaged != baseline


# ---------------------------------------------------------------------------
# Satellite: unsupported combinations are loud configuration errors
# ---------------------------------------------------------------------------

class TestRejectedCombinations:
    def test_lp_with_hybrid_is_rejected(self):
        with pytest.raises(ValueError, match="hybrid mode switching"):
            SimulationConfig(protocol="hybrid", lp=True,
                             n_shards=2, termination="quota")

    def test_faults_with_speculation_rejected_at_config(self):
        with pytest.raises(ValueError, match="speculat"):
            SimulationConfig(protocol="g2pl-spec", speculate=True,
                             faults="loss=0.05")

    def test_faults_with_speculation_rejected_at_run(self):
        # without the explicit flag the registry applies speculate=True
        # when it instantiates the protocol; the error must still fire
        config = SimulationConfig(protocol="g2pl-spec", n_clients=3,
                                  n_items=4, total_transactions=10,
                                  warmup_transactions=0,
                                  faults="loss=0.05")
        with pytest.raises(ValueError, match="speculat"):
            run_simulation(config, seed=1)

    def test_crash_faults_with_speculation_rejected(self):
        config = SimulationConfig(protocol="g2pl-spec", n_clients=3,
                                  n_items=4, total_transactions=10,
                                  warmup_transactions=0,
                                  faults="crash=2@100:200")
        with pytest.raises(ValueError):
            run_simulation(config, seed=1)

    def test_adapt_flags_require_adaptive_protocol(self):
        for flag in ("adapt_window", "hybrid", "speculate"):
            with pytest.raises(ValueError, match="adaptive protocol"):
                SimulationConfig(protocol="g2pl", **{flag: True})

    def test_adaptive_protocols_are_single_server(self):
        with pytest.raises(ValueError, match="single-server"):
            SimulationConfig(protocol="hybrid", n_shards=2)

    def test_describe_mentions_knobs_only_when_adaptive(self):
        static, _ = _config()
        assert "adapt=" not in static.describe()
        hybrid, _ = _config(protocol="hybrid", hybrid=True)
        assert "adapt=hybrid(0.3..0.5)" in hybrid.describe()
