"""Unit tests for the strictness checker."""

from repro.locking.modes import LockMode
from repro.validate.history import HistoryRecorder
from repro.validate.strictness import check_strictness

R, W = LockMode.READ, LockMode.WRITE


def history(accesses, commits):
    """accesses: (txn, item, mode, version, time); commits: txn -> time."""
    h = HistoryRecorder()
    for txn, item, mode, version, time in accesses:
        h.record_access(txn, item, mode, version, time)
    for txn, time in commits.items():
        h.record_commit(txn, time=time)
    return h


def test_empty_history_strict():
    assert check_strictness(HistoryRecorder()).ok


def test_read_after_commit_is_strict():
    h = history([("w", 0, W, 1, 5.0), ("r", 0, R, 1, 20.0)],
                {"w": 10.0, "r": 30.0})
    report = check_strictness(h)
    assert report.ok
    assert report.n_reads_checked == 1


def test_dirty_read_detected():
    h = history([("w", 0, W, 1, 5.0), ("r", 0, R, 1, 7.0)],
                {"w": 10.0, "r": 30.0})
    report = check_strictness(h)
    assert not report.ok
    assert "before its writer" in report.violations[0]


def test_overwrite_of_uncommitted_detected():
    h = history([("a", 0, W, 1, 5.0), ("b", 0, W, 2, 7.0)],
                {"a": 10.0, "b": 30.0})
    report = check_strictness(h)
    assert not report.ok
    assert "before the previous writer" in report.violations[0]


def test_overwrite_after_commit_is_strict():
    h = history([("a", 0, W, 1, 5.0), ("b", 0, W, 2, 12.0)],
                {"a": 10.0, "b": 30.0})
    report = check_strictness(h)
    assert report.ok
    assert report.n_writes_checked == 1


def test_same_instant_commit_and_read_allowed():
    h = history([("w", 0, W, 1, 5.0), ("r", 0, R, 1, 10.0)],
                {"w": 10.0, "r": 30.0})
    assert check_strictness(h).ok


def test_own_accesses_skipped():
    h = history([("a", 0, W, 1, 5.0), ("a", 0, R, 1, 6.0)], {"a": 10.0})
    report = check_strictness(h)
    assert report.ok
    assert report.n_reads_checked == 0


def test_aborted_writer_ignored():
    h = HistoryRecorder()
    h.record_access("loser", 0, W, 1, 5.0)
    h.record_abort("loser")
    h.record_access("r", 0, R, 0, 7.0)
    h.record_commit("r", time=9.0)
    assert check_strictness(h).ok


def test_missing_commit_time_skipped():
    h = HistoryRecorder()
    h.record_access("w", 0, W, 1, 5.0)
    h.record_commit("w")  # no time recorded
    h.record_access("r", 0, R, 1, 6.0)
    h.record_commit("r", time=9.0)
    report = check_strictness(h)
    assert report.ok
    assert report.n_reads_checked == 0


def test_str_renders():
    assert "strict" in str(check_strictness(HistoryRecorder()))
