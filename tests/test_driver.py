"""Unit tests for the client driver and run control."""

import pytest

from repro.locking.modes import LockMode
from repro.sim import RandomStreams, Simulator
from repro.stats.collector import MetricsCollector
from repro.workload.driver import ClientDriver, RunControl
from repro.workload.generator import WorkloadGenerator, WorkloadParams


class InstantClient:
    """A protocol client stub: every transaction commits after one unit."""

    def __init__(self, sim):
        self.sim = sim
        self.executed = []

    def execute(self, txn):
        self.executed.append(txn.txn_id)
        yield self.sim.timeout(1.0)
        txn.commit()
        from repro.protocols.transaction import TxnOutcome

        return TxnOutcome(txn_id=txn.txn_id, client_id=txn.client_id,
                          committed=True, start_time=self.sim.now - 1.0,
                          end_time=self.sim.now, n_ops=txn.spec.n_ops,
                          n_writes=txn.spec.n_writes)


def build(sim, target=10, mpl=1, n_clients=2):
    control = RunControl(sim, target)
    collector = MetricsCollector(0)
    generator = WorkloadGenerator(
        WorkloadParams(n_items=5, min_ops=1, max_ops=2), RandomStreams(1))
    clients = {}
    for client_id in range(1, n_clients + 1):
        client = InstantClient(sim)
        clients[client_id] = client
        ClientDriver(sim, client_id, client, generator, control, collector,
                     mpl=mpl).start()
    return control, collector, clients


def test_run_stops_exactly_at_target():
    sim = Simulator()
    control, collector, _ = build(sim, target=10)
    sim.run(until=control.done_event)
    assert control.finished == 10
    assert collector.metrics.finished == 10


def test_txn_ids_unique_and_increasing():
    sim = Simulator()
    control, _, clients = build(sim, target=12)
    sim.run(until=control.done_event)
    all_ids = [txn_id for c in clients.values() for txn_id in c.executed]
    assert len(all_ids) == len(set(all_ids))


def test_mpl_spawns_streams():
    sim = Simulator()
    control = RunControl(sim, 5)
    collector = MetricsCollector(0)
    generator = WorkloadGenerator(WorkloadParams(), RandomStreams(1))
    client = InstantClient(sim)
    processes = ClientDriver(sim, 1, client, generator, control, collector,
                             mpl=3).start()
    assert len(processes) == 3
    sim.run(until=control.done_event)
    assert control.finished == 5


def test_invalid_mpl():
    sim = Simulator()
    with pytest.raises(ValueError):
        ClientDriver(sim, 1, InstantClient(sim), None, RunControl(sim, 1),
                     MetricsCollector(0), mpl=0)


def test_run_control_validation():
    sim = Simulator()
    with pytest.raises(ValueError):
        RunControl(sim, 0)


def test_done_event_fires_once():
    sim = Simulator()
    control = RunControl(sim, 2)
    control.transaction_finished()
    control.transaction_finished()
    control.transaction_finished()  # past the target: must not re-trigger
    assert control.done
    sim.run()
    assert control.done_event.value == 2


class CrashableClient(InstantClient):
    """InstantClient that survives a crash interrupt mid-transaction."""

    def execute(self, txn):
        from repro.protocols.transaction import TxnOutcome
        from repro.sim.errors import Interrupt

        self.executed.append(txn.txn_id)
        start = self.sim.now
        try:
            yield self.sim.timeout(1.0)
        except Interrupt:
            txn.abort("client-crash")
            return TxnOutcome(txn_id=txn.txn_id, client_id=txn.client_id,
                              committed=False, start_time=start,
                              end_time=self.sim.now, n_ops=txn.spec.n_ops,
                              n_writes=txn.spec.n_writes,
                              abort_reason="client-crash")
        txn.commit()
        return TxnOutcome(txn_id=txn.txn_id, client_id=txn.client_id,
                          committed=True, start_time=start,
                          end_time=self.sim.now, n_ops=txn.spec.n_ops,
                          n_writes=txn.spec.n_writes)


def test_repeated_crash_keeps_restart_event():
    # Regression: a second crash() on a down site used to replace the
    # restart event, orphaning loops parked on the old one — restart()
    # would trigger only the replacement and the site slept forever.
    sim = Simulator()
    control = RunControl(sim, 4)
    collector = MetricsCollector(0)
    generator = WorkloadGenerator(WorkloadParams(), RandomStreams(1))
    driver = ClientDriver(sim, 1, CrashableClient(sim), generator, control,
                          collector)
    driver.crash()
    event = driver._restart_event
    driver.crash()  # idempotent: the live event must be kept
    assert driver._restart_event is event
    driver.restart()
    assert event.triggered


def test_double_crash_then_restart_resumes_the_loop():
    sim = Simulator()
    control = RunControl(sim, 8)
    collector = MetricsCollector(0)
    generator = WorkloadGenerator(WorkloadParams(), RandomStreams(1))
    client = CrashableClient(sim)
    driver = ClientDriver(sim, 1, client, generator, control, collector)
    driver.start()
    sim.call_later(15.0, driver.crash)
    sim.call_later(16.0, driver.crash)  # repeated crash on a down site
    sim.call_later(40.0, driver.restart)
    sim.run(until=control.done_event)
    assert control.finished == 8
    # The outage window is dead time: nothing starts between the crash
    # and the restart, and the run completes only after the restart.
    assert sim.now > 40.0


def test_clients_stagger_their_first_transaction():
    sim = Simulator()
    control, _, clients = build(sim, target=4, n_clients=2)
    starts = {}

    sim.run(until=control.done_event)
    # Different clients drew different staggers: their first transactions
    # were not issued in lockstep (probabilistic but deterministic per
    # seed; seed 1 gives distinct values).
    generator = WorkloadGenerator(WorkloadParams(), RandomStreams(1))
    assert generator.initial_stagger(1) != generator.initial_stagger(2)
