"""Sharded deployment: shard-map / geo-topology units, cross-shard 2PC
end-to-end runs, cooperative termination, and regression tests for the
latent single-server assumptions the sharding work flushed out."""

import pytest

from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.network.topology import RegionTopology
from repro.network.transport import Network
from repro.obs.probes import default_sources
from repro.obs.rounds import expected_txn_rounds
from repro.protocols.sharded import (
    ShardedS2PLServer,
    _PreparedTxn,
    make_sharded_protocol,
)
from repro.protocols.sharding import (
    ShardMap,
    SharedPrecedence,
    partition_items,
    shard_site_id,
)
from repro.sim.engine import Simulator
from repro.storage.store import VersionedStore
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder


# ---------------------------------------------------------------------------
# Shard map and placement units
# ---------------------------------------------------------------------------

def test_partition_items_covers_all_items_near_equally():
    parts = partition_items(10, 3)
    assert len(parts) == 3
    assert sorted(item for part in parts for item in part) == list(range(10))
    sizes = [len(part) for part in parts]
    assert max(sizes) - min(sizes) <= 1
    assert sizes == [4, 3, 3]  # the remainder lands on the first shards


def test_partition_items_rejects_bad_shapes():
    with pytest.raises(ValueError):
        partition_items(10, 0)
    with pytest.raises(ValueError):
        partition_items(3, 4)


def test_shard_site_ids_never_collide_with_clients():
    assert shard_site_id(0) == 0
    assert shard_site_id(1) == -1
    assert shard_site_id(7) == -7
    # client site ids are 1..n, so the spaces are disjoint
    assert not set(shard_site_id(s) for s in range(8)) & set(range(1, 100))


def test_shard_map_routes_every_item_to_its_partition():
    shard_map = ShardMap(3, 10)
    parts = partition_items(10, 3)
    for shard, items in enumerate(parts):
        for item_id in items:
            assert shard_map.shard_of(item_id) == shard
            assert shard_map.server_of(item_id) == shard_site_id(shard)
        assert shard_map.items_of(shard) == items
    assert shard_map.server_ids == (0, -1, -2)


def test_shard_map_explicit_assignments():
    assignments = {0: 1, 1: 0, 2: 1, 3: 0}
    shard_map = ShardMap(2, 4, assignments)
    assert shard_map.shard_of(0) == 1
    assert shard_map.items_of(0) == (1, 3)
    assert shard_map.items_of(1) == (0, 2)
    with pytest.raises(ValueError):
        ShardMap(2, 4, {0: 0, 1: 1})           # misses items 2, 3
    with pytest.raises(ValueError):
        ShardMap(2, 4, {0: 0, 1: 1, 2: 0, 3: 5})  # unknown shard


def test_region_assignments_colocate_clients_with_home_shards():
    shard_map = ShardMap(4, 8)
    region_of = shard_map.region_assignments(n_clients=6, n_regions=2)
    for shard in range(4):
        assert region_of[shard_site_id(shard)] == shard % 2
    for client_id in range(1, 7):
        # The workload generator homes client c on shard (c-1) % k; the
        # placement puts both in the same region.
        home = (client_id - 1) % 4
        assert region_of[client_id] == region_of[shard_site_id(home)]


def test_region_topology_two_latency_tiers():
    topo = RegionTopology({0: 0, -1: 1, 1: 0, 2: 1},
                          intra_latency=1.0, inter_latency=250.0)
    assert topo.latency(1, 0) == 1.0      # client 1 with shard 0
    assert topo.latency(1, -1) == 250.0   # client 1 to the remote shard
    assert topo.latency(2, -1) == 1.0
    assert topo.latency(0, 0) == 0.0
    assert topo.latency(99, 0) == 250.0   # unplaced site: always inter


def test_shared_precedence_refcounts_node_removal():
    graph = SharedPrecedence()
    graph.acquire(1)
    graph.acquire(1)   # second shard registers the same transaction
    assert graph.refcount(1) == 2
    graph.remove_node(1)
    assert graph.refcount(1) == 1
    assert 1 in graph
    graph.remove_node(1)
    assert graph.refcount(1) == 0
    assert 1 not in graph


# ---------------------------------------------------------------------------
# Closed-form round arithmetic
# ---------------------------------------------------------------------------

def test_expected_txn_rounds_closed_forms():
    # s-2PL: 2m+1 single home, 2m+3 classic cross-shard, 2m+1 piggybacked
    assert expected_txn_rounds("s2pl", 4) == 9
    assert expected_txn_rounds("s2pl", 4, n_homes=3) == 11
    assert expected_txn_rounds("s2pl", 4, n_homes=3,
                               commit_protocol="2pc-opt") == 9
    # g-2PL uncontended: request + ship + return per op, commit free
    assert expected_txn_rounds("g2pl", 4) == 12
    assert expected_txn_rounds("g2pl", 4, n_homes=3) == 12
    with pytest.raises(ValueError):
        expected_txn_rounds("s2pl", 0)
    with pytest.raises(ValueError):
        expected_txn_rounds("s2pl", 2, n_homes=0)


# ---------------------------------------------------------------------------
# Config validation
# ---------------------------------------------------------------------------

def test_config_rejects_more_shards_than_items():
    with pytest.raises(ValueError):
        SimulationConfig(n_shards=10, n_items=5)


def test_config_rejects_unknown_commit_protocol():
    with pytest.raises(ValueError):
        SimulationConfig(commit_protocol="3pc")


def test_opt_commit_with_crash_faults_is_rejected():
    # 2pc-opt decisions carry the updates, so a participant could learn
    # an outcome through termination but never the data: forbidden.
    config = SimulationConfig(
        protocol="s2pl", n_clients=4, n_items=8, n_shards=2,
        commit_protocol="2pc-opt", faults="crash=2@100:200",
        total_transactions=20, warmup_transactions=0)
    with pytest.raises(ValueError):
        run_simulation(config)


def test_unsharded_protocols_cannot_be_sharded():
    shard_map = ShardMap(2, 4)
    config = SimulationConfig(protocol="c2pl", n_items=4, n_shards=2)
    stores = {0: VersionedStore((0, 1)), -1: VersionedStore((2, 3))}
    wals = {0: WriteAheadLog(), -1: WriteAheadLog()}
    with pytest.raises(ValueError):
        make_sharded_protocol("c2pl", Simulator(), config, shard_map,
                              stores, wals, HistoryRecorder(), [1, 2])


# ---------------------------------------------------------------------------
# End-to-end: cross-shard transactions commit atomically and serializably
# ---------------------------------------------------------------------------

def _sharded_config(protocol, **overrides):
    defaults = dict(
        protocol=protocol, n_clients=6, n_items=12, n_shards=4,
        n_regions=2, intra_region_latency=1.0, network_latency=25.0,
        cross_shard_probability=0.5, read_probability=0.5,
        total_transactions=60, warmup_transactions=0,
        record_history=True, seed=5)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.mark.parametrize("protocol", ["s2pl", "g2pl", "g2pl-basic",
                                      "g2pl-ro"])
def test_sharded_run_commits_and_validates(protocol):
    # record_history=True: run_simulation itself raises on any
    # serializability / strictness / 2PC-atomicity violation.
    result = run_simulation(_sharded_config(protocol))
    assert result.metrics.committed > 0
    assert result.server_stats["n_shards"] == 4
    # The summed multi-server stats are present (regression: these used
    # to read attributes off a single `server` object).
    assert result.server_stats["n_ops_granted"] > 0
    assert result.server_stats["aborts_initiated"] >= 0


def test_sharded_s2pl_uses_2pc_for_cross_shard_txns():
    result = run_simulation(_sharded_config("s2pl"))
    assert result.server_stats["twopc_commits"] > 0
    assert result.server_stats["presumed_aborts"] == 0


def test_sharded_g2pl_needs_no_commit_messages_without_faults():
    # Non-fault g-2PL commits client-locally; TxnDone retires the chains.
    result = run_simulation(_sharded_config("g2pl"))
    assert result.metrics.committed > 0
    assert result.server_stats["twopc_commits"] == 0


def test_opt_commit_saves_rounds_and_beats_classic():
    classic = run_simulation(_sharded_config("s2pl"))
    opt = run_simulation(_sharded_config("s2pl", commit_protocol="2pc-opt"))
    assert opt.server_stats["twopc_commits"] > 0
    assert opt.messages_sent < classic.messages_sent
    assert opt.mean_response_time < classic.mean_response_time


def test_single_shard_sharded_config_matches_plain_run():
    # n_shards=1 never enters the sharded assembly at all; the result is
    # the plain single-server run, field for field.
    from repro.perf.fingerprint import result_fingerprint

    plain = run_simulation(SimulationConfig(
        protocol="s2pl", n_clients=5, n_items=8, read_probability=0.5,
        network_latency=25.0, total_transactions=50,
        warmup_transactions=0, seed=9))
    again = run_simulation(SimulationConfig(
        protocol="s2pl", n_clients=5, n_items=8, read_probability=0.5,
        network_latency=25.0, total_transactions=50,
        warmup_transactions=0, seed=9, n_shards=1, n_regions=1))
    assert result_fingerprint(plain) == result_fingerprint(again)


def test_sharded_runs_are_deterministic_across_jobs():
    from repro.core.parallel import run_cells
    from repro.core.runner import replication_cells
    from repro.perf.fingerprint import result_fingerprint

    config = _sharded_config("g2pl", total_transactions=40)
    cells = replication_cells(config, 2, base_seed=3)
    serial = [result_fingerprint(r) for r in run_cells(cells, jobs=1)]
    pooled = [result_fingerprint(r) for r in run_cells(cells, jobs=2)]
    assert serial == pooled


def test_sharded_fault_run_recovers_from_client_crashes():
    # Crash two clients mid-run under message loss and jitter; the crash
    # sweep, 2PC termination, and chain repair keep the merged history
    # serializable (run_simulation raises otherwise).
    faults = "loss=0.02,jitter=5,crash=2@2000:6000"
    for protocol in ("s2pl", "g2pl"):
        result = run_simulation(_sharded_config(
            protocol, faults=faults, network_latency=50.0,
            total_transactions=80))
        assert result.metrics.committed > 0
        assert result.server_stats["twopc_commits"] >= 0
        stats = result.server_stats
        assert stats["twopc_commits"] + stats["twopc_aborts"] >= 0


# ---------------------------------------------------------------------------
# Cooperative termination (coordinator crash between prepare and decide)
# ---------------------------------------------------------------------------

def _two_shard_servers():
    from repro.network.topology import UniformTopology

    sim = Simulator()
    config = SimulationConfig(protocol="s2pl", n_clients=2, n_items=4,
                              n_shards=2, total_transactions=10,
                              warmup_transactions=0)
    shard_map = ShardMap(2, 4)
    history = HistoryRecorder()
    network = Network(sim, UniformTopology(5.0))
    servers = []
    for shard, site_id in enumerate(shard_map.server_ids):
        server = ShardedS2PLServer(
            sim, config, VersionedStore(shard_map.items_of(shard)),
            WriteAheadLog(), history, site_id=site_id, shard_map=shard_map)
        network.add_site(server)
        servers.append(server)
    return sim, servers, history


def test_termination_commits_when_any_peer_committed():
    sim, (a, b), history = _two_shard_servers()
    b.twopc_commits.add(7)
    a._prepared[7] = _PreparedTxn(client_id=1, participants=(0, -1),
                                  updates={0: "t7v1"}, prepared_at=0.0)
    a._start_termination(7)
    sim.run()
    assert a.terminations_started == 1
    assert 7 in a.twopc_commits
    assert not a._prepared
    assert not a._terminating
    assert 7 in history.committed
    assert a.presumed_aborts == 0


def test_termination_presumes_abort_when_no_peer_committed():
    sim, (a, b), _history = _two_shard_servers()
    a._prepared[7] = _PreparedTxn(client_id=1, participants=(0, -1),
                                  updates={0: "t7v1"}, prepared_at=0.0)
    a._start_termination(7)
    sim.run()
    assert a.presumed_aborts == 1
    assert 7 in a.twopc_aborts
    assert not a._prepared
    # The reclaim looks like a sweep: locks freed, txn marked swept.
    assert 7 in a._swept


def test_termination_with_no_peers_presumes_abort_locally():
    sim, (a, _b), _history = _two_shard_servers()
    a._prepared[7] = _PreparedTxn(client_id=1, participants=(0,),
                                  updates={}, prepared_at=0.0)
    a._start_termination(7)
    sim.run()
    assert a.presumed_aborts == 1
    assert 7 in a.twopc_aborts


def test_outcome_status_reflects_permanent_record():
    _sim, (a, _b), _history = _two_shard_servers()
    a.twopc_commits.add(1)
    a.twopc_aborts.add(2)
    a._prepared[3] = _PreparedTxn(client_id=1, participants=(0, -1),
                                  updates={}, prepared_at=0.0)
    assert a._outcome_status(1) == "committed"
    assert a._outcome_status(2) == "aborted"
    assert a._outcome_status(3) == "prepared"
    assert a._outcome_status(99) == "unknown"


def test_mid_2pc_coordinator_crash_is_terminated_end_to_end():
    # Integration: with crashed coordinators the prepared-transaction
    # sweep must start cooperative termination rather than leak locks.
    faults = "loss=0.02,jitter=5,crash=2@4000:9000,crash=5@12000"
    result = run_simulation(_sharded_config(
        "s2pl", n_clients=6, network_latency=100.0,
        total_transactions=100, faults=faults, seed=5))
    assert result.metrics.committed > 0
    assert result.server_stats["crash_reclaims"] >= 1


# ---------------------------------------------------------------------------
# Regression: multi-server probes
# ---------------------------------------------------------------------------

class _FakeServer:
    def __init__(self, depth, fl):
        self._depth = depth
        self._fl = fl

    def queue_depth(self):
        return self._depth

    def fl_occupancy(self):
        return self._fl


class _FakeTracer:
    in_flight_total = 0


def test_default_sources_sums_gauges_over_shards():
    sim = Simulator()
    servers = [_FakeServer(2, 1), _FakeServer(3, 4)]
    sources = dict(default_sources(sim, None, servers, _FakeTracer()))
    assert sources["lock_queue_depth"]() == 5
    assert sources["fl_occupancy"]() == 5


def test_default_sources_single_server_series_unchanged():
    sim = Simulator()
    single = _FakeServer(2, 1)
    solo = dict(default_sources(sim, None, single, _FakeTracer()))
    listed = dict(default_sources(sim, None, [single], _FakeTracer()))
    assert solo["lock_queue_depth"]() == listed["lock_queue_depth"]() == 2
    assert solo["fl_occupancy"]() == listed["fl_occupancy"]() == 1


# ---------------------------------------------------------------------------
# CLI and analysis plumbing
# ---------------------------------------------------------------------------

def test_cli_run_accepts_sharding_flags(capsys):
    from repro.cli import main

    code = main(["run", "--protocol", "s2pl", "--shards", "4",
                 "--regions", "2", "--intra-latency", "1",
                 "--commit", "2pc-opt", "--cross-shard", "0.5",
                 "--clients", "4", "--items", "8", "--latency", "25",
                 "--transactions", "30", "--warmup", "0"])
    assert code == 0
    out = capsys.readouterr().out
    assert "twopc_commits" in out


def test_shard_regime_dominance_report():
    from repro.analysis.crossover import ShardRegime, describe_shard_grid
    from repro.core.experiments import ExperimentResult, ExperimentSeries

    result = ExperimentResult(experiment_id="x", title="t",
                              x_label="latency", y_label="response")
    result.series["s2pl"] = ExperimentSeries(
        "s2pl", xs=[1.0, 100.0], ys=[10.0, 200.0], half_widths=[0, 0])
    result.series["g2pl"] = ExperimentSeries(
        "g2pl", xs=[1.0, 100.0], ys=[12.0, 150.0], half_widths=[0, 0])
    regime = ShardRegime(n_shards=2, commit_protocol="2pc",
                         response=result, aborts=None, crossover=23.0)
    assert regime.dominant is None
    assert "s2pl wins below" in regime.describe()
    text = describe_shard_grid([regime])
    assert "commit=2pc" in text and "shards=2" in text
