"""Property-based tests (hypothesis) for the lock table."""

from hypothesis import given, settings, strategies as st

from repro.locking import LockMode, LockTable

R, W = LockMode.READ, LockMode.WRITE

# An action stream: (txn, op) where op is acquire-read/acquire-write on a
# small item pool, or a release of everything the txn holds.
ACTIONS = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=5),        # txn
        st.sampled_from(["read", "write", "release"]),
        st.integers(min_value=0, max_value=3),        # item
    ),
    max_size=60,
)


def apply_actions(actions):
    table = LockTable()
    live_requests = {}  # txn -> set of items it has ever requested
    for txn, op, item in actions:
        if op == "release":
            table.release_all(txn)
        else:
            mode = R if op == "read" else W
            held = table.held_items(txn)
            if item in held:
                continue  # avoid upgrade paths in this generic stream
            queued = any(t == txn for t, _ in table.waiters(item))
            if queued:
                continue  # one request per txn per item
            table.acquire(txn, item, mode)
            live_requests.setdefault(txn, set()).add(item)
    return table


def check_invariants(table):
    # Collect every item mentioned anywhere.
    items = set(table._items)
    for item in items:
        holders = table.holders(item)
        waiters = table.waiters(item)
        modes = list(holders.values())
        # 1. Either one writer or any number of readers.
        if W in modes:
            assert len(modes) == 1, f"writer shares {item}: {holders}"
        # 2. No waiter is compatible with the holders AND first in line
        #    (otherwise it should have been granted).
        if waiters:
            first_txn, first_mode = waiters[0]
            upgrade = first_txn in holders
            if upgrade:
                assert len(holders) > 1
            elif not holders:
                raise AssertionError(
                    f"item {item} has waiters but no holders")
            else:
                compatible = (first_mode is R and all(m is R for m in modes))
                assert not compatible, (
                    f"head waiter {first_txn} compatible but not granted")
        # 3. A transaction appears at most once in the queue.
        queue_txns = [t for t, _ in waiters]
        assert len(queue_txns) == len(set(queue_txns))


@given(ACTIONS)
@settings(max_examples=300, deadline=None)
def test_lock_table_invariants_hold(actions):
    table = apply_actions(actions)
    check_invariants(table)


@given(ACTIONS)
@settings(max_examples=200, deadline=None)
def test_release_everything_empties_table(actions):
    table = apply_actions(actions)
    for txn in range(6):
        table.release_all(txn)
    assert not table._items, "items remained after releasing every txn"


@given(ACTIONS)
@settings(max_examples=200, deadline=None)
def test_grants_returned_by_release_are_now_held(actions):
    table = apply_actions(actions)
    for txn in range(6):
        granted = table.release_all(txn)
        for grantee, item, mode in granted:
            assert table.holds(grantee, item, mode)
        check_invariants(table)


@given(st.data())
@settings(max_examples=200, deadline=None)
def test_fifo_grant_order_per_item(data):
    """Waiters on one item are granted in queue order (readers batched)."""
    table = LockTable()
    table.acquire("holder", 0, W)
    n = data.draw(st.integers(min_value=1, max_value=8))
    modes = [data.draw(st.sampled_from([R, W]), label=f"mode{i}")
             for i in range(n)]
    for i, mode in enumerate(modes):
        assert table.acquire(f"t{i}", 0, mode).value == "waiting"
    granted = table.release_all("holder")
    # The grant is the longest compatible prefix of the queue.
    expected = []
    if modes[0] is W:
        expected = [("t0", 0, W)]
    else:
        for i, mode in enumerate(modes):
            if mode is W:
                break
            expected.append((f"t{i}", 0, R))
    assert granted == expected
