"""Tests for checkpointing, crash simulation, and WAL redo recovery."""

import pytest
from hypothesis import given, settings, strategies as st

from repro import SimulationConfig, run_simulation
from repro.storage.recovery import (
    Checkpoint,
    RecoveryError,
    RecoveryManager,
    recover,
    surviving_records,
    take_checkpoint,
)
from repro.storage.store import VersionedStore
from repro.storage.wal import LogRecordType, WriteAheadLog


def install_committed(store, wal, txn, items):
    """The server's install discipline: UPDATE*, COMMIT, force."""
    for item_id in items:
        version = store.version(item_id) + 1
        wal.append(LogRecordType.UPDATE, txn=txn, item_id=item_id,
                   version=version)
        store.install(item_id, value=f"{txn}")
    lsn = wal.append(LogRecordType.COMMIT, txn=txn)
    wal.force(lsn)


class TestCheckpointAndRecover:
    def test_recover_from_empty_log(self):
        store = VersionedStore(range(3))
        wal = WriteAheadLog()
        checkpoint = take_checkpoint(store, wal)
        recovered = recover(checkpoint, [])
        assert recovered.snapshot_versions() == {0: 0, 1: 0, 2: 0}

    def test_redo_committed_updates(self):
        store = VersionedStore(range(3))
        wal = WriteAheadLog()
        checkpoint = take_checkpoint(store, wal)
        install_committed(store, wal, "t1", [0, 2])
        install_committed(store, wal, "t2", [2])
        recovered = recover(checkpoint, surviving_records(wal))
        assert recovered.snapshot_versions() == {0: 1, 1: 0, 2: 2}

    def test_unforced_tail_is_lost(self):
        store = VersionedStore(range(2))
        wal = WriteAheadLog()
        checkpoint = take_checkpoint(store, wal)
        install_committed(store, wal, "t1", [0])
        # t2's records are appended but never forced: crash loses them.
        wal.append(LogRecordType.UPDATE, txn="t2", item_id=1, version=1)
        wal.append(LogRecordType.COMMIT, txn="t2")
        recovered = recover(checkpoint, surviving_records(wal))
        assert recovered.snapshot_versions() == {0: 1, 1: 0}

    def test_update_without_commit_not_redone(self):
        store = VersionedStore(range(1))
        wal = WriteAheadLog()
        checkpoint = take_checkpoint(store, wal)
        wal.append(LogRecordType.UPDATE, txn="loser", item_id=0, version=1)
        wal.force()
        recovered = recover(checkpoint, surviving_records(wal))
        assert recovered.version(0) == 0

    def test_checkpoint_covers_garbage_collected_prefix(self):
        store = VersionedStore(range(2))
        wal = WriteAheadLog()
        install_committed(store, wal, "old", [0, 1])
        checkpoint = take_checkpoint(store, wal)
        wal.garbage_collect(checkpoint.lsn)  # old records gone
        install_committed(store, wal, "new", [1])
        recovered = recover(checkpoint, surviving_records(wal))
        assert recovered.snapshot_versions() == store.snapshot_versions()

    def test_backwards_redo_detected(self):
        checkpoint = Checkpoint(lsn=0, versions={0: 5}, values={0: None})
        wal = WriteAheadLog()
        wal.append(LogRecordType.UPDATE, txn="t", item_id=0, version=3)
        wal.append(LogRecordType.COMMIT, txn="t")
        wal.force()
        with pytest.raises(RecoveryError):
            recover(checkpoint, surviving_records(wal))


class TestRecoveryManager:
    def test_interval_validation(self):
        with pytest.raises(ValueError):
            RecoveryManager(VersionedStore(range(1)), WriteAheadLog(),
                            checkpoint_interval=0)

    def test_periodic_checkpoints(self):
        store = VersionedStore(range(4))
        wal = WriteAheadLog()
        manager = RecoveryManager(store, wal, checkpoint_interval=3)
        for i in range(7):
            install_committed(store, wal, f"t{i}", [i % 4])
            manager.note_installs(1)
        assert manager.checkpoints_taken == 2
        assert manager.verify_against_live()

    def test_gc_horizon_never_crosses_checkpoint(self):
        store = VersionedStore(range(2))
        wal = WriteAheadLog()
        manager = RecoveryManager(store, wal, checkpoint_interval=100)
        install_committed(store, wal, "t", [0])
        assert manager.gc_horizon() == manager.checkpoint.lsn == 0
        wal.garbage_collect(manager.gc_horizon())
        assert manager.verify_against_live()


class TestEndToEndRecovery:
    @pytest.mark.parametrize("protocol", ["s2pl", "g2pl", "c2pl"])
    def test_server_crash_after_run_recovers_exact_state(self, protocol):
        config = SimulationConfig(
            protocol=protocol, n_clients=8, n_items=10,
            network_latency=20.0, read_probability=0.4,
            total_transactions=150, warmup_transactions=0, seed=6,
            checkpoint_interval=10, record_history=False)
        # Reach inside the run: rebuild the pieces so the server is ours.
        from repro.core import runner as rn
        result = rn.run_simulation(config)
        assert result.metrics.finished == 150
        # run_simulation discards the server; do a manual run for the probe
        from repro.network.topology import UniformTopology
        from repro.network.transport import Network
        from repro.protocols.registry import make_protocol
        from repro.sim.engine import Simulator
        from repro.sim.rng import RandomStreams
        from repro.stats.collector import MetricsCollector
        from repro.validate.history import HistoryRecorder
        from repro.workload.driver import ClientDriver, RunControl
        from repro.workload.generator import WorkloadGenerator

        sim = Simulator()
        store = VersionedStore(range(config.n_items))
        wal = WriteAheadLog()
        network = Network(sim, UniformTopology(config.network_latency))
        server, clients = make_protocol(
            protocol, sim, config, store, wal, HistoryRecorder(False),
            list(range(1, config.n_clients + 1)))
        network.add_site(server)
        for client in clients.values():
            network.add_site(client)
        generator = WorkloadGenerator(config.workload_params(),
                                      RandomStreams(6))
        control = RunControl(sim, config.total_transactions)
        collector = MetricsCollector(0)
        for client_id, client in clients.items():
            ClientDriver(sim, client_id, client, generator, control,
                         collector).start()
        sim.run(until=control.done_event)

        assert server.recovery is not None
        recovered = server.recovery.recover_after_crash()
        assert recovered.snapshot_versions() == store.snapshot_versions()


@given(st.lists(st.tuples(st.integers(0, 3),       # item
                          st.booleans()),           # force this install?
                max_size=30),
       st.integers(1, 8))                           # checkpoint interval
@settings(max_examples=150, deadline=None)
def test_property_any_crash_point_recovers_a_durable_prefix(installs,
                                                            interval):
    """Failure injection: whatever interleaving of installs, forces and
    checkpoints happens, recovery from the surviving log yields exactly
    the durable prefix of the committed history."""
    store = VersionedStore(range(4))
    wal = WriteAheadLog()
    manager = RecoveryManager(store, wal, checkpoint_interval=interval)
    durable_versions = store.snapshot_versions()
    for index, (item, forced) in enumerate(installs):
        version = store.version(item) + 1
        wal.append(LogRecordType.UPDATE, txn=f"t{index}", item_id=item,
                   version=version)
        store.install(item)
        lsn = wal.append(LogRecordType.COMMIT, txn=f"t{index}")
        if forced:
            wal.force(lsn)
            durable_versions = store.snapshot_versions()
        manager.note_installs(1)
        wal.garbage_collect(manager.gc_horizon())
    recovered = manager.recover_after_crash()
    # Everything the checkpoint saw is at least present; everything beyond
    # the durable LSN is absent; the result is exactly the state as of the
    # last force or checkpoint, whichever is later.
    expected = {}
    for item_id, version in durable_versions.items():
        expected[item_id] = max(version,
                                manager.checkpoint.versions[item_id])
    assert recovered.snapshot_versions() == expected
