"""Unit tests for the network substrate."""

import pytest

from repro.network import (
    MatrixTopology,
    Network,
    NetworkEnvironment,
    Site,
    TABLE2_ENVIRONMENTS,
    UniformTopology,
    environment_for_latency,
)
from repro.sim import Simulator


class Recorder(Site):
    """Test site that records (time, src, payload) for every delivery."""

    def __init__(self, site_id, sim):
        super().__init__(site_id)
        self.sim = sim
        self.received = []

    def receive(self, envelope):
        self.received.append((self.sim.now, envelope.src, envelope.payload))


def make_net(latency=10.0, n_sites=3, bandwidth=None):
    sim = Simulator()
    net = Network(sim, UniformTopology(latency), bandwidth=bandwidth)
    sites = [net.add_site(Recorder(i, sim)) for i in range(n_sites)]
    return sim, net, sites


def test_delivery_after_uniform_latency():
    sim, net, sites = make_net(latency=10.0)
    net.send(0, 1, "hello")
    sim.run()
    assert sites[1].received == [(10.0, 0, "hello")]


def test_latency_symmetric_between_pairs():
    sim, net, sites = make_net(latency=7.0)
    net.send(0, 2, "a")
    net.send(2, 0, "b")
    sim.run()
    assert sites[2].received == [(7.0, 0, "a")]
    assert sites[0].received == [(7.0, 2, "b")]


def test_self_send_is_instant():
    sim, net, sites = make_net(latency=10.0)
    net.send(1, 1, "loopback")
    sim.run()
    assert sites[1].received == [(0.0, 1, "loopback")]


def test_fifo_on_same_pair():
    sim, net, sites = make_net(latency=5.0)
    net.send(0, 1, "first")
    net.send(0, 1, "second")
    sim.run()
    assert [p for (_, _, p) in sites[1].received] == ["first", "second"]


def test_fifo_small_after_large_under_finite_bandwidth():
    # Regression: without the per-link delivery-time clamp the second
    # (small) message's shorter transmission time let it overtake the
    # first, breaking the FIFO guarantee the protocols rely on.
    sim, net, sites = make_net(latency=5.0, bandwidth=1.0)
    net.send(0, 1, "large", size=100.0)        # arrives at 5 + 100 = 105
    small = net.send(0, 1, "small", size=1.0)  # unclamped: 5 + 1 = 6
    sim.run()
    assert [p for (_, _, p) in sites[1].received] == ["large", "small"]
    assert small.deliver_time == pytest.approx(105.0)


def test_fifo_clamp_is_per_link():
    # A slow transfer on one pair must not delay traffic on other pairs.
    sim, net, sites = make_net(latency=5.0, bandwidth=1.0)
    net.send(0, 1, "slow", size=100.0)
    net.send(0, 2, "fast", size=1.0)
    net.send(2, 1, "cross", size=1.0)
    sim.run()
    assert sites[2].received[0][0] == pytest.approx(6.0)
    assert sites[1].received[0] == (pytest.approx(6.0), 2, "cross")


def test_infinite_bandwidth_ignores_size():
    sim, net, sites = make_net(latency=5.0)
    net.send(0, 1, "big", size=10_000)
    sim.run()
    assert sites[1].received[0][0] == 5.0


def test_finite_bandwidth_adds_transmission_time():
    sim, net, sites = make_net(latency=5.0, bandwidth=2.0)
    net.send(0, 1, "payload", size=8.0)  # 8 units / 2 units-per-time = 4
    sim.run()
    assert sites[1].received[0][0] == pytest.approx(9.0)


def test_bandwidth_must_be_positive():
    sim = Simulator()
    with pytest.raises(ValueError):
        Network(sim, UniformTopology(1.0), bandwidth=0)


def test_unknown_sites_rejected():
    sim, net, _ = make_net()
    with pytest.raises(KeyError):
        net.send(0, 99, "x")
    with pytest.raises(KeyError):
        net.send(99, 0, "x")


def test_duplicate_site_id_rejected():
    sim, net, _ = make_net()
    with pytest.raises(ValueError):
        net.add_site(Recorder(0, sim))


def test_site_send_helper():
    sim, net, sites = make_net(latency=3.0)
    sites[0].send(1, "via helper")
    sim.run()
    assert sites[1].received == [(3.0, 0, "via helper")]


def test_detached_site_send_raises():
    site = Recorder(42, Simulator())
    with pytest.raises(RuntimeError):
        site.send(0, "x")


def test_stats_count_messages_and_units():
    sim, net, _ = make_net()
    net.send(0, 1, "a", size=2.0)
    net.send(1, 2, "b", size=3.0)
    sim.run()
    assert net.stats.messages_sent == 2
    assert net.stats.data_units_sent == 5.0
    assert net.stats.per_type == {"str": 2}


def test_envelope_metadata():
    sim, net, sites = make_net(latency=4.0)
    envelope = net.send(0, 1, "meta")
    assert envelope.send_time == 0.0
    assert envelope.deliver_time == 4.0
    assert envelope.in_flight_time == 4.0


def test_negative_latency_rejected():
    with pytest.raises(ValueError):
        UniformTopology(-1.0)
    with pytest.raises(ValueError):
        MatrixTopology({(0, 1): -2.0})
    with pytest.raises(ValueError):
        MatrixTopology({}, default=-1.0)


def test_matrix_topology_lookup_and_symmetry():
    topo = MatrixTopology({(0, 1): 5.0, (1, 2): 7.0}, default=100.0)
    assert topo.latency(0, 1) == 5.0
    assert topo.latency(1, 0) == 5.0  # symmetric fallback
    assert topo.latency(2, 1) == 7.0
    assert topo.latency(0, 2) == 100.0  # default
    assert topo.latency(1, 1) == 0.0


def test_matrix_topology_asymmetric_override():
    topo = MatrixTopology({(0, 1): 5.0, (1, 0): 9.0})
    assert topo.latency(0, 1) == 5.0
    assert topo.latency(1, 0) == 9.0


def test_table2_matches_paper():
    expected = {
        "SS_LAN": 1.0,
        "MS_LAN": 50.0,
        "CAN": 100.0,
        "MAN": 250.0,
        "S_WAN": 500.0,
        "L_WAN": 750.0,
    }
    assert {env.name: env.latency for env in TABLE2_ENVIRONMENTS} == expected


def test_environment_for_latency():
    assert environment_for_latency(500.0) is NetworkEnvironment.S_WAN
    assert environment_for_latency(123.0) is None
