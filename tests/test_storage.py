"""Unit tests for the versioned store and the write-ahead log."""

import pytest

from repro.storage import LogRecordType, VersionedStore, WriteAheadLog


class TestVersionedStore:
    def test_create_and_read(self):
        store = VersionedStore(range(3))
        assert len(store) == 3
        assert store.read(0).version == 0
        assert 2 in store
        assert 99 not in store

    def test_duplicate_create_rejected(self):
        store = VersionedStore([1])
        with pytest.raises(ValueError):
            store.create(1)

    def test_install_bumps_version(self):
        store = VersionedStore([7])
        assert store.install(7, value="v1", now=3.0) == 1
        assert store.install(7, value="v2", now=5.0) == 2
        item = store.read(7)
        assert item.version == 2
        assert item.value == "v2"
        assert item.installed_at == 5.0
        assert store.installs == 2

    def test_missing_item_read_raises(self):
        store = VersionedStore()
        with pytest.raises(KeyError):
            store.read(5)

    def test_snapshot_versions(self):
        store = VersionedStore(range(2))
        store.install(1)
        assert store.snapshot_versions() == {0: 0, 1: 1}


class TestWriteAheadLog:
    def test_append_assigns_increasing_lsns(self):
        wal = WriteAheadLog()
        lsns = [wal.append(LogRecordType.UPDATE, txn="t1", item_id=i)
                for i in range(3)]
        assert lsns == [1, 2, 3]
        assert wal.tail_lsn() == 3

    def test_force_advances_durable_lsn(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.UPDATE, txn="t1")
        wal.append(LogRecordType.COMMIT, txn="t1")
        assert wal.durable_lsn == 0
        assert wal.force() == 2
        assert wal.is_durable(2)
        assert wal.forces == 1

    def test_force_partial_prefix(self):
        wal = WriteAheadLog()
        for _ in range(4):
            wal.append(LogRecordType.UPDATE, txn="t")
        wal.force(up_to_lsn=2)
        assert wal.is_durable(2)
        assert not wal.is_durable(3)

    def test_force_past_end_rejected(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.UPDATE, txn="t")
        with pytest.raises(ValueError):
            wal.force(up_to_lsn=10)

    def test_repeated_force_is_idempotent(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.COMMIT, txn="t")
        wal.force()
        wal.force()
        assert wal.forces == 1

    def test_garbage_collect_requires_durability(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.UPDATE, txn="t")
        with pytest.raises(ValueError):
            wal.garbage_collect(1)
        wal.force()
        assert wal.garbage_collect(1) == 1
        assert len(wal) == 0

    def test_garbage_collect_keeps_suffix(self):
        wal = WriteAheadLog()
        for i in range(5):
            wal.append(LogRecordType.UPDATE, txn=f"t{i}")
        wal.force()
        assert wal.garbage_collect(3) == 3
        remaining = [r.lsn for r in wal.records()]
        assert remaining == [4, 5]

    def test_records_filter_by_type(self):
        wal = WriteAheadLog()
        wal.append(LogRecordType.UPDATE, txn="t", item_id=1, version=1)
        wal.append(LogRecordType.COMMIT, txn="t")
        wal.append(LogRecordType.ABORT, txn="u")
        assert len(wal.records(LogRecordType.UPDATE)) == 1
        assert len(wal.records(LogRecordType.COMMIT)) == 1
        assert len(wal.records(LogRecordType.ABORT)) == 1
        update = wal.records(LogRecordType.UPDATE)[0]
        assert (update.item_id, update.version) == (1, 1)
