"""Integration tests for the simulation runner and the public API."""

import pytest

from repro import (
    Fidelity,
    SimulationConfig,
    SimulationResult,
    available_protocols,
    compare_protocols,
    improvement_percentage,
    run_replications,
    run_simulation,
    run_worked_example,
)


def smoke_config(**overrides):
    defaults = dict(n_clients=8, n_items=10, network_latency=50.0,
                    read_probability=0.5, total_transactions=120,
                    warmup_transactions=20, seed=11)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


class TestConfig:
    def test_defaults_match_table1(self):
        cfg = SimulationConfig()
        assert cfg.n_clients == 50
        assert cfg.n_items == 25
        assert (cfg.min_ops, cfg.max_ops) == (1, 5)
        assert cfg.network_latency == 500.0

    def test_validation(self):
        with pytest.raises(ValueError):
            SimulationConfig(n_clients=0)
        with pytest.raises(ValueError):
            SimulationConfig(read_probability=2.0)
        with pytest.raises(ValueError):
            SimulationConfig(total_transactions=10, warmup_transactions=10)

    def test_replace_revalidates(self):
        cfg = SimulationConfig()
        with pytest.raises(ValueError):
            cfg.replace(network_latency=-1.0)
        assert cfg.replace(seed=9).seed == 9
        assert cfg.seed == 1  # original untouched

    def test_fidelity_levels(self):
        cfg = SimulationConfig().with_fidelity(Fidelity.PAPER)
        assert cfg.total_transactions == 50_000
        cfg = SimulationConfig().with_fidelity("smoke")
        assert cfg.total_transactions == 300

    def test_describe(self):
        assert "g2pl" in SimulationConfig().describe()


class TestRunSimulation:
    def test_run_produces_metrics(self):
        result = run_simulation(smoke_config(protocol="s2pl"))
        assert result.metrics.finished == 100  # 120 minus 20 warmup
        assert result.mean_response_time > 0
        assert result.messages_sent > 0
        assert result.duration > 0

    def test_serializability_checked_by_default(self):
        result = run_simulation(smoke_config(protocol="g2pl"))
        assert result.serializability is not None
        assert result.serializability.ok

    def test_all_protocols_run(self):
        for protocol in available_protocols():
            result = run_simulation(smoke_config(protocol=protocol))
            assert result.metrics.finished == 100, protocol
            assert result.serializability.ok, protocol

    def test_deterministic_per_seed(self):
        a = run_simulation(smoke_config(), seed=99)
        b = run_simulation(smoke_config(), seed=99)
        assert a.mean_response_time == b.mean_response_time
        assert a.messages_sent == b.messages_sent

    def test_different_seeds_differ(self):
        a = run_simulation(smoke_config(), seed=1)
        b = run_simulation(smoke_config(), seed=2)
        assert a.mean_response_time != b.mean_response_time

    def test_history_disabled_skips_checking(self):
        result = run_simulation(smoke_config(record_history=False))
        assert result.serializability is None

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            run_simulation(smoke_config(protocol="3pl"))

    def test_summary_renders(self):
        result = run_simulation(smoke_config())
        assert "response=" in result.summary()

    def test_default_result_has_iterable_server_stats(self):
        # Regression: server_stats defaulted to None (a shared mutable
        # default is illegal anyway), so iterating a bare result crashed.
        result = SimulationResult(config=None, seed=0, metrics=None,
                                  duration=0.0, messages_sent=0,
                                  data_units_sent=0.0)
        assert result.server_stats == {}
        assert list(result.server_stats.items()) == []
        assert result.serializability is None
        other = SimulationResult(config=None, seed=1, metrics=None,
                                 duration=0.0, messages_sent=0,
                                 data_units_sent=0.0)
        other.server_stats["aborts_initiated"] = 3
        assert result.server_stats == {}  # no shared default dict


class TestReplications:
    def test_replications_aggregate(self):
        result = run_replications(smoke_config(), replications=3)
        assert len(result.runs) == 3
        assert result.response_time.n == 3
        assert result.mean_response_time > 0
        assert "response=" in result.summary()

    def test_replications_use_distinct_seeds(self):
        result = run_replications(smoke_config(), replications=3)
        seeds = {run.seed for run in result.runs}
        assert len(seeds) == 3

    def test_at_least_one_replication(self):
        with pytest.raises(ValueError):
            run_replications(smoke_config(), replications=0)


class TestCompare:
    def test_compare_protocols_common_seeds(self):
        results = compare_protocols(smoke_config(), ("s2pl", "g2pl"),
                                    replications=2)
        assert set(results) == {"s2pl", "g2pl"}
        s_seeds = [run.seed for run in results["s2pl"].runs]
        g_seeds = [run.seed for run in results["g2pl"].runs]
        assert s_seeds == g_seeds  # common random numbers

    def test_improvement_percentage(self):
        results = compare_protocols(smoke_config(), ("s2pl", "g2pl"),
                                    replications=2)
        value = improvement_percentage(results["s2pl"], results["g2pl"])
        assert -100.0 < value < 100.0


class TestWorkedExample:
    def test_figure1_spans(self):
        result = run_worked_example()
        assert result.s2pl_span == pytest.approx(15.0)
        assert result.g2pl_span == pytest.approx(11.0)
        assert result.s2pl_rounds == 9
        assert result.g2pl_rounds == 7
        assert result.improvement_percentage == pytest.approx(26.7, abs=0.1)

    def test_scales_with_clients(self):
        result = run_worked_example(n_clients=5)
        # m clients: s-2PL m*(2L+P)=25, g-2PL (m+1)L + mP = 17.
        assert result.s2pl_span == pytest.approx(25.0)
        assert result.g2pl_span == pytest.approx(17.0)

    def test_str(self):
        assert "Figure 1" in str(run_worked_example())
