"""Property-based tests for the network transport."""

from hypothesis import given, settings, strategies as st

from repro.network.faults import FaultInjector, FaultSpec
from repro.network.topology import MatrixTopology, Site, UniformTopology
from repro.network.transport import Network
from repro.sim.engine import Simulator
from repro.sim.rng import RandomStreams


class Recorder(Site):
    def __init__(self, site_id, sim):
        super().__init__(site_id)
        self.sim = sim
        self.received = []

    def receive(self, envelope):
        self.received.append((self.sim.now, envelope.src, envelope.payload))


SENDS = st.lists(
    st.tuples(st.integers(0, 3),             # src
              st.integers(0, 3),             # dst
              st.floats(min_value=0.0, max_value=50.0,
                        allow_nan=False)),   # send delay
    max_size=30,
)


@given(SENDS, st.floats(min_value=0.0, max_value=100.0, allow_nan=False))
@settings(max_examples=200, deadline=None)
def test_every_message_arrives_after_exactly_the_latency(sends, latency):
    sim = Simulator()
    net = Network(sim, UniformTopology(latency))
    sites = [net.add_site(Recorder(i, sim)) for i in range(4)]
    expected = []
    for index, (src, dst, delay) in enumerate(sends):
        wire = 0.0 if src == dst else latency
        sim.call_later(delay, net.send, src, dst, f"m{index}")
        expected.append((dst, delay + wire, f"m{index}"))
    sim.run()
    got = {(dst,) + (when, payload)
           for dst in range(4)
           for (when, _src, payload) in sites[dst].received}
    assert got == {(dst, when, payload)
                   for dst, when, payload in expected}


@given(st.lists(st.text(alphabet="ab", min_size=1, max_size=3),
                min_size=1, max_size=20),
       st.floats(min_value=0.1, max_value=50.0, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_fifo_per_pair(payloads, latency):
    sim = Simulator()
    net = Network(sim, UniformTopology(latency))
    net.add_site(Recorder(0, sim))
    receiver = net.add_site(Recorder(1, sim))
    for payload in payloads:
        net.send(0, 1, payload)
    sim.run()
    assert [p for (_, _, p) in receiver.received] == payloads


@given(st.lists(st.tuples(st.integers(0, 2),     # src
                          st.integers(0, 2),     # dst
                          st.floats(min_value=0.1, max_value=200.0,
                                    allow_nan=False)),  # size
                min_size=1, max_size=30),
       st.one_of(st.none(),
                 st.floats(min_value=0.1, max_value=10.0, allow_nan=False)),
       st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
       st.integers(0, 2**20))
@settings(max_examples=200, deadline=None)
def test_fifo_per_pair_for_any_sizes_bandwidth_and_jitter(
        sends, bandwidth, jitter, seed):
    """Per-(src, dst) delivery order equals send order no matter how
    size-dependent (finite bandwidth) or randomised (fault jitter) the
    individual wire delays are — the per-link clamp serialises each pair."""
    sim = Simulator()
    faults = None
    if jitter:
        faults = FaultInjector(FaultSpec(extra_jitter=jitter),
                               RandomStreams(seed).spawn("faults"))
    net = Network(sim, UniformTopology(5.0), bandwidth=bandwidth,
                  faults=faults)
    sites = [net.add_site(Recorder(i, sim)) for i in range(3)]
    for index, (src, dst, size) in enumerate(sends):
        net.send(src, dst, (src, dst, index), size=size)
    sim.run()
    for site in sites:
        per_pair = {}
        for _when, _src, (src, dst, index) in site.received:
            per_pair.setdefault((src, dst), []).append(index)
        for indices in per_pair.values():
            assert indices == sorted(indices)


@given(st.dictionaries(
    st.tuples(st.integers(0, 2), st.integers(0, 2)).filter(
        lambda e: e[0] != e[1]),
    st.floats(min_value=0.0, max_value=100.0, allow_nan=False),
    max_size=6),
    st.floats(min_value=0.0, max_value=10.0, allow_nan=False))
@settings(max_examples=150, deadline=None)
def test_matrix_topology_delivery_times(latencies, default):
    sim = Simulator()
    topo = MatrixTopology(latencies, default=default)
    net = Network(sim, topo)
    sites = [net.add_site(Recorder(i, sim)) for i in range(3)]
    for src in range(3):
        for dst in range(3):
            if src != dst:
                net.send(src, dst, (src, dst))
    sim.run()
    for dst in range(3):
        for when, src, payload in sites[dst].received:
            assert when == topo.latency(src, dst)


@given(st.lists(st.floats(min_value=0.1, max_value=100.0,
                          allow_nan=False), min_size=1, max_size=20))
@settings(max_examples=100, deadline=None)
def test_stats_accumulate_sizes(sizes):
    sim = Simulator()
    net = Network(sim, UniformTopology(1.0))
    net.add_site(Recorder(0, sim))
    net.add_site(Recorder(1, sim))
    for size in sizes:
        net.send(0, 1, "x", size=size)
    sim.run()
    assert net.stats.messages_sent == len(sizes)
    assert net.stats.data_units_sent == sum(sizes)
