"""Unit tests for protocol plumbing: messages, registry, transactions,
and the payload dispatcher."""

import pytest

from repro.core.config import SimulationConfig
from repro.locking.modes import LockMode
from repro.network.transport import Network
from repro.network.topology import UniformTopology
from repro.protocols.base import _Dispatcher
from repro.protocols.forward_list import FLEntry, ForwardList, TxnRef
from repro.protocols.messages import (
    CONTROL_SIZE,
    FL_ENTRY_SIZE,
    GShip,
    LockRequest,
)
from repro.protocols.registry import available_protocols, make_protocol
from repro.protocols.transaction import Transaction, TxnOutcome, TxnStatus
from repro.sim.engine import Simulator
from repro.storage.store import VersionedStore
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder
from repro.workload.spec import Operation, TransactionSpec


def one_op_spec():
    return TransactionSpec(operations=(
        Operation(item_id=0, mode=LockMode.WRITE, think_time=1.0),))


class TestTransaction:
    def make(self):
        return Transaction(1, client_id=2, spec=one_op_spec(), birth=5.0)

    def test_initial_state(self):
        txn = self.make()
        assert txn.running
        assert txn.status is TxnStatus.RUNNING
        assert txn.birth == 5.0

    def test_commit(self):
        txn = self.make()
        txn.commit()
        assert txn.status is TxnStatus.COMMITTED
        with pytest.raises(RuntimeError):
            txn.commit()
        with pytest.raises(RuntimeError):
            txn.abort("too late")

    def test_abort_keeps_first_reason(self):
        txn = self.make()
        txn.abort("deadlock")
        txn.abort("other")
        assert txn.abort_reason == "deadlock"

    def test_outcome_response_time(self):
        outcome = TxnOutcome(txn_id=1, client_id=1, committed=True,
                             start_time=10.0, end_time=35.0, n_ops=2,
                             n_writes=1)
        assert outcome.response_time == 25.0


class TestMessages:
    def test_lock_request_is_frozen(self):
        msg = LockRequest(txn_id=1, item_id=2, mode=LockMode.READ,
                          client_id=3)
        with pytest.raises(Exception):
            msg.txn_id = 9

    def test_fl_transfer_size_scales_with_members(self):
        refs = [(TxnRef(i, i), LockMode.READ) for i in range(4)]
        fl = ForwardList.from_requests(refs)
        assert fl.transfer_size() == pytest.approx(4 * FL_ENTRY_SIZE)

    def test_control_size_positive(self):
        assert CONTROL_SIZE > 0

    def test_gship_defaults(self):
        fl = ForwardList([FLEntry(LockMode.WRITE, (TxnRef(1, 1),))])
        msg = GShip(txn_id=1, item_id=0, version=0, value=None,
                    mode=LockMode.WRITE, fl_tail=fl)
        assert msg.group == ()
        assert msg.release_to is None
        assert msg.await_releases_from == ()


class TestRegistry:
    def test_available_protocols(self):
        names = available_protocols()
        assert "s2pl" in names and "g2pl" in names
        assert names == sorted(names)

    def _build(self, name, config=None):
        sim = Simulator()
        config = config or SimulationConfig(n_clients=2, n_items=2)
        store = VersionedStore(range(2))
        server, clients = make_protocol(
            name, sim, config, store, WriteAheadLog(), HistoryRecorder(),
            [1, 2])
        return server, clients

    def test_variant_pins_override_config(self):
        server, clients = self._build("g2pl-basic")
        assert server.config.mr1w is False
        server, clients = self._build("g2pl-ro")
        assert server.config.expand_read_groups is True

    def test_plain_g2pl_keeps_config(self):
        config = SimulationConfig(n_clients=2, n_items=2, mr1w=False)
        server, _ = self._build("g2pl", config)
        assert server.config.mr1w is False

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown protocol"):
            self._build("zpl")

    def test_one_client_per_id(self):
        _server, clients = self._build("s2pl")
        assert set(clients) == {1, 2}
        assert clients[1].client_id == 1


class TestDispatcher:
    def test_dispatch_by_payload_type(self):
        sim = Simulator()
        seen = []

        class Probe(_Dispatcher):
            def on_LockRequest(self, msg):
                seen.append(msg)

        net = Network(sim, UniformTopology(1.0))
        probe = net.add_site(Probe(0))
        net.add_site(Probe(1))
        msg = LockRequest(txn_id=1, item_id=0, mode=LockMode.READ,
                          client_id=1)
        net.send(1, 0, msg)
        sim.run()
        assert seen == [msg]

    def test_missing_handler_raises(self):
        sim = Simulator()

        class Probe(_Dispatcher):
            pass

        net = Network(sim, UniformTopology(1.0))
        net.add_site(Probe(0))
        net.add_site(Probe(1))
        net.send(1, 0, LockRequest(txn_id=1, item_id=0,
                                   mode=LockMode.READ, client_id=1))
        with pytest.raises(TypeError, match="no handler"):
            sim.run()

    def test_handler_cache(self):
        sim = Simulator()
        calls = []

        class Probe(_Dispatcher):
            def on_LockRequest(self, msg):
                calls.append(msg.txn_id)

        net = Network(sim, UniformTopology(1.0))
        probe = net.add_site(Probe(0))
        net.add_site(Probe(1))
        for i in range(3):
            net.send(1, 0, LockRequest(txn_id=i, item_id=0,
                                       mode=LockMode.READ, client_id=1))
        sim.run()
        assert calls == [0, 1, 2]
        assert LockRequest in probe._handlers


class TestServerProcessingTime:
    def test_server_cpu_serialises_messages(self):
        from repro import run_simulation

        fast = run_simulation(SimulationConfig(
            protocol="s2pl", n_clients=4, n_items=4, max_ops=2,
            network_latency=10.0, total_transactions=80,
            warmup_transactions=0, seed=5, server_processing_time=0.0))
        slow = run_simulation(SimulationConfig(
            protocol="s2pl", n_clients=4, n_items=4, max_ops=2,
            network_latency=10.0, total_transactions=80,
            warmup_transactions=0, seed=5, server_processing_time=2.0))
        assert slow.mean_response_time > fast.mean_response_time
