"""Unit tests for generator-driven processes."""

import pytest

from repro.sim import Interrupt, Simulator, SimulationError


@pytest.fixture
def sim():
    return Simulator()


def test_process_runs_and_returns_value(sim):
    def worker():
        yield sim.timeout(3.0)
        return "done"

    process = sim.spawn(worker())
    assert sim.run(until=process) == "done"
    assert sim.now == 3.0
    assert not process.alive


def test_process_receives_event_values(sim):
    def worker():
        value = yield sim.timeout(1.0, value="tick")
        return value

    assert sim.run(until=sim.spawn(worker())) == "tick"


def test_sequential_timeouts_accumulate(sim):
    def worker():
        yield sim.timeout(1.0)
        yield sim.timeout(2.0)
        yield sim.timeout(3.0)
        return sim.now

    assert sim.run(until=sim.spawn(worker())) == 6.0


def test_processes_interleave(sim):
    trace = []

    def worker(name, delay):
        for _ in range(2):
            yield sim.timeout(delay)
            trace.append((sim.now, name))

    sim.spawn(worker("fast", 1.0))
    sim.spawn(worker("slow", 1.5))
    sim.run()
    assert trace == [(1.0, "fast"), (1.5, "slow"), (2.0, "fast"), (3.0, "slow")]


def test_process_can_wait_on_process(sim):
    def child():
        yield sim.timeout(5.0)
        return "child result"

    def parent():
        result = yield sim.spawn(child())
        return f"got {result}"

    assert sim.run(until=sim.spawn(parent())) == "got child result"


def test_exception_in_process_fails_the_process_event(sim):
    def worker():
        yield sim.timeout(1.0)
        raise ValueError("exploded")

    with pytest.raises(ValueError, match="exploded"):
        sim.run(until=sim.spawn(worker()))


def test_failed_event_is_thrown_into_waiter(sim):
    event = sim.event()

    def worker():
        try:
            yield event
        except RuntimeError as exc:
            return f"caught {exc}"

    process = sim.spawn(worker())
    sim.call_later(1.0, event.fail, RuntimeError("bad"))
    assert sim.run(until=process) == "caught bad"


def test_yielding_non_event_fails(sim):
    def worker():
        yield 42

    with pytest.raises(SimulationError, match="must yield events"):
        sim.run(until=sim.spawn(worker()))


def test_waiting_on_self_fails(sim):
    holder = {}

    def worker():
        yield holder["me"]

    holder["me"] = sim.spawn(worker())
    with pytest.raises(SimulationError, match="wait on itself"):
        sim.run(until=holder["me"])


def test_spawn_requires_generator(sim):
    with pytest.raises(TypeError):
        sim.spawn(lambda: None)


def test_interrupt_delivers_cause(sim):
    def worker():
        try:
            yield sim.timeout(100.0)
        except Interrupt as interrupt:
            return ("interrupted", interrupt.cause, sim.now)

    process = sim.spawn(worker())
    sim.call_later(2.0, process.interrupt, "abort!")
    assert sim.run(until=process) == ("interrupted", "abort!", 2.0)


def test_interrupt_finished_process_returns_false(sim):
    def worker():
        yield sim.timeout(1.0)

    process = sim.spawn(worker())
    sim.run()
    assert process.interrupt() is False


def test_interrupted_process_can_rewait(sim):
    event = sim.event()

    def worker():
        try:
            yield event
        except Interrupt:
            pass
        value = yield event  # re-wait on the same event
        return (value, sim.now)

    process = sim.spawn(worker())
    sim.call_later(1.0, process.interrupt)
    sim.call_later(5.0, event.succeed, "finally")
    assert sim.run(until=process) == ("finally", 5.0)


def test_escaped_interrupt_is_kernel_error(sim):
    def worker():
        yield sim.timeout(100.0)

    process = sim.spawn(worker())
    sim.call_later(1.0, process.interrupt)
    with pytest.raises(SimulationError, match="Interrupt"):
        sim.run()


def test_waiting_two_processes_on_one_event(sim):
    event = sim.event()
    results = []

    def worker(name):
        value = yield event
        results.append((name, value, sim.now))

    sim.spawn(worker("a"))
    sim.spawn(worker("b"))
    sim.call_later(3.0, event.succeed, "shared")
    sim.run()
    assert results == [("a", "shared", 3.0), ("b", "shared", 3.0)]
