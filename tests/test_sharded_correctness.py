"""The sharded-correctness battery: random shard maps, geo-topologies,
workload mixes, and fault specs — the merged cross-shard history must
stay serializable and strict, 2PC must stay atomic (no transaction
commits at one shard and aborts at another), and prepared locks must
never leak after a coordinator crash.

``run_simulation(record_history=True)`` *raises* on any serializability,
strictness, or 2PC-atomicity violation, so every property here doubles
as an end-to-end crash test of the validators.
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.network.topology import RegionTopology
from repro.protocols.sharding import ShardMap, shard_site_id

# ---------------------------------------------------------------------------
# Random shard maps and region matrices (pure, fast)
# ---------------------------------------------------------------------------


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_random_shard_maps_route_consistently(data):
    n_items = data.draw(st.integers(min_value=2, max_value=12))
    n_shards = data.draw(st.integers(min_value=1, max_value=n_items))
    assignments = {item: data.draw(st.integers(0, n_shards - 1),
                                   label=f"shard of item {item}")
                   for item in range(n_items)}
    shard_map = ShardMap(n_shards, n_items, assignments)
    for item in range(n_items):
        assert shard_map.shard_of(item) == assignments[item]
        assert shard_map.server_of(item) == shard_site_id(assignments[item])
        assert item in shard_map.items_of(assignments[item])
    # items_of partitions the item space exactly
    routed = sorted(item for shard in range(n_shards)
                    for item in shard_map.items_of(shard))
    assert routed == list(range(n_items))
    assert len(shard_map.server_ids) == n_shards
    assert len(set(shard_map.server_ids)) == n_shards


@given(st.data())
@settings(max_examples=60, deadline=None)
def test_random_region_matrices_have_two_tiers(data):
    n_shards = data.draw(st.integers(min_value=1, max_value=5))
    n_clients = data.draw(st.integers(min_value=1, max_value=8))
    n_regions = data.draw(st.integers(min_value=1, max_value=4))
    intra = data.draw(st.sampled_from([0.5, 1.0, 2.0]))
    inter = data.draw(st.sampled_from([50.0, 250.0, 750.0]))
    shard_map = ShardMap(n_shards, n_shards)  # one item per shard is fine
    region_of = shard_map.region_assignments(n_clients, n_regions)
    topo = RegionTopology(region_of, intra_latency=intra,
                          inter_latency=inter)
    sites = list(region_of)
    for src in sites:
        assert topo.latency(src, src) == 0.0
        for dst in sites:
            lat = topo.latency(src, dst)
            assert topo.latency(dst, src) == lat  # symmetric
            if src != dst:
                assert lat in (intra, inter)
                same = region_of[src] == region_of[dst]
                assert lat == (intra if same else inter)
    # when the region count divides the shard count, every client is
    # co-located with its home shard ((c-1) % k and (c-1) % r agree
    # modulo r); with a non-dividing count some homes are remote
    if n_shards % n_regions == 0:
        for client_id in range(1, n_clients + 1):
            home = (client_id - 1) % n_shards
            assert topo.latency(client_id,
                                shard_site_id(home)) in (0.0, intra)


# ---------------------------------------------------------------------------
# Random sharded workloads: serializable, strict, atomic
# ---------------------------------------------------------------------------

SHARDED_CONFIGS = st.fixed_dictionaries({
    "protocol": st.sampled_from(["s2pl", "g2pl", "g2pl-basic", "g2pl-ro"]),
    "n_clients": st.integers(min_value=2, max_value=6),
    "n_items": st.integers(min_value=4, max_value=10),
    "n_shards": st.integers(min_value=2, max_value=4),
    "n_regions": st.integers(min_value=1, max_value=3),
    "commit_protocol": st.sampled_from(["2pc", "2pc-opt"]),
    "cross_shard_probability": st.sampled_from([0.0, 0.3, 1.0]),
    "read_probability": st.sampled_from([0.0, 0.5, 1.0]),
    "network_latency": st.sampled_from([2.0, 25.0, 200.0]),
    "seed": st.integers(min_value=1, max_value=10_000),
})


@given(SHARDED_CONFIGS)
@settings(max_examples=15, deadline=None)
def test_random_sharded_configurations_stay_correct(params):
    params = dict(params)
    params["n_shards"] = min(params["n_shards"], params["n_items"])
    config = SimulationConfig(total_transactions=40, warmup_transactions=0,
                              intra_region_latency=1.0,
                              max_ops=min(5, params["n_items"]),
                              record_history=True, **params)
    result = run_simulation(config)
    assert result.serializability.ok
    assert result.metrics.finished == 40
    assert result.server_stats["n_shards"] == params["n_shards"]
    # atomicity of 2PC outcomes was checked inside run_simulation; the
    # reported counts are the union over shards, so they never double
    # count a transaction
    stats = result.server_stats
    assert stats["twopc_commits"] <= result.metrics.committed


# ---------------------------------------------------------------------------
# Random fault specs: loss, jitter, crashes
# ---------------------------------------------------------------------------

FAULTED_CONFIGS = st.fixed_dictionaries({
    "protocol": st.sampled_from(["s2pl", "g2pl"]),
    "n_shards": st.integers(min_value=2, max_value=4),
    "loss": st.sampled_from([0.0, 0.02, 0.05]),
    "jitter": st.sampled_from([0.0, 5.0]),
    "crash": st.sampled_from([None, (2, 1500.0, 5000.0), (3, 2500.0, None)]),
    "seed": st.integers(min_value=1, max_value=10_000),
})


@given(FAULTED_CONFIGS)
@settings(max_examples=10, deadline=None)
def test_random_fault_specs_keep_sharded_runs_correct(params):
    clauses = [f"loss={params['loss']}", f"jitter={params['jitter']}"]
    if params["crash"] is not None:
        client, at, restart = params["crash"]
        clause = f"crash={client}@{at:g}"
        if restart is not None:
            clause += f":{restart:g}"
        clauses.append(clause)
    config = SimulationConfig(
        protocol=params["protocol"], n_clients=4, n_items=8,
        n_shards=params["n_shards"], n_regions=2,
        cross_shard_probability=0.5, read_probability=0.5,
        network_latency=25.0, faults=",".join(clauses),
        total_transactions=50, warmup_transactions=0,
        record_history=True, seed=params["seed"])
    result = run_simulation(config)
    assert result.serializability.ok
    assert result.metrics.committed > 0


# ---------------------------------------------------------------------------
# Prepared locks never leak after a coordinator crash
# ---------------------------------------------------------------------------

@pytest.mark.parametrize("protocol", ["s2pl", "g2pl"])
@pytest.mark.parametrize("seed", [1, 5, 23])
def test_prepared_state_is_settled_after_permanent_coordinator_crash(
        monkeypatch, protocol, seed):
    """Crash a client for good early in the run; by the end, every shard's
    prepared set must be free of that coordinator's transactions — the
    sweep hands them to cooperative termination instead of leaking the
    locks forever."""
    import repro.core.runner as runner_mod

    captured = {}
    real = runner_mod.make_sharded_protocol

    def capture(*args, **kwargs):
        servers, clients = real(*args, **kwargs)
        captured["servers"] = servers
        return servers, clients

    monkeypatch.setattr(runner_mod, "make_sharded_protocol", capture)
    config = SimulationConfig(
        protocol=protocol, n_clients=5, n_items=10, n_shards=4,
        n_regions=2, cross_shard_probability=0.7, read_probability=0.3,
        network_latency=25.0, faults="loss=0.01,crash=2@1500",
        total_transactions=80, warmup_transactions=0,
        record_history=True, seed=seed)
    result = run_simulation(config)
    assert result.metrics.committed > 0
    servers = list(captured["servers"].values())
    for server in servers:
        for txn_id, staged in server._prepared.items():
            # the only client crashed for good is 2; its prepared
            # transactions must have been settled by termination
            assert staged.client_id != 2, (
                f"shard {server.site_id} leaked prepared txn {txn_id} "
                f"of permanently crashed client 2")
    # and the permanent record stays pairwise consistent
    for i, a in enumerate(servers):
        for b in servers[i + 1:]:
            assert not (a.twopc_commits & b.twopc_aborts)
            assert not (a.twopc_aborts & b.twopc_commits)
