"""Unit tests for named random streams."""

from repro.sim import RandomStreams


def test_same_seed_same_sequence():
    a = RandomStreams(42).stream("clients")
    b = RandomStreams(42).stream("clients")
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]


def test_different_names_are_independent():
    streams = RandomStreams(42)
    a = [streams.stream("a").random() for _ in range(5)]
    b = [streams.stream("b").random() for _ in range(5)]
    assert a != b


def test_different_seeds_differ():
    a = RandomStreams(1).stream("x").random()
    b = RandomStreams(2).stream("x").random()
    assert a != b


def test_stream_is_cached():
    streams = RandomStreams(7)
    assert streams.stream("x") is streams.stream("x")


def test_consuming_one_stream_does_not_shift_another():
    fresh = RandomStreams(99)
    expected = [fresh.stream("b").random() for _ in range(3)]

    mixed = RandomStreams(99)
    for _ in range(1000):
        mixed.stream("a").random()
    got = [mixed.stream("b").random() for _ in range(3)]
    assert got == expected


def test_uniform_and_randint_helpers():
    streams = RandomStreams(5)
    for _ in range(100):
        value = streams.uniform("u", 2.0, 10.0)
        assert 2.0 <= value <= 10.0
        item = streams.randint("i", 1, 25)
        assert 1 <= item <= 25


def test_spawn_derives_independent_namespace():
    parent = RandomStreams(11)
    child1 = parent.spawn("replication-1")
    child2 = parent.spawn("replication-2")
    assert child1.stream("w").random() != child2.stream("w").random()
    # deterministic: re-deriving gives the same values
    again = RandomStreams(11).spawn("replication-1")
    assert again.stream("w").random() == RandomStreams(11).spawn(
        "replication-1").stream("w").random()


def test_buffered_stream_is_bit_identical_to_raw_draws():
    raw = RandomStreams(42)
    expected = [raw.stream("x").random() for _ in range(700)]

    buffered = RandomStreams(42).buffered("x", batch=256)
    got = [buffered.random() for _ in range(700)]
    assert got == expected


def test_buffered_uniform_matches_random_uniform():
    raw = RandomStreams(7)
    expected = [raw.stream("u").uniform(2.0, 9.0) for _ in range(300)]

    buffered = RandomStreams(7).buffered("u", batch=64)
    got = [buffered.uniform(2.0, 9.0) for _ in range(300)]
    assert got == expected


def test_buffered_stream_rejects_bad_batch():
    import pytest

    with pytest.raises(ValueError):
        RandomStreams(1).buffered("x", batch=0)
