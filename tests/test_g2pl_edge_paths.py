"""Edge-path tests for g-2PL: races, abort plumbing, asymmetric networks."""

from repro.network.topology import MatrixTopology

from helpers import Harness, R, W, spec


def asymmetric_topology(n_clients, server_client=50.0, client_client=1.0):
    """Clients near each other, far from the server — the regime where a
    reader's release can overtake the server's concurrent MR1W ship."""
    latencies = {}
    for a in range(1, n_clients + 1):
        latencies[(0, a)] = server_client
        for b in range(1, n_clients + 1):
            if a != b:
                latencies[(a, b)] = client_client
    return MatrixTopology(latencies)


def test_mr1w_release_beating_gship_race():
    """With client-client latency << server-client latency, the reader's
    release reaches the writer before the server's concurrent data ship.
    The early_releases buffer must absorb it."""
    h = Harness("g2pl", n_clients=3, mr1w=True,
                topology=asymmetric_topology(3))
    # Primer holds the item so reader+writer share one window.
    h.launch(3, spec((0, W), think=1.0), txn_id=100)
    h.launch(1, spec((0, R), think=0.1), delay=1.0, txn_id=1)   # fast reader
    h.launch(2, spec((0, W), think=200.0), delay=1.5, txn_id=2)  # slow writer
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    # reader committed long before the writer even received the data;
    # its release crossed the ship. The final version still lands
    # (primer's write + the chained writer's write).
    assert h.store.read(0).version == 2
    h.check_serializable()
    h.server.assert_invariants()


def test_basic_mode_release_data_race():
    """Same race without MR1W: the data rides the reader releases."""
    h = Harness("g2pl", n_clients=4, mr1w=False,
                topology=asymmetric_topology(4))
    h.launch(4, spec((0, W), think=1.0), txn_id=100)
    h.launch(1, spec((0, R), think=0.1), delay=1.0, txn_id=1)
    h.launch(2, spec((0, R), think=5.0), delay=1.0, txn_id=2)
    h.launch(3, spec((0, W), think=1.0), delay=1.5, txn_id=3)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert h.store.read(0).version == 2  # primer + one chained writer
    h.check_serializable()


def test_aborted_txn_expect_items_arrive_later():
    """A transaction aborted while items are still in flight to it must
    forward them when they arrive (AbortNotice.expect_items plumbing)."""
    h = Harness("g2pl", n_clients=3, latency=10.0)
    # txn 1 will hold item 0 for a long time; txn 2 is queued behind it on
    # item 0 (in flight to txn 2 only much later) while it holds item 1
    # and deadlocks via item 1 <-> item 0 crossing with txn 1.
    h.launch(1, spec((0, W), (1, W), think=30.0), txn_id=1)
    h.launch(2, spec((1, W), (0, W), think=1.0), delay=5.0, txn_id=2)
    outcomes = h.run()
    aborted = [o for o in outcomes.values() if not o.committed]
    assert len(aborted) == 1
    # Whatever was in flight to the victim was forwarded: both items are
    # home and carry the survivor's writes.
    assert h.store.read(0).version + h.store.read(1).version == 2
    h.check_serializable()
    h.server.assert_invariants()


def test_three_way_crossing_aborts_minimally():
    h = Harness("g2pl", n_clients=3, n_items=3, latency=10.0)
    h.launch(1, spec((0, W), (1, W), think=1.0), txn_id=1)
    h.launch(2, spec((1, W), (2, W), think=1.0), txn_id=2)
    h.launch(3, spec((2, W), (0, W), think=1.0), txn_id=3)
    outcomes = h.run()
    committed = sum(1 for o in outcomes.values() if o.committed)
    assert committed >= 1
    h.check_serializable()
    h.server.assert_invariants()


def test_deep_chains_with_interleaved_aborts():
    """A stress pattern: many small crossings over few items."""
    h = Harness("g2pl", n_clients=4, n_items=2, latency=5.0)
    txn_id = 0
    for wave in range(4):
        for client in (1, 2, 3, 4):
            txn_id += 1
            items = ((0, W), (1, W)) if client % 2 else ((1, W), (0, W))
            h.launch(client, spec(*items, think=1.0),
                     delay=wave * 120.0 + client, txn_id=txn_id)
    outcomes = h.run()
    assert len(outcomes) == 16
    assert sum(1 for o in outcomes.values() if o.committed) >= 8
    h.check_serializable()
    h.server.assert_invariants()
    # Every item made it home.
    for info in h.server._items.values():
        assert info.at_server
        assert not info.chain_live


def test_txn_retired_only_after_all_forwards():
    """An MR1W writer that commits early must stay in the precedence graph
    until its parked updates are released (TxnDone deferral)."""
    h = Harness("g2pl", n_clients=4, mr1w=True, latency=10.0)
    h.launch(4, spec((0, W), think=1.0), txn_id=100)
    h.launch(1, spec((0, R), think=100.0), delay=1.0, txn_id=1)
    h.launch(2, spec((0, W), think=1.0), delay=1.5, txn_id=2)
    h.run(until=80.0)
    # Writer committed but the reader still holds; txn 2 must still be
    # known to the precedence machinery.
    assert h.outcomes[2].committed
    assert 2 in h.server._txns
    h.run()
    assert 2 not in h.server._txns
    h.check_serializable()


def test_windows_drain_when_clients_stop():
    h = Harness("g2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, W), think=1.0), txn_id=1)
    h.launch(2, spec((0, W), think=1.0), delay=1.0, txn_id=2)
    h.run()
    info = h.server._items[0]
    assert info.at_server
    assert not info.window
    assert h.server.precedence.edge_count == 0
    assert len(h.server.precedence) == 0
