"""Determinism guarantees of the tracing layer.

Two properties, both load-bearing:

* enabling tracing (and probes) leaves every simulation result — response
  times, server counters, durations, message counts — bit-identical to an
  untraced run of the same seed;
* merged trace summaries are identical whether the replications ran
  serially or fanned out over a process pool.
"""

import dataclasses

from repro.core.config import SimulationConfig
from repro.core.runner import run_replications, run_simulation


def base_config(**overrides):
    base = dict(protocol="g2pl", n_clients=6, n_items=10,
                total_transactions=80, warmup_transactions=8,
                record_history=False)
    base.update(overrides)
    return SimulationConfig(**base)


def assert_results_identical(a, b):
    assert a.metrics.response_times == b.metrics.response_times
    assert a.metrics.committed == b.metrics.committed
    assert a.metrics.aborted == b.metrics.aborted
    assert a.metrics.abort_reasons == b.metrics.abort_reasons
    assert a.metrics.first_measured_at == b.metrics.first_measured_at
    assert a.metrics.last_measured_at == b.metrics.last_measured_at
    assert a.duration == b.duration
    assert a.messages_sent == b.messages_sent
    assert a.data_units_sent == b.data_units_sent
    assert a.server_stats == b.server_stats


class TestTracingIsInvisible:
    def test_tracing_leaves_results_bit_identical(self):
        plain = run_simulation(base_config())
        traced = run_simulation(base_config(trace=True))
        assert_results_identical(plain, traced)

    def test_probes_leave_results_bit_identical(self):
        plain = run_simulation(base_config())
        probed = run_simulation(base_config(trace=True,
                                            probe_interval=50.0))
        assert_results_identical(plain, probed)

    def test_faulted_tracing_bit_identical(self):
        faults = "loss=0.05,dup=0.01,jitter=25,crash=2@4000:8000"
        plain = run_simulation(base_config(faults=faults))
        traced = run_simulation(base_config(faults=faults, trace=True,
                                            probe_interval=100.0))
        assert_results_identical(plain, traced)

    def test_traced_runs_reproducible(self):
        a = run_simulation(base_config(trace=True, probe_interval=100.0))
        b = run_simulation(base_config(trace=True, probe_interval=100.0))
        assert a.trace.events == b.trace.events
        assert a.trace.txns == b.trace.txns
        assert a.trace.probes == b.trace.probes
        assert (dataclasses.asdict(a.trace.summary)
                == dataclasses.asdict(b.trace.summary))


class TestParallelTraceMerge:
    def test_jobs_parallel_merge_identical_to_serial(self):
        config = base_config(trace=True, probe_interval=100.0)
        serial = run_replications(config, replications=2, jobs=1)
        parallel = run_replications(config, replications=2, jobs=2)
        assert serial.trace_summary is not None
        assert (dataclasses.asdict(serial.trace_summary)
                == dataclasses.asdict(parallel.trace_summary))
        assert serial.trace_summary.runs == 2

    def test_untraced_replications_have_no_summary(self):
        result = run_replications(base_config(), replications=2)
        assert result.trace_summary is None
