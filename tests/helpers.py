"""Shared helpers for protocol-level tests: hand-built micro scenarios."""

from repro.core.config import SimulationConfig
from repro.locking.modes import LockMode
from repro.network.topology import UniformTopology
from repro.network.transport import Network
from repro.protocols.registry import make_protocol
from repro.protocols.transaction import Transaction
from repro.sim.engine import Simulator
from repro.storage.store import VersionedStore
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder
from repro.workload.spec import Operation, TransactionSpec

R, W = LockMode.READ, LockMode.WRITE


def spec(*ops, think=1.0):
    """Build a TransactionSpec from (item, mode) pairs."""
    return TransactionSpec(operations=tuple(
        Operation(item_id=item, mode=mode, think_time=think)
        for item, mode in ops))


class Harness:
    """A protocol instance wired to a network, with manual txn launching."""

    def __init__(self, protocol, n_clients=3, n_items=4, latency=10.0,
                 topology=None, **config_overrides):
        defaults = dict(
            protocol=protocol, n_clients=n_clients, n_items=n_items,
            network_latency=latency, total_transactions=100,
            warmup_transactions=0, record_history=True)
        defaults.update(config_overrides)
        self.config = SimulationConfig(**defaults)
        self.sim = Simulator()
        self.history = HistoryRecorder()
        self.store = VersionedStore(range(n_items))
        self.wal = WriteAheadLog()
        self.network = Network(self.sim,
                               topology or UniformTopology(latency))
        client_ids = list(range(1, n_clients + 1))
        self.server, self.clients = make_protocol(
            protocol, self.sim, self.config, self.store, self.wal,
            self.history, client_ids)
        self.network.add_site(self.server)
        for client in self.clients.values():
            self.network.add_site(client)
        self._txn_counter = 0
        self.outcomes = {}

    def launch(self, client_id, txn_spec, delay=0.0, txn_id=None):
        """Start one transaction at ``client_id`` after ``delay``;
        returns the process (an awaitable event)."""
        if txn_id is None:
            self._txn_counter += 1
            txn_id = self._txn_counter

        def body():
            if delay:
                yield self.sim.timeout(delay)
            txn = Transaction(txn_id, client_id, txn_spec, birth=self.sim.now)
            outcome = yield self.sim.spawn(
                self.clients[client_id].execute(txn))
            self.outcomes[txn_id] = outcome
            return outcome

        return self.sim.spawn(body())

    def run(self, until=None):
        self.sim.run(until=until)
        return self.outcomes

    def check_serializable(self):
        from repro.validate.serializability import check_history

        report = check_history(self.history)
        assert report.ok, str(report)
        return report
