"""Unit tests for the analysis/rendering helpers."""

import pytest

from repro.analysis import (
    ascii_plot,
    find_crossover,
    render_experiment,
    render_pairs,
)
from repro.core.experiments import ExperimentResult, ExperimentSeries
from repro.stats.ci import ConfidenceInterval


def ci(mean, half=0.0):
    return ConfidenceInterval(mean=mean, half_width=half, confidence=0.95,
                              n=3)


def make_result(s2pl_ys, g2pl_ys, xs=None):
    xs = xs or list(range(len(s2pl_ys)))
    result = ExperimentResult(experiment_id="figX", title="Test figure",
                              x_label="x", y_label="y")
    for name, ys in (("s2pl", s2pl_ys), ("g2pl", g2pl_ys)):
        series = result.series_for(name)
        for x, y in zip(xs, ys):
            series.add(x, ci(y))
    return result


class TestExperimentResult:
    def test_series_accumulate(self):
        series = ExperimentSeries("s2pl")
        series.add(1.0, ci(10.0, 2.0))
        series.add(2.0, ci(20.0, 3.0))
        assert series.xs == [1.0, 2.0]
        assert series.ys == [10.0, 20.0]
        assert series.half_widths == [2.0, 3.0]
        assert series.y_at(2.0) == 20.0

    def test_improvement_at(self):
        result = make_result([100.0], [80.0], xs=[5.0])
        assert result.improvement_at(5.0) == pytest.approx(20.0)

    def test_improvement_negative_when_contender_slower(self):
        result = make_result([100.0], [130.0], xs=[5.0])
        assert result.improvement_at(5.0) == pytest.approx(-30.0)


class TestRenderers:
    def test_render_experiment_contains_rows(self):
        result = make_result([100.0, 200.0], [80.0, 150.0], xs=[1.0, 2.0])
        text = render_experiment(result,
                                 improvement_between=("s2pl", "g2pl"))
        assert "Test figure" in text
        assert "s2pl" in text and "g2pl" in text
        assert "+20.0%" in text
        assert "+25.0%" in text

    def test_render_experiment_shows_ci(self):
        result = ExperimentResult(experiment_id="f", title="t",
                                  x_label="x", y_label="y")
        result.series_for("s2pl").add(1.0, ci(100.0, 5.0))
        text = render_experiment(result)
        assert "±5.0" in text

    def test_render_notes(self):
        result = make_result([1.0], [2.0])
        result.notes.append("a caveat")
        assert "note: a caveat" in render_experiment(result)

    def test_render_pairs(self):
        text = render_pairs("Title", [("alpha", 1), ("beta-longer", 2)])
        assert "Title" in text
        assert "alpha" in text and "beta-longer" in text

    def test_ascii_plot_renders_markers_and_legend(self):
        result = make_result([1.0, 5.0, 9.0], [2.0, 4.0, 6.0])
        plot = ascii_plot(result, width=20, height=6)
        assert "*" in plot and "x" in plot
        assert "legend" in plot
        assert "*=s2pl" in plot

    def test_ascii_plot_empty(self):
        result = ExperimentResult(experiment_id="f", title="t",
                                  x_label="x", y_label="y")
        result.series_for("s2pl")
        assert "empty" in ascii_plot(result)

    def test_ascii_plot_single_point(self):
        result = make_result([5.0], [3.0], xs=[1.0])
        assert "legend" in ascii_plot(result, width=10, height=4)


class TestCrossover:
    def test_crossover_interpolated(self):
        # s2pl - g2pl: +10 at x=0, -10 at x=1 -> crossover at 0.5
        result = make_result([100.0, 100.0], [90.0, 110.0], xs=[0.0, 1.0])
        assert find_crossover(result) == pytest.approx(0.5)

    def test_no_crossover_returns_none(self):
        result = make_result([100.0, 100.0], [90.0, 95.0], xs=[0.0, 1.0])
        assert find_crossover(result) is None

    def test_exact_tie_returns_that_x(self):
        result = make_result([100.0, 100.0], [100.0, 90.0], xs=[3.0, 4.0])
        assert find_crossover(result) == 3.0

    def test_asymmetric_interpolation(self):
        # diff: +30 at x=0, -10 at x=2 -> zero at x = 2 * 30/40 = 1.5
        result = make_result([100.0, 100.0], [70.0, 110.0], xs=[0.0, 2.0])
        assert find_crossover(result) == pytest.approx(1.5)
