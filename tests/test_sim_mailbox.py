"""Unit tests for the FIFO mailbox."""

import pytest

from repro.sim import Mailbox, Simulator


@pytest.fixture
def sim():
    return Simulator()


def test_put_then_get(sim):
    box = Mailbox(sim)
    box.put("hello")
    assert sim.run(until=box.get()) == "hello"
    assert len(box) == 0


def test_get_blocks_until_put(sim):
    box = Mailbox(sim)
    results = []

    def consumer():
        item = yield box.get()
        results.append((sim.now, item))

    sim.spawn(consumer())
    sim.call_later(4.0, box.put, "late item")
    sim.run()
    assert results == [(4.0, "late item")]


def test_fifo_order_of_items(sim):
    box = Mailbox(sim)
    for item in (1, 2, 3):
        box.put(item)

    def consumer():
        out = []
        for _ in range(3):
            out.append((yield box.get()))
        return out

    assert sim.run(until=sim.spawn(consumer())) == [1, 2, 3]


def test_fifo_order_of_getters(sim):
    box = Mailbox(sim)
    results = []

    def consumer(name):
        item = yield box.get()
        results.append((name, item))

    sim.spawn(consumer("first"))
    sim.spawn(consumer("second"))
    sim.call_later(1.0, box.put, "x")
    sim.call_later(2.0, box.put, "y")
    sim.run()
    assert results == [("first", "x"), ("second", "y")]


def test_len_counts_queued_items(sim):
    box = Mailbox(sim)
    box.put("a")
    box.put("b")
    assert len(box) == 2
    assert box.peek_all() == ["a", "b"]


def test_interrupted_getter_does_not_consume(sim):
    from repro.sim import Interrupt

    box = Mailbox(sim)
    results = []

    def fickle():
        try:
            yield box.get()
        except Interrupt:
            results.append("interrupted")

    def steady():
        item = yield box.get()
        results.append(item)

    fickle_process = sim.spawn(fickle())
    sim.spawn(steady())
    sim.call_later(1.0, fickle_process.interrupt)
    sim.call_later(2.0, box.put, "the item")
    sim.run()
    assert results == ["interrupted", "the item"]
