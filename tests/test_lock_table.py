"""Unit tests for the lock table."""

import pytest

from repro.locking import LockMode, LockRequestState, LockTable

R, W = LockMode.READ, LockMode.WRITE
GRANTED, WAITING = LockRequestState.GRANTED, LockRequestState.WAITING


@pytest.fixture
def table():
    return LockTable()


def test_first_acquire_granted(table):
    assert table.acquire("t1", "x", R) is GRANTED
    assert table.holds("t1", "x", R)


def test_readers_share(table):
    assert table.acquire("t1", "x", R) is GRANTED
    assert table.acquire("t2", "x", R) is GRANTED
    assert table.holders("x") == {"t1": R, "t2": R}


def test_writer_blocks_reader_and_vice_versa(table):
    assert table.acquire("t1", "x", W) is GRANTED
    assert table.acquire("t2", "x", R) is WAITING
    assert table.acquire("t3", "x", W) is WAITING
    assert table.waiters("x") == [("t2", R), ("t3", W)]


def test_reader_cannot_overtake_queued_writer(table):
    table.acquire("t1", "x", R)
    table.acquire("t2", "x", W)  # queued
    assert table.acquire("t3", "x", R) is WAITING  # no overtaking
    assert table.waiters("x") == [("t2", W), ("t3", R)]


def test_release_grants_fifo_prefix_of_readers(table):
    table.acquire("w", "x", W)
    table.acquire("r1", "x", R)
    table.acquire("r2", "x", R)
    table.acquire("w2", "x", W)
    granted = table.release_all("w")
    assert granted == [("r1", "x", R), ("r2", "x", R)]
    assert table.holders("x") == {"r1": R, "r2": R}
    assert table.waiters("x") == [("w2", W)]


def test_release_grants_single_writer(table):
    table.acquire("r1", "x", R)
    table.acquire("w1", "x", W)
    table.acquire("w2", "x", W)
    granted = table.release_all("r1")
    assert granted == [("w1", "x", W)]
    assert table.waiters("x") == [("w2", W)]


def test_writer_granted_only_after_all_readers_release(table):
    table.acquire("r1", "x", R)
    table.acquire("r2", "x", R)
    table.acquire("w", "x", W)
    assert table.release_all("r1") == []
    assert table.release_all("r2") == [("w", "x", W)]


def test_release_all_spans_items(table):
    table.acquire("t1", "x", W)
    table.acquire("t1", "y", W)
    table.acquire("t2", "x", R)
    table.acquire("t3", "y", R)
    granted = table.release_all("t1")
    assert sorted(granted) == [("t2", "x", R), ("t3", "y", R)]
    assert table.held_items("t1") == {}


def test_release_drops_queued_requests_of_txn(table):
    table.acquire("t1", "x", W)
    table.acquire("t2", "x", W)  # queued
    table.acquire("t3", "x", R)  # queued behind t2
    granted = table.release_all("t2")  # t2 aborts while waiting
    assert granted == []
    assert table.waiters("x") == [("t3", R)]
    # t3 is granted when t1 releases
    assert table.release_all("t1") == [("t3", "x", R)]


def test_dropping_queued_writer_unblocks_reader(table):
    table.acquire("r1", "x", R)
    table.acquire("w", "x", W)   # queued
    table.acquire("r2", "x", R)  # stuck behind w
    granted = table.release_all("w")
    assert granted == [("r2", "x", R)]


def test_rerequest_same_mode_granted(table):
    table.acquire("t1", "x", R)
    assert table.acquire("t1", "x", R) is GRANTED
    table.acquire("t2", "y", W)
    assert table.acquire("t2", "y", W) is GRANTED
    assert table.acquire("t2", "y", R) is GRANTED  # weaker re-request


def test_upgrade_sole_reader(table):
    table.acquire("t1", "x", R)
    assert table.acquire("t1", "x", W) is GRANTED
    assert table.holds("t1", "x", W)


def test_upgrade_with_other_readers_waits_at_head(table):
    table.acquire("t1", "x", R)
    table.acquire("t2", "x", R)
    table.acquire("t3", "x", W)  # queued
    assert table.acquire("t1", "x", W) is WAITING
    assert table.waiters("x")[0] == ("t1", W)
    granted = table.release_all("t2")
    assert granted == [("t1", "x", W)]
    assert table.holds("t1", "x", W)


def test_blockers_of_reports_holders_and_queue_ahead(table):
    table.acquire("h1", "x", R)
    table.acquire("h2", "x", R)
    table.acquire("w1", "x", W)
    table.acquire("r1", "x", R)
    assert sorted(table.blockers_of("w1", "x")) == ["h1", "h2"]
    # r1 waits for the queued writer ahead of it, not for the readers
    assert table.blockers_of("r1", "x") == ["w1"]


def test_blockers_of_unqueued_txn_is_empty(table):
    table.acquire("t1", "x", W)
    assert table.blockers_of("t1", "x") == []
    assert table.blockers_of("nobody", "x") == []


def test_lock_state_cleared_when_idle(table):
    table.acquire("t1", "x", W)
    table.release_all("t1")
    assert table.holders("x") == {}
    assert table.waiters("x") == []
    assert "x" not in table._items  # fully garbage collected


def test_held_items_reports_modes(table):
    table.acquire("t1", "x", R)
    table.acquire("t1", "y", W)
    assert table.held_items("t1") == {"x": R, "y": W}
