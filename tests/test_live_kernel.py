"""LiveKernel semantics: the simulator contract, paced by the wall clock.

All tests run with a tiny ``time_scale`` so wall-clock waits stay in the
milliseconds; assertions are on *ordering* and *values*, with generous
bounds on elapsed time (CI machines stall).
"""

import asyncio
import time

import pytest

from repro.live.clock import KERNEL_CONTRACT, LiveKernel, kernel_contract_holds
from repro.live.transport import LiveTransport
from repro.network.topology import UniformTopology
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError


def run_async(coroutine):
    return asyncio.run(coroutine)


def test_contract_is_shared_with_the_simulator():
    assert kernel_contract_holds(Simulator())
    assert kernel_contract_holds(LiveKernel())
    # the contract names must actually exist on both
    for name in KERNEL_CONTRACT:
        assert hasattr(Simulator(), name)


def test_rejects_nonpositive_time_scale():
    with pytest.raises(ValueError):
        LiveKernel(time_scale=0.0)


def test_timeout_orders_and_values():
    kernel = LiveKernel(time_scale=0.001)
    seen = []

    def process():
        value = yield kernel.timeout(2.0, value="first")
        seen.append((value, kernel.now))
        value = yield kernel.timeout(3.0, value="second")
        seen.append((value, kernel.now))
        return "done"

    result = run_async(kernel.run(until=kernel.spawn(process())))
    assert result == "done"
    assert [v for v, _ in seen] == ["first", "second"]
    t_first, t_second = (t for _, t in seen)
    assert t_first >= 2.0
    assert t_second >= t_first + 3.0


def test_now_tracks_wall_clock():
    kernel = LiveKernel(time_scale=0.001)  # 1 unit = 1ms

    def process():
        yield kernel.timeout(20.0)

    start = time.monotonic()
    run_async(kernel.run(until=kernel.spawn(process())))
    elapsed = time.monotonic() - start
    assert elapsed >= 0.018  # 20 units at 1ms each, minus clock granularity
    assert kernel.now >= 20.0


def test_fifo_at_equal_timestamps():
    kernel = LiveKernel(time_scale=0.0005)
    order = []
    for tag in range(5):
        kernel.call_later(1.0, order.append, tag)
    stopper = kernel.event()
    kernel.call_later(1.0, stopper.succeed)
    run_async(kernel.run(until=stopper))
    assert order == [0, 1, 2, 3, 4]


def test_cancellable_timer_is_skipped():
    kernel = LiveKernel(time_scale=0.0005)
    fired = []
    token = kernel.call_later_cancellable(1.0, fired.append, "timer")
    token[0] = True
    stopper = kernel.event()
    kernel.call_later(2.0, stopper.succeed)
    run_async(kernel.run(until=stopper))
    assert fired == []
    assert kernel.cancelled_events == 1


def test_event_injection_from_reader_task():
    """inject() must wake a kernel sleeping on a far-off timer."""
    kernel = LiveKernel(time_scale=0.001)
    got = kernel.event()

    def process():
        value = yield got
        return value

    async def scenario():
        proc = kernel.spawn(process())
        # park a far-future timer so the kernel sleeps deeply
        kernel.call_later(10_000.0, lambda: None)

        async def external():
            await asyncio.sleep(0.02)
            kernel.inject(got.succeed, "stimulus")

        task = asyncio.ensure_future(external())
        result = await kernel.run(until=proc)
        await task
        return result

    start = time.monotonic()
    assert run_async(scenario()) == "stimulus"
    assert time.monotonic() - start < 5.0  # did not wait out the timer


def test_process_exception_propagates():
    kernel = LiveKernel(time_scale=0.0005)

    def process():
        yield kernel.timeout(1.0)
        raise RuntimeError("boom")

    with pytest.raises(RuntimeError, match="boom"):
        run_async(kernel.run(until=kernel.spawn(process())))


def test_process_must_yield_events():
    kernel = LiveKernel(time_scale=0.0005)

    def process():
        yield 42

    with pytest.raises(SimulationError):
        run_async(kernel.run(until=kernel.spawn(process())))


def test_horizon_run_advances_clock():
    kernel = LiveKernel(time_scale=0.001)
    fired = []
    kernel.call_later(5.0, fired.append, "in")
    kernel.call_later(50.0, fired.append, "out")
    run_async(kernel.run(until=10.0))
    assert fired == ["in"]
    assert kernel.now >= 10.0


def test_stop_interrupts_run():
    kernel = LiveKernel(time_scale=0.001)

    async def scenario():
        async def stopper():
            await asyncio.sleep(0.02)
            kernel.stop()

        task = asyncio.ensure_future(stopper())
        await kernel.run()  # no work, no horizon: only stop() can end it
        await task

    run_async(asyncio.wait_for(scenario(), timeout=5.0))


def test_two_kernels_interleave_in_one_loop():
    """Two endpoints' kernels are just coroutines; they must co-run."""
    a, b = LiveKernel(time_scale=0.001), LiveKernel(time_scale=0.001)
    log = []
    a.call_later(2.0, log.append, "a2")
    b.call_later(1.0, log.append, "b1")
    b.call_later(3.0, log.append, "b3")

    async def scenario():
        await asyncio.gather(a.run(until=4.0), b.run(until=4.0))

    run_async(scenario())
    assert log == ["b1", "a2", "b3"]


def test_protocol_code_runs_unmodified_under_live_kernel():
    """The s-2PL client/server generators — written for the simulator —
    must execute a full transaction in-process under a LiveKernel with a
    LiveTransport delivering locally (both sites in this process)."""
    from repro.core.config import SimulationConfig
    from repro.protocols.registry import make_protocol
    from repro.protocols.transaction import Transaction
    from repro.storage.store import VersionedStore
    from repro.storage.wal import WriteAheadLog
    from repro.validate.history import HistoryRecorder
    from repro.workload.spec import Operation, TransactionSpec
    from repro.locking.modes import LockMode

    kernel = LiveKernel(time_scale=0.0005)
    config = SimulationConfig(
        protocol="s2pl", n_clients=1, n_items=3, network_latency=2.0,
        total_transactions=1, warmup_transactions=0)
    history = HistoryRecorder()
    store = VersionedStore(range(3))
    wal = WriteAheadLog()
    transport = LiveTransport(kernel, UniformTopology(2.0), site_id=0,
                              port_map={0: 0})
    server, clients = make_protocol("s2pl", kernel, config, store, wal,
                                    history, [1])
    transport.add_site(server)
    transport.add_site(clients[1])

    spec = TransactionSpec(operations=(
        Operation(item_id=0, mode=LockMode.WRITE, think_time=1.0),
        Operation(item_id=2, mode=LockMode.READ, think_time=1.0),
    ))
    txn = Transaction(1, 1, spec, birth=0.0)
    outcome = run_async(
        kernel.run(until=kernel.spawn(clients[1].execute(txn))))
    assert outcome.committed
    assert 1 in history.committed
    assert len(history.accesses) == 2
    # response spans 2 round trips of latency 2.0 plus 2 think units
    assert outcome.response_time >= 2 * (2 * 2.0) + 2 * 1.0
