"""The decomposition invariant battery (PR 8).

Every traced transaction's phase spans — network, server_queue,
client_think, commit_coord, abort_resolution, overhead, lock_wait — must
sum *exactly* to its measured response time, across every protocol
family, under fault injection, at jobs=1 and jobs=N, and through the
live merge. Tracing itself must stay observation-only: a traced run's
metrics fingerprint must be byte-identical to the untraced run (the
golden replay suite pins the same property against the committed
pre-optimization goldens).
"""

import math

import pytest

from repro.core.config import SimulationConfig
from repro.core.parallel import SimulationCell, run_cells
from repro.core.runner import run_simulation
from repro.obs.decompose import (
    DivergenceReport,
    common_committed,
    compare,
    decompose_records,
    decompose_trace,
)
from repro.obs.spans import (
    PHASES,
    PhaseAccumulator,
    check_record,
    check_records,
    phase_view,
    sum_violation,
    tolerance,
)
from repro.perf.fingerprint import result_fingerprint
from repro.perf.goldens import FAULTS


def traced_config(**overrides):
    base = dict(protocol="s2pl", n_clients=6, n_items=8,
                read_probability=0.6, network_latency=100.0,
                total_transactions=120, warmup_transactions=20,
                record_history=False, trace=True)
    base.update(overrides)
    return SimulationConfig(**base)


SHARDED = dict(n_shards=4, n_regions=2, cross_shard_probability=0.5,
               intra_region_latency=1.0)

#: one cell per protocol family the decomposition must hold over
PROTOCOL_CELLS = {
    "s2pl": dict(protocol="s2pl"),
    "g2pl": dict(protocol="g2pl"),
    "sharded-2pc": dict(protocol="s2pl", **SHARDED),
    "sharded-2pc-opt": dict(protocol="s2pl", commit_protocol="2pc-opt",
                            **SHARDED),
    "sharded-g2pl": dict(protocol="g2pl", **SHARDED),
}


class TestInvariantAcrossProtocols:
    @pytest.mark.parametrize("name", sorted(PROTOCOL_CELLS))
    def test_phases_sum_exactly_for_every_traced_txn(self, name):
        result = run_simulation(traced_config(**PROTOCOL_CELLS[name]),
                                seed=11)
        finished = [r for r in result.trace.txns
                    if not r.get("unfinished")]
        assert finished, "traced run produced no finished transactions"
        assert check_records(finished) == []
        for record in finished:
            phases = phase_view(record)
            assert sum(phases.values()) == pytest.approx(
                record["response"], abs=tolerance(record["response"]))
            # the simulator has no codec/scheduling overhead by definition
            assert phases["overhead"] == 0.0

    def test_commit_coord_charged_only_under_2pc(self):
        plain = run_simulation(traced_config(), seed=11)
        assert all(record["commit_coord"] == 0.0
                   for record in plain.trace.txns)
        sharded = run_simulation(
            traced_config(**PROTOCOL_CELLS["sharded-2pc"]), seed=11)
        coordinated = [r for r in sharded.trace.txns
                       if r["committed"] and r["commit_coord"] > 0.0]
        assert coordinated, "no cross-shard commit paid 2PC wire time"
        # 2PC wire is carved out of the generic network phase, never
        # added on top: the components still sum the same way
        for record in coordinated:
            assert record["commit_coord"] <= (
                record["propagation"] + record["transmission"]
                + record["slack"] + tolerance(record["response"]))

    def test_abort_resolution_never_hits_committed_txns(self):
        result = run_simulation(
            traced_config(n_clients=8, n_items=6, read_probability=0.2),
            seed=3)
        aborted = [r for r in result.trace.txns if not r["committed"]
                   and not r.get("unfinished")]
        assert aborted, "contended cell produced no aborts"
        assert all(r["abort_resolution"] == 0.0
                   for r in result.trace.txns if r["committed"])
        assert any(r["abort_resolution"] > 0.0 for r in aborted)
        # aborted records still satisfy the (relaxed) invariant
        assert check_records(aborted) == []


class TestInvariantUnderFaults:
    """Retransmissions replay a flight the transaction already paid for
    once; under faults the reliable channel hands the tracer no envelope,
    so propagation must not be double-charged and the residual must stay
    a valid span."""

    @pytest.mark.parametrize("protocol", ["s2pl", "g2pl"])
    def test_faulted_runs_keep_the_invariant(self, protocol):
        result = run_simulation(
            traced_config(protocol=protocol, n_clients=5, n_items=6,
                          total_transactions=100, warmup_transactions=15,
                          faults=FAULTS),
            seed=7)
        finished = [r for r in result.trace.txns
                    if not r.get("unfinished")]
        assert check_records(finished) == []
        summary = result.trace.summary
        assert summary.retransmissions > 0 or summary.drops_injected > 0
        # committed txns paid at most their measured response in wire time
        for record in finished:
            if record["committed"]:
                assert record["propagation"] <= record["response"]


class TestTracingIsObservationOnly:
    def test_traced_and_untraced_runs_share_a_metrics_fingerprint(self):
        kwargs = dict(PROTOCOL_CELLS["sharded-2pc"])
        untraced = run_simulation(traced_config(trace=False, **kwargs),
                                  seed=11)
        traced = run_simulation(traced_config(**kwargs), seed=11)
        traced_fp = result_fingerprint(traced)
        for key in ("trace_summary", "trace_events", "trace_txns",
                    "trace_probes"):
            traced_fp.pop(key)
        assert traced_fp == result_fingerprint(untraced)


class TestPooledParity:
    def test_jobs1_and_jobs4_agree_on_phase_sums(self):
        cells = [SimulationCell(config=traced_config(**kwargs), seed=11)
                 for _, kwargs in sorted(PROTOCOL_CELLS.items())]
        serial = run_cells(cells, jobs=1)
        pooled = run_cells(cells, jobs=4)
        for a, b in zip(serial, pooled):
            assert a.trace.summary.phase_sums() == \
                b.trace.summary.phase_sums()


def _record(txn=1, response=100.0, propagation=40.0, transmission=5.0,
            slack=1.0, server_queue=4.0, client_think=20.0,
            commit_coord=10.0, abort_resolution=0.0, overhead=0.0,
            committed=True):
    explained = (propagation + transmission + slack + server_queue
                 + client_think)
    return {
        "txn": txn, "client": 1, "committed": committed, "measured": True,
        "start": 0.0, "end": response, "response": response,
        "propagation": propagation, "transmission": transmission,
        "slack": slack, "server_queue": server_queue,
        "client_think": client_think, "commit_coord": commit_coord,
        "abort_resolution": abort_resolution, "overhead": overhead,
        "lock_wait": response - explained - overhead,
        "rounds": {}, "rounds_sequential": 0, "n_ops": 1,
        "abort_reason": None,
    }


class TestSpanArithmetic:
    def test_phase_view_carves_coordination_out_of_network(self):
        phases = phase_view(_record())
        assert phases["network"] == pytest.approx(40.0 + 5.0 + 1.0 - 10.0)
        assert phases["commit_coord"] == 10.0
        assert sum(phases.values()) == pytest.approx(100.0)

    def test_phase_view_tolerates_records_without_subaccounts(self):
        record = _record()
        for key in ("commit_coord", "abort_resolution", "overhead"):
            del record[key]
        record["lock_wait"] = 100.0 - (40.0 + 5.0 + 1.0 + 4.0 + 20.0)
        phases = phase_view(record)
        assert phases["network"] == pytest.approx(46.0)
        assert phases["commit_coord"] == 0.0
        assert sum(phases.values()) == pytest.approx(100.0)

    def test_sum_violation_catches_a_broken_budget(self):
        record = _record()
        record["lock_wait"] += 2.5
        assert "delta" in sum_violation(record)
        assert check_record(record) != []

    def test_negative_lock_wait_is_fatal_only_when_committed(self):
        record = _record(client_think=60.0)  # residual −40
        assert any("lock_wait is negative" in v
                   for v in check_record(record))
        aborted = _record(client_think=60.0, committed=False)
        assert check_record(aborted) == []
        # ... but strictness can be forced either way
        assert check_record(aborted, strict_lock_wait=True) != []
        assert check_record(record, strict_lock_wait=False) == []

    def test_other_negative_phases_are_always_fatal(self):
        record = _record(commit_coord=60.0)  # network goes negative
        assert any("network is negative" in v
                   for v in check_record(record))


class TestPhaseAccumulator:
    def _records(self, n=60):
        return [_record(txn=i, response=100.0 + i,
                        propagation=40.0 + (i % 7),
                        client_think=20.0 + (i % 3))
                for i in range(n)]

    def test_streaming_spill_preserves_moments_and_percentiles(self):
        exact = PhaseAccumulator(threshold=10_000)
        streaming = PhaseAccumulator(threshold=10, reservoir_capacity=1024)
        for record in self._records():
            exact.add(record)
            streaming.add(record)
        assert not exact.streaming and streaming.streaming
        for name in PHASES:
            assert streaming.mean(name) == pytest.approx(exact.mean(name))
            assert streaming.std(name) == pytest.approx(exact.std(name))
            assert streaming.totals[name] == pytest.approx(
                exact.totals[name])
            # capacity exceeds n, so the reservoir kept every value and
            # the interpolated percentiles match the exact path
            for p in (50.0, 95.0):
                assert streaming.percentile(name, p) == pytest.approx(
                    exact.percentile(name, p))

    def test_fractions_sum_to_one(self):
        acc = PhaseAccumulator()
        for record in self._records():
            acc.add(record)
        assert sum(acc.fraction(name) for name in PHASES) == \
            pytest.approx(1.0)

    def test_empty_accumulator_reports_nan(self):
        acc = PhaseAccumulator()
        assert math.isnan(acc.fraction("network"))
        assert math.isnan(acc.percentile("network", 50.0))


class TestDivergenceReport:
    def _pair(self):
        sim = decompose_records([_record(txn=i) for i in range(20)],
                                label="sim")
        live = decompose_records(
            [_record(txn=i, response=104.0, overhead=4.0)
             for i in range(20)],
            label="live")
        return compare(sim, live)

    def test_gap_is_attributed_per_phase(self):
        report = self._pair()
        assert isinstance(report, DivergenceReport)
        assert report.response_gap == pytest.approx(4.0)
        assert report.response_gap_relative == pytest.approx(0.04)
        shares = report.attribution()
        assert shares["overhead"] == pytest.approx(1.0)
        assert sum(shares.values()) == pytest.approx(1.0)
        # the shaped wire time is identical in both worlds
        assert report.network_agreement == pytest.approx(0.0)

    def test_describe_renders_every_phase(self):
        text = self._pair().describe()
        for name in PHASES:
            assert name in text
        assert "network phase agreement" in text

    def test_decompose_trace_selects_the_calibration_population(self):
        result = run_simulation(traced_config(), seed=11)
        decomposition = decompose_trace(result.trace)
        assert decomposition.violations == []
        assert decomposition.n_txns == sum(
            1 for r in result.trace.txns
            if r["committed"] and r["measured"])
        assert decomposition.response_mean == pytest.approx(
            result.trace.summary.response_sum
            / result.trace.summary.committed)


class TestLiveMergePhases:
    def _payload(self, site, role, records=(), partials=()):
        return {"role": role, "site": site, "protocol": "s2pl",
                "mode": "calibrate", "outcomes": [],
                "txn_records": list(records),
                "partial_records": list(partials),
                "history": {"accesses": [], "committed": [],
                            "aborted": [], "commit_times": {}},
                "net": {"messages_sent": 0, "data_units_sent": 0.0,
                        "per_type": {}},
                "engine": {"processed_events": 0, "peak_heap_depth": 0,
                           "cancelled_events": 0, "end_time": 0.0}}

    def test_partial_phase_charges_fold_and_overhead_cuts_lock_wait(self):
        from repro.live.results import MergedRun

        owner = _record(txn=1_000_001, response=100.0, overhead=3.0)
        owner["rounds"] = {"request": 1}
        server = self._payload(0, "server", partials=[
            {"txn": 1_000_001, "client": 1, "rounds": {"grant": 1},
             "propagation": 2.0, "transmission": 0.0, "slack": 0.0,
             "server_queue": 1.0, "client_think": 0.0,
             "commit_coord": 2.0, "abort_resolution": 0.0,
             "overhead": 0.5}])
        merged = MergedRun([server, self._payload(1, "client", [owner])])
        record = merged.records[1_000_001]
        assert record["commit_coord"] == pytest.approx(12.0)
        assert record["overhead"] == pytest.approx(3.5)
        explained = (record["propagation"] + record["transmission"]
                     + record["slack"] + record["server_queue"]
                     + record["client_think"])
        assert record["lock_wait"] == pytest.approx(
            100.0 - explained - 3.5)
        assert sum_violation(record) is None

    def test_old_payloads_without_phase_keys_merge_as_zero(self):
        from repro.live.results import MergedRun

        owner = _record(txn=1_000_002)
        for key in ("commit_coord", "abort_resolution", "overhead"):
            del owner[key]
        merged = MergedRun([self._payload(1, "client", [owner])])
        record = merged.records[1_000_002]
        assert record["commit_coord"] == 0.0
        assert record["overhead"] == 0.0
        assert sum_violation(record) is None

    def test_merge_tripwire_raises_on_a_broken_budget(self):
        from repro.live.results import MergedRun

        merged = MergedRun(
            [self._payload(1, "client", [_record(txn=1_000_003)])])
        merged.records[1_000_003]["lock_wait"] += 7.0
        with pytest.raises(AssertionError, match="span-sum invariant"):
            merged._enforce_span_invariant()


class TestPopulationProbes:
    def test_open_arrival_runs_expose_population_gauges(self):
        config = traced_config(
            protocol="g2pl", n_clients=4, n_items=20, population=40,
            arrival_rate=2e-4, total_transactions=60,
            warmup_transactions=6, probe_interval=500.0)
        result = run_simulation(config, seed=7)
        series = {name for _, name, _ in result.trace.probes}
        assert "popn_inflight" in series
        assert "popn_busy_skipped" in series
        assert "popn_shed" in series
        assert any(name.startswith("popn_inflight.site")
                   for name in series)

    def test_closed_loop_runs_have_no_population_gauges(self):
        result = run_simulation(traced_config(probe_interval=500.0),
                                seed=11)
        series = {name for _, name, _ in result.trace.probes}
        assert series, "probe sampler produced no samples"
        assert not any(name.startswith("popn_") for name in series)


class TestCLI:
    def test_decompose_verb_prints_a_budget_and_writes_csv(
            self, capsys, tmp_path):
        from repro.cli import main

        prefix = tmp_path / "dec"
        code = main(["decompose", "--protocol", "s2pl", "--clients", "6",
                     "--items", "8", "--transactions", "120",
                     "--warmup", "20", "--latency", "100",
                     "--shards", "2", "--out", str(prefix)])
        assert code == 0
        out = capsys.readouterr().out
        assert "decomposition [" in out
        for name in PHASES:
            assert name in out
        csv_path = tmp_path / "dec.phases.csv"
        header = csv_path.read_text().splitlines()[0]
        assert header == "txn,client,committed,response," + ",".join(PHASES)


@pytest.mark.live
class TestLiveDivergence:
    """The tentpole end to end: a loopback live run decomposed against
    the simulator's prediction of the same scenario."""

    def test_sim_vs_live_attributes_the_gap(self, tmp_path):
        from repro.live.scenario import ScenarioSpec
        from repro.obs.decompose import sim_vs_live

        spec = ScenarioSpec(protocol="s2pl", mode="calibrate",
                            n_clients=4, latency=2.0, think=1.0,
                            repeats=2)
        report, live, reference = sim_vs_live(
            spec, time_scale=0.02, workdir=str(tmp_path))
        assert report.sim.violations == []
        assert report.live.violations == []
        assert report.sim.n_txns == report.live.n_txns > 0
        # acceptance gate: live wire time tracks the simulator's
        # prediction — both worlds charge the same shaped flights
        assert report.network_agreement <= 0.05
        # any residual gap is carried by live-only phases, and the live
        # overhead phase is real (scheduling + codec time exists)
        assert report.live.phases["overhead"]["total"] >= 0.0
        sim_records, live_records = common_committed(
            reference, live.merged)
        assert set(sim_records) == set(live_records)

    def test_trace_export_round_trips_through_the_merged_chrome_trace(
            self, tmp_path):
        import json

        from repro.live.harness import run_live
        from repro.live.scenario import ScenarioSpec
        from repro.obs.export import (
            write_merged_chrome_trace,
            write_phases_csv,
        )

        spec = ScenarioSpec(protocol="g2pl", mode="calibrate",
                            n_clients=3, latency=2.0, think=1.0,
                            repeats=2, trace_export=True,
                            probe_interval=50.0)
        live = run_live(spec, time_scale=0.02, workdir=str(tmp_path))
        assert all("trace_events" in payload and "probes" in payload
                   for payload in live.merged.payloads)
        trace_path = tmp_path / "merged.chrome.json"
        write_merged_chrome_trace(trace_path, live.merged.payloads)
        events = json.loads(trace_path.read_text())["traceEvents"]
        pids = {e["pid"] for e in events if e.get("ph") == "M"}
        assert len(pids) == spec.n_clients + 1  # one lane per endpoint
        assert any(e.get("cat") == "txn" for e in events)
        assert any(e.get("cat") == "phase" for e in events)
        assert any(e.get("ph") == "C" for e in events)  # probe counters
        csv_path = tmp_path / "merged.phases.csv"
        write_phases_csv(csv_path, live.merged.records.values())
        assert len(csv_path.read_text().splitlines()) == \
            len(live.merged.records) + 1
