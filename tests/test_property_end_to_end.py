"""End-to-end property test: serializability holds for arbitrary small
workload configurations under every protocol."""

from hypothesis import given, settings, strategies as st

from repro import SimulationConfig, run_simulation

CONFIGS = st.fixed_dictionaries({
    "protocol": st.sampled_from(
        ["s2pl", "g2pl", "g2pl-basic", "g2pl-ro", "c2pl"]),
    "n_clients": st.integers(min_value=2, max_value=8),
    "n_items": st.integers(min_value=2, max_value=8),
    "read_probability": st.sampled_from([0.0, 0.3, 0.7, 1.0]),
    "network_latency": st.sampled_from([1.0, 25.0, 200.0]),
    "max_ops": st.integers(min_value=1, max_value=2),
    "mpl": st.sampled_from([1, 2]),
    "access_skew": st.sampled_from([0.0, 1.0]),
    "seed": st.integers(min_value=1, max_value=10_000),
})


@given(CONFIGS)
@settings(max_examples=25, deadline=None)
def test_every_configuration_is_serializable(params):
    params = dict(params)
    params["max_ops"] = min(params["max_ops"], params["n_items"])
    config = SimulationConfig(total_transactions=60, warmup_transactions=0,
                              **params)
    result = run_simulation(config)
    assert result.serializability.ok
    assert result.metrics.finished == 60
    # Committed work is visible: every installed version at the server was
    # produced by some committed transaction (the checker verified the
    # converse); response times are positive.
    if result.metrics.committed:
        assert result.mean_response_time > 0
