"""Unit tests for the repro.adapt controllers (pure arithmetic layer).

The controllers are deliberately simulator-free: every law asserted here
(EWMA convergence, the bounded integral feedback on hold length, the
hysteresis loop, the quiescence bound) is checked on plain numbers, so a
failure localises to the control law rather than to protocol plumbing.
"""

import random

import pytest

from repro.adapt import (
    ContentionController,
    EwmaEstimator,
    SpeculationController,
    WindowController,
)


class TestEwma:
    def test_no_sample_state_then_first_sample_exact(self):
        est = EwmaEstimator(0.3)
        assert est.value is None
        assert est.samples == 0
        est.observe(10.0)
        assert est.value == 10.0
        assert est.samples == 1

    def test_alpha_one_tracks_last_sample(self):
        est = EwmaEstimator(1.0)
        for sample in (5.0, 9.0, 2.0):
            est.observe(sample)
            assert est.value == sample

    def test_converges_to_constant_input(self):
        est = EwmaEstimator(0.3)
        for _ in range(100):
            est.observe(7.0)
        assert est.value == pytest.approx(7.0)

    def test_update_moves_fraction_alpha_toward_sample(self):
        est = EwmaEstimator(0.25)
        est.observe(0.0)
        est.observe(8.0)
        assert est.value == pytest.approx(2.0)  # 0 + 0.25 * (8 - 0)

    def test_rejects_bad_alpha(self):
        for alpha in (0.0, -0.1, 1.5):
            with pytest.raises(ValueError):
                EwmaEstimator(alpha)


def _window(latency=100.0, **overrides):
    kwargs = dict(gain=0.5, target_depth=3.0, min_hold=0.0,
                  max_hold=200.0, latency=latency)
    kwargs.update(overrides)
    return WindowController(**kwargs)


class TestWindowController:
    def test_initial_hold_is_half_latency_clamped(self):
        assert _window().hold == 50.0
        assert _window(max_hold=30.0).hold == 30.0
        assert _window(min_hold=80.0).hold == 80.0

    def test_feedback_lengthens_hold_below_target(self):
        ctl = _window()
        before = ctl.hold
        ctl.observe_freeze(1)  # depth 1 < target 3
        # h += gain * (target - depth) * latency/8 = 0.5 * 2 * 12.5
        assert ctl.hold == pytest.approx(before + 12.5)

    def test_feedback_shortens_hold_above_target(self):
        ctl = _window()
        before = ctl.hold
        ctl.observe_freeze(7)  # depth 7 > target 3
        assert ctl.hold == pytest.approx(before - 25.0)

    def test_hold_clamps_to_bounds_under_any_gain(self):
        ctl = _window(gain=50.0)
        for _ in range(10):
            ctl.observe_freeze(1)
        assert ctl.hold == 200.0  # pinned at max_hold
        for _ in range(10):
            ctl.observe_freeze(100)
        assert ctl.hold == 0.0    # pinned at min_hold

    def test_declines_hold_until_interarrival_known(self):
        ctl = _window()
        assert ctl.hold_time() == 0.0
        assert ctl.holds == 0
        ctl.observe_arrival(0.0)       # first arrival: still no interval
        assert ctl.hold_time() == 0.0
        ctl.observe_arrival(40.0)      # EWMA tau = 40 <= max_hold
        assert ctl.hold_time() == pytest.approx(ctl.hold)
        assert ctl.holds == 1

    def test_declines_hold_for_sparse_arrivals(self):
        ctl = _window(max_hold=50.0)
        ctl.observe_arrival(0.0)
        ctl.observe_arrival(500.0)     # tau = 500 > max_hold: pointless
        assert ctl.hold_time() == 0.0
        assert ctl.holds == 0

    def test_zero_hold_never_arms(self):
        ctl = _window(max_hold=0.0)
        ctl.observe_arrival(0.0)
        ctl.observe_arrival(10.0)
        assert ctl.hold == 0.0
        assert ctl.hold_time() == 0.0

    def test_jitter_stays_within_five_percent(self):
        ctl = _window()
        ctl.observe_arrival(0.0)
        ctl.observe_arrival(10.0)
        rng = random.Random(7)
        draws = [ctl.hold_time(rng) for _ in range(200)]
        low = ctl.hold * (1.0 - WindowController.JITTER)
        high = ctl.hold * (1.0 + WindowController.JITTER)
        assert all(low <= draw <= high for draw in draws)
        assert len(set(draws)) > 1  # actually dithered


class TestContentionController:
    def _ctl(self, **overrides):
        kwargs = dict(low=0.3, high=0.5, ewma_alpha=1.0, scale=3.0)
        kwargs.update(overrides)
        return ContentionController(**kwargs)

    def test_score_squashes_depth(self):
        ctl = self._ctl()
        assert ctl.score() == 0.0           # no samples yet
        ctl.observe(3.0)
        assert ctl.score() == pytest.approx(0.5)   # d == scale
        ctl.observe(9.0)
        assert ctl.score() == pytest.approx(0.75)

    def test_switches_to_single_below_low(self):
        ctl = self._ctl()
        assert ctl.mode == "grouped"
        ctl.observe(1.0)                    # score 0.25 < low 0.3
        assert ctl.decide() == "single"
        assert ctl.mode == "single"
        assert (ctl.epoch, ctl.switches) == (1, 1)

    def test_switches_back_to_grouped_above_high(self):
        ctl = self._ctl()
        ctl.observe(1.0)
        ctl.decide()
        ctl.observe(6.0)                    # score 0.667 > high 0.5
        assert ctl.decide() == "grouped"
        assert (ctl.epoch, ctl.switches) == (2, 2)

    def test_dead_band_holds_mode(self):
        """Scores between the thresholds never flap the mode."""
        ctl = self._ctl()
        ctl.observe(2.0)                    # score 0.4: in (0.3, 0.5)
        assert ctl.decide() is None
        assert ctl.mode == "grouped"
        ctl.observe(1.0)
        ctl.decide()                        # -> single at 0.25
        ctl.observe(2.0)                    # back to 0.4: still dead band
        assert ctl.decide() is None
        assert ctl.mode == "single"
        assert ctl.switches == 1

    def test_hysteresis_requires_crossing_not_touching(self):
        ctl = self._ctl(low=0.3, high=0.5)
        ctl.observe(1.2857142857142858)     # score exactly ~0.3
        assert ctl.decide() is None         # < is strict
        ctl.mode = "single"
        ctl.observe(3.0)                    # score exactly 0.5
        assert ctl.decide() is None         # > is strict


class TestSpeculationController:
    def test_bound_is_margin_times_latency(self):
        ctl = SpeculationController(1.5, 200.0)
        assert ctl.bound == 300.0
        assert (ctl.extensions, ctl.hits, ctl.misses) == (0, 0, 0)
