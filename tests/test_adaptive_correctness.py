"""The adaptive-correctness battery: random contention profiles, random
controller tunings, and random mode-switch schedules — the history must
stay serializable and strict no matter where the controllers move the
thresholds, and no window entry may be lost across a mode switch or a
speculative extension.

``run_simulation(record_history=True)`` *raises* on any serializability
or strictness violation, and the runner calls every server's
``assert_invariants`` at close — which, for adaptive servers, includes
the window ledger (``enqueued == frozen + purged + pending``), i.e. the
no-lost-window-entry invariant.  So every property here doubles as an
end-to-end crash test of those validators.
"""

from hypothesis import given, settings, strategies as st

from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation

# ---------------------------------------------------------------------------
# Random contention profiles across the whole adaptive family
# ---------------------------------------------------------------------------

ADAPTIVE_CONFIGS = st.fixed_dictionaries({
    "protocol": st.sampled_from(["g2pl-adaptive", "hybrid", "g2pl-spec"]),
    "n_clients": st.integers(min_value=2, max_value=8),
    "n_items": st.integers(min_value=3, max_value=10),
    "read_probability": st.sampled_from([0.0, 0.5, 0.8, 1.0]),
    "network_latency": st.sampled_from([10.0, 100.0, 400.0]),
    "seed": st.integers(min_value=1, max_value=10_000),
})


@given(ADAPTIVE_CONFIGS)
@settings(max_examples=20, deadline=None)
def test_random_adaptive_runs_stay_serializable_and_strict(params):
    config = SimulationConfig(total_transactions=40, warmup_transactions=0,
                              max_ops=min(4, params["n_items"]),
                              record_history=True, **params)
    result = run_simulation(config)
    assert result.serializability.ok
    assert result.metrics.finished == 40
    # the adaptive window ledger survived assert_invariants at close;
    # its terms must cover every enqueued request
    stats = result.server_stats
    assert (stats["window_frozen"] + stats["window_purged"]
            <= stats["window_enqueued"])


# ---------------------------------------------------------------------------
# Random hybrid thresholds: mode-switch epochs anywhere on the score axis
# ---------------------------------------------------------------------------

HYBRID_TUNINGS = st.fixed_dictionaries({
    "low": st.floats(min_value=0.0, max_value=0.6),
    "band": st.floats(min_value=0.0, max_value=0.4),
    "scale": st.sampled_from([0.5, 1.0, 3.0, 8.0]),
    "ewma": st.sampled_from([0.1, 0.5, 1.0]),
    "read_probability": st.sampled_from([0.2, 0.6, 0.9]),
    "n_clients": st.integers(min_value=3, max_value=8),
    "seed": st.integers(min_value=1, max_value=10_000),
})


@given(HYBRID_TUNINGS)
@settings(max_examples=15, deadline=None)
def test_random_hybrid_tunings_stay_correct(params):
    """Thresholds drawn across the whole score axis force switching at
    arbitrary points in the run (including pathological flappy tunings
    with a zero-width dead band); correctness must not depend on *when*
    an item changes mode."""
    low = params["low"]
    config = SimulationConfig(
        protocol="hybrid", n_clients=params["n_clients"], n_items=6,
        max_ops=4, read_probability=params["read_probability"],
        network_latency=100.0, hybrid_low=low,
        hybrid_high=min(low + params["band"], 1.0),
        hybrid_scale=params["scale"], adapt_ewma=params["ewma"],
        total_transactions=40, warmup_transactions=0,
        record_history=True, seed=params["seed"])
    result = run_simulation(config)
    assert result.serializability.ok
    assert result.metrics.finished == 40


# ---------------------------------------------------------------------------
# Random window/speculation tunings: holds and extensions at any cadence
# ---------------------------------------------------------------------------

TIMING_TUNINGS = st.fixed_dictionaries({
    "protocol": st.sampled_from(["g2pl-adaptive", "g2pl-spec"]),
    "gain": st.sampled_from([0.1, 0.5, 2.0, 10.0]),
    "target": st.sampled_from([1.0, 2.0, 5.0]),
    "window_max": st.sampled_from([0.0, 0.5, 2.0, 5.0]),
    "margin": st.sampled_from([0.25, 1.0, 1.5, 4.0]),
    "latency": st.sampled_from([20.0, 200.0, 600.0]),
    "seed": st.integers(min_value=1, max_value=10_000),
})


@given(TIMING_TUNINGS)
@settings(max_examples=15, deadline=None)
def test_random_timing_tunings_stay_correct(params):
    """Aggressive gains, zero-or-huge hold caps, and sub-latency
    speculation margins stress the timer paths: early-cut holds,
    speculative extensions racing returns, and mis-speculation repair.
    None of it may cost a transaction or an invariant."""
    config = SimulationConfig(
        protocol=params["protocol"], n_clients=5, n_items=6, max_ops=4,
        read_probability=0.6, network_latency=params["latency"],
        window_gain=params["gain"],
        window_target_depth=params["target"],
        window_max=params["window_max"], spec_margin=params["margin"],
        total_transactions=40, warmup_transactions=0,
        record_history=True, seed=params["seed"])
    result = run_simulation(config)
    assert result.serializability.ok
    assert result.metrics.finished == 40
