"""Property-based tests for the precedence graph and forward lists."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.locking.modes import LockMode
from repro.protocols.forward_list import FLEntry, ForwardList, TxnRef
from repro.protocols.precedence import CycleError, PrecedenceGraph

R, W = LockMode.READ, LockMode.WRITE

EDGES = st.lists(
    st.tuples(st.integers(0, 9), st.integers(0, 9)).filter(
        lambda e: e[0] != e[1]),
    max_size=40,
)


def build_graph(edges):
    graph = PrecedenceGraph()
    accepted = []
    for src, dst in edges:
        try:
            graph.add_edge(src, dst)
            accepted.append((src, dst))
        except CycleError:
            pass
    return graph, accepted


@given(EDGES)
@settings(max_examples=300, deadline=None)
def test_graph_never_cycles(edges):
    graph, _ = build_graph(edges)
    assert graph.find_any_cycle() is None


@given(EDGES)
@settings(max_examples=300, deadline=None)
def test_rejected_edges_would_have_cycled(edges):
    graph = PrecedenceGraph()
    for src, dst in edges:
        if graph.would_cycle(src, dst):
            with pytest.raises(CycleError):
                graph.add_edge(src, dst)
            assert graph.reaches(dst, src)
        else:
            graph.add_edge(src, dst)
            assert graph.reaches(src, dst)


@given(EDGES, st.lists(st.integers(0, 9), min_size=1, max_size=9,
                       unique=True))
@settings(max_examples=300, deadline=None)
def test_linear_extension_respects_reachability(edges, nodes):
    graph, _ = build_graph(edges)
    order = graph.linear_extension(nodes)
    assert sorted(order) == sorted(nodes)
    position = {node: i for i, node in enumerate(order)}
    for i, u in enumerate(nodes):
        for v in nodes[i + 1:]:
            if graph.reaches(u, v) and not graph.reaches(v, u):
                assert position[u] < position[v]
            elif graph.reaches(v, u) and not graph.reaches(u, v):
                assert position[v] < position[u]


@given(EDGES, st.lists(st.integers(0, 9), min_size=2, max_size=9,
                       unique=True))
@settings(max_examples=200, deadline=None)
def test_chaining_extension_order_never_cycles(edges, nodes):
    """Adding chain edges along a linear extension keeps the DAG acyclic —
    the property window freezing relies on."""
    graph, _ = build_graph(edges)
    order = graph.linear_extension(nodes)
    for left, right in zip(order, order[1:]):
        graph.add_edge(left, right)  # must not raise
    assert graph.find_any_cycle() is None


@given(EDGES)
@settings(max_examples=200, deadline=None)
def test_remove_node_keeps_graph_consistent(edges):
    graph, accepted = build_graph(edges)
    for node in range(0, 10, 2):
        graph.remove_node(node)
    assert graph.find_any_cycle() is None
    for node in range(0, 10, 2):
        assert graph.successors(node) == set()
        assert graph.predecessors(node) == set()
    for src, dst in accepted:
        if src % 2 and dst % 2:
            assert dst in graph.successors(src)


REQUESTS = st.lists(
    st.tuples(st.integers(0, 20), st.sampled_from([R, W])),
    min_size=1, max_size=15,
    unique_by=lambda r: r[0],
)


@given(REQUESTS)
@settings(max_examples=300, deadline=None)
def test_forward_list_structure(requests):
    refs = [(TxnRef(txn_id=t, client_id=t % 5), mode)
            for t, mode in requests]
    fl = ForwardList.from_requests(refs)
    # 1. Entry modes alternate: never two adjacent read groups, and write
    #    entries hold exactly one transaction.
    for left, right in zip(fl.entries, fl.entries[1:]):
        assert not (left.is_read_group and right.is_read_group)
    for entry in fl:
        if not entry.is_read_group:
            assert len(entry.txns) == 1
    # 2. The flattened order equals the request order.
    assert [ref.txn_id for ref in fl.all_txns()] == [
        t for t, _ in requests]
    assert fl.txn_count() == len(requests)


@given(REQUESTS, st.integers(0, 5))
@settings(max_examples=200, deadline=None)
def test_forward_list_tail(requests, start):
    refs = [(TxnRef(txn_id=t, client_id=1), mode) for t, mode in requests]
    fl = ForwardList.from_requests(refs)
    tail = fl.tail(start)
    assert tail.entries == fl.entries[start:]


def test_fl_entry_validation():
    with pytest.raises(ValueError):
        FLEntry(R, ())
    with pytest.raises(ValueError):
        FLEntry(W, (TxnRef(1, 1), TxnRef(2, 2)))
    entry = FLEntry(R, (TxnRef(1, 1),))
    with pytest.raises(ValueError):
        _ = entry.writer
