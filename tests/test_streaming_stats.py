"""Tests for the bounded-memory streaming metrics path: Welford moments,
reservoir percentiles (including the 2% p99 calibration bound), windowed
throughput, RunningStat, collector mode selection, and trajectory
equivalence between exact and streaming runs."""

import math
import random
import statistics

import pytest

from repro.core.config import SimulationConfig
from repro.core.runner import run_simulation
from repro.perf.fingerprint import result_fingerprint
from repro.stats.collector import (
    MetricsCollector,
    RunMetrics,
    StreamingMetrics,
)
from repro.stats.streaming import (
    ReservoirSampler,
    RunningStat,
    Welford,
    WindowedThroughput,
)


class TestWelford:
    def test_matches_exact_moments(self):
        rng = random.Random(3)
        values = [rng.lognormvariate(5.0, 1.2) for _ in range(5000)]
        welford = Welford()
        for value in values:
            welford.add(value)
        assert welford.count == 5000
        assert welford.mean == pytest.approx(statistics.fmean(values),
                                             rel=1e-12)
        assert welford.variance == pytest.approx(
            statistics.variance(values), rel=1e-9)
        assert welford.std == pytest.approx(statistics.stdev(values),
                                            rel=1e-9)

    def test_small_counts(self):
        welford = Welford()
        assert math.isnan(welford.variance)
        welford.add(7.0)
        assert welford.mean == 7.0
        assert math.isnan(welford.variance)
        assert math.isnan(welford.std)


class TestReservoirSampler:
    def test_exact_while_stream_fits(self):
        # Below capacity the reservoir holds the whole stream, so its
        # percentile must equal RunMetrics' exact interpolation.
        sampler = ReservoirSampler(random.Random(1), capacity=1000)
        exact = RunMetrics()
        rng = random.Random(2)
        for _ in range(500):
            value = rng.expovariate(0.01)
            sampler.add(value)
            exact.response_times.append(value)
        for p in (0.0, 25.0, 50.0, 95.0, 99.0, 100.0):
            assert sampler.percentile(p) == exact.percentile(p)

    def test_memory_stays_bounded(self):
        sampler = ReservoirSampler(random.Random(1), capacity=64)
        for value in range(10_000):
            sampler.add(float(value))
        assert len(sampler.values) == 64
        assert sampler.seen == 10_000

    def test_p99_within_2pct_on_10k_calibration(self):
        # ISSUE acceptance bound: reservoir p99 within 2% of exact on a
        # 10^4-value stream at the default capacity of 8192.
        rng = random.Random(7)
        values = [rng.lognormvariate(7.0, 0.8) for _ in range(10_000)]
        sampler = ReservoirSampler(random.Random(11), capacity=8192)
        exact = RunMetrics(response_times=list(values))
        for value in values:
            sampler.add(value)
        for p in (50.0, 95.0, 99.0):
            assert sampler.percentile(p) == pytest.approx(
                exact.percentile(p), rel=0.02)

    def test_empty_and_validation(self):
        sampler = ReservoirSampler(random.Random(1), capacity=4)
        assert math.isnan(sampler.percentile(50.0))
        with pytest.raises(ValueError):
            sampler.percentile(101.0)
        with pytest.raises(ValueError):
            ReservoirSampler(random.Random(1), capacity=1)

    def test_deterministic_given_stream(self):
        def fill():
            sampler = ReservoirSampler(random.Random(5), capacity=32)
            for value in range(1000):
                sampler.add(float(value))
            return list(sampler.values)

        assert fill() == fill()


class TestWindowedThroughput:
    def test_counts_windows(self):
        windows = WindowedThroughput(window=10.0, max_windows=4)
        for when in (1.0, 2.0, 3.0, 11.0, 12.0, 25.0):
            windows.record(when)
        assert windows.total == 6
        assert windows.peak_count == 3
        assert windows.peak_rate == pytest.approx(0.3)
        assert windows.snapshot() == [(0.0, 3), (10.0, 2), (20.0, 1)]

    def test_ring_is_bounded(self):
        windows = WindowedThroughput(window=1.0, max_windows=4)
        for when in range(100):
            windows.record(when + 0.5)
        assert windows.total == 100
        # 4 retained complete windows + the current one
        assert len(windows.snapshot()) == 5

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedThroughput(window=0.0)


class TestRunningStat:
    def test_accumulates(self):
        stat = RunningStat()
        for value in (3.0, 1.0, 2.0):
            stat.append(value)
        assert (stat.count, stat.sum) == (3, 6.0)
        assert (stat.min, stat.max) == (1.0, 3.0)
        assert stat.mean == 2.0
        assert len(stat) == 3

    def test_refuses_iteration(self):
        # Guards against code silently iterating the stand-in as if it
        # were the exact op_waits list.
        stat = RunningStat()
        stat.append(1.0)
        with pytest.raises(TypeError):
            list(stat)
        assert RunningStat().mean == 0.0


def outcome(txn_id, committed=True, start=0.0, end=100.0):
    from repro.protocols.transaction import TxnOutcome

    return TxnOutcome(txn_id=txn_id, client_id=1, committed=committed,
                      start_time=start, end_time=end, n_ops=2, n_writes=1,
                      abort_reason=None if committed else "deadlock")


class TestCollectorModes:
    def test_exact_by_default(self):
        collector = MetricsCollector(0)
        assert isinstance(collector.metrics, RunMetrics)
        assert not isinstance(collector.metrics, StreamingMetrics)
        assert collector.metrics.streaming is False

    def test_streaming_produces_bounded_metrics(self):
        collector = MetricsCollector(0, streaming=True,
                                     reservoir_rng=random.Random(1))
        for index in range(100):
            collector.record_outcome(outcome(index, end=100.0 + index))
        metrics = collector.metrics
        assert metrics.streaming is True
        assert metrics.response_times == []
        assert metrics.committed == 100
        assert metrics.moments.count == 100

    def test_streaming_percentiles_match_exact_when_small(self):
        exact = MetricsCollector(5)
        stream = MetricsCollector(5, streaming=True,
                                  reservoir_rng=random.Random(1))
        rng = random.Random(9)
        for index in range(200):
            record = outcome(index, committed=rng.random() < 0.8,
                             start=float(index), end=index + rng.expovariate(0.01))
            exact.record_outcome(record)
            stream.record_outcome(record)
        assert stream.metrics.committed == exact.metrics.committed
        assert stream.metrics.aborted == exact.metrics.aborted
        assert stream.metrics.abort_reasons == exact.metrics.abort_reasons
        assert stream.metrics.mean_response_time == pytest.approx(
            exact.metrics.mean_response_time, rel=1e-12)
        # 200 committed < capacity: reservoir percentile is exact.
        assert (stream.metrics.p99_response_time
                == exact.metrics.p99_response_time)
        assert stream.metrics.throughput == exact.metrics.throughput


def small_config(**overrides):
    base = dict(protocol="g2pl", n_clients=6, n_items=25,
                total_transactions=150, warmup_transactions=15,
                record_history=False, seed=5)
    base.update(overrides)
    return SimulationConfig(**base)


class TestStreamingConfig:
    def test_auto_threshold(self):
        assert small_config().streaming_enabled is False
        assert small_config(streaming=True).streaming_enabled is True
        big = small_config(total_transactions=30_000,
                           warmup_transactions=3_000)
        assert big.streaming_enabled is True
        assert big.replace(streaming=False).streaming_enabled is False
        assert small_config(
            streaming_threshold=100).streaming_enabled is True

    def test_knob_validation(self):
        with pytest.raises(ValueError):
            small_config(reservoir_capacity=1)
        with pytest.raises(ValueError):
            small_config(throughput_window=0.0)
        with pytest.raises(ValueError):
            small_config(streaming_threshold=-1)


class TestStreamingEndToEnd:
    def test_same_trajectory_as_exact(self):
        # Streaming only changes how outcomes are aggregated; the
        # simulation trajectory must be bit-identical either way.
        exact = run_simulation(small_config(streaming=False))
        stream = run_simulation(small_config(streaming=True))
        assert stream.metrics.committed == exact.metrics.committed
        assert stream.metrics.aborted == exact.metrics.aborted
        assert stream.metrics.abort_reasons == exact.metrics.abort_reasons
        assert stream.duration == exact.duration
        assert stream.metrics.mean_response_time == pytest.approx(
            exact.metrics.mean_response_time, rel=1e-9)
        # Fewer committed than reservoir capacity: percentiles exact too.
        assert (stream.metrics.p99_response_time
                == exact.metrics.p99_response_time)
        assert stream.metrics.response_times == []

    def test_population_run_streams_bounded(self):
        result = run_simulation(small_config(
            population=600, arrival_rate=2e-4, streaming=True,
            access_skew=0.5))
        metrics = result.metrics
        assert metrics.streaming is True
        assert metrics.response_times == []
        assert len(metrics.reservoir.values) <= 8192
        assert metrics.windows.total == metrics.committed
        assert result.server_stats["n_ops_granted"] > 0

    def test_streaming_fingerprint_shape(self):
        result = run_simulation(small_config(streaming=True))
        fp = result_fingerprint(result)
        metrics_fp = fp["metrics"]
        assert metrics_fp["streaming"] is True
        assert "response_times" not in metrics_fp
        assert metrics_fp["reservoir_seen"] == result.metrics.committed
        assert metrics_fp["windows_total"] == result.metrics.committed

    def test_streaming_fingerprint_replays(self):
        config = small_config(streaming=True)
        first = result_fingerprint(run_simulation(config))
        second = result_fingerprint(run_simulation(config))
        assert first == second
