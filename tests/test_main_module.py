"""``python -m repro`` must behave exactly like the console entry point."""

import os
import subprocess
import sys

import pytest

from repro.cli import main


def _run_module(*argv):
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
    env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
        "PYTHONPATH", "")
    return subprocess.run(
        [sys.executable, "-m", "repro", *argv],
        capture_output=True, text=True, env=env, timeout=120)


def test_module_list_matches_cli_list(capsys):
    main(["list"])
    expected = capsys.readouterr().out
    proc = _run_module("list")
    assert proc.returncode == 0, proc.stderr
    assert proc.stdout == expected


def test_module_no_args_shows_usage():
    proc = _run_module()
    # argparse exits 2 on a missing subcommand and prints usage.
    assert proc.returncode == 2
    assert "usage:" in proc.stderr


def test_module_runs_a_simulation():
    proc = _run_module(
        "run", "--protocol", "s2pl", "--clients", "3", "--latency", "10",
        "--transactions", "30", "--warmup", "5", "--seed", "7")
    assert proc.returncode == 0, proc.stderr
    assert "s2pl" in proc.stdout


@pytest.mark.parametrize("flag", ["-h", "--help"])
def test_module_help(flag):
    proc = _run_module(flag)
    assert proc.returncode == 0
    assert "usage:" in proc.stdout
