"""Unit tests for the wait-for graph."""

from repro.locking import WaitForGraph


def test_no_cycle_in_chain():
    wfg = WaitForGraph()
    wfg.add_edge("a", "b")
    wfg.add_edge("b", "c")
    assert wfg.find_cycle_from("a") is None
    assert wfg.find_any_cycle() is None


def test_two_cycle():
    wfg = WaitForGraph()
    wfg.add_edge("a", "b")
    wfg.add_edge("b", "a")
    cycle = wfg.find_cycle_from("a")
    assert cycle == ["a", "b", "a"]


def test_three_cycle_found_from_any_member():
    wfg = WaitForGraph()
    wfg.add_edges("a", ["b"])
    wfg.add_edges("b", ["c"])
    wfg.add_edges("c", ["a"])
    for start in "abc":
        cycle = wfg.find_cycle_from(start)
        assert cycle is not None
        assert cycle[0] == cycle[-1] == start
        assert set(cycle) == {"a", "b", "c"}


def test_cycle_not_through_start_is_ignored_by_probe():
    wfg = WaitForGraph()
    wfg.add_edge("x", "a")
    wfg.add_edge("a", "b")
    wfg.add_edge("b", "a")
    assert wfg.find_cycle_from("x") is None
    assert wfg.find_any_cycle() is not None


def test_self_edges_ignored():
    wfg = WaitForGraph()
    wfg.add_edge("a", "a")
    assert wfg.edge_count == 0
    assert wfg.find_any_cycle() is None


def test_remove_node_breaks_cycle():
    wfg = WaitForGraph()
    wfg.add_edge("a", "b")
    wfg.add_edge("b", "c")
    wfg.add_edge("c", "a")
    wfg.remove_node("b")
    assert wfg.find_any_cycle() is None
    assert wfg.successors("a") == set()
    assert wfg.successors("c") == {"a"}


def test_remove_edge():
    wfg = WaitForGraph()
    wfg.add_edge("a", "b")
    wfg.add_edge("a", "c")
    wfg.remove_edge("a", "b")
    assert wfg.successors("a") == {"c"}
    wfg.remove_edge("a", "c")
    assert wfg.successors("a") == set()
    wfg.remove_edge("a", "zzz")  # no-op


def test_diamond_is_acyclic():
    wfg = WaitForGraph()
    wfg.add_edges("a", ["b", "c"])
    wfg.add_edges("b", ["d"])
    wfg.add_edges("c", ["d"])
    assert wfg.find_any_cycle() is None


def test_edge_count():
    wfg = WaitForGraph()
    wfg.add_edges("a", ["b", "c"])
    wfg.add_edge("b", "c")
    assert wfg.edge_count == 3


def test_long_cycle_detected():
    wfg = WaitForGraph()
    nodes = [f"t{i}" for i in range(50)]
    for left, right in zip(nodes, nodes[1:]):
        wfg.add_edge(left, right)
    wfg.add_edge(nodes[-1], nodes[0])
    cycle = wfg.find_cycle_from("t0")
    assert cycle is not None
    assert len(cycle) == 51
