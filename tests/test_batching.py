"""Batched delivery must be invisible: bit-identical trajectories.

Batched delivery (``config.batch_delivery``, on by default) coalesces
same-timestamp deliveries on one link into a single heap entry that
fans out on pop.  That is a pure scheduling-representation change: the
fan-out replays the exact per-message heap order, so every protocol
family must produce byte-for-byte the same result fingerprint with
batching on or off — serially and under the spawn pool, traced and
faulted included.  These tests pin that invariant, plus the logical
engine counters (``processed_events`` / ``peak_heap_depth`` /
``cancelled_events`` / ``pending``) that must count deliveries, not
batch nodes.
"""

import pytest

from repro.core.config import SimulationConfig
from repro.core.parallel import SimulationCell, run_cells
from repro.core.runner import run_simulation
from repro.perf.fingerprint import fingerprint_digest, result_fingerprint

#: one representative per protocol family (g2pl variants share a family)
FAMILIES = ("s2pl", "g2pl", "g2pl-basic", "g2pl-ro", "c2pl", "2v2pl")

_FAULTS = "loss=0.05,dup=0.02,jitter=20,crash=2@2000:4000"


def _base(protocol, **overrides):
    kwargs = dict(
        protocol=protocol, n_clients=6, n_items=8, read_probability=0.6,
        network_latency=100.0, total_transactions=120,
        warmup_transactions=20, record_history=False)
    kwargs.update(overrides)
    return kwargs


def _digest_pair(kwargs, seed):
    batched = run_simulation(
        SimulationConfig(**kwargs, batch_delivery=True), seed=seed)
    unbatched = run_simulation(
        SimulationConfig(**kwargs, batch_delivery=False), seed=seed)
    return batched, unbatched


def _assert_identical(batched, unbatched):
    fp_b = result_fingerprint(batched)
    fp_u = result_fingerprint(unbatched)
    assert fp_b == fp_u, "batched delivery changed the trajectory"
    assert fingerprint_digest(fp_b) == fingerprint_digest(fp_u)


class TestSerialIdentity:
    @pytest.mark.parametrize("protocol", FAMILIES)
    def test_family_is_batch_invariant(self, protocol):
        batched, unbatched = _digest_pair(_base(protocol), seed=11)
        _assert_identical(batched, unbatched)

    def test_faulted_run_is_batch_invariant(self):
        # the faulted send path never batches, but the flag must still
        # round-trip to an identical result
        batched, unbatched = _digest_pair(
            _base("g2pl", n_clients=5, n_items=6, faults=_FAULTS,
                  total_transactions=100, warmup_transactions=15), seed=7)
        _assert_identical(batched, unbatched)

    def test_traced_run_is_batch_invariant(self):
        batched, unbatched = _digest_pair(
            _base("s2pl", trace=True, probe_interval=150.0), seed=11)
        _assert_identical(batched, unbatched)

    def test_sharded_run_is_batch_invariant(self):
        batched, unbatched = _digest_pair(
            _base("g2pl", n_shards=4, n_regions=2,
                  cross_shard_probability=0.5,
                  intra_region_latency=1.0), seed=11)
        _assert_identical(batched, unbatched)


class TestPooledIdentity:
    def test_all_families_batch_invariant_at_jobs_4(self):
        seeds = {name: 11 for name in FAMILIES}
        cells = []
        for flag in (True, False):
            for name in FAMILIES:
                cells.append(SimulationCell(
                    config=SimulationConfig(**_base(name),
                                            batch_delivery=flag),
                    seed=seeds[name]))
        results = run_cells(cells, jobs=4)
        half = len(FAMILIES)
        for name, batched, unbatched in zip(
                FAMILIES, results[:half], results[half:]):
            fp_b = result_fingerprint(batched)
            fp_u = result_fingerprint(unbatched)
            assert fp_b == fp_u, (
                f"{name}: pooled batched run diverged from unbatched")


class TestLogicalEngineStats:
    """Satellite: the engine counters must see through batch nodes."""

    def test_engine_stats_count_logical_deliveries(self):
        # High fan-in on one link (many clients, one server, uniform
        # latency) so batching actually coalesces; the logical counters
        # must nevertheless match the unbatched run exactly.
        kwargs = _base("g2pl", n_clients=12, n_items=8)
        batched, unbatched = _digest_pair(kwargs, seed=23)
        for key in ("processed_events", "peak_heap_depth",
                    "cancelled_events"):
            assert batched.engine_stats[key] == unbatched.engine_stats[key], (
                f"engine stat {key} counts batch nodes, not deliveries")

    def test_pending_and_fanout_are_logical(self):
        from repro.network.topology import UniformTopology
        from repro.network.transport import Network
        from repro.protocols.base import _Dispatcher
        from repro.sim.engine import Simulator

        received = []

        class Sink(_Dispatcher):
            def on_int(self, payload):
                received.append(payload)

        sim = Simulator()
        network = Network(sim, UniformTopology(10.0))
        network.add_site(Sink(1))
        network.add_site(Sink(2))
        for payload in range(5):
            network.send(1, 2, payload)
        # five same-timestamp sends on one link coalesce into one heap
        # node, but the logical view must still say five deliveries
        assert len(sim._heap) == 1
        assert sim.pending == 5
        sim.run()
        assert received == [0, 1, 2, 3, 4]
        assert sim.processed_events == 5
        assert sim.peak_heap_depth == 5
        assert sim.pending == 0
