"""LP-partitioned runs must reproduce the serial trajectory bit for bit.

``lp=True`` splits a shard-closed run (cross_shard_probability=0.0,
quota termination) into one logical process per shard, each with its own
heap, synchronized by conservative lookahead.  The committed
``*_lp_quota`` goldens were recorded *serially*; every test here replays
them through the multi-process LP runner (and its windowed
finite-lookahead variant) and requires the canonical fingerprint to
match byte for byte.  Also covered: the nested-pool fallback (``lp=True``
inside a worker process degrades to the serial path with a warning, not
a crash) and the eligibility validation.
"""

import dataclasses

import pytest

from repro.core import lp
from repro.core.config import SimulationConfig
from repro.core.parallel import SimulationCell, run_cells
from repro.core.runner import run_simulation
from repro.perf.fingerprint import fingerprint_digest, result_fingerprint
from repro.perf.goldens import golden_config, load_golden

LP_CELLS = ("g2pl_lp_quota", "s2pl_lp_quota")


def _lp_config(name):
    config, seed = golden_config(name)
    return dataclasses.replace(config, lp=True), seed


def _assert_matches_golden(name, result):
    golden = load_golden(name)
    fingerprint = result_fingerprint(result)
    assert fingerprint == golden["fingerprint"], (
        f"LP run of {name!r} diverged from the serial trajectory")
    assert fingerprint_digest(fingerprint) == golden["digest"]


class TestLpReplay:
    @pytest.mark.parametrize("name", LP_CELLS)
    def test_lp_run_matches_serial_golden(self, name):
        config, seed = _lp_config(name)
        result = run_simulation(config, seed=seed)
        _assert_matches_golden(name, result)
        assert result.engine_stats["lp_workers"] == config.n_shards

    def test_windowed_lookahead_matches_serial_golden(self):
        # A finite lookahead forces the real window-synchronization
        # protocol (ready/window/at round trips) instead of the single
        # unbounded window that p=0 permits.  Trajectories must not move.
        name = "g2pl_lp_quota"
        config, seed = _lp_config(name)
        result = lp.run_lp_simulation(config, seed=seed, lookahead=50.0)
        _assert_matches_golden(name, result)


class TestNestedPoolFallback:
    def test_lp_inside_worker_falls_back_to_serial(self, monkeypatch):
        name = "s2pl_lp_quota"
        config, seed = _lp_config(name)
        monkeypatch.setattr(lp, "in_worker_process", lambda: True)
        with pytest.warns(RuntimeWarning, match="nested process pools"):
            result = run_simulation(config, seed=seed)
        # the fallback is the plain serial path, so it has no lp_workers
        # stat — and still lands exactly on the golden
        assert "lp_workers" not in result.engine_stats
        _assert_matches_golden(name, result)

    def test_lp_cells_complete_under_process_pool(self):
        # end to end: lp=True cells submitted to the jobs pool must
        # complete (via the serial fallback in each worker) and still
        # match the goldens
        cells = []
        for name in LP_CELLS:
            config, seed = _lp_config(name)
            cells.append(SimulationCell(config=config, seed=seed))
        results = run_cells(cells, jobs=2)
        for name, result in zip(LP_CELLS, results):
            _assert_matches_golden(name, result)


class TestValidation:
    def _base(self, **overrides):
        kwargs = dict(
            protocol="g2pl", n_clients=8, n_items=16, n_shards=4,
            n_regions=2, cross_shard_probability=0.0,
            network_latency=100.0, intra_region_latency=1.0,
            total_transactions=160, warmup_transactions=20,
            termination="quota", lp=True)
        kwargs.update(overrides)
        return SimulationConfig(**kwargs)

    @pytest.mark.parametrize("overrides,fragment", [
        (dict(protocol="c2pl"), "sharded protocol"),
        (dict(termination="global"), "termination='quota'"),
        (dict(cross_shard_probability=0.5), "shard-local workload"),
        (dict(cross_shard_probability=None), "shard-local workload"),
        (dict(faults="loss=0.05"), "fault injection"),
        (dict(trace=True), "tracing or probes"),
        (dict(mpl=2), "mpl=1"),
        (dict(n_clients=3), "at least one client per shard"),
    ])
    def test_ineligible_configs_are_rejected(self, overrides, fragment):
        with pytest.raises(ValueError, match=fragment):
            lp.validate_lp_config(self._base(**overrides))

    def test_lookahead_is_min_cross_shard_latency(self):
        config = self._base(cross_shard_probability=0.0)
        assert lp.derive_lookahead(config) == float("inf")

    def test_lookahead_must_be_positive(self):
        config = self._base()
        with pytest.raises(ValueError, match="lookahead"):
            lp.run_lp_simulation(config, seed=11, lookahead=0.0)
