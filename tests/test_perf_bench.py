"""Unit tests for the kernel benchmark harness (``repro.perf``)."""

import json

import pytest

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    bench_cells,
    compare_benchmarks,
    load_benchmark,
    run_benchmarks,
    write_benchmark,
)
from repro.perf.fingerprint import fingerprint_digest, result_fingerprint


def _bench(cells, mode="full", cell_revision=None, schema=None):
    from repro.perf.bench import CELL_REVISION

    return {
        "schema_version": (BENCH_SCHEMA_VERSION if schema is None
                           else schema),
        "cell_revision": (CELL_REVISION if cell_revision is None
                          else cell_revision),
        "mode": mode,
        "cells": cells,
    }


def _cell(eps, digest="d0"):
    return {"events_per_sec": eps, "digest": digest}


class TestCompare:
    def test_identical_runs_pass(self):
        bench = _bench({"a": _cell(1000.0), "b": _cell(2000.0)})
        comparison = compare_benchmarks(bench, bench, tolerance=0.2)
        assert comparison.ok
        assert all(c.ratio == 1.0 for c in comparison.cells)
        assert all(c.digest_match for c in comparison.cells)

    def test_regression_beyond_tolerance_fails(self):
        baseline = _bench({"a": _cell(1000.0)})
        current = _bench({"a": _cell(700.0)})  # 0.7x < 0.8x floor
        comparison = compare_benchmarks(current, baseline, tolerance=0.2)
        assert not comparison.ok
        assert "regressed" in comparison.failures[0]

    def test_regression_within_tolerance_passes(self):
        baseline = _bench({"a": _cell(1000.0)})
        current = _bench({"a": _cell(850.0)})  # 0.85x >= 0.8x floor
        assert compare_benchmarks(current, baseline, tolerance=0.2).ok

    def test_digest_mismatch_fails_even_when_faster(self):
        baseline = _bench({"a": _cell(1000.0, digest="old")})
        current = _bench({"a": _cell(5000.0, digest="new")})
        comparison = compare_benchmarks(current, baseline, tolerance=0.2)
        assert not comparison.ok
        assert any("digest" in failure for failure in comparison.failures)

    def test_digests_not_compared_across_modes(self):
        baseline = _bench({"a": _cell(1000.0, digest="full-run")},
                          mode="full")
        current = _bench({"a": _cell(1000.0, digest="quick-run")},
                         mode="quick")
        comparison = compare_benchmarks(current, baseline, tolerance=0.2)
        assert comparison.ok
        assert comparison.cells[0].digest_match is None

    def test_digests_not_compared_across_cell_revisions(self):
        baseline = _bench({"a": _cell(1000.0, digest="x")}, cell_revision=1)
        current = _bench({"a": _cell(1000.0, digest="y")}, cell_revision=2)
        assert compare_benchmarks(current, baseline, tolerance=0.2).ok

    def test_missing_cell_fails(self):
        baseline = _bench({"a": _cell(1000.0), "b": _cell(1000.0)})
        current = _bench({"a": _cell(1000.0)})
        comparison = compare_benchmarks(current, baseline, tolerance=0.2)
        assert not comparison.ok
        assert any("missing" in failure for failure in comparison.failures)

    def test_normalization_cancels_host_speed(self):
        # Host is uniformly 2x slower: raw ratios all 0.5 (fail), but the
        # engine_churn normaliser cancels it (pass).
        baseline = _bench({"engine_churn": _cell(1000.0),
                           "macro": _cell(500.0)})
        current = _bench({"engine_churn": _cell(500.0),
                          "macro": _cell(250.0)})
        raw = compare_benchmarks(current, baseline, tolerance=0.2)
        assert not raw.ok
        normalized = compare_benchmarks(current, baseline, tolerance=0.2,
                                        normalize=True)
        assert normalized.ok

    def test_bad_tolerance_rejected(self):
        bench = _bench({"a": _cell(1.0)})
        with pytest.raises(ValueError):
            compare_benchmarks(bench, bench, tolerance=1.5)

    def test_describe_mentions_failures(self):
        baseline = _bench({"a": _cell(1000.0)})
        current = _bench({"a": _cell(100.0)})
        comparison = compare_benchmarks(current, baseline, tolerance=0.2)
        text = comparison.describe()
        assert "FAILURES" in text
        assert "a" in text


class TestSchema:
    def test_write_then_load_round_trips(self, tmp_path):
        bench = _bench({"a": _cell(123.0)})
        path = tmp_path / "bench.json"
        write_benchmark(path, bench)
        assert load_benchmark(path) == bench

    def test_load_rejects_unknown_schema(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(_bench({}, schema=999)))
        with pytest.raises(ValueError):
            load_benchmark(path)


class TestHarness:
    def test_cell_set_is_fixed_and_named(self):
        names = [cell.name for cell in bench_cells()]
        assert names == ["engine_churn", "net_ping", "s2pl_contention",
                         "g2pl_contention", "g2pl_faulted", "g2pl_traced",
                         "population_100k", "hybrid_contention",
                         "g2pl_speculative", "sharded_serial", "sharded_lp"]
        assert len(set(names)) == len(names)

    def test_quick_micro_cell_measures_and_digests(self):
        churn = [c for c in bench_cells() if c.name == "engine_churn"][0]
        first = churn.runner(True)
        second = churn.runner(True)
        assert first["events"] == second["events"] > 0
        assert first["digest"] == second["digest"]
        assert first["events_per_sec"] > 0

    def test_run_benchmarks_rejects_bad_repeats(self):
        with pytest.raises(ValueError):
            run_benchmarks(quick=True, repeats=0)


class TestFingerprint:
    def test_fingerprint_digest_is_stable_and_order_insensitive(self):
        a = {"x": 1.0, "y": [1, 2, 3], "z": "s"}
        b = {"z": "s", "y": [1, 2, 3], "x": 1.0}
        assert fingerprint_digest(a) == fingerprint_digest(b)
        assert fingerprint_digest(a) != fingerprint_digest({"x": 1.0 + 1e-16})

    def test_result_fingerprint_separates_seeds(self):
        from repro.core.config import SimulationConfig
        from repro.core.runner import run_simulation

        config = SimulationConfig(
            protocol="g2pl", n_clients=3, n_items=5,
            total_transactions=20, warmup_transactions=2,
            record_history=False)
        one = run_simulation(config, seed=1)
        two = run_simulation(config, seed=2)
        replay = run_simulation(config, seed=1)
        assert result_fingerprint(one) == result_fingerprint(replay)
        assert result_fingerprint(one) != result_fingerprint(two)
