"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "g2pl" in out and "s2pl" in out
    assert "figures" in out


def test_run_single_simulation(capsys):
    code = main(["run", "--protocol", "s2pl", "--clients", "5",
                 "--items", "8", "--transactions", "100",
                 "--warmup", "10", "--latency", "20"])
    assert code == 0
    out = capsys.readouterr().out
    assert "s2pl: response=" in out
    assert "throughput" in out


def test_compare(capsys):
    code = main(["compare", "--clients", "6", "--items", "8",
                 "--transactions", "100", "--warmup", "10",
                 "--latency", "20", "--replications", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "improvement over s-2PL" in out


def test_compare_with_jobs(capsys):
    code = main(["compare", "--clients", "6", "--items", "8",
                 "--transactions", "100", "--warmup", "10",
                 "--latency", "20", "--replications", "2", "--jobs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "improvement over s-2PL" in out


def test_run_with_jobs_notes_serial(capsys):
    code = main(["run", "--protocol", "s2pl", "--clients", "5",
                 "--items", "8", "--transactions", "100",
                 "--warmup", "10", "--latency", "20", "--jobs", "4"])
    assert code == 0
    captured = capsys.readouterr()
    assert "s2pl: response=" in captured.out
    assert "runs serially" in captured.err


def test_figure_with_jobs(capsys):
    code = main(["figure", "11", "--fidelity", "smoke", "--jobs", "2"])
    assert code == 0
    assert "forward" in capsys.readouterr().out.lower()


def test_jobs_defaults_to_serial():
    args = build_parser().parse_args(["compare"])
    assert args.jobs == 1
    args = build_parser().parse_args(["figure", "3", "--jobs", "0"])
    assert args.jobs == 0  # 0 = all CPUs, resolved by the engine


def test_figure_1(capsys):
    assert main(["figure", "1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_figure_unknown(capsys):
    assert main(["figure", "99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_bad_protocol_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--protocol", "mystery"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])


def test_run_with_profile_writes_pstats(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["run", "--protocol", "s2pl", "--clients", "4",
                 "--items", "6", "--transactions", "40", "--warmup", "5",
                 "--latency", "20", "--profile"])
    assert code == 0
    pstats_file = tmp_path / "profile_s2pl.pstats"
    assert pstats_file.exists()
    import pstats

    stats = pstats.Stats(str(pstats_file))
    assert stats.total_calls > 0


def test_compare_with_profile_writes_pstats(capsys, tmp_path, monkeypatch):
    monkeypatch.chdir(tmp_path)
    code = main(["compare", "--clients", "4", "--items", "6",
                 "--transactions", "40", "--warmup", "5", "--latency", "20",
                 "--replications", "1", "--profile"])
    assert code == 0
    assert (tmp_path / "profile_s2pl-g2pl.pstats").exists()


def _fake_bench(eps, digest="d"):
    from repro.perf.bench import BENCH_SCHEMA_VERSION, CELL_REVISION

    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "cell_revision": CELL_REVISION,
        "mode": "quick",
        "cells": {"engine_churn": {"events_per_sec": eps,
                                   "wall_seconds": 0.1,
                                   "events": 100,
                                   "digest": digest}},
    }


def test_bench_writes_results_and_passes_baseline(capsys, tmp_path,
                                                  monkeypatch):
    import repro.perf.bench as bench_mod

    monkeypatch.setattr(bench_mod, "run_benchmarks",
                        lambda quick, repeats, progress=None:
                        _fake_bench(1000.0))
    out = tmp_path / "bench.json"
    baseline = tmp_path / "baseline.json"
    bench_mod.write_benchmark(baseline, _fake_bench(1000.0))
    code = main(["bench", "--quick", "--out", str(out),
                 "--baseline", str(baseline)])
    assert code == 0
    assert out.exists()
    assert "within tolerance" in capsys.readouterr().out


def test_bench_exits_nonzero_on_regression(capsys, tmp_path, monkeypatch):
    import repro.perf.bench as bench_mod

    monkeypatch.setattr(bench_mod, "run_benchmarks",
                        lambda quick, repeats, progress=None:
                        _fake_bench(100.0))
    baseline = tmp_path / "baseline.json"
    bench_mod.write_benchmark(baseline, _fake_bench(1000.0))
    code = main(["bench", "--quick", "--baseline", str(baseline)])
    assert code == 1
    assert "regressed" in capsys.readouterr().out
