"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "g2pl" in out and "s2pl" in out
    assert "figures" in out


def test_run_single_simulation(capsys):
    code = main(["run", "--protocol", "s2pl", "--clients", "5",
                 "--items", "8", "--transactions", "100",
                 "--warmup", "10", "--latency", "20"])
    assert code == 0
    out = capsys.readouterr().out
    assert "s2pl: response=" in out
    assert "throughput" in out


def test_compare(capsys):
    code = main(["compare", "--clients", "6", "--items", "8",
                 "--transactions", "100", "--warmup", "10",
                 "--latency", "20", "--replications", "1"])
    assert code == 0
    out = capsys.readouterr().out
    assert "improvement over s-2PL" in out


def test_compare_with_jobs(capsys):
    code = main(["compare", "--clients", "6", "--items", "8",
                 "--transactions", "100", "--warmup", "10",
                 "--latency", "20", "--replications", "2", "--jobs", "2"])
    assert code == 0
    out = capsys.readouterr().out
    assert "improvement over s-2PL" in out


def test_run_with_jobs_notes_serial(capsys):
    code = main(["run", "--protocol", "s2pl", "--clients", "5",
                 "--items", "8", "--transactions", "100",
                 "--warmup", "10", "--latency", "20", "--jobs", "4"])
    assert code == 0
    captured = capsys.readouterr()
    assert "s2pl: response=" in captured.out
    assert "runs serially" in captured.err


def test_figure_with_jobs(capsys):
    code = main(["figure", "11", "--fidelity", "smoke", "--jobs", "2"])
    assert code == 0
    assert "forward" in capsys.readouterr().out.lower()


def test_jobs_defaults_to_serial():
    args = build_parser().parse_args(["compare"])
    assert args.jobs == 1
    args = build_parser().parse_args(["figure", "3", "--jobs", "0"])
    assert args.jobs == 0  # 0 = all CPUs, resolved by the engine


def test_figure_1(capsys):
    assert main(["figure", "1"]) == 0
    assert "Figure 1" in capsys.readouterr().out


def test_figure_unknown(capsys):
    assert main(["figure", "99"]) == 2
    assert "unknown figure" in capsys.readouterr().err


def test_bad_protocol_rejected():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["run", "--protocol", "mystery"])


def test_parser_requires_command():
    with pytest.raises(SystemExit):
        build_parser().parse_args([])
