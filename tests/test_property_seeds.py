"""Seed-hygiene property tests for the replication seed scheme.

`replication_seed(base, index) = base + 7919 * index` underpins both the
serial and parallel runners: distinct replication indices must always
get distinct seeds, and common-random-number protocol pairs (which share
a base seed) must get *identical* seeds per index and never collide
across different indices.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parallel import SEED_STRIDE, replication_seed
from repro.core.runner import replication_cells

BASE_SEEDS = st.integers(min_value=0, max_value=2**32 - 1)
REPLICATION_COUNTS = st.integers(min_value=1, max_value=200)


@given(base_seed=BASE_SEEDS, replications=REPLICATION_COUNTS)
@settings(max_examples=200)
def test_seeds_never_collide_across_indices(base_seed, replications):
    seeds = [replication_seed(base_seed, index)
             for index in range(replications)]
    assert len(set(seeds)) == replications


@given(base_seed=BASE_SEEDS,
       i=st.integers(min_value=0, max_value=10_000),
       j=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=200)
def test_crn_protocol_pairs_collide_only_at_equal_indices(base_seed, i, j):
    # Common random numbers: both protocols of a comparison derive their
    # seeds from the same base, so replication i of one protocol shares
    # a seed with replication j of the other iff i == j.
    equal = replication_seed(base_seed, i) == replication_seed(base_seed, j)
    assert equal == (i == j)


@given(base_seed=BASE_SEEDS, replications=st.integers(min_value=1,
                                                      max_value=20))
@settings(max_examples=50)
def test_replication_cells_use_the_scheme(base_seed, replications):
    from repro.core.config import SimulationConfig

    config = SimulationConfig()
    s2pl = replication_cells(config.replace(protocol="s2pl"), replications,
                             base_seed=base_seed)
    g2pl = replication_cells(config.replace(protocol="g2pl"), replications,
                             base_seed=base_seed)
    assert [c.seed for c in s2pl] == [c.seed for c in g2pl]  # CRN pairing
    assert [c.seed for c in s2pl] == [base_seed + SEED_STRIDE * index
                                      for index in range(replications)]
