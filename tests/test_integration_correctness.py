"""Randomized correctness sweeps: every protocol must produce serializable,
anomaly-free executions under contended workloads, across seeds."""

import pytest

from repro import SimulationConfig, run_simulation
from repro.protocols.registry import available_protocols


def contended_config(protocol, seed, **overrides):
    defaults = dict(
        protocol=protocol, n_clients=10, n_items=6, network_latency=20.0,
        read_probability=0.5, min_ops=1, max_ops=3,
        total_transactions=150, warmup_transactions=0, seed=seed)
    defaults.update(overrides)
    return SimulationConfig(**defaults)


@pytest.mark.parametrize("protocol", available_protocols())
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_serializable_under_contention(protocol, seed):
    result = run_simulation(contended_config(protocol, seed))
    assert result.serializability.ok
    assert result.metrics.finished == 150


@pytest.mark.parametrize("protocol", ["s2pl", "g2pl", "g2pl-basic"])
def test_serializable_pure_writes(protocol):
    result = run_simulation(contended_config(protocol, 7,
                                              read_probability=0.0))
    assert result.serializability.ok


@pytest.mark.parametrize("protocol", ["s2pl", "g2pl", "g2pl-ro", "c2pl"])
def test_serializable_read_heavy(protocol):
    result = run_simulation(contended_config(protocol, 7,
                                              read_probability=0.9))
    assert result.serializability.ok


@pytest.mark.parametrize("protocol", ["g2pl", "g2pl-basic", "g2pl-ro"])
def test_g2pl_variants_precedence_invariants(protocol):
    # assert_invariants runs inside run_simulation; this exercises the
    # hot-contention path where chains and windows interleave heavily.
    result = run_simulation(contended_config(protocol, 5, n_clients=16,
                                              n_items=4))
    assert result.serializability.ok


def test_g2pl_with_fl_cap_serializable():
    for cap in (1, 2, 4):
        result = run_simulation(
            contended_config("g2pl", 3, max_forward_list_length=cap))
        assert result.serializability.ok, f"cap={cap}"


@pytest.mark.parametrize("ordering", ["fifo", "reads_first", "writes_first"])
def test_g2pl_ordering_disciplines_serializable(ordering):
    result = run_simulation(
        contended_config("g2pl", 3, fl_ordering=ordering))
    assert result.serializability.ok


def test_finite_bandwidth_serializable():
    for protocol in ("s2pl", "g2pl"):
        result = run_simulation(
            contended_config(protocol, 3, bandwidth=0.5))
        assert result.serializability.ok


def test_server_processing_time_serializable():
    for protocol in ("s2pl", "g2pl"):
        result = run_simulation(
            contended_config(protocol, 3, server_processing_time=0.5))
        assert result.serializability.ok


def test_single_client_never_aborts():
    for protocol in available_protocols():
        result = run_simulation(contended_config(protocol, 1, n_clients=1))
        assert result.metrics.aborted == 0, protocol


def test_progress_under_extreme_contention():
    """Two items, sixteen clients, all writes: the run must not stall."""
    for protocol in ("s2pl", "g2pl"):
        result = run_simulation(contended_config(
            protocol, 9, n_clients=16, n_items=2, max_ops=2,
            read_probability=0.0, total_transactions=100))
        assert result.metrics.finished == 100
        assert result.serializability.ok


def test_wal_drained_after_runs():
    result = run_simulation(contended_config("g2pl", 4))
    # Not directly observable from the result; re-run with a probe instead:
    # the invariant "forced before install" is enforced inside the WAL API,
    # so surviving the run without ValueError is the assertion.
    assert result.metrics.finished == 150
