"""Unit tests for metrics collection and confidence intervals."""

import math
import sys

import pytest

from repro.protocols.transaction import TxnOutcome
from repro.stats.ci import (
    _T_TABLES,
    _t_critical,
    ConfidenceInterval,
    mean_confidence_interval,
)
from repro.stats.collector import MetricsCollector


def outcome(txn_id, committed=True, start=0.0, end=10.0, reason=None):
    return TxnOutcome(txn_id=txn_id, client_id=1, committed=committed,
                      start_time=start, end_time=end, n_ops=1, n_writes=0,
                      abort_reason=reason)


class TestCollector:
    def test_warmup_discarded(self):
        c = MetricsCollector(warmup_transactions=2)
        for i in range(5):
            c.record_outcome(outcome(i, end=100.0 + i))
        assert c.metrics.warmup_discarded == 2
        assert c.metrics.committed == 3

    def test_mean_response_time(self):
        c = MetricsCollector(0)
        c.record_outcome(outcome(1, start=0, end=10))
        c.record_outcome(outcome(2, start=5, end=25))
        assert c.metrics.mean_response_time == pytest.approx(15.0)

    def test_abort_percentage(self):
        c = MetricsCollector(0)
        c.record_outcome(outcome(1))
        c.record_outcome(outcome(2, committed=False, reason="deadlock"))
        c.record_outcome(outcome(3, committed=False, reason="deadlock"))
        c.record_outcome(outcome(4))
        assert c.metrics.abort_percentage == pytest.approx(50.0)
        assert c.metrics.abort_reasons == {"deadlock": 2}

    def test_aborted_excluded_from_response_times(self):
        c = MetricsCollector(0)
        c.record_outcome(outcome(1, start=0, end=10))
        c.record_outcome(outcome(2, committed=False, start=0, end=9999))
        assert c.metrics.mean_response_time == pytest.approx(10.0)

    def test_empty_metrics_are_nan(self):
        c = MetricsCollector(0)
        assert math.isnan(c.metrics.mean_response_time)
        assert math.isnan(c.metrics.abort_percentage)
        assert math.isnan(c.metrics.throughput)

    def test_throughput(self):
        c = MetricsCollector(0)
        c.record_outcome(outcome(1, start=0, end=10))
        c.record_outcome(outcome(2, start=10, end=100))
        assert c.metrics.throughput == pytest.approx(2 / 100)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(-1)

    def test_first_measured_at_clamped_to_warmup_boundary(self):
        # Regression: the first measured transaction usually *started*
        # during the warmup phase; opening the throughput window at its
        # start time stretched the window into the transient phase and
        # understated throughput.
        c = MetricsCollector(warmup_transactions=1)
        c.record_outcome(outcome(1, start=0.0, end=50.0))    # warmup
        c.record_outcome(outcome(2, start=10.0, end=80.0))   # started early
        c.record_outcome(outcome(3, start=60.0, end=100.0))
        assert c.metrics.first_measured_at == 50.0
        assert c.metrics.throughput == pytest.approx(2 / (100.0 - 50.0))

    def test_first_measured_at_unclamped_when_started_after_warmup(self):
        c = MetricsCollector(warmup_transactions=1)
        c.record_outcome(outcome(1, start=0.0, end=50.0))
        c.record_outcome(outcome(2, start=55.0, end=80.0))
        assert c.metrics.first_measured_at == 55.0

    def test_first_measured_at_without_warmup(self):
        c = MetricsCollector(warmup_transactions=0)
        c.record_outcome(outcome(1, start=3.0, end=10.0))
        assert c.metrics.first_measured_at == 3.0

    def test_measuring_property(self):
        c = MetricsCollector(warmup_transactions=2)
        assert not c.measuring
        c.record_outcome(outcome(1))
        c.record_outcome(outcome(2))
        assert not c.measuring
        c.record_outcome(outcome(3))
        assert c.measuring


class TestPercentiles:
    def metrics_with(self, values):
        c = MetricsCollector(0)
        for index, value in enumerate(values):
            c.record_outcome(outcome(index, start=0.0, end=value))
        return c.metrics

    def test_empty_is_nan(self):
        m = self.metrics_with([])
        assert math.isnan(m.percentile(50.0))
        assert math.isnan(m.p50_response_time)

    def test_single_sample(self):
        m = self.metrics_with([7.0])
        assert m.percentile(0.0) == 7.0
        assert m.percentile(50.0) == 7.0
        assert m.percentile(100.0) == 7.0

    def test_median_interpolates(self):
        m = self.metrics_with([1.0, 2.0, 3.0, 4.0])
        assert m.percentile(50.0) == pytest.approx(2.5)

    def test_endpoints(self):
        m = self.metrics_with([5.0, 1.0, 3.0])
        assert m.percentile(0.0) == 1.0
        assert m.percentile(100.0) == 5.0

    def test_p95_p99_on_uniform_grid(self):
        m = self.metrics_with([float(i) for i in range(101)])
        assert m.p50_response_time == pytest.approx(50.0)
        assert m.p95_response_time == pytest.approx(95.0)
        assert m.p99_response_time == pytest.approx(99.0)

    def test_unsorted_input_is_sorted(self):
        m = self.metrics_with([9.0, 1.0, 5.0, 3.0, 7.0])
        assert m.percentile(50.0) == 5.0

    def test_out_of_range_rejected(self):
        m = self.metrics_with([1.0])
        with pytest.raises(ValueError):
            m.percentile(-1.0)
        with pytest.raises(ValueError):
            m.percentile(100.5)


class TestTCritical:
    def test_tables_cover_every_dof_through_30(self):
        # Regression: the table used to have gaps past dof 10, so CIs over
        # 12-30 replications crashed with a KeyError.
        for confidence, (table, _normal) in _T_TABLES.items():
            assert sorted(table) == list(range(1, 31)), confidence
            for dof in range(1, 31):
                assert _t_critical(confidence, dof) == table[dof]

    def test_tabulated_values_strictly_decrease_toward_normal(self):
        for confidence, (table, normal) in _T_TABLES.items():
            values = [table[dof] for dof in range(1, 31)]
            assert values == sorted(values, reverse=True)
            assert values[-1] > normal

    def test_spot_checks_against_standard_tables(self):
        assert _t_critical(0.95, 1) == pytest.approx(12.706)
        assert _t_critical(0.95, 19) == pytest.approx(2.093)
        assert _t_critical(0.99, 25) == pytest.approx(2.787)
        assert _t_critical(0.90, 12) == pytest.approx(1.782)

    def test_large_dof_falls_back_to_normal_quantile(self):
        assert _t_critical(0.95, 31) == pytest.approx(1.960)
        assert _t_critical(0.90, 1000) == pytest.approx(1.645)
        assert _t_critical(0.99, 31) == pytest.approx(2.576)

    def test_invalid_dof_rejected(self):
        with pytest.raises(ValueError, match="degrees of freedom"):
            _t_critical(0.95, 0)
        with pytest.raises(ValueError, match="degrees of freedom"):
            _t_critical(0.95, -3)

    def test_non_tabulated_confidence_without_scipy_raises(self, monkeypatch):
        # Force the no-scipy path even when scipy is installed: a None
        # entry in sys.modules makes `from scipy import stats` raise
        # ImportError.
        monkeypatch.setitem(sys.modules, "scipy", None)
        with pytest.raises(ValueError, match="not tabulated"):
            _t_critical(0.80, 5)

    def test_non_tabulated_confidence_with_scipy(self):
        scipy_stats = pytest.importorskip("scipy.stats")
        assert _t_critical(0.80, 5) == pytest.approx(
            float(scipy_stats.t.ppf(0.9, 5)))


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        ci = mean_confidence_interval([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_identical_samples_zero_width(self):
        ci = mean_confidence_interval([3.0, 3.0, 3.0])
        assert ci.half_width == 0.0
        assert ci.relative_precision == 0.0

    def test_known_value(self):
        # n=5, mean=10, sample sd=1 -> half = 2.776 * 1/sqrt(5)
        samples = [10 - math.sqrt(2), 10, 10, 10, 10 + math.sqrt(2)]
        ci = mean_confidence_interval(samples)
        assert ci.mean == pytest.approx(10.0)
        assert ci.half_width == pytest.approx(2.776 / math.sqrt(5), rel=1e-3)

    def test_bounds_and_relative_precision(self):
        ci = ConfidenceInterval(mean=100.0, half_width=2.0, confidence=0.95,
                                n=5)
        assert ci.low == 98.0
        assert ci.high == 102.0
        assert ci.relative_precision == pytest.approx(0.02)

    def test_more_samples_tighter_interval(self):
        wide = mean_confidence_interval([9.0, 11.0])
        tight = mean_confidence_interval([9.0, 11.0] * 10)
        assert tight.half_width < wide.half_width

    def test_large_dof_uses_normal_tail(self):
        samples = [float(i % 2) for i in range(200)]
        ci = mean_confidence_interval(samples)
        assert ci.half_width == pytest.approx(
            1.96 * 0.5013 / math.sqrt(200), rel=1e-2)

    def test_str_renders(self):
        assert "±" in str(mean_confidence_interval([1.0, 2.0, 3.0]))
