"""Unit tests for metrics collection and confidence intervals."""

import math

import pytest

from repro.protocols.transaction import TxnOutcome
from repro.stats.ci import ConfidenceInterval, mean_confidence_interval
from repro.stats.collector import MetricsCollector


def outcome(txn_id, committed=True, start=0.0, end=10.0, reason=None):
    return TxnOutcome(txn_id=txn_id, client_id=1, committed=committed,
                      start_time=start, end_time=end, n_ops=1, n_writes=0,
                      abort_reason=reason)


class TestCollector:
    def test_warmup_discarded(self):
        c = MetricsCollector(warmup_transactions=2)
        for i in range(5):
            c.record_outcome(outcome(i, end=100.0 + i))
        assert c.metrics.warmup_discarded == 2
        assert c.metrics.committed == 3

    def test_mean_response_time(self):
        c = MetricsCollector(0)
        c.record_outcome(outcome(1, start=0, end=10))
        c.record_outcome(outcome(2, start=5, end=25))
        assert c.metrics.mean_response_time == pytest.approx(15.0)

    def test_abort_percentage(self):
        c = MetricsCollector(0)
        c.record_outcome(outcome(1))
        c.record_outcome(outcome(2, committed=False, reason="deadlock"))
        c.record_outcome(outcome(3, committed=False, reason="deadlock"))
        c.record_outcome(outcome(4))
        assert c.metrics.abort_percentage == pytest.approx(50.0)
        assert c.metrics.abort_reasons == {"deadlock": 2}

    def test_aborted_excluded_from_response_times(self):
        c = MetricsCollector(0)
        c.record_outcome(outcome(1, start=0, end=10))
        c.record_outcome(outcome(2, committed=False, start=0, end=9999))
        assert c.metrics.mean_response_time == pytest.approx(10.0)

    def test_empty_metrics_are_nan(self):
        c = MetricsCollector(0)
        assert math.isnan(c.metrics.mean_response_time)
        assert math.isnan(c.metrics.abort_percentage)
        assert math.isnan(c.metrics.throughput)

    def test_throughput(self):
        c = MetricsCollector(0)
        c.record_outcome(outcome(1, start=0, end=10))
        c.record_outcome(outcome(2, start=10, end=100))
        assert c.metrics.throughput == pytest.approx(2 / 100)

    def test_negative_warmup_rejected(self):
        with pytest.raises(ValueError):
            MetricsCollector(-1)


class TestConfidenceInterval:
    def test_single_sample_zero_width(self):
        ci = mean_confidence_interval([5.0])
        assert ci.mean == 5.0
        assert ci.half_width == 0.0
        assert ci.n == 1

    def test_no_samples_rejected(self):
        with pytest.raises(ValueError):
            mean_confidence_interval([])

    def test_identical_samples_zero_width(self):
        ci = mean_confidence_interval([3.0, 3.0, 3.0])
        assert ci.half_width == 0.0
        assert ci.relative_precision == 0.0

    def test_known_value(self):
        # n=5, mean=10, sample sd=1 -> half = 2.776 * 1/sqrt(5)
        samples = [10 - math.sqrt(2), 10, 10, 10, 10 + math.sqrt(2)]
        ci = mean_confidence_interval(samples)
        assert ci.mean == pytest.approx(10.0)
        assert ci.half_width == pytest.approx(2.776 / math.sqrt(5), rel=1e-3)

    def test_bounds_and_relative_precision(self):
        ci = ConfidenceInterval(mean=100.0, half_width=2.0, confidence=0.95,
                                n=5)
        assert ci.low == 98.0
        assert ci.high == 102.0
        assert ci.relative_precision == pytest.approx(0.02)

    def test_more_samples_tighter_interval(self):
        wide = mean_confidence_interval([9.0, 11.0])
        tight = mean_confidence_interval([9.0, 11.0] * 10)
        assert tight.half_width < wide.half_width

    def test_large_dof_uses_normal_tail(self):
        samples = [float(i % 2) for i in range(200)]
        ci = mean_confidence_interval(samples)
        assert ci.half_width == pytest.approx(
            1.96 * 0.5013 / math.sqrt(200), rel=1e-2)

    def test_str_renders(self):
        assert "±" in str(mean_confidence_interval([1.0, 2.0, 3.0]))
