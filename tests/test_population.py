"""Tests for open-arrival client populations: arrival processes, the
transaction mix, Zipf sampling, the population driver, and end-to-end
determinism of population runs."""

import math
import random

import pytest

from repro.core.config import SimulationConfig
from repro.core.parallel import SimulationCell, run_cells
from repro.core.runner import run_simulation
from repro.perf.fingerprint import result_fingerprint
from repro.sim import RandomStreams, Simulator
from repro.stats.collector import MetricsCollector
from repro.workload.arrivals import (
    BurstArrivals,
    DiurnalArrivals,
    PoissonArrivals,
    make_arrivals,
)
from repro.workload.driver import RunControl
from repro.workload.generator import WorkloadParams
from repro.workload.population import (
    OpenArrivalGenerator,
    PopulationDriver,
    TransactionClass,
    ZipfItemSampler,
    default_classes,
    parse_txn_mix,
    split_population,
)


def popn_config(**overrides):
    base = dict(protocol="g2pl", n_clients=8, n_items=50, population=400,
                arrival_rate=2e-4, total_transactions=120,
                warmup_transactions=12, record_history=False, seed=7)
    base.update(overrides)
    return SimulationConfig(**base)


class TestArrivalProcesses:
    def test_poisson_interarrival_statistics(self):
        # Exponential(rate): mean 1/rate, std 1/rate (CV = 1).
        rate = 0.25
        process = PoissonArrivals(random.Random(11), rate)
        now, gaps = 0.0, []
        for _ in range(20_000):
            nxt = process.next_arrival(now)
            gaps.append(nxt - now)
            now = nxt
        mean = sum(gaps) / len(gaps)
        var = sum((g - mean) ** 2 for g in gaps) / (len(gaps) - 1)
        assert mean == pytest.approx(1.0 / rate, rel=0.05)
        assert math.sqrt(var) == pytest.approx(1.0 / rate, rel=0.05)

    def test_arrivals_strictly_advance(self):
        for process in (PoissonArrivals(random.Random(1), 0.5),
                        BurstArrivals(random.Random(2), 0.5),
                        DiurnalArrivals(random.Random(3), 0.5)):
            now = 0.0
            for _ in range(500):
                nxt = process.next_arrival(now)
                assert nxt > now
                now = nxt

    def test_burst_preserves_mean_rate(self):
        rate = 0.2
        process = BurstArrivals(random.Random(5), rate, burst_factor=6.0,
                                on_fraction=0.1, period=500.0)
        assert process.on_rate == pytest.approx(6.0 * rate)
        # Long-run mean: on_fraction*on + (1-on_fraction)*off == base.
        mean = (0.1 * process.on_rate + 0.9 * process.off_rate)
        assert mean == pytest.approx(rate)
        now, count = 0.0, 0
        horizon = 200_000.0
        while True:
            now = process.next_arrival(now)
            if now > horizon:
                break
            count += 1
        assert count / horizon == pytest.approx(rate, rel=0.05)

    def test_burst_rate_profile(self):
        process = BurstArrivals(random.Random(1), 1.0, burst_factor=4.0,
                                on_fraction=0.2, period=100.0)
        assert process.rate_at(5.0) == process.on_rate
        assert process.rate_at(50.0) == process.off_rate
        assert process.rate_at(105.0) == process.on_rate  # next period

    def test_diurnal_rate_profile(self):
        process = DiurnalArrivals(random.Random(1), 1.0, period=100.0,
                                  amplitude=0.5)
        assert process.rate_at(25.0) == pytest.approx(1.5)   # sin peak
        assert process.rate_at(75.0) == pytest.approx(0.5)   # sin trough
        assert process.rate_at(0.0) == pytest.approx(1.0)
        assert process.peak_rate == pytest.approx(1.5)

    def test_validation(self):
        rng = random.Random(1)
        with pytest.raises(ValueError):
            PoissonArrivals(rng, 0.0)
        with pytest.raises(ValueError):
            BurstArrivals(rng, 1.0, on_fraction=1.5)
        with pytest.raises(ValueError):
            BurstArrivals(rng, 1.0, burst_factor=0.5)
        with pytest.raises(ValueError):
            # off-phase rate would be negative: 4 * 0.3 > 1
            BurstArrivals(rng, 1.0, burst_factor=4.0, on_fraction=0.3)
        with pytest.raises(ValueError):
            DiurnalArrivals(rng, 1.0, amplitude=1.0)

    def test_factory_dispatch(self):
        config = popn_config()
        rng = random.Random(1)
        assert isinstance(make_arrivals(config, rng, 1.0), PoissonArrivals)
        assert isinstance(
            make_arrivals(config.replace(arrival="burst"), rng, 1.0),
            BurstArrivals)
        assert isinstance(
            make_arrivals(config.replace(arrival="diurnal"), rng, 1.0),
            DiurnalArrivals)


class TestTxnMix:
    def test_parse_round_trip(self):
        classes = parse_txn_mix("browse:6:1-3:0.9,update:3:2-5:0.3",
                                n_items=25)
        assert [c.name for c in classes] == ["browse", "update"]
        assert classes[0] == TransactionClass("browse", 6.0, 1, 3, 0.9)
        assert classes[1].read_probability == 0.3

    @pytest.mark.parametrize("bad", [
        "", "browse", "browse:1:1-3", "browse:1:3:0.9",
        "browse:0:1-3:0.9", "browse:1:3-1:0.9", "browse:1:1-3:1.5",
        "browse:1:1-3:0.9,browse:2:1-3:0.5",  # duplicate name
        "browse:x:1-3:0.9",
    ])
    def test_parse_rejects_malformed(self, bad):
        with pytest.raises(ValueError):
            parse_txn_mix(bad, n_items=25)

    def test_parse_rejects_oversized_ops(self):
        with pytest.raises(ValueError, match="exceeds"):
            parse_txn_mix("big:1:1-30:0.5", n_items=25)

    def test_config_validates_mix_eagerly(self):
        with pytest.raises(ValueError):
            popn_config(txn_mix="nope")
        popn_config(txn_mix="a:1:1-2:0.5,b:2:1-3:0.9")  # parses fine

    def test_default_classes_match_params(self):
        params = WorkloadParams(min_ops=2, max_ops=4, read_probability=0.7)
        (cls,) = default_classes(params)
        assert (cls.min_ops, cls.max_ops) == (2, 4)
        assert cls.read_probability == 0.7

    def test_mix_weights_respected(self):
        params = WorkloadParams(n_items=50)
        classes = parse_txn_mix("small:9:1-1:1.0,large:1:5-5:0.0",
                                n_items=50)
        gen = OpenArrivalGenerator(params, classes, random.Random(3))
        for _ in range(2000):
            gen.next_spec()
        share = gen.by_class["small"] / gen.generated
        assert 0.85 < share < 0.95
        assert gen.by_class["small"] + gen.by_class["large"] == 2000


class TestZipfSampler:
    def test_uniform_when_skew_zero(self):
        sampler = ZipfItemSampler(WorkloadParams(n_items=100))
        rng = random.Random(5)
        counts = [0] * 100
        for _ in range(20_000):
            counts[sampler.sample_one(rng)] += 1
        assert max(counts) < 2.0 * min(counts)

    def test_skewed_counts_decrease_with_rank(self):
        sampler = ZipfItemSampler(
            WorkloadParams(n_items=100, access_skew=0.9))
        rng = random.Random(5)
        counts = [0] * 100
        for _ in range(30_000):
            counts[sampler.sample_one(rng)] += 1
        # Weight law is monotone in rank; bucketed counts must be too.
        buckets = [sum(counts[i:i + 20]) for i in range(0, 100, 20)]
        assert buckets == sorted(buckets, reverse=True)
        # Empirical head mass tracks the configured law.
        weights = WorkloadParams(n_items=100,
                                 access_skew=0.9).item_weights()
        expected_head = sum(weights[:10]) / sum(weights)
        assert counts and sum(counts[:10]) / sum(counts) == pytest.approx(
            expected_head, rel=0.1)

    def test_distinct_sample(self):
        sampler = ZipfItemSampler(
            WorkloadParams(n_items=10, access_skew=2.5, max_ops=10))
        rng = random.Random(5)
        for _ in range(200):
            items = sampler.sample(rng, 8)
            assert len(items) == len(set(items)) == 8

    def test_extreme_skew_falls_back_deterministically(self):
        # Near-degenerate law: almost all mass on rank 0; the rejection
        # loop exhausts and the rank-order fill completes the set.
        sampler = ZipfItemSampler(
            WorkloadParams(n_items=5, access_skew=30.0, max_ops=5))
        items = sampler.sample(random.Random(1), 5)
        assert sorted(items) == [0, 1, 2, 3, 4]


class TestSplitPopulation:
    def test_even_split(self):
        assert split_population(100, 4) == [25, 25, 25, 25]

    def test_remainder_to_early_sites(self):
        assert split_population(10, 3) == [4, 3, 3]

    def test_total_preserved(self):
        for population, n in ((1, 1), (7, 3), (1000, 7), (10**6, 50)):
            assert sum(split_population(population, n)) == population


class InstantClient:
    """Protocol-client stub: commits after one time unit."""

    def __init__(self, sim):
        self.sim = sim
        self.executed = []

    def execute(self, txn):
        self.executed.append(txn.txn_id)
        yield self.sim.timeout(1.0)
        txn.commit()
        from repro.protocols.transaction import TxnOutcome

        return TxnOutcome(txn_id=txn.txn_id, client_id=txn.client_id,
                          committed=True, start_time=self.sim.now - 1.0,
                          end_time=self.sim.now, n_ops=txn.spec.n_ops,
                          n_writes=txn.spec.n_writes)


def build_population_driver(sim, n_users=20, rate=0.5, max_inflight=256,
                            target=30):
    control = RunControl(sim, target)
    collector = MetricsCollector(0)
    streams = RandomStreams(9)
    params = WorkloadParams(n_items=20)
    client = InstantClient(sim)
    driver = PopulationDriver(
        sim, 1, client, OpenArrivalGenerator(params, default_classes(params),
                                             streams.stream("popn")),
        control, collector, PoissonArrivals(streams.stream("arr"), rate),
        n_users, user_rng=streams.stream("users"),
        max_inflight=max_inflight)
    driver.start()
    return control, collector, driver, client


class TestPopulationDriver:
    def test_runs_to_target(self):
        sim = Simulator()
        control, collector, driver, client = build_population_driver(sim)
        sim.run(until=control.done_event)
        assert control.finished == 30
        assert collector.metrics.committed == 30
        state = driver.state
        assert state.arrivals >= state.started >= 30
        assert state.peak_active >= 1

    def test_busy_users_are_skipped_not_queued(self):
        sim = Simulator()
        # One user, fast arrivals, 1-unit service: most arrivals land
        # while the single user is busy and must be counted as skips.
        control, _, driver, client = build_population_driver(
            sim, n_users=1, rate=5.0, target=10)
        sim.run(until=control.done_event)
        assert driver.state.busy_skipped > 0
        assert driver.state.peak_active == 1
        assert len(client.executed) >= 10

    def test_admission_cap_sheds(self):
        sim = Simulator()
        control, _, driver, _ = build_population_driver(
            sim, n_users=500, rate=50.0, max_inflight=4, target=40)
        sim.run(until=control.done_event)
        assert driver.state.peak_active <= 4
        assert driver.state.shed > 0

    def test_validation(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            build_population_driver(sim, n_users=0)
        with pytest.raises(ValueError):
            build_population_driver(sim, max_inflight=0)


class TestPopulationConfig:
    def test_population_below_clients_rejected(self):
        with pytest.raises(ValueError, match="below n_clients"):
            popn_config(population=4)

    def test_arrival_rate_validated(self):
        with pytest.raises(ValueError):
            popn_config(arrival_rate=0.0)

    def test_unknown_arrival_rejected(self):
        with pytest.raises(ValueError):
            popn_config(arrival="sawtooth")

    def test_burst_off_phase_must_stay_nonnegative(self):
        with pytest.raises(ValueError, match="off-phase"):
            popn_config(burst_factor=6.0, burst_fraction=0.4)

    def test_describe_mentions_population(self):
        assert "population=400" in popn_config().describe()
        assert "population" not in SimulationConfig().describe()

    def test_crash_faults_rejected_with_population(self):
        config = popn_config(faults="crash=2@1000:2000")
        with pytest.raises(ValueError, match="crash faults"):
            run_simulation(config)

    def test_loss_faults_still_allowed(self):
        result = run_simulation(popn_config(
            faults="loss=0.01", total_transactions=60,
            warmup_transactions=6))
        # finished excludes the warmup-discarded transient phase
        assert result.metrics.finished == 60 - 6


class TestPopulationEndToEnd:
    def test_run_produces_population_stats(self):
        result = run_simulation(popn_config())
        stats = result.server_stats
        assert stats["population"] == 400
        assert stats["popn_started"] >= result.metrics.finished
        assert stats["popn_arrivals"] >= stats["popn_started"]
        assert 1 <= stats["popn_peak_inflight"] <= 256
        assert stats["popn_by_class"] == {"default": stats["popn_started"]}

    def test_txn_mix_classes_reported(self):
        result = run_simulation(popn_config(
            txn_mix="browse:6:1-3:0.9,update:3:2-5:0.3"))
        by_class = result.server_stats["popn_by_class"]
        assert set(by_class) == {"browse", "update"}
        assert by_class["browse"] > by_class["update"]

    @pytest.mark.parametrize("arrival", ["poisson", "burst", "diurnal"])
    def test_every_arrival_process_runs(self, arrival):
        result = run_simulation(popn_config(
            arrival=arrival, total_transactions=60, warmup_transactions=6))
        assert result.metrics.finished == 60 - 6

    def test_jobs_parallelism_is_bit_identical(self):
        configs = [popn_config(access_skew=0.5),
                   popn_config(arrival="burst", seed=11)]
        cells = [SimulationCell(config=config, seed=config.seed)
                 for config in configs]
        serial = run_cells(cells, jobs=1)
        pooled = run_cells(cells, jobs=2)
        for left, right in zip(serial, pooled):
            assert result_fingerprint(left) == result_fingerprint(right)

    def test_same_seed_replays_identically(self):
        first = run_simulation(popn_config(access_skew=0.9))
        second = run_simulation(popn_config(access_skew=0.9))
        assert result_fingerprint(first) == result_fingerprint(second)

    def test_traced_population_run_validates(self):
        from repro.obs.schema import validate_trace

        result = run_simulation(popn_config(trace=True))
        assert validate_trace(result.trace) == []
        measured = [r for r in result.trace.txns if r["measured"]]
        assert len(measured) == (result.metrics.committed
                                 + result.metrics.aborted)
