"""Protocol-level tests for s-2PL on hand-built scenarios."""

import pytest

from helpers import Harness, R, W, spec


def test_single_transaction_commits_in_three_rounds():
    h = Harness("s2pl", n_clients=1, latency=10.0)
    h.launch(1, spec((0, W), think=1.0))
    outcomes = h.run()
    out = outcomes[1]
    assert out.committed
    # request (10) + ship (10) + think (1); commit point at client.
    assert out.response_time == pytest.approx(21.0)
    assert h.store.read(0).version == 1


def test_read_only_transactions_share():
    h = Harness("s2pl", n_clients=3, latency=10.0)
    for client in (1, 2, 3):
        h.launch(client, spec((0, R), think=1.0))
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    # All three share the read lock: identical (minimal) response times.
    times = {round(out.response_time, 6) for out in outcomes.values()}
    assert times == {21.0}
    h.check_serializable()


def test_writers_serialize():
    h = Harness("s2pl", n_clients=3, latency=10.0)
    for client in (1, 2, 3):
        h.launch(client, spec((0, W), think=1.0))
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    ends = sorted(out.end_time for out in outcomes.values())
    # Each successor waits for the predecessor's release round trip:
    # release (10) + ship (10) + think (1) = 21 apart.
    assert ends[1] - ends[0] == pytest.approx(21.0)
    assert ends[2] - ends[1] == pytest.approx(21.0)
    assert h.store.read(0).version == 3
    h.check_serializable()


def test_deadlock_detected_and_requester_aborted():
    h = Harness("s2pl", n_clients=2, latency=10.0)
    # Classic crossing: t1 takes 0 then 1; t2 takes 1 then 0.
    h.launch(1, spec((0, W), (1, W), think=1.0))
    h.launch(2, spec((1, W), (0, W), think=1.0))
    outcomes = h.run()
    committed = [o for o in outcomes.values() if o.committed]
    aborted = [o for o in outcomes.values() if not o.committed]
    assert len(committed) == 1
    assert len(aborted) == 1
    assert aborted[0].abort_reason == "deadlock"
    assert h.server.deadlocks_found == 1
    h.check_serializable()


def test_victim_release_lets_survivor_finish():
    h = Harness("s2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, W), (1, W), think=1.0))
    h.launch(2, spec((1, W), (0, W), think=1.0))
    h.run()
    # After everything drains no locks remain.
    assert h.server.lock_table.held_items(1) == {}
    assert h.server.lock_table.held_items(2) == {}


def test_read_deadlock_via_upgrade_free_crossing():
    # Reads alone never deadlock in s-2PL: shared locks are compatible.
    h = Harness("s2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, R), (1, R), think=1.0))
    h.launch(2, spec((1, R), (0, R), think=1.0))
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert h.server.deadlocks_found == 0


def test_writer_waits_for_all_readers():
    h = Harness("s2pl", n_clients=3, latency=10.0)
    h.launch(1, spec((0, R), think=5.0))
    h.launch(2, spec((0, R), think=5.0))
    h.launch(3, spec((0, W), think=1.0), delay=1.0)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    reader_ends = max(outcomes[1].end_time, outcomes[2].end_time)
    assert outcomes[3].end_time > reader_ends
    h.check_serializable()


def test_fifo_no_reader_overtaking():
    h = Harness("s2pl", n_clients=3, latency=10.0)
    h.launch(1, spec((0, W), think=5.0))           # holder
    h.launch(2, spec((0, W), think=1.0), delay=1)  # queued writer
    h.launch(3, spec((0, R), think=1.0), delay=2)  # reader behind writer
    outcomes = h.run()
    assert outcomes[3].end_time > outcomes[2].end_time
    h.check_serializable()


def test_versions_advance_per_committed_write():
    h = Harness("s2pl", n_clients=2, latency=5.0)
    h.launch(1, spec((0, W), (1, W), think=1.0))
    h.launch(2, spec((0, W), think=1.0), delay=100.0)  # after t1 finishes
    h.run()
    assert h.store.read(0).version == 2
    assert h.store.read(1).version == 1
    h.check_serializable()


def test_wal_records_and_garbage_collection():
    h = Harness("s2pl", n_clients=1, latency=5.0)
    h.launch(1, spec((0, W), (1, W), think=1.0))
    h.run()
    # Installed updates were logged, forced, and garbage collected.
    assert h.wal.durable_lsn == h.wal.tail_lsn()
    assert len(h.wal) == 0
    assert h.wal.forces >= 1


def test_history_records_read_versions():
    h = Harness("s2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, W), think=1.0))
    h.launch(2, spec((0, R), think=1.0), delay=100.0)
    h.run()
    reads = h.history.reads()
    assert len(reads) == 1
    assert reads[0].version == 1  # saw the committed write
    h.check_serializable()


def test_victim_policies_accepted():
    for policy in ("requester", "youngest", "oldest"):
        h = Harness("s2pl", n_clients=2, latency=10.0, victim_policy=policy)
        h.launch(1, spec((0, W), (1, W), think=1.0))
        h.launch(2, spec((1, W), (0, W), think=1.0))
        outcomes = h.run()
        assert sum(1 for o in outcomes.values() if not o.committed) == 1
        h.check_serializable()


def test_unknown_victim_policy_rejected():
    with pytest.raises(ValueError, match="victim policy"):
        Harness("s2pl", victim_policy="coin-flip")


def test_abort_percentage_zero_without_conflicts():
    h = Harness("s2pl", n_clients=2, n_items=4, latency=10.0)
    h.launch(1, spec((0, W), think=1.0))
    h.launch(2, spec((1, W), think=1.0))
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert h.server.aborts_initiated == 0
