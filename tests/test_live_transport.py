"""LiveTransport over real loopback TCP, two endpoints in one process.

Each endpoint is a (kernel, transport) pair; their run loops co-run as
coroutines on one asyncio loop, exchanging frames over genuine sockets.
"""

import asyncio

import pytest

from repro.live.clock import LiveKernel
from repro.live.transport import LiveTransport, TransportError
from repro.network.topology import Site, UniformTopology
from repro.protocols.messages import LockRequest, TxnDone
from repro.locking.modes import LockMode


class RecordingSite(Site):
    """A site that just remembers what it received (and when)."""

    def __init__(self, site_id, kernel):
        super().__init__(site_id)
        self.kernel = kernel
        self.received = []

    def receive(self, envelope):
        self.received.append((envelope, self.kernel.now))


def free_port_map(site_ids):
    import socket

    ports = {}
    sockets = []
    for site_id in site_ids:
        sock = socket.socket()
        sock.bind(("127.0.0.1", 0))
        ports[site_id] = sock.getsockname()[1]
        sockets.append(sock)
    for sock in sockets:
        sock.close()
    return ports


def make_endpoint(site_id, port_map, latency=2.0, time_scale=0.001):
    kernel = LiveKernel(time_scale=time_scale)
    transport = LiveTransport(kernel, UniformTopology(latency), site_id,
                              port_map)
    site = RecordingSite(site_id, kernel)
    transport.add_site(site)
    return kernel, transport, site


def test_frames_cross_real_sockets_with_shaped_latency():
    port_map = free_port_map([0, 1])
    k0, t0, s0 = make_endpoint(0, port_map)
    k1, t1, s1 = make_endpoint(1, port_map)

    async def scenario():
        await t0.start()
        await t1.start()
        await asyncio.gather(t0.connect_to_peers(), t1.connect_to_peers())

        payload = LockRequest(txn_id=7, item_id=3, mode=LockMode.WRITE,
                              client_id=1)
        envelope = t1.send(1, 0, payload, size=1.0)
        assert envelope.deliver_time == pytest.approx(2.0)

        runs = asyncio.gather(k0.run(), k1.run())
        while not s0.received:
            await asyncio.sleep(0.005)
        k0.stop()
        k1.stop()
        await runs
        await t0.close()
        await t1.close()

    asyncio.run(asyncio.wait_for(scenario(), timeout=20.0))

    (received, at_time), = s0.received
    assert received.payload == LockRequest(txn_id=7, item_id=3,
                                           mode=LockMode.WRITE, client_id=1)
    assert received.src == 1 and received.dst == 0
    # shaped: the frame could not have landed before one latency elapsed
    assert at_time >= 2.0
    assert t1.stats.messages_sent == 1
    assert t1.stats.per_type == {"LockRequest": 1}


def test_per_link_fifo_is_preserved():
    port_map = free_port_map([0, 1])
    k0, t0, s0 = make_endpoint(0, port_map, latency=3.0)
    k1, t1, s1 = make_endpoint(1, port_map, latency=3.0)

    async def scenario():
        await t0.start()
        await t1.start()
        await asyncio.gather(t0.connect_to_peers(), t1.connect_to_peers())
        for index in range(10):
            t1.send(1, 0, TxnDone(txn_id=index, committed=True))
        runs = asyncio.gather(k0.run(), k1.run())
        while len(s0.received) < 10:
            await asyncio.sleep(0.005)
        k0.stop()
        k1.stop()
        await runs
        await t0.close()
        await t1.close()

    asyncio.run(asyncio.wait_for(scenario(), timeout=20.0))
    order = [env.payload.txn_id for env, _ in s0.received]
    assert order == list(range(10))


def test_control_frames_bypass_shaping_and_stats():
    port_map = free_port_map([0, 1])
    k0, t0, s0 = make_endpoint(0, port_map, latency=1000.0)
    k1, t1, s1 = make_endpoint(1, port_map, latency=1000.0)
    controls = []
    t0.control_handler = lambda name, sender, data: controls.append(
        (name, sender, data))

    async def scenario():
        await t0.start()
        await t1.start()
        await asyncio.gather(t0.connect_to_peers(), t1.connect_to_peers())
        t1.send_control(0, "hello", {"site": 1})
        while not controls:
            await asyncio.sleep(0.005)
        await t0.close()
        await t1.close()

    # with latency=1000 units a *shaped* message would take ~1s; control
    # frames must arrive orders of magnitude faster
    asyncio.run(asyncio.wait_for(scenario(), timeout=5.0))
    assert controls == [("hello", 1, {"site": 1})]
    assert t1.stats.messages_sent == 0


def test_send_to_unknown_peer_raises_at_ship_time():
    port_map = free_port_map([0, 1])
    k1, t1, s1 = make_endpoint(1, port_map, latency=0.5)

    async def scenario():
        t1.send(1, 0, TxnDone(txn_id=1, committed=True))  # never connected
        with pytest.raises(TransportError, match="no connection"):
            await k1.run(until=2.0)
        await t1.close()

    asyncio.run(asyncio.wait_for(scenario(), timeout=10.0))
