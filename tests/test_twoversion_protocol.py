"""Protocol-level tests for two-version 2PL (the §3.4 comparator).

2V-2PL commits are server-certified: the client's response time includes
the commit round trip, and a commit request can be refused (aborting the
transaction) when certification deadlocks.
"""

import pytest

from helpers import Harness, R, W, spec


def test_single_writer_commits():
    h = Harness("2v2pl", n_clients=1, latency=10.0)
    h.launch(1, spec((0, W), think=1.0))
    outcomes = h.run()
    assert outcomes[1].committed
    # request(10) + ship(10) + think(1) + commit request(10) + ack(10).
    assert outcomes[1].response_time == pytest.approx(41.0)
    assert h.store.read(0).version == 1
    h.check_serializable()


def test_writer_overlaps_readers_beating_s2pl():
    """The defining property: the writer executes concurrently with a
    long reader and finishes earlier than it would under s-2PL (where it
    could not even start until the reader released)."""
    ends = {}
    for protocol in ("2v2pl", "s2pl"):
        h = Harness(protocol, n_clients=3, latency=10.0)
        h.launch(1, spec((0, R), think=100.0), txn_id=1)
        h.launch(2, spec((0, W), think=1.0), delay=1.0, txn_id=2)
        outcomes = h.run()
        assert all(out.committed for out in outcomes.values())
        h.check_serializable()
        ends[protocol] = outcomes[2].end_time
    assert ends["2v2pl"] < ends["s2pl"]


def test_certification_delays_install_until_readers_drain():
    h = Harness("2v2pl", n_clients=3, latency=10.0)
    h.launch(1, spec((0, R), think=100.0), txn_id=1)
    h.launch(2, spec((0, W), think=1.0), delay=1.0, txn_id=2)
    # Run until the writer has requested its commit but the reader still
    # holds its read lock: nothing must be installed yet.
    h.run(until=80.0)
    assert h.store.read(0).version == 0
    assert h.server.certify_waits == 1
    h.run()
    assert h.outcomes[2].committed
    assert h.store.read(0).version == 1   # installed after reader drained
    h.check_serializable()


def test_reader_during_write_sees_committed_version():
    h = Harness("2v2pl", n_clients=3, latency=10.0)
    h.launch(1, spec((0, W), think=50.0), txn_id=1)   # slow writer
    h.launch(2, spec((0, R), think=1.0), delay=5.0, txn_id=2)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    reads = [r for r in h.history.reads() if r.txn_id == 2]
    assert reads[0].version == 0  # old committed copy, not the new one
    h.check_serializable()


def test_read_after_certification_sees_new_version():
    h = Harness("2v2pl", n_clients=3, latency=10.0)
    h.launch(1, spec((0, W), think=1.0), txn_id=1)
    h.launch(2, spec((0, R), think=1.0), delay=100.0, txn_id=2)
    h.run()
    reads = [r for r in h.history.reads() if r.txn_id == 2]
    assert reads[0].version == 1
    h.check_serializable()


def test_writers_still_serialize():
    h = Harness("2v2pl", n_clients=3, latency=10.0)
    for client in (1, 2, 3):
        h.launch(client, spec((0, W), think=1.0))
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert h.store.read(0).version == 3
    h.check_serializable()


def test_write_write_deadlock_detected():
    h = Harness("2v2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, W), (1, W), think=1.0))
    h.launch(2, spec((1, W), (0, W), think=1.0))
    outcomes = h.run()
    aborted = [o for o in outcomes.values() if not o.committed]
    assert len(aborted) == 1
    assert h.server.deadlocks_found >= 1
    h.check_serializable()


def test_certification_crossing_refuses_one_commit():
    """The 2V hazard the certify lock exists for: two transactions each
    read the old copy of what the other writes. Both request commits;
    certification deadlocks; exactly one commit is refused."""
    h = Harness("2v2pl", n_clients=2, n_items=2, latency=10.0)
    h.launch(1, spec((0, W), (1, R), think=5.0), txn_id=1)
    h.launch(2, spec((1, W), (0, R), think=5.0), txn_id=2)
    outcomes = h.run()
    committed = [o for o in outcomes.values() if o.committed]
    aborted = [o for o in outcomes.values() if not o.committed]
    assert len(committed) == 1
    assert len(aborted) == 1
    h.check_serializable()
    # Exactly the survivor's write landed.
    versions = h.store.snapshot_versions()
    assert sorted(versions.values()) == [0, 1]


def test_certification_deadlock_via_queued_reader():
    """txn1 holds a read lock the certifier needs, then queues behind the
    certifier's certify lock on another item: cycle, reader aborted."""
    h = Harness("2v2pl", n_clients=3, n_items=2, latency=10.0)
    # txn1: long think on item 0, so its item-1 request arrives after
    # txn2's commit request has frozen item 1 under the certify lock.
    h.launch(1, spec((0, R), (1, R), think=150.0), txn_id=1)
    h.launch(2, spec((1, W), (0, W), think=5.0), delay=1.0, txn_id=2)
    outcomes = h.run()
    assert outcomes[2].committed       # the certifier gets through
    assert not outcomes[1].committed   # the queued reader was the victim
    h.check_serializable()
    assert h.store.snapshot_versions() == {0: 1, 1: 1}


def test_read_only_costs_one_extra_round_trip():
    from repro import SimulationConfig, run_simulation

    results = {}
    for protocol in ("s2pl", "2v2pl"):
        cfg = SimulationConfig(protocol=protocol, n_clients=6, n_items=8,
                               read_probability=1.0, network_latency=50.0,
                               total_transactions=120,
                               warmup_transactions=20, seed=8)
        results[protocol] = run_simulation(cfg).mean_response_time
    # Identical concurrency read-only; 2V adds the commit round trip (2L).
    assert results["2v2pl"] == pytest.approx(results["s2pl"] + 100.0,
                                             rel=0.05)


def test_contended_runs_serializable_and_strict():
    from repro import SimulationConfig, run_simulation

    for seed in (1, 2, 3):
        result = run_simulation(SimulationConfig(
            protocol="2v2pl", n_clients=10, n_items=6, max_ops=3,
            read_probability=0.5, network_latency=20.0,
            total_transactions=150, warmup_transactions=0, seed=seed))
        assert result.serializability.ok
        assert result.metrics.finished == 150
