"""Unit tests for events, timeouts and conditions."""

import pytest

from repro.sim import Simulator, SimulationError


@pytest.fixture
def sim():
    return Simulator()


def test_event_lifecycle(sim):
    event = sim.event()
    assert not event.triggered
    assert not event.processed
    event.succeed(42)
    assert event.triggered
    assert not event.processed
    sim.run()
    assert event.processed
    assert event.ok
    assert event.value == 42


def test_event_value_before_trigger_is_error(sim):
    event = sim.event()
    with pytest.raises(SimulationError):
        _ = event.value
    with pytest.raises(SimulationError):
        _ = event.ok


def test_double_trigger_rejected(sim):
    event = sim.event()
    event.succeed(1)
    with pytest.raises(SimulationError):
        event.succeed(2)
    with pytest.raises(SimulationError):
        event.fail(RuntimeError())


def test_fail_requires_exception(sim):
    event = sim.event()
    with pytest.raises(TypeError):
        event.fail("not an exception")


def test_failed_event_value_raises(sim):
    event = sim.event()
    event.fail(ValueError("nope"))
    event.defused = True
    sim.run()
    assert not event.ok
    with pytest.raises(ValueError, match="nope"):
        _ = event.value


def test_unhandled_failure_surfaces_at_processing(sim):
    event = sim.event()
    event.fail(RuntimeError("unhandled"))
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_callbacks_run_in_registration_order(sim):
    event = sim.event()
    seen = []
    event.add_callback(lambda e: seen.append("one"))
    event.add_callback(lambda e: seen.append("two"))
    event.succeed()
    sim.run()
    assert seen == ["one", "two"]


def test_callback_added_after_processing_still_runs(sim):
    event = sim.event()
    event.succeed("late")
    sim.run()
    seen = []
    event.add_callback(lambda e: seen.append(e.value))
    sim.run()
    assert seen == ["late"]


def test_remove_callback(sim):
    event = sim.event()
    seen = []
    callback = seen.append
    event.add_callback(callback)
    event.remove_callback(callback)
    event.succeed()
    sim.run()
    assert seen == []


def test_timeout_fires_at_delay(sim):
    times = []
    timeout = sim.timeout(2.5, value="tick")
    timeout.add_callback(lambda e: times.append((sim.now, e.value)))
    sim.run()
    assert times == [(2.5, "tick")]


def test_timeout_cannot_be_succeeded_manually(sim):
    timeout = sim.timeout(1.0)
    with pytest.raises(SimulationError):
        timeout.succeed()
    sim.run()


def test_all_of_collects_values_in_child_order(sim):
    first, second = sim.event(), sim.event()
    condition = sim.all_of([first, second])
    sim.call_later(2.0, second.succeed, "b")
    sim.call_later(5.0, first.succeed, "a")
    result = sim.run(until=condition)
    assert result == ["a", "b"]
    assert sim.now == 5.0


def test_all_of_empty_succeeds_immediately(sim):
    condition = sim.all_of([])
    assert sim.run(until=condition) == []


def test_all_of_fails_fast(sim):
    first, second = sim.event(), sim.event()
    condition = sim.all_of([first, second])
    sim.call_later(1.0, first.fail, RuntimeError("child failed"))
    with pytest.raises(RuntimeError, match="child failed"):
        sim.run(until=condition)
    # the never-triggered sibling must not poison later runs
    second.succeed("late")
    sim.run()


def test_any_of_returns_first_event(sim):
    slow, fast = sim.timeout(10.0, "slow"), sim.timeout(1.0, "fast")
    condition = sim.any_of([slow, fast])
    winner = sim.run(until=condition)
    assert winner is fast
    assert winner.value == "fast"
    assert sim.now == 1.0
    sim.run()  # drain the slow timeout harmlessly


def test_any_of_later_failures_are_defused(sim):
    fast, failing = sim.event(), sim.event()
    condition = sim.any_of([fast, failing])
    sim.call_later(1.0, fast.succeed, "ok")
    sim.call_later(2.0, failing.fail, RuntimeError("late failure"))
    assert sim.run(until=condition) is fast
    sim.run()  # must not raise: the late failure was defused
