"""Test the one-shot reproduction report generator (quick mode)."""

from repro.analysis.report import generate_report


def test_quick_report_contains_every_figure_and_table():
    report = generate_report(fidelity="smoke", quick=True,
                             include_plots=False)
    assert "# Reproduction report" in report
    assert "Table 1" in report and "Table 2" in report
    for figure in range(1, 16):
        assert f"Figure {figure} " in report, figure
    assert "measured crossover" in report
    assert "improvement" in report
    assert "Round accounting" in report
    assert "2m+1" in report


def test_quick_report_with_plots_renders_legends():
    report = generate_report(fidelity="smoke", quick=True,
                             include_plots=True)
    assert "legend:" in report
    assert "*=s2pl" in report
