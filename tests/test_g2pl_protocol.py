"""Protocol-level tests for g-2PL on hand-built scenarios."""

import pytest

from helpers import Harness, R, W, spec


def test_single_transaction_commits():
    h = Harness("g2pl", n_clients=1, latency=10.0)
    h.launch(1, spec((0, W), think=1.0))
    outcomes = h.run()
    assert outcomes[1].committed
    # Solo forward list: request (10) + ship (10) + think (1).
    assert outcomes[1].response_time == pytest.approx(21.0)
    assert h.store.read(0).version == 1
    h.check_serializable()


def test_exclusive_chain_forwards_client_to_client():
    """The Figure 1 structure: three writers handed the item directly."""
    h = Harness("g2pl", n_clients=4, latency=10.0)
    # A primer holds the item so the three contenders share one window.
    h.launch(4, spec((0, W), think=1.0))
    for client in (1, 2, 3):
        h.launch(client, spec((0, W), think=1.0), delay=1.0)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    ends = sorted(out.end_time
                  for txn, out in outcomes.items() if txn != 1)
    # wait: txn ids 2,3,4 are the contenders? launch order: primer first.
    h.check_serializable()
    assert h.store.read(0).version == 4
    # Within the chain, successive commits are one hop + think apart
    # (10 + 1), not a full server round trip (2x10 + 1).
    contender_ends = sorted(out.end_time for out in outcomes.values())[1:]
    gaps = [b - a for a, b in zip(contender_ends, contender_ends[1:])]
    assert gaps == [pytest.approx(11.0), pytest.approx(11.0)]


def test_read_group_ships_copies_in_parallel():
    h = Harness("g2pl", n_clients=4, latency=10.0)
    h.launch(4, spec((0, W), think=1.0))  # primer forces one window
    for client in (1, 2, 3):
        h.launch(client, spec((0, R), think=1.0), delay=1.0)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    # The three readers finish simultaneously (copies shipped in parallel).
    reader_ends = sorted(out.end_time for out in outcomes.values())[1:]
    assert reader_ends[0] == reader_ends[1] == reader_ends[2]
    h.check_serializable()


def test_mr1w_writer_executes_concurrently_with_readers():
    """Under MR1W the writer after a read group is shipped concurrently."""
    h = Harness("g2pl", n_clients=4, latency=10.0, mr1w=True)
    h.launch(4, spec((0, W), think=1.0), txn_id=100)
    h.launch(1, spec((0, R), think=50.0), delay=1.0, txn_id=1)
    h.launch(2, spec((0, R), think=50.0), delay=1.0, txn_id=2)
    h.launch(3, spec((0, W), think=1.0), delay=1.5, txn_id=3)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    # The writer's transaction commits when its (short) computation is done,
    # concurrently with the readers' long computations — not after them.
    assert outcomes[3].end_time < outcomes[1].end_time
    assert outcomes[3].end_time < outcomes[2].end_time
    h.check_serializable()
    assert h.store.read(0).version == 2


def test_basic_mode_writer_waits_for_reader_releases():
    """Without MR1W the writer gets the data via the readers' releases."""
    h = Harness("g2pl", n_clients=4, latency=10.0, mr1w=False)
    h.launch(4, spec((0, W), think=1.0), txn_id=100)
    h.launch(1, spec((0, R), think=50.0), delay=1.0, txn_id=1)
    h.launch(2, spec((0, R), think=50.0), delay=1.0, txn_id=2)
    h.launch(3, spec((0, W), think=1.0), delay=1.5, txn_id=3)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    # The writer cannot even start until both readers released.
    assert outcomes[3].end_time > outcomes[1].end_time
    assert outcomes[3].end_time > outcomes[2].end_time
    h.check_serializable()
    assert h.store.read(0).version == 2


def test_mr1w_updates_held_until_reader_releases():
    """The MR1W writer's updates must not reach the server before the
    readers have released, even though the writer commits earlier."""
    h = Harness("g2pl", n_clients=4, latency=10.0, mr1w=True)
    h.launch(4, spec((0, W), think=1.0))
    h.launch(1, spec((0, R), think=80.0), delay=1.0)
    h.launch(2, spec((0, W), think=1.0), delay=1.5)
    h.run(until=60.0)
    # Writer (txn 3) has committed by now, but the store must still hold
    # only the primer's version: the update is parked at the writer.
    assert h.outcomes[3].committed
    assert h.store.read(0).version == 1
    h.run()
    assert h.store.read(0).version == 2
    h.check_serializable()


def test_paper_read_deadlock_is_avoided_by_abort():
    """§3.3's example: t1 reads 0 then 1, t2 reads 1 then 0, crossing
    collection windows — the unavoidable deadlock aborts one of them."""
    h = Harness("g2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, R), (1, R), think=1.0))
    h.launch(2, spec((1, R), (0, R), think=1.0))
    outcomes = h.run()
    aborted = [o for o in outcomes.values() if not o.committed]
    committed = [o for o in outcomes.values() if o.committed]
    assert len(aborted) == 1
    assert len(committed) == 1
    assert aborted[0].abort_reason == "precedence-cycle"
    assert h.server.avoidance_aborts == 1
    h.check_serializable()


def test_write_crossing_aborts_one_transaction():
    h = Harness("g2pl", n_clients=2, latency=10.0)
    h.launch(1, spec((0, W), (1, W), think=1.0))
    h.launch(2, spec((1, W), (0, W), think=1.0))
    outcomes = h.run()
    assert sum(1 for o in outcomes.values() if not o.committed) == 1
    h.check_serializable()
    # The aborted transaction's items were forwarded unchanged; the two
    # items carry exactly the survivor's two committed writes.
    versions = h.store.snapshot_versions()
    assert versions[0] + versions[1] == 2
    h.server.assert_invariants()


def test_window_freeze_reorders_to_respect_precedence():
    """A collection window is frozen in precedence order, not arrival
    order: if u must precede v (they sit as read-group and MR1W-writer on
    another item's chain), the window puts u first even though v's request
    arrived earlier — deadlock avoided with no abort (§3.3)."""
    h = Harness("g2pl", n_clients=5, n_items=2, latency=10.0, mr1w=True)
    # Primer on item 0 keeps it away long enough for both contenders'
    # requests to land in the same collection window.
    h.launch(3, spec((0, W), think=45.0), txn_id=100)
    # Primer on item 1 so u's and v's first requests share one window,
    # freezing chain(1) = [R(u), W(v)] with the precedence edge u -> v.
    h.launch(4, spec((1, W), think=1.0), txn_id=101)
    h.launch(1, spec((1, R), (0, W), think=20.0), delay=2.0, txn_id=1)  # u
    h.launch(2, spec((1, W), (0, W), think=2.0), delay=3.0, txn_id=2)   # v
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert h.server.avoidance_aborts == 0
    # v's item-0 request arrived first, but u precedes v in the frozen FL,
    # so u finishes first.
    assert outcomes[1].end_time < outcomes[2].end_time
    h.check_serializable()


def test_aborted_transaction_still_forwards_chain_data():
    """An aborted transaction on a dispatched chain passes data through."""
    h = Harness("g2pl", n_clients=3, latency=10.0)
    # txn1 will deadlock-abort while holding item 0 with a successor.
    h.launch(1, spec((0, W), (1, W), think=1.0))
    h.launch(2, spec((1, W), (0, W), think=1.0))
    h.launch(3, spec((0, W), think=1.0), delay=5.0)  # behind txn1 on item 0
    outcomes = h.run()
    assert outcomes[3].committed  # got the item despite a dead predecessor
    h.check_serializable()
    h.server.assert_invariants()


def test_fl_cap_limits_dispatch_size():
    h = Harness("g2pl", n_clients=4, latency=10.0,
                max_forward_list_length=1)
    h.launch(4, spec((0, W), think=1.0))
    for client in (1, 2, 3):
        h.launch(client, spec((0, W), think=1.0), delay=1.0)
    h.run()
    # Every window carried exactly one transaction.
    assert max(h.server.fl_lengths) == 1
    assert h.server.windows_dispatched == 4
    h.check_serializable()


def test_fl_cap_must_be_positive():
    with pytest.raises(ValueError, match="max_forward_list_length"):
        Harness("g2pl", max_forward_list_length=0)


def test_unknown_fl_ordering_rejected():
    with pytest.raises(ValueError, match="fl_ordering"):
        Harness("g2pl", fl_ordering="random")


def test_reads_first_ordering_groups_readers_ahead():
    h = Harness("g2pl", n_clients=4, latency=10.0,
                fl_ordering="reads_first", mr1w=False)
    h.launch(4, spec((0, W), think=1.0))
    h.launch(1, spec((0, W), think=1.0), delay=1.0)  # writer arrives first
    h.launch(2, spec((0, R), think=1.0), delay=2.0)
    h.launch(3, spec((0, R), think=1.0), delay=3.0)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    # Readers (txns 3 and 4 at clients 2 and 3) finish before the writer.
    writer_out = h.outcomes[2]   # txn launched at client 1
    reader_ends = [h.outcomes[3].end_time, h.outcomes[4].end_time]
    assert max(reader_ends) < writer_out.end_time
    h.check_serializable()


def test_expand_read_groups_grafts_reader():
    h = Harness("g2pl", n_clients=3, latency=10.0, expand_read_groups=True)
    h.launch(1, spec((0, R), think=50.0))
    h.launch(2, spec((0, R), think=1.0), delay=15.0)  # arrives mid-flight
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert h.server.grafted_reads == 1
    # The grafted reader did not wait for the first reader's long think.
    assert outcomes[2].end_time < outcomes[1].end_time
    h.check_serializable()


def test_graft_not_applied_when_chain_has_writer():
    h = Harness("g2pl", n_clients=3, latency=10.0, expand_read_groups=True)
    h.launch(1, spec((0, W), think=50.0))
    h.launch(2, spec((0, R), think=1.0), delay=15.0)
    outcomes = h.run()
    assert all(out.committed for out in outcomes.values())
    assert h.server.grafted_reads == 0
    assert outcomes[2].end_time > outcomes[1].end_time
    h.check_serializable()


def test_versions_accumulate_through_chain():
    """Two committed writers in one chain return base+2 to the server."""
    h = Harness("g2pl", n_clients=3, latency=10.0)
    h.launch(3, spec((0, W), think=1.0))           # primer: version 1
    h.launch(1, spec((0, W), think=1.0), delay=1.0)
    h.launch(2, spec((0, W), think=1.0), delay=1.0)
    h.run()
    assert h.store.read(0).version == 3
    h.check_serializable()


def test_server_invariants_after_heavy_run():
    h = Harness("g2pl", n_clients=3, latency=5.0)
    for i, client in enumerate((1, 2, 3)):
        h.launch(client, spec((0, W), (1, R), think=1.0), delay=float(i))
        h.launch(client, spec((1, W), (0, R), think=1.0), delay=50.0 + i)
    h.run()
    h.server.assert_invariants()
    h.check_serializable()


def test_wal_used_for_returned_versions():
    h = Harness("g2pl", n_clients=1, latency=5.0)
    h.launch(1, spec((0, W), think=1.0))
    h.run()
    assert h.wal.durable_lsn == h.wal.tail_lsn()
    assert h.wal.forces >= 1
