"""Bit-identical replay against the pre-fast-path goldens.

The committed goldens under ``tests/golden/`` were generated on the
kernel *before* the fast-path work (slotted envelopes, bound send
implementations, memoized latency, lazy timer deletion, unchecked
precedence edges, batched/bound RNG draws). These tests replay every
golden cell on the current kernel — serially and through the spawn-based
process pool — and require the canonical result fingerprint (metrics,
response-time lists, server stats, trace summaries) to match byte for
byte. A mismatch means an "optimization" changed a trajectory, which by
definition makes it not an optimization.
"""

import pytest

from repro.core.parallel import SimulationCell, run_cells
from repro.perf.fingerprint import fingerprint_digest, result_fingerprint
from repro.perf.goldens import GOLDEN_CELLS, golden_config, load_golden

CELL_NAMES = sorted(GOLDEN_CELLS)


def _assert_matches_golden(name, result):
    golden = load_golden(name)
    fingerprint = result_fingerprint(result)
    digest = fingerprint_digest(fingerprint)
    assert fingerprint == golden["fingerprint"], (
        f"golden cell {name!r}: result fingerprint diverged from the "
        f"pre-optimization kernel")
    assert digest == golden["digest"]


class TestSerialReplay:
    @pytest.mark.parametrize("name", CELL_NAMES)
    def test_cell_replays_bit_identically(self, name):
        config, seed = golden_config(name)
        [result] = run_cells([SimulationCell(config=config, seed=seed)],
                             jobs=1)
        _assert_matches_golden(name, result)


class TestPooledReplay:
    def test_all_cells_replay_bit_identically_at_jobs_4(self):
        cells = []
        for name in CELL_NAMES:
            config, seed = golden_config(name)
            cells.append(SimulationCell(config=config, seed=seed))
        results = run_cells(cells, jobs=4)
        for name, result in zip(CELL_NAMES, results):
            _assert_matches_golden(name, result)


def test_golden_files_are_internally_consistent():
    """The committed digest must be the digest of the committed
    fingerprint — guards against hand-edited goldens."""
    for name in CELL_NAMES:
        golden = load_golden(name)
        assert golden["cell"] == name
        assert fingerprint_digest(golden["fingerprint"]) == golden["digest"]
