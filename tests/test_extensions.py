"""Tests for the extension knobs: access skew (Zipf) and MPL > 1."""

import pytest

from repro import SimulationConfig, run_simulation
from repro.sim import RandomStreams
from repro.workload.generator import WorkloadGenerator, WorkloadParams


class TestAccessSkew:
    def test_zero_skew_is_uniform(self):
        params = WorkloadParams()
        assert params.item_weights() == [1.0] * 25

    def test_negative_skew_rejected(self):
        with pytest.raises(ValueError):
            WorkloadParams(access_skew=-0.5)

    def test_weights_decrease_with_rank(self):
        weights = WorkloadParams(access_skew=1.0).item_weights()
        assert all(a > b for a, b in zip(weights, weights[1:]))
        assert weights[0] == 1.0
        assert weights[24] == pytest.approx(1.0 / 25.0)

    def test_skewed_sampling_prefers_low_ranks(self):
        gen = WorkloadGenerator(WorkloadParams(access_skew=1.5),
                                RandomStreams(3))
        counts = [0] * 25
        for _ in range(400):
            for item in gen.next_spec(1).items:
                counts[item] += 1
        # Rank-0 item much hotter than the coldest quartile combined.
        assert counts[0] > sum(counts[19:])

    def test_skewed_items_still_distinct(self):
        gen = WorkloadGenerator(
            WorkloadParams(access_skew=2.0, min_ops=5, max_ops=5),
            RandomStreams(3))
        for _ in range(100):
            spec = gen.next_spec(1)
            assert len(set(spec.items)) == 5

    @pytest.mark.parametrize("protocol", ["s2pl", "g2pl"])
    def test_skewed_runs_serializable(self, protocol):
        result = run_simulation(SimulationConfig(
            protocol=protocol, n_clients=8, n_items=10, access_skew=1.0,
            network_latency=20.0, total_transactions=120,
            warmup_transactions=0, seed=4))
        assert result.serializability.ok

    def test_skew_lengthens_forward_lists(self):
        """Hotter data -> longer forward lists (the paper's §3.4 remark)."""
        lengths = {}
        for skew in (0.0, 2.0):
            result = run_simulation(SimulationConfig(
                protocol="g2pl", n_clients=12, n_items=12, max_ops=2,
                access_skew=skew, network_latency=100.0,
                total_transactions=200, warmup_transactions=0, seed=4,
                record_history=False))
            lengths[skew] = result.server_stats["mean_fl_length"]
        assert lengths[2.0] > lengths[0.0]


class TestMultiprogramming:
    def test_mpl_must_be_positive(self):
        with pytest.raises(ValueError):
            SimulationConfig(mpl=0)

    @pytest.mark.parametrize("protocol", ["s2pl", "g2pl", "c2pl"])
    def test_mpl2_serializable(self, protocol):
        result = run_simulation(SimulationConfig(
            protocol=protocol, n_clients=4, n_items=8, mpl=2,
            network_latency=20.0, total_transactions=120,
            warmup_transactions=0, seed=4))
        assert result.serializability.ok
        assert result.metrics.finished == 120

    def test_mpl_raises_throughput_at_low_contention(self):
        """With plenty of items, more streams per client finish the run
        in less simulated time."""
        durations = {}
        for mpl in (1, 3):
            result = run_simulation(SimulationConfig(
                protocol="s2pl", n_clients=3, n_items=20, max_ops=1,
                read_probability=1.0, mpl=mpl, network_latency=50.0,
                total_transactions=150, warmup_transactions=0, seed=4,
                record_history=False))
            durations[mpl] = result.duration
        assert durations[3] < durations[1]
