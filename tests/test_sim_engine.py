"""Unit tests for the simulation engine (clock, heap, run loop)."""

import pytest

from repro.sim import Simulator, SimulationError


def test_clock_starts_at_zero():
    sim = Simulator()
    assert sim.now == 0.0


def test_call_later_advances_clock():
    sim = Simulator()
    seen = []
    sim.call_later(5.0, lambda: seen.append(sim.now))
    sim.run()
    assert seen == [5.0]
    assert sim.now == 5.0


def test_call_soon_runs_at_current_time():
    sim = Simulator()
    seen = []
    sim.call_soon(seen.append, "a")
    sim.call_soon(seen.append, "b")
    sim.run()
    assert seen == ["a", "b"]
    assert sim.now == 0.0


def test_entries_process_in_timestamp_order():
    sim = Simulator()
    seen = []
    sim.call_later(3.0, seen.append, 3)
    sim.call_later(1.0, seen.append, 1)
    sim.call_later(2.0, seen.append, 2)
    sim.run()
    assert seen == [1, 2, 3]


def test_ties_break_by_scheduling_order():
    sim = Simulator()
    seen = []
    for tag in ("first", "second", "third"):
        sim.call_later(7.0, seen.append, tag)
    sim.run()
    assert seen == ["first", "second", "third"]


def test_run_until_time_stops_and_sets_clock():
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, 1)
    sim.call_later(10.0, seen.append, 10)
    sim.run(until=5.0)
    assert seen == [1]
    assert sim.now == 5.0
    sim.run()
    assert seen == [1, 10]


def test_run_until_time_advances_clock_past_drained_heap():
    # Pins the documented (SimPy-convention) semantics: run(until=t) means
    # "advance the simulated world to t", so the clock lands on exactly t
    # even when the last event fired earlier — the idle tail is simulated
    # time in which nothing happened, and rates computed as events / now
    # use the requested duration rather than the last event's timestamp.
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, 1)
    sim.run(until=50.0)
    assert seen == [1]
    assert sim.now == 50.0
    # Scheduling keeps working relative to the advanced clock.
    sim.call_later(2.0, seen.append, 2)
    sim.run()
    assert seen == [1, 2]
    assert sim.now == 52.0


def test_run_until_time_on_empty_heap_advances_clock():
    sim = Simulator()
    sim.run(until=10.0)
    assert sim.now == 10.0


def test_run_until_event_returns_value():
    sim = Simulator()
    event = sim.event()
    sim.call_later(4.0, event.succeed, "done")
    assert sim.run(until=event) == "done"
    assert sim.now == 4.0


def test_run_until_event_raises_on_failure():
    sim = Simulator()
    event = sim.event()
    sim.call_later(1.0, event.fail, RuntimeError("boom"))
    with pytest.raises(RuntimeError, match="boom"):
        sim.run(until=event)


def test_run_until_event_never_fired_is_an_error():
    sim = Simulator()
    event = sim.event()
    with pytest.raises(SimulationError, match="ran out of events"):
        sim.run(until=event)


def test_run_until_past_time_is_an_error():
    sim = Simulator()
    sim.call_later(10.0, lambda: None)
    sim.run()
    with pytest.raises(SimulationError):
        sim.run(until=2.0)


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(ValueError):
        sim.call_later(-1.0, lambda: None)
    with pytest.raises(ValueError):
        sim.timeout(-0.5)


def test_step_processes_one_entry():
    sim = Simulator()
    seen = []
    sim.call_later(1.0, seen.append, "a")
    sim.call_later(2.0, seen.append, "b")
    assert sim.step() is True
    assert seen == ["a"]
    assert sim.step() is True
    assert sim.step() is False


def test_peek_and_pending():
    sim = Simulator()
    assert sim.peek() == float("inf")
    assert sim.pending == 0
    sim.call_later(3.5, lambda: None)
    assert sim.peek() == 3.5
    assert sim.pending == 1


def test_processed_events_counter():
    sim = Simulator()
    for _ in range(5):
        sim.call_soon(lambda: None)
    sim.run()
    assert sim.processed_events == 5


def test_nested_scheduling_during_run():
    sim = Simulator()
    seen = []

    def chain(depth):
        seen.append((sim.now, depth))
        if depth < 3:
            sim.call_later(1.0, chain, depth + 1)

    sim.call_soon(chain, 0)
    sim.run()
    assert seen == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]
