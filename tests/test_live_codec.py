"""Round-trip property tests for the live wire codec.

Every payload class in ``repro.protocols.messages`` gets a hypothesis
strategy built from its real field shapes; encode → frame → decode must
reproduce an equal value. Truncations, bit flips, trailing garbage, and
hostile length prefixes must raise ``CodecError`` — never a partial or
wrong value, and never a non-CodecError crash.
"""

import dataclasses
import math
import struct

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.live import codec
from repro.live.codec import (
    CodecError,
    MESSAGE_TYPES,
    decode,
    decode_frame,
    encode,
    encode_frame,
)
from repro.locking.modes import LockMode
from repro.protocols import messages
from repro.protocols.forward_list import FLEntry, ForwardList, TxnRef
from repro.protocols.messages import TxnDone

# -- strategies --------------------------------------------------------------

ids = st.integers(min_value=0, max_value=2**48)
any_ints = st.integers()  # arbitrary precision, both signs
floats = st.floats(allow_nan=False)
modes = st.sampled_from([LockMode.READ, LockMode.WRITE])
values = st.one_of(st.none(), st.text(max_size=20), any_ints, floats)

txn_refs = st.builds(TxnRef, txn_id=ids, client_id=ids)


def fl_entries():
    read_groups = st.builds(
        lambda refs: FLEntry(LockMode.READ, refs),
        st.lists(txn_refs, min_size=1, max_size=4).map(tuple))
    writers = st.builds(
        lambda ref: FLEntry(LockMode.WRITE, (ref,)), txn_refs)
    return st.one_of(read_groups, writers)


forward_lists = st.builds(
    ForwardList, st.lists(fl_entries(), max_size=4).map(tuple))

plain = st.one_of(
    st.none(), st.booleans(), any_ints, floats, st.text(max_size=30),
    st.binary(max_size=30))

containers = st.recursive(
    plain,
    lambda children: st.one_of(
        st.lists(children, max_size=4),
        st.lists(children, max_size=4).map(tuple),
        st.dictionaries(st.one_of(any_ints, st.text(max_size=8)),
                        children, max_size=4)),
    max_leaves=12)


def _field_strategy(cls, field):
    """A value strategy matching one message field's real domain."""
    specials = {
        ("GShip", "fl_tail"): forward_lists,
        ("SpecExtend", "fl"): forward_lists,
        ("ReaderRelease", "fl_from_writer"):
            st.one_of(st.none(), forward_lists),
        ("GShip", "release_to"):
            st.one_of(st.none(), st.tuples(ids, ids)),
        ("GShip", "group"): st.lists(ids, max_size=4).map(tuple),
        ("ReaderRelease", "group"): st.lists(ids, max_size=4).map(tuple),
        ("GShip", "await_releases_from"):
            st.lists(ids, max_size=4).map(tuple),
        ("AbortNotice", "expect_items"): st.lists(ids, max_size=4).map(tuple),
        ("CommitRelease", "read_items"): st.lists(ids, max_size=4).map(tuple),
        ("CommitRelease", "updates"):
            st.dictionaries(ids, st.text(max_size=12), max_size=4),
        ("ChainCommit", "writes"):
            st.dictionaries(ids, st.tuples(ids, st.text(max_size=12)),
                            max_size=4),
        ("ReturnToServer", "outcomes"):
            st.dictionaries(ids, st.sampled_from(["committed", "aborted"]),
                            max_size=4),
        ("PrepareRequest", "updates"):
            st.dictionaries(ids, st.one_of(
                st.text(max_size=12),
                st.tuples(ids, st.text(max_size=12))), max_size=4),
        ("PrepareRequest", "read_items"): st.lists(ids, max_size=4).map(tuple),
        ("PrepareRequest", "participants"):
            st.lists(ids, max_size=4).map(tuple),
        ("CommitDecision", "updates"):
            st.one_of(st.none(),
                      st.dictionaries(ids, st.text(max_size=12), max_size=4)),
        ("OutcomeReply", "status"):
            st.sampled_from(["committed", "aborted", "prepared", "unknown"]),
    }
    key = (cls.__name__, field.name)
    if key in specials:
        return specials[key]
    name = field.name
    if name == "mode":
        return modes
    if name in ("value",):
        return values
    if name in ("commit_time",):
        return st.one_of(st.none(), floats)
    if name in ("reason",):
        return st.text(max_size=20)
    if name in ("committed", "final", "from_cache_grant", "carries_data",
                "vote", "vote_request", "charge", "ack", "commit",
                "accepted"):
        return st.booleans()
    if name in ("busy_txn", "client_id") and field.default is None:
        return st.one_of(st.none(), ids)
    return ids  # txn_id, item_id, version, epoch, from_txn, to_txn, ...


def message_strategy(cls):
    kwargs = {field.name: _field_strategy(cls, field)
              for field in dataclasses.fields(cls)}
    return st.builds(cls, **kwargs)


any_message = st.one_of([message_strategy(cls) for cls in MESSAGE_TYPES])


# -- round trips -------------------------------------------------------------

def test_every_messages_class_is_covered():
    """MESSAGE_TYPES must cover every payload dataclass in the module."""
    payload_classes = {
        obj for name, obj in vars(messages).items()
        if dataclasses.is_dataclass(obj) and isinstance(obj, type)}
    assert payload_classes == set(MESSAGE_TYPES)


@pytest.mark.parametrize("cls", MESSAGE_TYPES,
                         ids=[cls.__name__ for cls in MESSAGE_TYPES])
@settings(max_examples=40, deadline=None)
@given(data=st.data())
def test_message_round_trip(cls, data):
    message = data.draw(message_strategy(cls))
    decoded = decode(encode(message))
    assert type(decoded) is cls
    assert decoded == message


@settings(max_examples=150, deadline=None)
@given(value=containers)
def test_container_round_trip(value):
    assert decode(encode(value)) == value


@settings(max_examples=60, deadline=None)
@given(fl=forward_lists)
def test_forward_list_round_trip(fl):
    decoded = decode(encode(fl))
    assert isinstance(decoded, ForwardList)
    assert decoded == fl
    assert [entry.mode for entry in decoded] == [entry.mode for entry in fl]


@settings(max_examples=60, deadline=None)
@given(message=any_message)
def test_frame_round_trip(message):
    frame = encode_frame(message)
    value, consumed = decode_frame(frame)
    assert consumed == len(frame)
    assert value == message


@settings(max_examples=60, deadline=None)
@given(message=any_message, trailer=st.binary(min_size=0, max_size=8))
def test_frame_ignores_bytes_after_frame(message, trailer):
    """decode_frame consumes exactly one frame off the head of a buffer."""
    frame = encode_frame(message)
    value, consumed = decode_frame(frame + trailer)
    assert consumed == len(frame)
    assert value == message


def test_nan_survives_by_bit_pattern():
    frame = encode_frame(float("nan"))
    value, _ = decode_frame(frame)
    assert math.isnan(value)


def test_bool_and_int_do_not_collapse():
    assert decode(encode(True)) is True
    assert decode(encode(1)) == 1
    assert type(decode(encode(1))) is int
    assert type(decode(encode(True))) is bool


def test_int_dict_keys_round_trip():
    value = {1: "a", -7: "b", 2**70: "c"}
    assert decode(encode(value)) == value


# -- rejection ---------------------------------------------------------------

@settings(max_examples=60, deadline=None)
@given(message=any_message, cut=st.integers(min_value=1, max_value=64))
def test_truncated_frames_rejected(message, cut):
    frame = encode_frame(message)
    cut = min(cut, len(frame))
    with pytest.raises(CodecError):
        decode_frame(frame[:-cut])


@settings(max_examples=120, deadline=None)
@given(garbage=st.binary(min_size=0, max_size=64))
def test_garbage_never_crashes_decoder(garbage):
    """Arbitrary bytes either decode (harmlessly) or raise CodecError."""
    try:
        decode_frame(garbage)
    except CodecError:
        pass


@settings(max_examples=60, deadline=None)
@given(message=any_message, position=st.integers(min_value=0),
       flip=st.integers(min_value=1, max_value=255))
def test_bit_flips_never_crash_decoder(message, position, flip):
    frame = bytearray(encode_frame(message))
    position %= len(frame)
    frame[position] ^= flip
    try:
        decode_frame(bytes(frame))
    except CodecError:
        pass


def test_trailing_garbage_inside_frame_rejected():
    body = encode(TxnDone(txn_id=1, committed=True)) + b"\x00"
    frame = struct.pack(">I", len(body)) + body
    with pytest.raises(CodecError, match="trailing garbage"):
        decode_frame(frame)


def test_hostile_length_prefix_rejected():
    frame = struct.pack(">I", codec.MAX_FRAME_SIZE + 1)
    with pytest.raises(CodecError, match="MAX_FRAME_SIZE"):
        decode_frame(frame)


def test_unknown_tag_rejected():
    body = b"Z"
    frame = struct.pack(">I", len(body)) + body
    with pytest.raises(CodecError, match="unknown tag"):
        decode_frame(frame)


def test_unknown_message_index_rejected():
    body = b"m" + bytes((len(MESSAGE_TYPES),))
    frame = struct.pack(">I", len(body)) + body
    with pytest.raises(CodecError, match="unknown message-type index"):
        decode_frame(frame)


def test_unencodable_value_rejected():
    with pytest.raises(CodecError, match="cannot encode"):
        encode(object())
