#!/usr/bin/env python
"""Loading the server: Figures 12-15 in miniature.

Keeps the transaction profile fixed (1-5 accesses over 25 hot items at
s-WAN latency) while the number of clients grows, and reports both mean
response time and abort percentage per protocol. The paper's claim: under
increasing data contention g-2PL outperforms s-2PL at high loads, and
beyond a certain load s-2PL also aborts a higher fraction of transactions.

    python examples/scalability_study.py
"""

from repro.analysis import ascii_plot, render_experiment
from repro.core.experiments import clients_sweep_experiment


def main():
    for read_probability in (0.25, 0.75):
        print(f"=== pr = {read_probability} "
              f"(s-WAN latency 500, 25 hot items) ===\n")
        results = clients_sweep_experiment(
            read_probability, fidelity="smoke", seed=7,
            client_counts=(10, 25, 50, 100))
        response, aborts = results["response"], results["aborts"]
        print(render_experiment(response,
                                improvement_between=("s2pl", "g2pl")))
        print()
        print(render_experiment(aborts))
        print()
        print(ascii_plot(response, width=48, height=10))
        print()


if __name__ == "__main__":
    main()
