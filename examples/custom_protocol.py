#!/usr/bin/env python
"""Extending the library: plug in your own concurrency-control protocol.

The protocol layer is a pair of sites (server + client) behind the
``make_protocol`` registry; everything else (kernel, network, workload,
metrics, serializability validation) is reusable. This example implements
"no-wait 2PL" — a textbook variant in which a conflicting lock request is
never queued: the requester is aborted immediately (abort-and-restart
instead of blocking). It then races it against s-2PL and g-2PL.

The implementation subclasses the s-2PL server and overrides exactly one
decision point: what to do when a lock cannot be granted.

    python examples/custom_protocol.py
"""

from repro import SimulationConfig
from repro.core.runner import run_simulation
from repro.locking.lock_table import LockRequestState
from repro.protocols import registry
from repro.protocols.s2pl import S2PLClient, S2PLServer


class NoWait2PLServer(S2PLServer):
    """s-2PL, except a blocked request aborts the requester on the spot.

    No wait-for graph is ever needed: nothing waits, so nothing deadlocks.
    The price is a much higher abort rate under contention.
    """

    def on_LockRequest(self, msg):
        if msg.txn_id in self._dead:
            return
        if msg.txn_id not in self._txns:
            self._txns[msg.txn_id] = (msg.client_id, self.sim.now)
        state = self.lock_table.acquire(msg.txn_id, msg.item_id, msg.mode)
        if state is LockRequestState.GRANTED:
            self._ship(msg.txn_id, msg.item_id, msg.mode)
        else:
            self.lock_table.drop_queued(msg.txn_id)
            self._abort(msg.txn_id, reason="no-wait-conflict")


def register_no_wait():
    """Add the protocol to the registry under the name 'nowait2pl'."""
    registry._REGISTRY["nowait2pl"] = (
        lambda: (NoWait2PLServer, S2PLClient, {}))


def main():
    register_no_wait()
    config = SimulationConfig(
        n_clients=20, n_items=25, read_probability=0.5,
        network_latency=250.0, total_transactions=500,
        warmup_transactions=50)
    print(f"workload: {config.describe()}\n")
    print(f"  {'protocol':10} {'response':>12} {'aborted':>9} "
          f"{'serializable':>13}")
    for protocol in ("s2pl", "g2pl", "nowait2pl"):
        result = run_simulation(config.replace(protocol=protocol))
        print(f"  {protocol:10} {result.mean_response_time:12,.0f} "
              f"{result.abort_percentage:8.1f}% "
              f"{str(result.serializability.ok):>13}")
    print("\nno-wait trades waiting for aborts: deadlock-free by "
          "construction, still serializable (the validator just checked), "
          "but the abort rate explodes under contention.")


if __name__ == "__main__":
    main()
