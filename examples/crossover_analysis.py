#!/usr/bin/env python
"""Where does s-2PL start beating g-2PL? (Figures 5-7 in miniature.)

g-2PL groups lock grants into forward-list windows, which saves rounds
for update transactions but delays reads (grants happen only at window
boundaries). As the read probability grows there is a crossover — around
pr~0.85 in the paper — beyond which s-2PL's shared read locks win.
This example sweeps the read probability at two latencies, locates the
crossover by interpolation, and shows the paper's proposed fix: the
read-only forward-list expansion (`g2pl-ro`), which grafts arriving
readers onto writer-free chains and removes the read penalty.

    python examples/crossover_analysis.py
"""

from repro import SimulationConfig, run_replications
from repro.analysis import find_crossover, render_experiment
from repro.core.experiments import figure_response_vs_read_probability
from repro.network.presets import NetworkEnvironment


def main():
    sweep_prs = (0.0, 0.25, 0.5, 0.7, 0.8, 0.9, 1.0)
    for environment in (NetworkEnvironment.SS_LAN,
                        NetworkEnvironment.S_WAN):
        result = figure_response_vs_read_probability(
            environment, fidelity="smoke", seed=7,
            read_probabilities=sweep_prs)
        print(render_experiment(result,
                                improvement_between=("s2pl", "g2pl")))
        crossover = find_crossover(result)
        print(f"crossover read probability in {environment.name}: "
              f"{crossover:.2f}" if crossover is not None
              else "no crossover found")
        print()

    print("the paper's remedy for the read penalty — read-only FL "
          "expansion (g2pl-ro) — at pr=0.9, s-WAN:")
    base = SimulationConfig(read_probability=0.9, network_latency=500.0,
                            total_transactions=400, warmup_transactions=40,
                            record_history=False)
    for protocol in ("s2pl", "g2pl", "g2pl-ro"):
        result = run_replications(base.replace(protocol=protocol),
                                  replications=2, base_seed=7)
        print(f"  {protocol:8} response={result.response_time}  "
              f"aborts={result.abort_percentage}%")


if __name__ == "__main__":
    main()
