#!/usr/bin/env python
"""Hot-data access across network scales: Figure 2/3 in miniature.

The paper's motivating scenario: a data-server system migrating from a
LAN to a gigabit WAN, where propagation latency dominates and protocols
must save *rounds*, not bytes. This example sweeps the six Table 2
environments and shows how the g-2PL advantage holds across the whole
latency range (its flatter slope = WAN scalability), printing a text
table and an ASCII plot.

    python examples/hot_data_wan.py
"""

from repro.analysis import ascii_plot, render_experiment
from repro.core.experiments import latency_sweep_experiment
from repro.network.presets import TABLE2_ENVIRONMENTS, environment_for_latency


def main():
    print("Table 2 environments:")
    for env in TABLE2_ENVIRONMENTS:
        print(f"  {env}")
    print("\nsweeping latency for pr=0.6 (updates present), "
          "50 clients, 25 hot items...\n")

    results = latency_sweep_experiment(read_probability=0.6,
                                       fidelity="smoke", seed=7)
    response = results["response"]
    print(render_experiment(response, improvement_between=("s2pl", "g2pl")))
    print()
    print(ascii_plot(response))

    print("\nper-environment improvement:")
    for latency in response.series["s2pl"].xs:
        env = environment_for_latency(latency)
        name = env.name if env else f"latency {latency:g}"
        print(f"  {name:7} g-2PL {response.improvement_at(latency):+6.1f}%")
    print("\nthe lower g-2PL slope is the paper's scalability claim: "
          "the protocol hides propagation latency by saving rounds.")


if __name__ == "__main__":
    main()
