#!/usr/bin/env python
"""Quickstart: compare s-2PL and g-2PL on the paper's hot-data workload.

Runs both protocols on the same small-WAN scenario (50 clients hammering
25 hot items at network latency 500) with common random numbers, prints
mean transaction response time with 95% confidence intervals, the abort
percentages, and the g-2PL improvement — the paper's headline result
(~20-25% better response time in the presence of updates).

    python examples/quickstart.py [read_probability]
"""

import sys

from repro import (
    SimulationConfig,
    compare_protocols,
    improvement_percentage,
)


def main():
    read_probability = float(sys.argv[1]) if len(sys.argv) > 1 else 0.25
    config = SimulationConfig(
        n_clients=50,
        n_items=25,
        read_probability=read_probability,
        network_latency=500.0,      # small WAN (Table 2)
        total_transactions=1000,
        warmup_transactions=100,
        record_history=False,       # set True to also verify serializability
    )
    print(f"workload: {config.describe()}")
    print("running both protocols (2 replications each)...\n")

    results = compare_protocols(config, ("s2pl", "g2pl"), replications=2)
    for name, result in results.items():
        print(f"  {name:5}  response time: {result.response_time}   "
              f"aborted: {result.abort_percentage}%")

    improvement = improvement_percentage(results["s2pl"], results["g2pl"])
    print(f"\ng-2PL response-time improvement over s-2PL: "
          f"{improvement:+.1f}%")
    print("paper (ICDE 1998): 19.5%-26.9% in the presence of updates; "
          "negative at read-only workloads (try: quickstart.py 1.0)")


if __name__ == "__main__":
    main()
