"""Unbounded FIFO mailbox for message passing between processes."""

from collections import deque

from repro.sim.events import Event


class Mailbox:
    """FIFO queue of items; ``get()`` returns an event that yields one item.

    Items put while getters are pending are matched in FIFO order on both
    sides, at the current simulation time.
    """

    def __init__(self, sim):
        self.sim = sim
        self._items = deque()
        self._getters = deque()

    def __len__(self):
        return len(self._items)

    def put(self, item):
        """Deposit ``item``; wakes the oldest pending getter, if any.

        A getter whose process was interrupted while waiting is skipped: its
        event has lost its only callback, so handing it the item would drop
        the item silently. (A live getter always has a callback, because a
        process attaches its resume callback synchronously at ``yield``.)
        """
        while self._getters:
            getter = self._getters.popleft()
            if not getter.triggered and getter.callbacks:
                getter.succeed(item)
                return
        self._items.append(item)

    def get(self):
        """Return an event that succeeds with the next item."""
        event = Event(self.sim)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def peek_all(self):
        """Snapshot of queued items (for inspection in tests)."""
        return list(self._items)
