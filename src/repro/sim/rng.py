"""Reproducible named random streams.

Each simulation entity (workload generator, per-client arrival process, ...)
draws from its own stream so that changing one entity's consumption pattern
does not perturb the others — the standard variance-reduction discipline for
comparing protocols under common random numbers (Jain, ch. 25).
"""

import hashlib
import random


def _derive_seed(root_seed, name):
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class RandomStreams:
    """A family of independent ``random.Random`` streams under one root seed."""

    def __init__(self, root_seed):
        self.root_seed = root_seed
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def uniform(self, name, low, high):
        """Draw U(low, high) from stream ``name``."""
        return self.stream(name).uniform(low, high)

    def randint(self, name, low, high):
        """Draw a uniform integer in [low, high] from stream ``name``."""
        return self.stream(name).randint(low, high)

    def spawn(self, name):
        """Derive a child :class:`RandomStreams` namespace."""
        return RandomStreams(_derive_seed(self.root_seed, name))

    def __repr__(self):
        return f"RandomStreams(root_seed={self.root_seed!r})"
