"""Reproducible named random streams.

Each simulation entity (workload generator, per-client arrival process, ...)
draws from its own stream so that changing one entity's consumption pattern
does not perturb the others — the standard variance-reduction discipline for
comparing protocols under common random numbers (Jain, ch. 25).
"""

import hashlib
import random


def _derive_seed(root_seed, name):
    digest = hashlib.sha256(f"{root_seed}:{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")


class BufferedStream:
    """Batched draws from one ``random.Random`` stream.

    Pulls ``batch`` values at a time and serves them from a list —
    **bit-identical** to unbatched draws, because the underlying Mersenne
    state advances by exactly the same ``random()`` calls in the same
    order.

    When to use it: consumers that can amortise the refill by reading many
    draws per call site (e.g. grabbing the buffer wholesale). For one draw
    at a time, calling the bound C method ``Random.random`` directly is
    *faster* than this Python-level wrapper — the fault injector was
    benchmarked both ways and binds the raw C draw for exactly that
    reason. The value of the class is the guarantee: batch consumption
    provably cannot change a replay.

    Only safe for streams consumed *exclusively* through ``random()`` /
    ``uniform()``: mixing in ``randint``/``sample``/``getrandbits`` (which
    advance the generator state by different amounts) would interleave
    with the prefetched buffer and desynchronise the sequence.  The
    workload's transaction stream mixes draw kinds and therefore must not
    be buffered; idle, stagger, and fault streams qualify.
    """

    __slots__ = ("_rng", "_batch", "_buffer", "_index")

    def __init__(self, rng, batch=256):
        if batch < 1:
            raise ValueError(f"batch must be >= 1, got {batch!r}")
        self._rng = rng
        self._batch = batch
        self._buffer = ()
        self._index = 0

    def random(self):
        """Next U(0, 1) draw (same sequence as the raw stream)."""
        index = self._index
        buffer = self._buffer
        if index >= len(buffer):
            draw = self._rng.random
            buffer = self._buffer = [draw() for _ in range(self._batch)]
            index = 0
        self._index = index + 1
        return buffer[index]

    def uniform(self, low, high):
        """U(low, high), computed exactly like ``Random.uniform``."""
        return low + (high - low) * self.random()


class RandomStreams:
    """A family of independent ``random.Random`` streams under one root seed."""

    def __init__(self, root_seed):
        self.root_seed = root_seed
        self._streams = {}

    def stream(self, name):
        """Return the stream for ``name``, creating it deterministically."""
        stream = self._streams.get(name)
        if stream is None:
            stream = random.Random(_derive_seed(self.root_seed, name))
            self._streams[name] = stream
        return stream

    def uniform(self, name, low, high):
        """Draw U(low, high) from stream ``name``."""
        return self.stream(name).uniform(low, high)

    def randint(self, name, low, high):
        """Draw a uniform integer in [low, high] from stream ``name``."""
        return self.stream(name).randint(low, high)

    def spawn(self, name):
        """Derive a child :class:`RandomStreams` namespace."""
        return RandomStreams(_derive_seed(self.root_seed, name))

    def buffered(self, name, batch=256):
        """A :class:`BufferedStream` over stream ``name``.

        The caller must be the stream's only consumer and must draw solely
        via ``random()``/``uniform()`` (see :class:`BufferedStream`)."""
        return BufferedStream(self.stream(name), batch)

    def __repr__(self):
        return f"RandomStreams(root_seed={self.root_seed!r})"
