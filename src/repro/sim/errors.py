"""Exception types used by the simulation kernel."""


class SimulationError(Exception):
    """Raised for kernel misuse (double triggering, running a dead process, ...)."""


class Interrupt(Exception):
    """Thrown into a process generator by :meth:`Process.interrupt`.

    The interrupting party supplies an arbitrary ``cause`` object which the
    interrupted process can inspect, e.g. an abort notice for a transaction.
    """

    def __init__(self, cause=None):
        super().__init__(cause)
        self.cause = cause

    def __repr__(self):
        return f"Interrupt(cause={self.cause!r})"
