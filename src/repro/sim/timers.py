"""Cancellable one-shot timers on top of the event heap.

The kernel's :meth:`Simulator.call_later` cannot be revoked once scheduled;
retransmission and watchdog logic needs timers that are armed and disarmed
constantly. A :class:`Timer` schedules its callback through ``call_later``
and drops it at fire time if :meth:`cancel` ran first — the heap entry
itself stays (removing from a heap is O(n)), it just becomes a no-op, which
is the standard lazy-deletion discipline.
"""


class Timer:
    """Run ``callback(*args)`` once, ``delay`` time units from creation,
    unless cancelled first."""

    __slots__ = ("sim", "callback", "args", "fire_at", "_cancelled", "_fired")

    def __init__(self, sim, delay, callback, *args):
        if delay < 0:
            raise ValueError(f"negative timer delay {delay!r}")
        self.sim = sim
        self.callback = callback
        self.args = args
        self.fire_at = sim.now + delay
        self._cancelled = False
        self._fired = False
        sim.call_later(delay, self._fire)

    def _fire(self):
        if self._cancelled:
            return
        self._fired = True
        self.callback(*self.args)

    def cancel(self):
        """Disarm the timer; a no-op if it already fired."""
        self._cancelled = True

    @property
    def active(self):
        """True while the timer is armed and has neither fired nor been
        cancelled."""
        return not (self._cancelled or self._fired)

    def __repr__(self):
        state = ("cancelled" if self._cancelled
                 else "fired" if self._fired else "armed")
        return f"<Timer at={self.fire_at:g} {state}>"
