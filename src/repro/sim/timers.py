"""Cancellable one-shot timers on top of the event heap.

The kernel's :meth:`Simulator.call_later` cannot be revoked once scheduled;
retransmission and watchdog logic needs timers that are armed and disarmed
constantly. A :class:`Timer` schedules its callback through
:meth:`Simulator.call_later_cancellable`; cancelling flips the entry's
cancel token and the engine's pop loop *skips* the dead entry at fire time
(counted in ``sim.cancelled_events``) — the heap entry itself stays until
then (removing from a heap is O(n)), which is the standard lazy-deletion
discipline.
"""


class Timer:
    """Run ``callback(*args)`` once, ``delay`` time units from creation,
    unless cancelled first."""

    __slots__ = ("sim", "callback", "args", "fire_at", "_cancelled",
                 "_fired", "_token")

    def __init__(self, sim, delay, callback, *args):
        if delay < 0:
            raise ValueError(f"negative timer delay {delay!r}")
        self.sim = sim
        self.callback = callback
        self.args = args
        self.fire_at = sim.now + delay
        self._cancelled = False
        self._fired = False
        self._token = sim.call_later_cancellable(delay, self._fire)

    def _fire(self):
        if self._cancelled:
            # Unreachable via the run loop (the token makes it skip), kept
            # for direct invocation and older engine implementations.
            return
        self._fired = True
        self.callback(*self.args)

    def cancel(self):
        """Disarm the timer; a no-op if it already fired."""
        self._cancelled = True
        self._token[0] = True

    @property
    def active(self):
        """True while the timer is armed and has neither fired nor been
        cancelled."""
        return not (self._cancelled or self._fired)

    def __repr__(self):
        state = ("cancelled" if self._cancelled
                 else "fired" if self._fired else "armed")
        return f"<Timer at={self.fire_at:g} {state}>"
