"""Generator-driven simulation processes.

A process wraps a Python generator. Each ``yield`` must produce an
:class:`~repro.sim.events.Event`; the process suspends until that event is
processed, then resumes with the event's value (or the event's exception is
thrown into the generator). The process itself is an event that triggers
when the generator finishes, so processes can wait on each other.
"""

from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import Event


class Process(Event):
    """Drives a generator; is itself an event that fires on completion."""

    __slots__ = ("_generator", "_waiting_on")

    def __init__(self, sim, generator):
        if not hasattr(generator, "send") or not hasattr(generator, "throw"):
            raise TypeError(f"Process requires a generator, got {generator!r}")
        super().__init__(sim)
        self._generator = generator
        self._waiting_on = None
        sim.call_soon(self._start)

    @property
    def alive(self):
        """True while the generator has not finished."""
        return not self.triggered

    def _start(self):
        self._advance(self._generator.send, None)

    def _resume(self, event):
        self._waiting_on = None
        if event.ok:
            self._advance(self._generator.send, event._value)
        else:
            event.defused = True
            self._advance(self._generator.throw, event._exception)

    def _advance(self, step, arg):
        try:
            target = step(arg)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except Interrupt:
            raise SimulationError(
                "process let an Interrupt escape; handle it or terminate")
        except Exception as exc:
            self.fail(exc)
            return
        if not isinstance(target, Event):
            self._generator.close()
            self.fail(SimulationError(
                f"process yielded {target!r}; processes must yield events"))
            return
        if target is self:
            self._generator.close()
            self.fail(SimulationError("process cannot wait on itself"))
            return
        self._waiting_on = target
        target.add_callback(self._resume)

    def interrupt(self, cause=None):
        """Throw :class:`Interrupt` into the generator at the current time.

        Returns True if the interrupt was delivered (scheduled), False if the
        process had already finished. The event the process was waiting on is
        abandoned (its callback removed); the process may re-wait on it.
        """
        if not self.alive:
            return False
        if self._waiting_on is not None:
            self._waiting_on.remove_callback(self._resume)
            self._waiting_on = None
        self.sim.call_soon(self._deliver_interrupt, Interrupt(cause))
        return True

    def _deliver_interrupt(self, interrupt):
        if not self.alive:
            return
        if self._waiting_on is not None:
            # The process re-attached between scheduling and delivery
            # (possible only via a racing resume); detach again.
            self._waiting_on.remove_callback(self._resume)
            self._waiting_on = None
        self._advance(self._generator.throw, interrupt)

    def __repr__(self):
        name = getattr(self._generator, "__name__", "generator")
        state = "alive" if self.alive else "finished"
        return f"<Process {name} {state} at {id(self):#x}>"
