"""Discrete-event simulation kernel.

A small, dependency-free kernel in the style of SimPy: a :class:`Simulator`
owns the clock and the event heap, :class:`~repro.sim.events.Event` objects
carry values/exceptions to their callbacks, and
:class:`~repro.sim.process.Process` drives a Python generator whose ``yield``
expressions suspend on events.

The paper's original study used a custom C simulator with unit-time clock
advance (Jain's terminology); this kernel is the event-driven equivalent —
for identical event timestamps the produced trajectories are identical, and
the event-driven form is dramatically faster in Python.
"""

from repro.sim.engine import Simulator
from repro.sim.errors import Interrupt, SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.mailbox import Mailbox
from repro.sim.process import Process
from repro.sim.rng import RandomStreams
from repro.sim.timers import Timer

__all__ = [
    "AllOf",
    "AnyOf",
    "Event",
    "Interrupt",
    "Mailbox",
    "Process",
    "RandomStreams",
    "SimulationError",
    "Simulator",
    "Timeout",
    "Timer",
]
