"""The simulator: clock, event heap, and run loop.

The run loop is the hottest code in the repository — every message
delivery, timeout, and process resumption passes through it — so it is
written fast-path style: heap and counters are bound to locals for the
duration of a run (written back on exit, including on error), the tracer
hook is resolved once per run instead of per dispatch, and heap entries
are dispatched straight from the popped tuple without re-packing.

Heap entries are ``(when, seq, callback, args)`` tuples; cancellable
entries (armed by :meth:`Simulator.call_later_cancellable`, used by
:class:`~repro.sim.timers.Timer`) carry a fifth element, a one-slot
mutable token.  Cancelling flips the token and the pop loop *skips* the
entry instead of invoking a dead callback — lazy deletion, since removing
from the middle of a heap is O(n).  Skipped entries still advance the
clock, the processed-events counter, and the engine trace hook exactly as
the live no-op call used to, so diagnostics and traces stay bit-identical
with pre-fast-path kernels; they are additionally counted in
:attr:`Simulator.cancelled_events`.

Batched delivery (``network/transport.py``) may hide several logical
deliveries behind one heap entry that fans out on pop.  The engine's
diagnostics stay *logical*: the transport keeps :attr:`Simulator._hidden`
equal to the number of deliveries hidden behind batch heads still on the
heap, so ``pending`` and the per-pop depth samples count deliveries, not
batch nodes; the fan-out reports its extra deliveries and intra-batch
depth samples through ``_extra_events`` / ``_batch_peak``, which the
``processed_events`` / ``peak_heap_depth`` properties fold back in.  All
counters therefore match an unbatched run exactly.
"""

import gc
import heapq
from contextlib import contextmanager
from itertools import count

from repro.sim.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout


@contextmanager
def relaxed_gc(threshold=(500_000, 1_000, 1_000)):
    """Raise the cyclic-GC thresholds for the duration of a run.

    The kernel churns through short-lived container objects (heap entries,
    envelopes, events) fast enough that CPython's default generation-0
    trigger (700 net allocations) fires thousands of times per run, and
    every full collection rescans the long-lived simulation graph.  The
    garbage is overwhelmingly acyclic and dies to refcounting anyway;
    collecting the genuine Event/Process cycles a few times per run
    instead of thousands is worth 10-30% of wall time on the protocol
    cells.  Thresholds are restored on exit; trajectories are unaffected
    (the simulator is deterministic regardless of collector timing).
    """
    saved = gc.get_threshold()
    gc.set_threshold(*threshold)
    try:
        yield
    finally:
        gc.set_threshold(*saved)


class Simulator:
    """Owns the simulation clock and executes events in timestamp order.

    Determinism: entries at equal timestamps are processed in the order they
    were scheduled (a monotonically increasing sequence number breaks ties),
    so a given seed always replays the same trajectory.
    """

    def __init__(self):
        self._now = 0.0
        self._heap = []
        self._seq = count()
        self._event_count = 0
        self._peak_heap = 0
        self._cancelled_count = 0
        # Batched-delivery accounting (see module docstring): logical
        # deliveries hidden behind batch heap entries, extra deliveries
        # fanned out beyond the popped entry, and the deepest *logical*
        # depth observed inside a fan-out.
        self._hidden = 0
        self._extra_events = 0
        self._batch_peak = 0
        #: optional :class:`~repro.obs.tracer.Tracer`; every instrumented
        #: component reads it through its ``sim`` reference, so attaching
        #: one here turns tracing on for the whole stack.
        self.tracer = None

    @property
    def now(self):
        """Current simulation time."""
        return self._now

    @property
    def processed_events(self):
        """Total number of *logical* events processed so far (diagnostics).

        Includes cancelled-timer entries: they are popped and skipped, but
        they occupied the heap and the dispatch loop all the same (and were
        processed as no-op calls before lazy deletion existed, so the
        counter is comparable across kernel versions).  Deliveries fanned
        out of a coalesced batch entry each count as one event, exactly as
        their unbatched heap entries would have.
        """
        return self._event_count + self._extra_events

    @property
    def peak_heap_depth(self):
        """Deepest the *logical* event backlog has been while processing.

        With batched delivery a heap node may stand for several pending
        deliveries; the depth samples count those individually, so the
        value is identical to an unbatched run's."""
        return (self._peak_heap if self._peak_heap >= self._batch_peak
                else self._batch_peak)

    @property
    def cancelled_events(self):
        """Heap entries popped and skipped because their timer had been
        cancelled (lazy deletion; see :meth:`call_later_cancellable`)."""
        return self._cancelled_count

    def _engine_hook(self):
        """The per-dispatch tracer callback, or None (the common case)."""
        tracer = self.tracer
        if tracer is not None and tracer.engine_events:
            return tracer.engine_dispatch
        return None

    # -- event construction -------------------------------------------------

    def event(self):
        """Create a fresh untriggered :class:`Event`."""
        return Event(self)

    def timeout(self, delay, value=None):
        """Create a :class:`Timeout` that fires ``delay`` units from now."""
        return Timeout(self, delay, value)

    def all_of(self, events):
        """Create an :class:`AllOf` condition over ``events``."""
        return AllOf(self, events)

    def any_of(self, events):
        """Create an :class:`AnyOf` condition over ``events``."""
        return AnyOf(self, events)

    def spawn(self, generator):
        """Run ``generator`` as a simulation :class:`Process`."""
        from repro.sim.process import Process

        return Process(self, generator)

    # -- scheduling ---------------------------------------------------------

    def call_soon(self, callback, *args):
        """Run ``callback(*args)`` at the current time, after pending entries."""
        heapq.heappush(self._heap, (self._now, next(self._seq), callback, args))

    def call_later(self, delay, callback, *args):
        """Run ``callback(*args)`` ``delay`` time units from now."""
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        heapq.heappush(
            self._heap, (self._now + delay, next(self._seq), callback, args))

    def call_later_cancellable(self, delay, callback, *args):
        """Like :meth:`call_later`, but returns a cancel token.

        Setting ``token[0] = True`` disarms the entry: the run loop skips
        it at pop time (counted in :attr:`cancelled_events`) instead of
        invoking the callback.  The entry itself stays on the heap until
        its fire time — lazy deletion.
        """
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        token = [False]
        heapq.heappush(
            self._heap,
            (self._now + delay, next(self._seq), callback, args, token))
        return token

    def schedule_at(self, when, callback, *args):
        """Run ``callback(*args)`` at absolute time ``when`` (>= now).

        Fast-path variant of :meth:`call_later` for callers that already
        computed an absolute timestamp (the transport's delivery times).
        """
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when!r} before now={self._now!r}")
        heapq.heappush(self._heap, (when, next(self._seq), callback, args))

    def _schedule(self, event, delay):
        heapq.heappush(
            self._heap, (self._now + delay, next(self._seq), event._process, ()))

    def _enqueue_triggered(self, event):
        heapq.heappush(self._heap, (self._now, next(self._seq), event._process, ()))

    # -- run loop -----------------------------------------------------------

    def run(self, until=None):
        """Process events until the heap drains or the clock passes ``until``.

        ``until`` may be a time (the clock is advanced to exactly ``until``
        if the simulation outlives it) or an :class:`Event` (run until that
        event is processed; its value is returned).

        With a time horizon the clock lands on exactly ``until`` even when
        the heap drained *earlier* — intentional, and the SimPy convention:
        ``run(until=t)`` means "advance the simulated world to time t", and
        an idle tail is simulated time that passed with nothing happening.
        Rates computed as events / ``now`` therefore use the requested
        duration, comparable across runs, rather than the accident of the
        last event's timestamp. (Event-horizon runs stop at the event's own
        timestamp instead.)
        """
        if isinstance(until, Event):
            return self._run_until_event(until)
        horizon = float("inf") if until is None else float(until)
        if horizon < self._now:
            raise SimulationError(
                f"cannot run until {horizon} which is before now={self._now}")
        heap = self._heap
        hook = self._engine_hook()
        heappop = heapq.heappop
        events = self._event_count
        peak = self._peak_heap
        cancelled = self._cancelled_count
        try:
            if hook is None:
                while heap:
                    when = heap[0][0]
                    if when > horizon:
                        break
                    depth = len(heap) + self._hidden
                    if depth > peak:
                        peak = depth
                    entry = heappop(heap)
                    self._now = when
                    events += 1
                    if len(entry) == 5 and entry[4][0]:
                        cancelled += 1
                        continue
                    entry[2](*entry[3])
            else:
                while heap:
                    when = heap[0][0]
                    if when > horizon:
                        break
                    depth = len(heap) + self._hidden
                    if depth > peak:
                        peak = depth
                    entry = heappop(heap)
                    self._now = when
                    events += 1
                    hook(when, depth)
                    if len(entry) == 5 and entry[4][0]:
                        cancelled += 1
                        continue
                    entry[2](*entry[3])
        finally:
            self._event_count = events
            self._peak_heap = peak
            self._cancelled_count = cancelled
        if horizon != float("inf"):
            self._now = horizon
        return None

    def run_window(self, horizon):
        """Process every entry strictly before ``horizon``; leave the rest.

        The conservative-synchronization primitive for LP-partitioned runs
        (``repro.core.lp``): a logical process is granted a window
        ``[now, horizon)`` during which no other partition can inject an
        event, drains exactly that window, and reports back.  Unlike
        :meth:`run`, entries *at* the horizon are not processed and the
        clock is not advanced to the horizon — the next window's grant
        depends on the true next-event time, which this method returns
        (``inf`` when the heap drained).
        """
        heap = self._heap
        hook = self._engine_hook()
        heappop = heapq.heappop
        events = self._event_count
        peak = self._peak_heap
        cancelled = self._cancelled_count
        try:
            while heap:
                when = heap[0][0]
                if when >= horizon:
                    break
                depth = len(heap) + self._hidden
                if depth > peak:
                    peak = depth
                entry = heappop(heap)
                self._now = when
                events += 1
                if hook is not None:
                    hook(when, depth)
                if len(entry) == 5 and entry[4][0]:
                    cancelled += 1
                    continue
                entry[2](*entry[3])
        finally:
            self._event_count = events
            self._peak_heap = peak
            self._cancelled_count = cancelled
        return heap[0][0] if heap else float("inf")

    def _run_until_event(self, event):
        done = []
        event.add_callback(done.append)
        heap = self._heap
        hook = self._engine_hook()
        heappop = heapq.heappop
        events = self._event_count
        peak = self._peak_heap
        cancelled = self._cancelled_count
        try:
            while heap and not done:
                depth = len(heap) + self._hidden
                if depth > peak:
                    peak = depth
                entry = heappop(heap)
                self._now = entry[0]
                events += 1
                if hook is not None:
                    hook(entry[0], depth)
                if len(entry) == 5 and entry[4][0]:
                    cancelled += 1
                    continue
                entry[2](*entry[3])
        finally:
            self._event_count = events
            self._peak_heap = peak
            self._cancelled_count = cancelled
        if not done:
            raise SimulationError(
                "simulation ran out of events before the awaited event fired")
        if not event.ok:
            event.defused = True
            raise event._exception
        return event._value

    def step(self):
        """Process a single heap entry; returns False if the heap is empty."""
        if not self._heap:
            return False
        depth = len(self._heap) + self._hidden
        if depth > self._peak_heap:
            self._peak_heap = depth
        entry = heapq.heappop(self._heap)
        self._now = entry[0]
        self._event_count += 1
        if len(entry) == 5 and entry[4][0]:
            self._cancelled_count += 1
            return True
        entry[2](*entry[3])
        return True

    @property
    def pending(self):
        """Number of logical events currently pending (batch entries count
        once per delivery they will fan out)."""
        return len(self._heap) + self._hidden

    def peek(self):
        """Timestamp of the next heap entry, or ``inf`` when drained."""
        return self._heap[0][0] if self._heap else float("inf")
