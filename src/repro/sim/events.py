"""Events: the unit of synchronisation in the kernel.

An :class:`Event` is created untriggered. Calling :meth:`Event.succeed` or
:meth:`Event.fail` *triggers* it, which enqueues it on the simulator heap at
the current simulation time; when the simulator pops it, the event is
*processed* and its callbacks run in registration order.

:class:`Timeout` is an event that triggers itself ``delay`` time units in the
future. :class:`AllOf` / :class:`AnyOf` compose events.
"""

from repro.sim.errors import SimulationError

_PENDING = object()


class Event:
    """A one-shot occurrence carrying a value or an exception."""

    __slots__ = ("sim", "callbacks", "_value", "_exception", "defused")

    def __init__(self, sim):
        self.sim = sim
        self.callbacks = []
        self._value = _PENDING
        self._exception = None
        #: Set by a consumer of a failed event to suppress the kernel's
        #: "unhandled failure" error at processing time.
        self.defused = False

    @property
    def triggered(self):
        """True once :meth:`succeed` or :meth:`fail` has been called."""
        return self._value is not _PENDING

    @property
    def processed(self):
        """True once the simulator has run this event's callbacks."""
        return self.callbacks is None

    @property
    def ok(self):
        """True if the event succeeded (only meaningful once triggered)."""
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        return self._exception is None

    @property
    def value(self):
        """The success value, or raise the failure exception."""
        if not self.triggered:
            raise SimulationError("event has not been triggered yet")
        if self._exception is not None:
            raise self._exception
        return self._value

    def succeed(self, value=None):
        """Trigger the event successfully with ``value``; returns self."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        self._value = value
        self.sim._enqueue_triggered(self)
        return self

    def fail(self, exception):
        """Trigger the event with ``exception``; returns self."""
        if self.triggered:
            raise SimulationError(f"{self!r} has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() requires an exception, got {exception!r}")
        self._value = None
        self._exception = exception
        self.sim._enqueue_triggered(self)
        return self

    def add_callback(self, callback):
        """Register ``callback(event)`` to run when the event is processed.

        If the event was already processed, the callback is scheduled to run
        immediately (at the current simulation time) instead of being lost.
        """
        if self.callbacks is None:
            self.sim.call_soon(callback, self)
        else:
            self.callbacks.append(callback)

    def remove_callback(self, callback):
        """Unregister a callback; no-op if absent or already processed."""
        if self.callbacks is not None and callback in self.callbacks:
            self.callbacks.remove(callback)

    def _process(self):
        callbacks, self.callbacks = self.callbacks, None
        if self._exception is not None and not callbacks and not self.defused:
            raise self._exception
        for callback in callbacks:
            callback(self)

    def __repr__(self):
        state = "processed" if self.processed else (
            "triggered" if self.triggered else "pending")
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that triggers itself ``delay`` units after creation."""

    __slots__ = ("delay",)

    def __init__(self, sim, delay, value=None):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        super().__init__(sim)
        self.delay = delay
        self._value = value
        sim._schedule(self, delay)

    def succeed(self, value=None):  # pragma: no cover - misuse guard
        raise SimulationError("a Timeout triggers itself; do not call succeed()")


class _Condition(Event):
    """Common machinery for :class:`AllOf` / :class:`AnyOf`."""

    __slots__ = ("events", "_remaining")

    def __init__(self, sim, events):
        super().__init__(sim)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self._value = []
            sim._enqueue_triggered(self)
            return
        for event in self.events:
            event.add_callback(self._on_child)

    def _on_child(self, event):
        raise NotImplementedError


class AllOf(_Condition):
    """Succeeds with the list of values once every child event succeeds.

    Fails as soon as any child fails (remaining children are ignored and
    their failures defused).
    """

    __slots__ = ()

    def _on_child(self, event):
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        if not event.ok:
            event.defused = True
            self.fail(event._exception)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([child._value for child in self.events])


class AnyOf(_Condition):
    """Succeeds with the first child to be processed (fails if it failed)."""

    __slots__ = ()

    def _on_child(self, event):
        if self.triggered:
            if not event.ok:
                event.defused = True
            return
        if event.ok:
            self.succeed(event)
        else:
            event.defused = True
            self.fail(event._exception)
