"""The transaction precedence graph (§3.3).

A DAG over live transactions: an edge ``a -> b`` means "a accesses every
shared item before b", i.e. a precedes b on some forward list (or a is on a
dispatched chain that b's pending request must follow). Deadlock avoidance
reduces to keeping this graph acyclic:

* **Fixed edges** (dispatched chain member -> new request) cannot be
  reordered; if such an edge would close a cycle the conflicting order is
  already frozen and the offending transaction must abort.
* **Window edges** are chosen at freeze time: the window's requests are
  ordered by a linear extension of the reachability relation the graph
  already imposes on them, so freezing never creates a cycle.
"""


class CycleError(Exception):
    """Adding this edge would create a cycle (deadlock unavoidable)."""

    def __init__(self, src, dst):
        super().__init__(f"edge {src!r} -> {dst!r} closes a precedence cycle")
        self.src = src
        self.dst = dst


class PrecedenceGraph:
    """Directed acyclic graph with cycle-refusing edge insertion."""

    def __init__(self):
        self._out = {}
        self._in = {}

    def add_node(self, node):
        self._out.setdefault(node, set())
        self._in.setdefault(node, set())

    def __contains__(self, node):
        return node in self._out

    def __len__(self):
        return len(self._out)

    @property
    def edge_count(self):
        return sum(len(edges) for edges in self._out.values())

    def successors(self, node):
        return set(self._out.get(node, ()))

    def predecessors(self, node):
        return set(self._in.get(node, ()))

    def reaches(self, src, dst):
        """Is there a directed path from ``src`` to ``dst``? (src != dst)"""
        if src == dst:
            return True
        out = self._out
        if src not in out or dst not in out:
            return False
        stack = [src]
        seen = {src}
        while stack:
            node = stack.pop()
            for nxt in out.get(node, ()):
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def would_cycle(self, src, dst):
        """Would adding ``src -> dst`` close a cycle?"""
        return src == dst or self.reaches(dst, src)

    def add_edge(self, src, dst):
        """Insert ``src -> dst``; raises :class:`CycleError` if it cycles.

        Idempotent for existing edges.
        """
        if src == dst:
            raise CycleError(src, dst)
        if dst in self._out.get(src, ()):
            return
        if self.reaches(dst, src):
            raise CycleError(src, dst)
        self.add_node(src)
        self.add_node(dst)
        self._out[src].add(dst)
        self._in[dst].add(src)

    def remove_node(self, node):
        """Drop a terminated transaction and all its edges."""
        for nxt in self._out.pop(node, ()):
            self._in[nxt].discard(node)
        for prev in self._in.pop(node, ()):
            self._out[prev].discard(node)

    def linear_extension(self, nodes, key=None):
        """Order ``nodes`` consistently with reachability between them.

        Builds the induced partial order (u before v iff ``reaches(u, v)``)
        and returns a linear extension; among unconstrained nodes, ``key``
        (default: input order) decides — so FIFO arrival order is preserved
        wherever the DAG does not force otherwise. Chaining edges along the
        returned order can never create a cycle.
        """
        nodes = list(nodes)
        if key is None:
            rank = {node: i for i, node in enumerate(nodes)}
            key = rank.__getitem__
        # Induced edges among the subset (transitive reachability).
        out_edges = {node: set() for node in nodes}
        in_degree = {node: 0 for node in nodes}
        for i, u in enumerate(nodes):
            for v in nodes[i + 1:]:
                if self.reaches(u, v):
                    out_edges[u].add(v)
                    in_degree[v] += 1
                elif self.reaches(v, u):
                    out_edges[v].add(u)
                    in_degree[u] += 1
        ready = sorted((n for n in nodes if in_degree[n] == 0), key=key)
        order = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            changed = False
            for nxt in out_edges[node]:
                in_degree[nxt] -= 1
                if in_degree[nxt] == 0:
                    ready.append(nxt)
                    changed = True
            if changed:
                ready.sort(key=key)
        if len(order) != len(nodes):  # pragma: no cover - DAG invariant
            raise AssertionError("induced subgraph of a DAG cannot cycle")
        return order

    def find_any_cycle(self):
        """Return a cycle if one exists (the invariant says it must not)."""
        color = {}
        parent = {}
        for root in self._out:
            if root in color:
                continue
            stack = [(root, iter(self._out[root]))]
            color[root] = "grey"
            while stack:
                node, iterator = stack[-1]
                advanced = False
                for nxt in iterator:
                    if color.get(nxt) == "grey":
                        cycle = [nxt, node]
                        cursor = node
                        while cursor != nxt:
                            cursor = parent[cursor]
                            cycle.append(cursor)
                        cycle.reverse()
                        return cycle
                    if nxt not in color:
                        color[nxt] = "grey"
                        parent[nxt] = node
                        stack.append((nxt, iter(self._out[nxt])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = "black"
                    stack.pop()
        return None

    def __repr__(self):
        return f"<PrecedenceGraph {len(self)} nodes, {self.edge_count} edges>"
