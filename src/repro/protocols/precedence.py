"""The transaction precedence graph (§3.3).

A DAG over live transactions: an edge ``a -> b`` means "a accesses every
shared item before b", i.e. a precedes b on some forward list (or a is on a
dispatched chain that b's pending request must follow). Deadlock avoidance
reduces to keeping this graph acyclic:

* **Fixed edges** (dispatched chain member -> new request) cannot be
  reordered; if such an edge would close a cycle the conflicting order is
  already frozen and the offending transaction must abort.
* **Window edges** are chosen at freeze time: the window's requests are
  ordered by a linear extension of the reachability relation the graph
  already imposes on them, so freezing never creates a cycle.
"""


class CycleError(Exception):
    """Adding this edge would create a cycle (deadlock unavoidable)."""

    def __init__(self, src, dst):
        super().__init__(f"edge {src!r} -> {dst!r} closes a precedence cycle")
        self.src = src
        self.dst = dst


class PrecedenceGraph:
    """Directed acyclic graph with cycle-refusing edge insertion."""

    def __init__(self):
        self._out = {}
        self._in = {}

    def add_node(self, node):
        self._out.setdefault(node, set())
        self._in.setdefault(node, set())

    def __contains__(self, node):
        return node in self._out

    def __len__(self):
        return len(self._out)

    @property
    def edge_count(self):
        return sum(len(edges) for edges in self._out.values())

    def successors(self, node):
        return set(self._out.get(node, ()))

    def predecessors(self, node):
        return set(self._in.get(node, ()))

    def reaches(self, src, dst):
        """Is there a directed path from ``src`` to ``dst``? (src != dst)

        Hot path: consulted for every cycle check the protocols make.
        Every node named in an edge set is a key of ``_out`` (``add_edge``
        registers both endpoints, ``remove_node`` scrubs edge sets), so the
        walk can index the adjacency dict directly.
        """
        if src == dst:
            return True
        out = self._out
        if dst not in out:
            return False
        edges = out.get(src)
        if not edges:
            return False
        if dst in edges:
            return True
        stack = list(edges)
        seen = set(edges)
        while stack:
            for nxt in out[stack.pop()]:
                if nxt == dst:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def would_cycle(self, src, dst):
        """Would adding ``src -> dst`` close a cycle?"""
        return src == dst or self.reaches(dst, src)

    def reaches_any(self, src, targets):
        """Is any member of ``targets`` reachable from ``src``?

        One DFS for the whole target set — equivalent to
        ``any(self.reaches(src, t) for t in targets)`` but without
        restarting the walk per target. ``src`` itself does not count as
        reached (a DAG has no path from a node back to itself).
        """
        out = self._out
        edges = out.get(src)
        if not edges:
            return False
        targets = set(targets)
        targets.discard(src)
        if not targets:
            return False
        if not targets.isdisjoint(edges):
            return True
        stack = list(edges)
        seen = set(edges)
        while stack:
            for nxt in out[stack.pop()]:
                if nxt in targets:
                    return True
                if nxt not in seen:
                    seen.add(nxt)
                    stack.append(nxt)
        return False

    def add_edge(self, src, dst):
        """Insert ``src -> dst``; raises :class:`CycleError` if it cycles.

        Idempotent for existing edges. Nothing is mutated when the edge is
        refused. Node registration is inlined (this is called for every
        pair of a dispatched chain).
        """
        if src == dst:
            raise CycleError(src, dst)
        out = self._out
        edges = out.get(src)
        if edges is not None and dst in edges:
            return
        if self.reaches(dst, src):
            raise CycleError(src, dst)
        inn = self._in
        if edges is None:
            edges = out[src] = set()
            inn[src] = set()
        if dst in out:
            inn[dst].add(src)
        else:
            out[dst] = set()
            inn[dst] = {src}
        edges.add(dst)

    def add_edge_unchecked(self, src, dst):
        """Insert ``src -> dst`` *without* the cycle check.

        Only for callers that can prove acyclicity from context — edges
        chained along a :meth:`linear_extension` order, or edges into a
        node already known (via :meth:`reaches_any`) not to reach any of
        the sources. Same mutation as :meth:`add_edge`; skipping the
        reachability DFS is the entire point (it dominates dispatch cost
        on long chains). :meth:`find_any_cycle` remains the safety net.
        """
        out = self._out
        edges = out.get(src)
        if edges is None:
            edges = out[src] = set()
            self._in[src] = set()
        elif dst in edges:
            return
        if dst in out:
            self._in[dst].add(src)
        else:
            out[dst] = set()
            self._in[dst] = {src}
        edges.add(dst)

    def remove_node(self, node):
        """Drop a terminated transaction and all its edges."""
        for nxt in self._out.pop(node, ()):
            self._in[nxt].discard(node)
        for prev in self._in.pop(node, ()):
            self._out[prev].discard(node)

    def linear_extension(self, nodes, key=None):
        """Order ``nodes`` consistently with reachability between them.

        Builds the induced partial order (u before v iff ``reaches(u, v)``)
        and returns a linear extension; among unconstrained nodes, ``key``
        (default: input order) decides — so FIFO arrival order is preserved
        wherever the DAG does not force otherwise. Chaining edges along the
        returned order can never create a cycle.
        """
        nodes = list(nodes)
        if len(nodes) <= 1:
            return nodes  # nothing to order (the common light-load window)
        if key is None:
            rank = {node: i for i, node in enumerate(nodes)}
            key = rank.__getitem__
        # One DFS per node instead of one per ordered pair: the subset of
        # ``nodes`` reachable from each node induces exactly the partial
        # order the pairwise reaches() queries would (reachability is a
        # property of the graph, not of the query order).
        out = self._out
        node_set = set(nodes)
        reach = {}
        for u in nodes:
            found = reach[u] = set()
            edges = out.get(u)
            if not edges:
                continue
            stack = list(edges)
            seen = set(edges)
            while stack:
                node = stack.pop()
                if node in node_set:
                    found.add(node)
                for nxt in out[node]:
                    if nxt not in seen:
                        seen.add(nxt)
                        stack.append(nxt)
        # Induced edges among the subset (transitive reachability).
        out_edges = {node: set() for node in nodes}
        in_degree = {node: 0 for node in nodes}
        for i, u in enumerate(nodes):
            reach_u = reach[u]
            for v in nodes[i + 1:]:
                if v in reach_u:
                    out_edges[u].add(v)
                    in_degree[v] += 1
                elif u in reach[v]:
                    out_edges[v].add(u)
                    in_degree[u] += 1
        ready = sorted((n for n in nodes if in_degree[n] == 0), key=key)
        order = []
        while ready:
            node = ready.pop(0)
            order.append(node)
            changed = False
            for nxt in out_edges[node]:
                in_degree[nxt] -= 1
                if in_degree[nxt] == 0:
                    ready.append(nxt)
                    changed = True
            if changed:
                ready.sort(key=key)
        if len(order) != len(nodes):  # pragma: no cover - DAG invariant
            raise AssertionError("induced subgraph of a DAG cannot cycle")
        return order

    def find_any_cycle(self):
        """Return a cycle if one exists (the invariant says it must not)."""
        color = {}
        parent = {}
        for root in self._out:
            if root in color:
                continue
            stack = [(root, iter(self._out[root]))]
            color[root] = "grey"
            while stack:
                node, iterator = stack[-1]
                advanced = False
                for nxt in iterator:
                    if color.get(nxt) == "grey":
                        cycle = [nxt, node]
                        cursor = node
                        while cursor != nxt:
                            cursor = parent[cursor]
                            cycle.append(cursor)
                        cycle.reverse()
                        return cycle
                    if nxt not in color:
                        color[nxt] = "grey"
                        parent[nxt] = node
                        stack.append((nxt, iter(self._out[nxt])))
                        advanced = True
                        break
                if not advanced:
                    color[node] = "black"
                    stack.pop()
        return None

    def __repr__(self):
        return f"<PrecedenceGraph {len(self)} nodes, {self.edge_count} edges>"
