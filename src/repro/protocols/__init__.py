"""Concurrency-control protocols for the data-shipping client-server system.

* :mod:`repro.protocols.s2pl` — the server-based strict two-phase locking
  baseline (§3.1 of the paper).
* :mod:`repro.protocols.g2pl` — the group two-phase locking protocol: lock
  grouping with forward lists and collection windows (§3.2), precedence-graph
  deadlock avoidance (§3.3) and MR1W (§3.4), plus the paper's future-work
  read-only optimization and forward-list ordering disciplines.
* :mod:`repro.protocols.c2pl` — caching 2PL with server callbacks (the
  s-2PL variation sketched in §3.1, used by the A5 ablation).
"""

from repro.protocols.base import ProtocolClient, ProtocolServer, TxnOutcome
from repro.protocols.forward_list import FLEntry, ForwardList, TxnRef
from repro.protocols.precedence import CycleError, PrecedenceGraph
from repro.protocols.registry import available_protocols, make_protocol
from repro.protocols.transaction import Transaction, TxnStatus

__all__ = [
    "CycleError",
    "FLEntry",
    "ForwardList",
    "PrecedenceGraph",
    "ProtocolClient",
    "ProtocolServer",
    "Transaction",
    "TxnOutcome",
    "TxnRef",
    "TxnStatus",
    "available_protocols",
    "make_protocol",
]
