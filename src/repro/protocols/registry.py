"""Protocol registry: map names to (server, client) implementations."""


def _s2pl():
    from repro.protocols.s2pl import S2PLClient, S2PLServer

    return S2PLServer, S2PLClient, {}


def _g2pl():
    from repro.protocols.g2pl import G2PLClient, G2PLServer

    return G2PLServer, G2PLClient, {}


def _g2pl_basic():
    from repro.protocols.g2pl import G2PLClient, G2PLServer

    return G2PLServer, G2PLClient, {"mr1w": False}


def _g2pl_ro():
    from repro.protocols.g2pl import G2PLClient, G2PLServer

    return G2PLServer, G2PLClient, {"expand_read_groups": True}


def _g2pl_adaptive():
    from repro.protocols.adaptive import AdaptiveG2PLClient, AdaptiveG2PLServer

    return AdaptiveG2PLServer, AdaptiveG2PLClient, {"adapt_window": True}


def _hybrid():
    from repro.protocols.adaptive import AdaptiveG2PLClient, AdaptiveG2PLServer

    return AdaptiveG2PLServer, AdaptiveG2PLClient, {"hybrid": True}


def _g2pl_spec():
    from repro.protocols.adaptive import AdaptiveG2PLClient, AdaptiveG2PLServer

    return AdaptiveG2PLServer, AdaptiveG2PLClient, {"speculate": True}


def _c2pl():
    from repro.protocols.c2pl import C2PLClient, C2PLServer

    return C2PLServer, C2PLClient, {}


def _2v2pl():
    from repro.protocols.twoversion import TwoVersionClient, TwoVersionServer

    return TwoVersionServer, TwoVersionClient, {}


_REGISTRY = {
    "s2pl": _s2pl,
    "g2pl": _g2pl,           # lock grouping + avoidance + MR1W (the paper's g-2PL)
    "g2pl-basic": _g2pl_basic,  # lock grouping + avoidance, no MR1W
    "g2pl-ro": _g2pl_ro,     # g-2PL + read-only FL expansion (future work)
    "g2pl-adaptive": _g2pl_adaptive,  # adaptive window sizing (repro.adapt)
    "hybrid": _hybrid,       # per-item single/grouped mode switching
    "g2pl-spec": _g2pl_spec,  # clock-assisted speculative dispatch
    "c2pl": _c2pl,           # caching 2PL with callbacks (ablation A5)
    "2v2pl": _2v2pl,         # two-version 2PL, the §3.4 comparator (A7)
}


def available_protocols():
    """Names accepted by :func:`make_protocol` / ``SimulationConfig.protocol``."""
    return sorted(_REGISTRY)


def make_protocol(name, sim, config, store, wal, history, client_ids):
    """Instantiate the protocol's server and one client per id.

    Protocol variants may pin config fields (e.g. ``g2pl-basic`` forces
    ``mr1w=False``); a config that explicitly contradicts a pin is rejected
    to avoid silently running something other than what was asked for.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown protocol {name!r}; available: {available_protocols()}"
        ) from None
    server_cls, client_cls, overrides = factory()
    if overrides:
        config = config.replace(**overrides)
    server = server_cls(sim, config, store, wal, history)
    clients = {client_id: client_cls(sim, client_id, config, history)
               for client_id in client_ids}
    return server, clients
