"""The forward list (FL): g-2PL's per-item dispatch schedule (§3.2).

An FL is a sequence of entries, each either a *read group* (one or more
transactions that may hold the item in shared mode simultaneously) or a
single *writer*. Consecutive read entries are always merged, so entries
alternate between read groups and writers. The list travels with the data:
each client receives the tail starting at its own entry, so it knows its
co-readers and its successor.
"""

from dataclasses import dataclass

from repro.locking.modes import LockMode


@dataclass(frozen=True)
class TxnRef:
    """Enough identity to route messages to a transaction."""

    txn_id: int
    client_id: int


class FLEntry:
    """One forward-list entry: a read group or a single writer."""

    __slots__ = ("mode", "txns")

    def __init__(self, mode, txns):
        txns = tuple(txns)
        if not txns:
            raise ValueError("empty forward-list entry")
        if mode is LockMode.WRITE and len(txns) != 1:
            raise ValueError("a write entry holds exactly one transaction")
        self.mode = mode
        self.txns = txns

    @property
    def is_read_group(self):
        return self.mode is LockMode.READ

    @property
    def writer(self):
        if self.mode is not LockMode.WRITE:
            raise ValueError("not a write entry")
        return self.txns[0]

    def txn_ids(self):
        return tuple(ref.txn_id for ref in self.txns)

    def __eq__(self, other):
        return (isinstance(other, FLEntry)
                and self.mode is other.mode and self.txns == other.txns)

    def __hash__(self):
        return hash((self.mode, self.txns))

    def __repr__(self):
        kind = "R" if self.is_read_group else "W"
        ids = ",".join(str(ref.txn_id) for ref in self.txns)
        return f"{kind}[{ids}]"


class ForwardList:
    """An immutable-in-spirit sequence of :class:`FLEntry`."""

    __slots__ = ("entries",)

    def __init__(self, entries=()):
        self.entries = tuple(entries)

    @classmethod
    def from_requests(cls, requests):
        """Build an FL from an ordered list of (TxnRef, mode) pairs,
        merging maximal runs of readers into read groups."""
        entries = []
        run = []
        for ref, mode in requests:
            if mode is LockMode.READ:
                run.append(ref)
                continue
            if run:
                entries.append(FLEntry(LockMode.READ, run))
                run = []
            entries.append(FLEntry(LockMode.WRITE, (ref,)))
        if run:
            entries.append(FLEntry(LockMode.READ, run))
        return cls(entries)

    def __len__(self):
        return len(self.entries)

    def __bool__(self):
        return bool(self.entries)

    def __iter__(self):
        return iter(self.entries)

    def __getitem__(self, index):
        return self.entries[index]

    def __eq__(self, other):
        return isinstance(other, ForwardList) and self.entries == other.entries

    @property
    def head(self):
        return self.entries[0]

    def tail(self, start=1):
        """The FL from entry ``start`` onward."""
        return ForwardList(self.entries[start:])

    def all_txns(self):
        """Every TxnRef on the list, in entry order."""
        return [ref for entry in self.entries for ref in entry.txns]

    def requests(self):
        """The ordered (TxnRef, mode) pairs this FL represents — the
        inverse of :meth:`from_requests`, used by chain repair to rebuild
        a surviving suffix with the original order preserved."""
        return [(ref, entry.mode)
                for entry in self.entries for ref in entry.txns]

    def txn_count(self):
        return sum(len(entry.txns) for entry in self.entries)

    def transfer_size(self):
        """Wire-size contribution of piggybacking this FL on a message."""
        from repro.protocols.messages import FL_ENTRY_SIZE

        return FL_ENTRY_SIZE * self.txn_count()

    def __repr__(self):
        return "FL(" + " -> ".join(repr(entry) for entry in self.entries) + ")"
