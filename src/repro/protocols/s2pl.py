"""Server-based strict two-phase locking (s-2PL), the paper's baseline.

Protocol (§3.1, §4):

* Growing phase — the client requests each data item in turn; the server
  acquires the lock (or queues the request) and ships the item when granted.
* Shrinking phase — at commit the client sends a single release message
  carrying all modified items; the server installs them (WAL first),
  releases the locks and grants/ships to the next compatible waiters.
* Deadlock handling — detection, initiated whenever a lock cannot be
  granted: the server computes the wait-for graph and aborts transactions
  until no cycle involves the new request. Aborted transactions are
  replaced by fresh ones at the client (driver's job).
"""

from repro.locking.lock_table import LockRequestState, LockTable
from repro.locking.modes import LockMode
from repro.locking.waitfor import WaitForGraph
from repro.protocols.base import (
    SERVER_SITE_ID,
    ProtocolClient,
    ProtocolServer,
)
from repro.protocols.messages import (
    AbortNotice,
    AbortRelease,
    CommitRelease,
    CONTROL_SIZE,
    DataShip,
    LockRequest,
)
from repro.sim.errors import Interrupt
from repro.sim.timers import Timer

VICTIM_POLICIES = ("requester", "youngest", "oldest")


class S2PLServer(ProtocolServer):
    """The data server running strict 2PL."""

    def __init__(self, sim, config, store, wal, history,
                 site_id=SERVER_SITE_ID):
        super().__init__(sim, config, store, wal, history, site_id=site_id)
        self.lock_table = LockTable()
        # txn_id -> (client_id, first_seen_time); live transactions only.
        self._txns = {}
        self._dead = set()
        self.deadlocks_found = 0
        # fault injection: txns reclaimed because their client crashed
        self._swept = set()
        self._injector = None
        self._sweep_interval = None
        self.crash_reclaims = 0
        if config.victim_policy not in VICTIM_POLICIES:
            raise ValueError(
                f"unknown victim policy {config.victim_policy!r}; "
                f"choose from {VICTIM_POLICIES}")

    # -- fault recovery --------------------------------------------------------

    def enable_fault_recovery(self, injector, rto, chain_timeout,
                              sweep_interval):
        """Periodically reclaim locks held or awaited by transactions whose
        client site is crashed — without this every item a dead client
        touched would stay locked forever. Deterministic: the failure
        detector reads the spec's static crash windows."""
        self._injector = injector
        self._sweep_interval = sweep_interval
        Timer(self.sim, sweep_interval, self._crash_sweep)

    def _crash_sweep(self):
        now = self.sim.now
        crashed = [txn_id for txn_id, (client_id, _) in self._txns.items()
                   if self._injector.is_crashed(client_id, now)]
        if crashed:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("crash.sweep", reclaimed=len(crashed))
        # Two passes: first drop every crashed txn's queued requests so a
        # release can never grant a lock to another dead transaction, then
        # release what they hold.
        for txn_id in crashed:
            self._swept.add(txn_id)
            self._dead.discard(txn_id)
            self.crash_reclaims += 1
            for grantee, item_id, mode in self.lock_table.drop_queued(txn_id):
                self._grant(grantee, item_id, mode)
        for txn_id in crashed:
            self._finish(txn_id)
        Timer(self.sim, self._sweep_interval, self._crash_sweep)

    # -- message handlers ----------------------------------------------------

    def on_LockRequest(self, msg):
        if msg.txn_id in self._dead or msg.txn_id in self._swept:
            return  # request from a transaction this server already aborted
        if msg.txn_id not in self._txns:
            self._txns[msg.txn_id] = (self._client_of(msg), self.sim.now)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("lock.request", txn=msg.txn_id, item=msg.item_id,
                        mode=msg.mode.name, client=msg.client_id)
        state = self.lock_table.acquire(msg.txn_id, msg.item_id, msg.mode)
        if state is LockRequestState.GRANTED:
            self._ship(msg.txn_id, msg.item_id, msg.mode)
            return
        if tracer is not None:
            tracer.emit("lock.queued", txn=msg.txn_id, item=msg.item_id)
        self._detect_and_resolve(msg.txn_id)

    def on_CommitRelease(self, msg):
        if msg.txn_id in self._swept:
            # The commit raced the crash sweep and lost: the locks are gone
            # and the updates with them — without a recorded history commit
            # the transaction never counts as committed.
            return
        if msg.txn_id in self._dead:
            # Defensive: a victim cannot normally commit (victims are always
            # waiting), but if it happens the updates are discarded and the
            # locks finally released.
            self._dead.discard(msg.txn_id)
            self._finish(msg.txn_id)
            return
        self.install_updates(msg.txn_id, msg.updates)
        if msg.commit_time is not None:
            # Fault mode: the server is the commit point of record (see
            # CommitRelease). Stamped with the client's decision time.
            self.history.record_commit(msg.txn_id, time=msg.commit_time)
        self._finish(msg.txn_id)

    def on_AbortRelease(self, msg):
        # The aborted client finished rolling back: now the locks go.
        if msg.txn_id in self._swept:
            return
        self._dead.discard(msg.txn_id)
        self._finish(msg.txn_id)

    # -- internals -----------------------------------------------------------

    def _client_of(self, msg):
        # Transaction ids are globally unique; clients identify themselves
        # implicitly by being the only site that ever mentions the txn.
        # The envelope's source is not visible here, so the client id rides
        # in the txn registry set up by the client protocol: by convention
        # txn ids encode nothing, so the first LockRequest must tell us.
        # We recover it from the message itself.
        return msg.client_id

    def _finish(self, txn_id):
        self._txns.pop(txn_id, None)
        granted = self.lock_table.release_all(txn_id)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("lock.release", txn=txn_id, granted=len(granted))
        for grantee, item_id, mode in granted:
            self._grant(grantee, item_id, mode)

    def _grant(self, txn_id, item_id, mode):
        """A lock was granted from the queue; deliver it. Subclasses (c-2PL)
        interpose callbacks here."""
        self._ship(txn_id, item_id, mode)

    def _ship(self, txn_id, item_id, mode):
        client_id, _ = self._txns[txn_id]
        item = self.store.read(item_id)
        env = self.send(client_id,
                        DataShip(txn_id=txn_id, item_id=item_id,
                                 version=item.version, value=item.value,
                                 mode=mode),
                        size=self.data_ship_size())
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("lock.grant", txn=txn_id, item=item_id,
                        mode=mode.name)
            tracer.round_charge(txn_id, "grant", shard=self.shard_tag)
            tracer.wire_charge(txn_id, env)

    def queue_depth(self):
        """Total queued (waiting) lock requests — a contention gauge."""
        return self.lock_table.total_waiters()

    def _build_waitfor_graph(self):
        wfg = WaitForGraph()
        table = self.lock_table
        for item_id in list(table._items):
            for txn_id, _mode in table.waiters(item_id):
                wfg.add_edges(txn_id, table.blockers_of(txn_id, item_id))
        return wfg

    def _extra_wait_edges(self):
        """Wait-for edges beyond lock-queue blocking (subclass hook; c-2PL
        adds callback busy edges). None when there are none."""
        return None

    def _find_cycle_from(self, requester):
        """A wait-for cycle through ``requester`` (first == last), or None.

        Equivalent to ``self._build_waitfor_graph().find_cycle_from(...)``
        — same DFS, same sorted successor order, so the identical cycle
        comes back — but blocker edges are computed only for transactions
        the search actually reaches.  Detection runs on every request that
        queues and almost always finds nothing; materialising the full
        graph first made it the hottest path of the s-2PL server.
        """
        table = self.lock_table
        waits = {}
        for item_id, lock in table._items.items():
            for txn_id, _mode in lock.queue:
                waits.setdefault(txn_id, []).append(item_id)
        extra = self._extra_wait_edges()

        def successors(node):
            succ = set()
            items = waits.get(node)
            if items:
                for item_id in items:
                    succ.update(table.blockers_of(node, item_id))
            if extra is not None:
                found = extra.get(node)
                if found:
                    succ |= found
            succ.discard(node)
            return succ

        parent = {}
        stack = [requester]
        visited = {requester}
        while stack:
            node = stack.pop()
            for nxt in sorted(successors(node), key=repr, reverse=True):
                if nxt == requester:
                    path = [requester, node]
                    cursor = node
                    while cursor != requester:
                        cursor = parent[cursor]
                        path.append(cursor)
                    path.reverse()
                    return path
                if nxt not in visited:
                    visited.add(nxt)
                    parent[nxt] = node
                    stack.append(nxt)
        return None

    def _detect_and_resolve(self, requester):
        """Abort transactions until no wait-for cycle involves ``requester``."""
        while True:
            cycle = self._find_cycle_from(requester)
            if cycle is None:
                return
            self.deadlocks_found += 1
            victim = self._choose_victim(cycle)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("lock.deadlock", requester=requester,
                            victim=victim, cycle=len(set(cycle)))
            self._abort(victim, reason="deadlock")
            if victim == requester:
                return

    def _choose_victim(self, cycle):
        members = list(dict.fromkeys(cycle))  # unique, order-preserving
        policy = self.config.victim_policy
        if policy == "requester":
            return members[0]
        ages = {txn: self._txns[txn][1] for txn in members}
        if policy == "youngest":
            return max(members, key=lambda txn: (ages[txn], txn))
        return min(members, key=lambda txn: (ages[txn], txn))

    def _abort(self, txn_id, reason):
        """Choose ``txn_id`` as a deadlock victim.

        Its wait edges disappear immediately (queued requests dropped), but
        its *held* locks are released only when the client has rolled back
        and its abort-release round trip completes — the same shape as a
        commit release. (Victims are always waiting transactions: every
        member of a wait-for cycle waits for someone.)
        """
        client_id, _ = self._txns[txn_id]
        self._dead.add(txn_id)
        self.aborts_initiated += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("txn.abort", txn=txn_id, reason=reason)
        for grantee, item_id, mode in self.lock_table.drop_queued(txn_id):
            self._grant(grantee, item_id, mode)
        env = self.send(client_id, AbortNotice(txn_id=txn_id, reason=reason),
                        size=CONTROL_SIZE)
        if tracer is not None:
            # The victim blocks (on a lock it will never get) until this
            # notice lands: its wire time is abort-resolution, not generic
            # network. Only aborted records carry the charge, so committed
            # summary sums are untouched.
            tracer.wire_charge(txn_id, env, phase="abort")


class S2PLClient(ProtocolClient):
    """A client site running strict 2PL transactions."""

    def __init__(self, sim, client_id, config, history):
        super().__init__(sim, client_id, config, history)
        self._active = {}        # txn_id -> Transaction
        self._grant_events = {}  # txn_id -> Event while waiting
        self._abort_flags = {}   # txn_id -> AbortNotice arriving off-wait

    def reset_protocol_state(self):
        self._active.clear()
        self._grant_events.clear()
        self._abort_flags.clear()

    # -- message handlers ----------------------------------------------------

    def on_DataShip(self, msg):
        if msg.txn_id not in self._active:
            return  # stale ship for an already-aborted transaction
        event = self._grant_events.pop(msg.txn_id, None)
        if event is not None and not event.triggered:
            event.succeed(msg)

    def on_AbortNotice(self, msg):
        if msg.txn_id not in self._active:
            return
        event = self._grant_events.pop(msg.txn_id, None)
        if event is not None and not event.triggered:
            event.succeed(msg)
        else:
            self._abort_flags[msg.txn_id] = msg

    # -- transaction execution ----------------------------------------------

    def execute(self, txn):
        """Process body: run one transaction to commit or abort."""
        start_time = self.sim.now
        self._active[txn.txn_id] = txn
        updates = {}
        read_items = []
        try:
            yield from self._run_ops(txn, updates, read_items)
        finally:
            self._active.pop(txn.txn_id, None)
            self._grant_events.pop(txn.txn_id, None)
            self._abort_flags.pop(txn.txn_id, None)
        end_time = self.sim.now
        if txn.running:  # pragma: no cover - loop always settles status
            raise AssertionError("transaction left running")
        if txn.status.value == "committed":
            release = CommitRelease(
                txn_id=txn.txn_id, updates=updates,
                read_items=tuple(read_items),
                commit_time=self.sim.now if self.fault_mode else None)
            if not self.fault_mode:
                # Under fault injection the release may be lost with the
                # client; the server records the commit when (and only
                # when) the release actually arrives.
                self.history.record_commit(txn.txn_id, time=self.sim.now)
            self.send(self.server_id, release,
                      size=CONTROL_SIZE
                      + len(updates) * self.config.data_item_size)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.round_charge(txn.txn_id, "release")
        elif txn.abort_reason == "client-crash":
            # The site fail-stopped: nothing is sent (the wire is severed
            # anyway); the server's crash sweep reclaims the locks.
            self.history.record_abort(txn.txn_id)
        else:
            self.history.record_abort(txn.txn_id)
            # Roll back locally, then tell the server to release the locks.
            self.send(self.server_id, AbortRelease(txn_id=txn.txn_id),
                      size=CONTROL_SIZE)
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.round_charge(txn.txn_id, "release")
        return self.make_outcome(txn, start_time, end_time)

    def _run_ops(self, txn, updates, read_items):
        tracer = self.sim.tracer
        try:
            for op in txn.spec.operations:
                env = self.send(self.server_id,
                                LockRequest(txn_id=txn.txn_id,
                                            item_id=op.item_id,
                                            mode=op.mode,
                                            client_id=self.client_id),
                                size=CONTROL_SIZE)
                if tracer is not None:
                    tracer.round_charge(txn.txn_id, "request")
                    tracer.wire_charge(txn.txn_id, env)
                requested_at = self.sim.now
                event = self.sim.event()
                self._grant_events[txn.txn_id] = event
                msg = yield event
                if isinstance(msg, AbortNotice):
                    txn.abort(msg.reason)
                    break
                self.op_waits.append(self.sim.now - requested_at)
                if tracer is None:
                    yield self.sim.timeout(op.think_time)
                else:
                    yield from self.think(txn.txn_id, op.think_time)
                notice = self._abort_flags.pop(txn.txn_id, None)
                if notice is not None:
                    txn.abort(notice.reason)
                    break
                txn.ops_done += 1
                if op.mode is LockMode.WRITE:
                    new_version = msg.version + 1
                    updates[op.item_id] = f"t{txn.txn_id}v{new_version}"
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, new_version,
                        self.sim.now)
                else:
                    read_items.append(op.item_id)
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, msg.version,
                        self.sim.now)
            else:
                txn.commit()
        except Interrupt:
            # The client site fail-stopped mid-transaction (fault
            # injection); the run's crash controller interrupted us.
            txn.abort("client-crash")
