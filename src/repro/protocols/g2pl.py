"""Group two-phase locking (g-2PL): the paper's contribution (§3.2–3.4).

Mechanics implemented here:

* **Collection windows and forward lists** — while a data item is away from
  the server, incoming lock requests collect in the item's window. When the
  item comes home the window is frozen into a forward list (FL): maximal
  runs of readers become read groups, and the item is shipped to the first
  entry together with the FL. Each client forwards the item to its FL
  successor when its transaction terminates; the last entry returns the
  item to the server, which immediately dispatches the next window. The
  release of one client and the grant to the next ride the same message,
  saving a round per handoff.

* **Deadlock avoidance** — a global precedence DAG orders live
  transactions. Window requests are reorderable, so freezing orders them
  by a linear extension of the DAG (never aborts). What can conflict is a
  *fixed* constraint: members of an already-dispatched chain must precede
  any new request for that item. If such an edge would close a cycle the
  opposite order is already frozen on some other item, the deadlock is
  unavoidable, and the requester is aborted (the paper's "offending
  transactions are aborted"). Requests within one window never deadlock —
  this is how the reordering "within a collection window" avoids deadlocks
  without predeclaration or starvation.

* **MR1W** — the writer that follows a read group is shipped the item at
  the same time as the readers and executes concurrently, but its hold is
  not forwarded until every reader's release has arrived. Without MR1W the
  writer receives the item only via the readers' releases (which then carry
  the data).

* **Read-only optimization** (future work in the paper, `expand_read_groups`)
  — a read request for an in-flight item whose chain is writer-free joins
  the circulating read group directly: the server still holds the current
  version (nobody is writing), so it ships its own copy and counts one more
  return. This eliminates read-only dependencies across windows.

* **Forward-list ordering disciplines** (§6 future work) — FIFO (default),
  readers-first, writers-first, applied as the tiebreak key of the linear
  extension, so precedence constraints always win.
"""

from dataclasses import dataclass

from repro.locking.modes import LockMode
from repro.protocols.base import (
    SERVER_SITE_ID,
    ProtocolClient,
    ProtocolServer,
)
from repro.protocols.forward_list import FLEntry, ForwardList, TxnRef
from repro.protocols.messages import (
    AbortNotice,
    ChainCommit,
    ChainCommitAck,
    CONTROL_SIZE,
    GShip,
    HandoffNote,
    LockRequest,
    ReaderRelease,
    ReleaseWaiver,
    ReturnToServer,
    TxnDone,
)
from repro.protocols.precedence import PrecedenceGraph
from repro.sim.errors import Interrupt
from repro.sim.timers import Timer
from repro.storage.wal import LogRecordType

FL_ORDERINGS = ("fifo", "reads_first", "writes_first")


def dispatch_chain(sender, item_id, version, value, fl, mr1w, epoch=0):
    """Ship ``item_id`` to the first entry of ``fl`` (which starts at that
    entry). Used identically by the server (initial dispatch) and by a
    forwarding client (writer handing the item onward).

    Readers receive the FL from their own group onward so they know their
    co-readers and the writer their release must go to. Under MR1W the
    writer after a read group is shipped concurrently.
    """
    tracer = sender.sim.tracer
    # Only the server's initial ship of a chain is a *grant* round; a
    # forwarding client's ship is the tail of its own handoff round
    # (charged in _forward) — that merge is the point of the protocol.
    # Role, not address: sharded home servers live at site ids other than
    # SERVER_SITE_ID, so checking ``site_id == SERVER_SITE_ID`` here would
    # silently drop their grant rounds.
    from_server = sender.is_server
    shard = sender.shard_tag
    first = fl.head
    if first.is_read_group:
        next_writer = fl[1].writer if len(fl) > 1 else None
        release_to = ((next_writer.txn_id, next_writer.client_id)
                      if next_writer is not None else None)
        group = first.txn_ids()
        for ref in first.txns:
            env = sender.send(ref.client_id,
                              GShip(txn_id=ref.txn_id, item_id=item_id,
                                    version=version, value=value,
                                    mode=LockMode.READ, fl_tail=fl,
                                    group=group, release_to=release_to,
                                    epoch=epoch),
                              size=sender.data_ship_size(fl=fl))
            if tracer is not None:
                if from_server:
                    tracer.round_charge(ref.txn_id, "grant", shard=shard)
                tracer.wire_charge(ref.txn_id, env)
        if next_writer is not None and mr1w:
            env = sender.send(next_writer.client_id,
                              GShip(txn_id=next_writer.txn_id,
                                    item_id=item_id,
                                    version=version, value=value,
                                    mode=LockMode.WRITE, fl_tail=fl.tail(1),
                                    group=group, await_releases_from=group,
                                    epoch=epoch),
                              size=sender.data_ship_size(fl=fl.tail(1)))
            if tracer is not None:
                # Concurrent with the read group's rounds, so it never
                # extends the sequential chain.
                tracer.round_charge(next_writer.txn_id, "grant_concurrent",
                                    shard=shard)
                tracer.wire_charge(next_writer.txn_id, env)
    else:
        writer = first.writer
        env = sender.send(writer.client_id,
                          GShip(txn_id=writer.txn_id, item_id=item_id,
                                version=version, value=value,
                                mode=LockMode.WRITE, fl_tail=fl, epoch=epoch),
                          size=sender.data_ship_size(fl=fl))
        if tracer is not None:
            if from_server:
                tracer.round_charge(writer.txn_id, "grant", shard=shard)
            tracer.wire_charge(writer.txn_id, env)


# ---------------------------------------------------------------------------
# Server
# ---------------------------------------------------------------------------

@dataclass
class _WindowRequest:
    ref: TxnRef
    mode: object
    arrival: float


class _ItemState:
    """Per-item server bookkeeping.

    The fault-injection fields track enough of the dispatched chain to
    repair it: ``fl`` is the live forward list, ``released`` the members
    known (via handoff notes / returns) to have passed the item on,
    ``expected_refs`` the members whose returns are still owed, and
    ``epoch`` a counter bumped on every repair so stale copies of older
    dispatches can be told apart from repaired ones.
    """

    __slots__ = ("item_id", "at_server", "window", "chain_live", "chain_all",
                 "chain_has_writer", "expected_returns", "returns_received",
                 "returned_version", "returned_value",
                 "epoch", "fl", "released", "grafted_refs", "expected_refs",
                 "dispatched_at", "watchdog", "watchdog_attempt")

    def __init__(self, item_id):
        self.item_id = item_id
        self.at_server = True
        self.window = []          # [_WindowRequest] in arrival order
        self.chain_live = set()   # txn ids on the dispatched chain, live
        self.chain_all = []       # TxnRefs on the dispatched chain
        self.chain_has_writer = False
        self.expected_returns = 0
        self.returns_received = 0
        self.returned_version = -1
        self.returned_value = None
        # fault injection only:
        self.epoch = 0            # bumped on every chain repair
        self.fl = None            # ForwardList of the current dispatch
        self.released = set()     # txn ids known to have passed the item on
        self.grafted_refs = []    # TxnRefs grafted onto the chain
        self.expected_refs = set()  # txn ids whose returns are still owed
        self.dispatched_at = 0.0
        self.watchdog = None      # Timer guarding against stalled chains
        self.watchdog_attempt = 0


class _TxnEntry:
    __slots__ = ("client_id", "first_seen", "chain_items")

    def __init__(self, client_id, first_seen):
        self.client_id = client_id
        self.first_seen = first_seen
        self.chain_items = set()  # items whose un-returned chain includes txn


class G2PLServer(ProtocolServer):
    """The data server running group 2PL."""

    def __init__(self, sim, config, store, wal, history,
                 site_id=SERVER_SITE_ID):
        super().__init__(sim, config, store, wal, history, site_id=site_id)
        self._items = {item_id: _ItemState(item_id)
                       for item_id in store.item_ids()}
        self.precedence = PrecedenceGraph()
        self._txns = {}
        self._dead = set()
        # statistics
        self.windows_dispatched = 0
        self.fl_lengths = []        # txn count per dispatched FL
        self.avoidance_aborts = 0
        self.grafted_reads = 0
        # Window accounting: every request that enters a collection window
        # must leave it by exactly one of two doors — frozen into an FL or
        # purged by an abort. assert_invariants checks the ledger balances.
        self.window_enqueued = 0
        self.window_frozen = 0
        self.window_purged = 0
        # fault injection
        self._committed = set()     # txns whose ChainCommit is registered
        self._injector = None
        self._chain_timeout = None
        self.chain_repairs = 0
        self.watchdog_fires = 0
        self.crash_aborts = 0
        if config.fl_ordering not in FL_ORDERINGS:
            raise ValueError(
                f"unknown fl_ordering {config.fl_ordering!r}; "
                f"choose from {FL_ORDERINGS}")
        cap = config.max_forward_list_length
        if cap is not None and cap < 1:
            raise ValueError(f"max_forward_list_length must be >= 1, got {cap}")

    # -- message handlers ----------------------------------------------------

    def on_LockRequest(self, msg):
        txn_id = msg.txn_id
        if txn_id in self._dead:
            return
        entry = self._txns.get(txn_id)
        if entry is None:
            entry = self._txns[txn_id] = _TxnEntry(msg.client_id, self.sim.now)
        info = self._items[msg.item_id]
        ref = TxnRef(txn_id=txn_id, client_id=entry.client_id)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("lock.request", txn=txn_id, item=msg.item_id,
                        mode=msg.mode.name, client=msg.client_id)

        # Fixed constraint: every live dispatched-chain member precedes the
        # new request. If any such edge closes a cycle, the conflicting
        # order is frozen elsewhere: unavoidable deadlock, abort.
        live_chain = [t for t in info.chain_live if t != txn_id]
        # would_cycle(chain_txn, txn_id) for each member is reaches(txn_id,
        # chain_txn); one DFS over the member set answers them all.
        if live_chain and self.precedence.reaches_any(txn_id, live_chain):
            self._abort(txn_id, reason="precedence-cycle")
            return

        if (self._graft_allowed(info)
                and not info.at_server
                and msg.mode is LockMode.READ
                and not info.chain_has_writer
                and not any(w.mode is LockMode.WRITE for w in info.window)
                and self._try_graft_reader(info, ref)):
            return

        # Safe unchecked: the reaches_any guard above proved txn_id reaches
        # no chain member, and edges *into* txn_id cannot change that.
        add_edge = self.precedence.add_edge_unchecked
        for chain_txn in live_chain:
            add_edge(chain_txn, txn_id)
        info.window.append(
            _WindowRequest(ref=ref, mode=msg.mode, arrival=self.sim.now))
        self.window_enqueued += 1
        if tracer is not None:
            tracer.emit("fl.collect", txn=txn_id, item=msg.item_id,
                        window=len(info.window))
        if info.at_server:
            self._maybe_dispatch(info)

    def on_ReturnToServer(self, msg):
        info = self._items[msg.item_id]
        if self.fault_mode:
            if (info.at_server
                    or msg.from_txn not in {r.txn_id for r in info.chain_all}):
                return  # stale return from a chain already repaired home
            info.released.add(msg.from_txn)
            info.expected_refs.discard(msg.from_txn)
            if msg.version > info.returned_version:
                info.returned_version = msg.version
                info.returned_value = msg.value
            if info.expected_refs:
                return
        else:
            info.returns_received += 1
            if msg.version > info.returned_version:
                info.returned_version = msg.version
                info.returned_value = msg.value
            if info.returns_received < info.expected_returns:
                return
        self._item_home(info)

    def on_TxnDone(self, msg):
        self._retire(msg.txn_id)

    # -- fault recovery --------------------------------------------------------

    def enable_fault_recovery(self, injector, rto, chain_timeout,
                              sweep_interval):
        """Install the deterministic failure detector and the stalled-chain
        watchdog timeout. Crash recovery in g-2PL is chain repair: when a
        dispatched chain stops making progress, the server aborts crashed
        members, waives releases the next writers were expecting from dead
        readers, and re-dispatches the item (from its own store, which in
        fault mode holds every registered commit) to the surviving suffix
        under a bumped epoch."""
        self._injector = injector
        self._chain_timeout = chain_timeout

    def on_ChainCommit(self, msg):
        if msg.txn_id in self._dead:
            return  # repaired away before the registration arrived
        if msg.txn_id not in self._committed:
            self._committed.add(msg.txn_id)
            self.history.record_commit(msg.txn_id, time=msg.commit_time)
            # Install immediately so a repair re-dispatch can never ship a
            # version that predates this commit (lost committed write). The
            # version guard makes the eventual chain return a no-op.
            for item_id, (version, value) in sorted(msg.writes.items()):
                if version > self.store.version(item_id):
                    self._install_returned(item_id, version, value)
        env = self.send(msg.client_id, ChainCommitAck(txn_id=msg.txn_id),
                        size=CONTROL_SIZE)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("chain.commit", txn=msg.txn_id)
            tracer.round_charge(msg.txn_id, "commit_ack")
            tracer.wire_charge(msg.txn_id, env, phase="commit")

    def on_HandoffNote(self, msg):
        info = self._items[msg.item_id]
        if info.at_server:
            return
        if msg.from_txn in {r.txn_id for r in info.chain_all}:
            info.released.add(msg.from_txn)

    def _arm_watchdog(self, info):
        if info.watchdog is not None:
            info.watchdog.cancel()
        delay = self._chain_timeout * (2.0 ** min(info.watchdog_attempt, 6))
        info.watchdog = Timer(self.sim, delay, self._watchdog_fire,
                              info.item_id)

    def _watchdog_fire(self, item_id):
        info = self._items[item_id]
        if info.at_server:
            return
        self.watchdog_fires += 1
        info.watchdog_attempt += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("fl.watchdog", item=item_id,
                        attempt=info.watchdog_attempt)
        self._repair_chain(info)

    def _chain_refs_pending(self, info):
        """Chain members the server has not yet seen pass the item on."""
        refs = info.fl.all_txns() + list(info.grafted_refs)
        return [ref for ref in refs
                if ref.txn_id not in info.released
                and ref.txn_id not in self._dead]

    def _repair_chain(self, info):
        """The chain watchdog fired: route the item around dead members.

        Re-dispatching to the pending suffix is always safe — in fault mode
        every committed write reaches the server *before* its holder
        forwards (ChainCommit gating), so the store version re-shipped to a
        member is exactly the committed prefix of its predecessors; clients
        merge duplicate copies without clobbering received data and double
        returns are absorbed by set-based accounting. A member that already
        forwarded answers a re-ship with a handoff note, shrinking the
        pending set for the next round.
        """
        now = self.sim.now
        item_id = info.item_id
        pending = self._chain_refs_pending(info)
        if not pending:
            # Every member either returned, handed off, or died, so no live
            # member will ever return the data (a genuinely in-flight
            # return comes from a member still counted as pending; a member
            # that only handed off to a *dead* successor leaves the item
            # stranded). Recover from the store copy — ChainCommit gating
            # makes it at least as new as any copy the chain ever held.
            self.chain_repairs += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("fl.repair", item=item_id,
                            action="store-recovery")
            self._item_home(info)
            return
        crashed = [ref for ref in pending
                   if self._injector.crashed_during(
                       ref.client_id, info.dispatched_at, now)]
        if not crashed and info.watchdog_attempt < 3:
            # No member provably died; the chain is probably just slow (a
            # member holds an item for its whole transaction). Only after
            # three fires (the backoff doubles each time) does the repair
            # run as a stall-breaker for the rare data-swallow case a dead
            # member's removal can leave behind.
            self._arm_watchdog(info)
            return
        self.chain_repairs += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("fl.repair", item=item_id, action="route-around",
                        crashed=len(crashed))
        crashed_ids = {ref.txn_id for ref in crashed}
        for ref in crashed:
            info.expected_refs.discard(ref.txn_id)
            info.released.add(ref.txn_id)
            if ref.txn_id in self._committed:
                # Durably committed before dying: its effects are already
                # in the store; it just cannot forward. Skip its position.
                if ref.txn_id in self._txns:
                    self._retire(ref.txn_id)
            elif ref.txn_id in self._txns:
                self._abort(ref.txn_id, reason="client-crash")
        info.grafted_refs = [r for r in info.grafted_refs
                             if r.txn_id not in crashed_ids]
        # Waive the releases the next writers were expecting from dead
        # readers, or they would gate forever.
        entries = info.fl.entries
        for index, entry in enumerate(entries):
            if not entry.is_read_group or index + 1 >= len(entries):
                continue
            dead_readers = [r for r in entry.txns if r.txn_id in crashed_ids]
            writer = entries[index + 1].writer
            if not dead_readers or writer.txn_id in self._dead:
                continue
            for reader in dead_readers:
                self.send(writer.client_id,
                          ReleaseWaiver(item_id=item_id,
                                        from_txn=reader.txn_id,
                                        to_txn=writer.txn_id),
                          size=CONTROL_SIZE)
        survivors = [
            (ref, mode) for ref, mode in info.fl.requests()
            if ref.txn_id not in info.released
            and ref.txn_id not in self._dead
            and ref.txn_id in self._txns]
        if not survivors:
            self._item_home(info)
            return
        self._redispatch(info, survivors)

    def _redispatch(self, info, survivors):
        """Re-ship the item to the surviving chain suffix (original order
        preserved) under a bumped epoch."""
        item_id = info.item_id
        new_fl = ForwardList.from_requests(survivors)
        entries = new_fl.entries
        info.fl = new_fl
        info.epoch += 1
        info.chain_has_writer = any(
            entry.mode is LockMode.WRITE for entry in entries)
        last = entries[-1]
        info.expected_refs = set(last.txn_ids()) | {
            ref.txn_id for ref in info.grafted_refs
            if ref.txn_id not in info.released}
        info.dispatched_at = self.sim.now
        item = self.store.read(item_id)
        dispatch_chain(self, item_id, item.version, item.value, new_fl,
                       mr1w=self.config.mr1w, epoch=info.epoch)
        self._arm_watchdog(info)

    def _item_home(self, info):
        """The chain is fully accounted for: install and open the window."""
        item_id = info.item_id
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("fl.home", item=item_id)
        for ref in info.chain_all:
            entry = self._txns.get(ref.txn_id)
            if entry is not None:
                entry.chain_items.discard(item_id)
        info.chain_all = []
        info.chain_live.clear()
        info.chain_has_writer = False
        info.at_server = True
        info.expected_returns = 0
        info.returns_received = 0
        if self.fault_mode:
            info.released = set()
            info.grafted_refs = []
            info.expected_refs = set()
            info.fl = None
            if info.watchdog is not None:
                info.watchdog.cancel()
                info.watchdog = None
        if info.returned_version > self.store.version(item_id):
            self._install_returned(item_id, info.returned_version,
                                   info.returned_value)
        info.returned_version = -1
        info.returned_value = None
        self._maybe_dispatch(info)

    # -- internals -----------------------------------------------------------

    def _install_returned(self, item_id, version, value):
        # Tag the records with a unique unit-of-installation id so the
        # recovery redo pass can pair UPDATE with its COMMIT.
        unit = ("return", item_id, version)
        self.wal.append(LogRecordType.UPDATE, txn=unit, item_id=item_id,
                        version=version, now=self.sim.now)
        self.store.install_as(item_id, version, value=value, now=self.sim.now)
        lsn = self.wal.append(LogRecordType.COMMIT, txn=unit,
                              now=self.sim.now)
        self.wal.force(lsn)
        self.truncate_log(1)

    def _retire(self, txn_id):
        """A transaction terminated: drop it from the avoidance structures."""
        entry = self._txns.pop(txn_id, None)
        self.precedence.remove_node(txn_id)
        if entry is not None:
            for item_id in entry.chain_items:
                self._items[item_id].chain_live.discard(txn_id)

    def _abort(self, txn_id, reason):
        entry = self._txns[txn_id]
        self._dead.add(txn_id)
        if reason == "client-crash":
            self.crash_aborts += 1
        else:
            self.avoidance_aborts += 1
        self.aborts_initiated += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("txn.abort", txn=txn_id, reason=reason)
        expect = tuple(sorted(entry.chain_items))
        # Defensive: purge any window entries (none exist for a sequential
        # client, but cheap to guarantee). Rebuild only windows that
        # actually mention the victim — almost none do.
        for info in self._items.values():
            if any(w.ref.txn_id == txn_id for w in info.window):
                kept = [w for w in info.window if w.ref.txn_id != txn_id]
                self.window_purged += len(info.window) - len(kept)
                info.window = kept
        self._retire(txn_id)
        if reason == "client-crash":
            return  # nobody home to notify; chain repair moves the data
        env = self.send(entry.client_id,
                        AbortNotice(txn_id=txn_id, reason=reason,
                                    expect_items=expect),
                        size=CONTROL_SIZE)
        if tracer is not None:
            # Abort-resolution wire: the victim cannot make progress until
            # the notice arrives (see the s-2PL counterpart).
            tracer.wire_charge(txn_id, env, phase="abort")

    def _graft_allowed(self, info):
        """May readers graft onto this item's in-flight chain?  Base g-2PL
        answers from configuration alone; adaptive subclasses answer
        per item (hybrid single mode grafts, pending speculation never)."""
        return self.config.expand_read_groups

    def _try_graft_reader(self, info, ref):
        """Read-only optimization: join a writer-free in-flight chain."""
        # The grafted reader must precede everything the chain precedes;
        # since the chain is one read group and the window holds no writers,
        # the only orders to fix are reader -> (future) window writers,
        # none of which exist. Nothing can cycle; graft unconditionally.
        info.chain_live.add(ref.txn_id)
        info.chain_all.append(ref)
        self._txns[ref.txn_id].chain_items.add(info.item_id)
        info.expected_returns += 1
        if self.fault_mode:
            info.expected_refs.add(ref.txn_id)
            info.grafted_refs.append(ref)
        self.grafted_reads += 1
        item = self.store.read(info.item_id)
        solo = ForwardList([FLEntry(LockMode.READ, (ref,))])
        env = self.send(ref.client_id,
                        GShip(txn_id=ref.txn_id, item_id=info.item_id,
                              version=item.version, value=item.value,
                              mode=LockMode.READ, fl_tail=solo,
                              group=(ref.txn_id,), release_to=None,
                              epoch=info.epoch),
                        size=self.data_ship_size(fl=solo))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("fl.graft", txn=ref.txn_id, item=info.item_id)
            tracer.round_charge(ref.txn_id, "grant")
            tracer.wire_charge(ref.txn_id, env)
        return True

    def _ordering_key(self, window_requests):
        """Tiebreak key for the linear extension: arrival order within the
        configured discipline."""
        arrival = {w.ref.txn_id: (w.arrival, index)
                   for index, w in enumerate(window_requests)}
        mode = {w.ref.txn_id: w.mode for w in window_requests}
        discipline = self.config.fl_ordering
        if discipline == "fifo":
            return lambda txn: arrival[txn]
        if discipline == "reads_first":
            return lambda txn: (mode[txn] is not LockMode.READ, arrival[txn])
        return lambda txn: (mode[txn] is not LockMode.WRITE, arrival[txn])

    def _select_window(self, info, order):
        """Split the linear extension into the txns frozen into this FL and
        the leftovers carried to the next window. Base g-2PL cuts at the
        configured forward-list cap; adaptive subclasses cut per item."""
        cap = self.config.max_forward_list_length
        if cap is None:
            return order, []
        return order[:cap], order[cap:]

    def _maybe_dispatch(self, info):
        if not info.at_server or not info.window:
            return
        window = info.window
        if len(window) == 1:
            # A one-request window needs no ordering key and no extension.
            order = [window[0].ref.txn_id]
        else:
            order = self.precedence.linear_extension(
                [w.ref.txn_id for w in window],
                key=self._ordering_key(window))
        by_txn = {w.ref.txn_id: w for w in window}
        selected_ids, leftover_ids = self._select_window(info, order)

        selected = [by_txn[txn_id] for txn_id in selected_ids]
        self.window_frozen += len(selected)
        info.window = sorted((by_txn[txn_id] for txn_id in leftover_ids),
                             key=lambda w: w.arrival)

        fl = ForwardList.from_requests(
            [(w.ref, w.mode) for w in selected])

        # Chain-order edges: every earlier entry precedes every later entry
        # (all pairs, so the constraint survives intermediate terminations).
        # Safe unchecked: both loops chain edges along the linear-extension
        # order (selected entries in order, then selected -> leftover), and
        # edges along a linear extension of reachability cannot cycle.
        entries = fl.entries
        add_edge = self.precedence.add_edge_unchecked
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                for src in entries[i].txns:
                    for dst in entries[j].txns:
                        add_edge(src.txn_id, dst.txn_id)
        # Fixed edges to the leftovers that will follow this chain.
        for w in info.window:
            for s in selected:
                add_edge(s.ref.txn_id, w.ref.txn_id)

        info.at_server = False
        info.chain_all = [w.ref for w in selected]
        info.chain_live = {w.ref.txn_id for w in selected
                           if w.ref.txn_id not in self._dead}
        info.chain_has_writer = any(
            entry.mode is LockMode.WRITE for entry in entries)
        last = entries[-1]
        info.expected_returns = len(last.txns) if last.is_read_group else 1
        info.returns_received = 0
        info.returned_version = -1
        for w in selected:
            self._txns[w.ref.txn_id].chain_items.add(info.item_id)
        if self.fault_mode:
            info.fl = fl
            info.released = set()
            info.grafted_refs = []
            info.expected_refs = set(last.txn_ids())
            info.dispatched_at = self.sim.now
            info.watchdog_attempt = 0
            self._arm_watchdog(info)

        self.windows_dispatched += 1
        self.fl_lengths.append(fl.txn_count())
        tracer = self.sim.tracer
        if tracer is not None:
            # The window that collected while the item was away freezes
            # into this FL; a new one opens (carrying any capped leftover)
            # and collects until the item next comes home.
            tracer.emit("fl.window_close", item=info.item_id,
                        size=len(selected))
            tracer.emit("fl.dispatch", item=info.item_id,
                        n_txns=fl.txn_count(), epoch=info.epoch)
            tracer.emit("fl.window_open", item=info.item_id,
                        carried=len(info.window))
        item = self.store.read(info.item_id)
        dispatch_chain(self, info.item_id, item.version, item.value, fl,
                       mr1w=self.config.mr1w, epoch=info.epoch)

    # -- diagnostics ----------------------------------------------------------

    def mean_fl_length(self):
        if not self.fl_lengths:
            return 0.0
        return sum(self.fl_lengths) / len(self.fl_lengths)

    def queue_depth(self):
        """Requests waiting in collection windows (contention gauge)."""
        return sum(len(info.window) for info in self._items.values())

    def fl_occupancy(self):
        """Live transactions on currently-dispatched forward lists."""
        return sum(len(info.chain_live) for info in self._items.values())

    def assert_invariants(self):
        """Cheap structural invariants, used by tests after every run."""
        cycle = self.precedence.find_any_cycle()
        if cycle is not None:
            raise AssertionError(f"precedence graph has a cycle: {cycle}")
        for item_id, info in self._items.items():
            if info.at_server and info.chain_live:
                raise AssertionError(
                    f"item {item_id} is home but has live chain members")
        pending = sum(len(info.window) for info in self._items.values())
        if self.window_enqueued != (
                self.window_frozen + self.window_purged + pending):
            raise AssertionError(
                "window accounting leak: "
                f"enqueued={self.window_enqueued} != "
                f"frozen={self.window_frozen} + purged={self.window_purged}"
                f" + pending={pending}")


# ---------------------------------------------------------------------------
# Client
# ---------------------------------------------------------------------------

class _Hold:
    """Client-side state for one (transaction, item) pair."""

    __slots__ = ("txn_id", "item_id", "mode", "version", "value", "fl_tail",
                 "group", "awaiting", "gate_releases", "data_received",
                 "committed_write", "new_value", "released", "early_releases",
                 "epoch")

    def __init__(self, txn_id, item_id):
        self.txn_id = txn_id
        self.item_id = item_id
        self.mode = None
        self.version = None
        self.value = None
        self.fl_tail = None       # ForwardList starting at own entry
        self.group = ()
        self.awaiting = set()     # reader txn ids still to release to us
        self.gate_releases = False  # basic-mode writer: execute after releases
        self.data_received = False
        self.committed_write = False
        self.new_value = None
        self.released = False
        self.early_releases = set()
        self.epoch = 0            # chain-repair epoch of the received copy

    @property
    def ready_for_txn(self):
        return self.data_received and not (self.gate_releases and self.awaiting)


class G2PLClient(ProtocolClient):
    """A client site running group-2PL transactions.

    Beyond executing its own transactions, the client participates in data
    migration: it forwards items along forward lists on behalf of committed
    *and aborted* transactions (an aborted transaction's position on a
    dispatched chain cannot be skipped — the data simply passes through
    unchanged).
    """

    def __init__(self, sim, client_id, config, history):
        super().__init__(sim, client_id, config, history)
        self._active = {}
        self._grant_events = {}   # txn_id -> (item_id, Event)
        self._abort_flags = {}
        self._holds = {}          # (txn_id, item_id) -> _Hold
        self._txn_holds = {}      # txn_id -> set(item_id)
        # txn_id -> "committed" / "aborted" / "aborted-server" once the
        # transaction has finished but its holds are not all forwarded yet.
        self._txn_state = {}
        self._commit_events = {}  # txn_id -> Event awaiting ChainCommitAck
        # txn_id -> home servers this transaction touched; TxnDone must
        # reach every one of them (a single-server layout touches only
        # SERVER_SITE_ID and degenerates to one notification).
        self._txn_servers = {}

    def reset_protocol_state(self):
        self._active.clear()
        self._grant_events.clear()
        self._abort_flags.clear()
        self._holds.clear()
        self._txn_holds.clear()
        self._txn_state.clear()
        self._commit_events.clear()
        self._txn_servers.clear()

    # -- message handlers ----------------------------------------------------

    def _hold(self, txn_id, item_id):
        key = (txn_id, item_id)
        hold = self._holds.get(key)
        if hold is None:
            hold = self._holds[key] = _Hold(txn_id, item_id)
            self._txn_holds.setdefault(txn_id, set()).add(item_id)
        return hold

    def on_GShip(self, msg):
        if self.fault_mode and self._on_gship_fault(msg):
            return
        hold = self._hold(msg.txn_id, msg.item_id)
        hold.mode = msg.mode
        hold.version = msg.version
        hold.value = msg.value
        hold.fl_tail = msg.fl_tail
        hold.group = msg.group
        hold.epoch = msg.epoch
        hold.data_received = True
        if msg.await_releases_from:
            hold.awaiting = set(msg.await_releases_from) - hold.early_releases
        hold.early_releases = set()
        self._progress(hold)

    def _on_gship_fault(self, msg):
        """Fault-mode pre-handling of a ship; True when fully handled."""
        hold = self._holds.get((msg.txn_id, msg.item_id))
        if hold is None:
            if (msg.txn_id not in self._active
                    and msg.txn_id not in self._txn_state):
                # Repair re-ship for a hold this client already forwarded —
                # or a pre-crash transaction a restarted site no longer
                # remembers. Re-assert the release so the next repair round
                # routes around this position instead of waiting on it.
                self.send_control(self.home_of(msg.item_id),
                                  HandoffNote(item_id=msg.item_id,
                                              from_txn=msg.txn_id,
                                              epoch=msg.epoch))
                return True
            return False
        if hold.data_received:
            # Duplicate copy from a chain repair: never clobber received
            # data, but a newer epoch replaces the routing state. Shrinking
            # the awaiting set to the re-shipped group is safe — a reader
            # the server dropped from the group has either released already
            # or will never release (crashed).
            if msg.epoch > hold.epoch:
                hold.epoch = msg.epoch
                hold.fl_tail = msg.fl_tail
                if msg.group:
                    hold.group = msg.group
                hold.awaiting &= set(msg.await_releases_from)
            self._progress(hold)
            return True
        return False

    def on_ReaderRelease(self, msg):
        hold = self._hold(msg.to_txn, msg.item_id)
        if msg.carries_data and not hold.data_received:
            # Basic mode: the data and the remaining FL arrive with the
            # (first) reader release; the writer executes once the whole
            # group has released.
            hold.mode = LockMode.WRITE
            hold.version = msg.version
            hold.value = msg.value
            hold.fl_tail = msg.fl_from_writer
            hold.group = msg.group
            hold.gate_releases = True
            hold.awaiting = set(msg.group) - hold.early_releases - {msg.from_txn}
            hold.early_releases = set()
            hold.data_received = True
        elif hold.data_received:
            hold.awaiting.discard(msg.from_txn)
        else:
            # MR1W race guard: release beats the concurrent GShip.
            hold.early_releases.add(msg.from_txn)
        self._progress(hold)

    def on_ChainCommitAck(self, msg):
        event = self._commit_events.pop(msg.txn_id, None)
        if event is not None and not event.triggered:
            event.succeed(msg)

    def on_ReleaseWaiver(self, msg):
        hold = self._holds.get((msg.to_txn, msg.item_id))
        if hold is None:
            if msg.to_txn in self._active or msg.to_txn in self._txn_state:
                # The waived release may beat the data (MR1W race shape).
                self._hold(msg.to_txn, msg.item_id).early_releases.add(
                    msg.from_txn)
            return
        hold.awaiting.discard(msg.from_txn)
        hold.early_releases.add(msg.from_txn)
        self._progress(hold)

    def on_AbortNotice(self, msg):
        txn = self._active.get(msg.txn_id)
        if txn is not None:
            pending = self._grant_events.get(msg.txn_id)
            if pending is not None and not pending[1].triggered:
                del self._grant_events[msg.txn_id]
                pending[1].succeed(msg)
            else:
                self._abort_flags[msg.txn_id] = msg
        for item_id in msg.expect_items:
            # Items frozen into dispatched chains still arrive here and must
            # be forwarded on the dead transaction's behalf.
            self._hold(msg.txn_id, item_id)
        if txn is None and msg.txn_id not in self._txn_state:
            # Defensive: notice for a transaction this client no longer runs.
            self._txn_state[msg.txn_id] = "aborted-server"
            self._try_release(msg.txn_id)
        # An active txn is finished by its coroutine, which releases holds.

    # -- hold progression ------------------------------------------------------

    def _progress(self, hold):
        if hold.ready_for_txn:
            pending = self._grant_events.get(hold.txn_id)
            if (pending is not None and pending[0] == hold.item_id
                    and not pending[1].triggered):
                del self._grant_events[hold.txn_id]
                pending[1].succeed(hold)
        self._try_release(hold.txn_id)

    def _try_release(self, txn_id):
        """Forward whatever this finished transaction may release.

        A *committed* transaction releases all-or-nothing: no hold moves
        while any MR1W awaiting-set is non-empty, because forwarding any
        update of the writer before its readers released would let another
        transaction observe the writer's effects while serialising before
        it (strictness at transaction granularity). An *aborted* transaction
        forwards unchanged data per item as soon as it arrives.
        """
        state = self._txn_state.get(txn_id)
        if state is None:
            return
        item_ids = self._txn_holds.get(txn_id, ())
        holds = [self._holds[(txn_id, item)] for item in list(item_ids)]
        if state == "committed":
            if any(not h.data_received or h.awaiting for h in holds):
                return
            for hold in holds:
                self._forward(hold)
        else:
            for hold in holds:
                if hold.data_received and not hold.awaiting and not hold.released:
                    self._forward(hold)
        self._maybe_done(txn_id)

    def _maybe_done(self, txn_id):
        """Once every hold has been forwarded, tell every touched home
        server the transaction is fully over (it leaves the precedence
        graph only then — it can still constrain orders while it holds
        data)."""
        if self._txn_holds.get(txn_id):
            return
        state = self._txn_state.pop(txn_id, None)
        if state is None:
            return
        targets = self._txn_servers.pop(txn_id, None)
        if targets is None:
            targets = (self.server_id,)
        else:
            targets = sorted(targets)
        if state in ("committed", "aborted"):
            for target in targets:
                self.send_control(target,
                                  TxnDone(txn_id=txn_id,
                                          committed=state == "committed"))
        elif state == "aborted-server" and len(targets) > 1:
            # The aborting home server already retired the transaction, but
            # in a sharded run the *other* touched servers never hear about
            # the abort — without this fan-out the transaction would pin
            # the shared precedence graph (and its chain slots) forever.
            for target in targets:
                self.send_control(target,
                                  TxnDone(txn_id=txn_id, committed=False))

    def _forward(self, hold):
        """Pass the item to the FL successor (or home to the server)."""
        hold.released = True
        if hold.mode is LockMode.WRITE and hold.committed_write:
            out_version = hold.version + 1
            out_value = hold.new_value
        else:
            out_version = hold.version
            out_value = hold.value
        fl = hold.fl_tail
        tracer = self.sim.tracer
        forwarded_to_client = False
        successor = None
        if hold.mode is LockMode.READ:
            rest = fl.tail(1) if fl is not None and len(fl) else ForwardList()
            if rest:
                writer = rest.head.writer
                carries = not self.config.mr1w
                env = self.send(writer.client_id,
                                ReaderRelease(
                                    item_id=hold.item_id,
                                    from_txn=hold.txn_id,
                                    to_txn=writer.txn_id,
                                    version=out_version,
                                    value=out_value if carries else None,
                                    fl_from_writer=rest if carries else None,
                                    group=hold.group, carries_data=carries,
                                    epoch=hold.epoch),
                                size=(self.data_ship_size(fl=rest)
                                      if carries else CONTROL_SIZE))
                forwarded_to_client = True
                successor = writer.client_id
                if tracer is not None and carries:
                    # Basic mode: the writer awaits this release for its
                    # data, so its wire counts against the writer.
                    tracer.wire_charge(writer.txn_id, env)
            else:
                self.send(self.home_of(hold.item_id),
                          ReturnToServer(item_id=hold.item_id,
                                         version=out_version, value=out_value,
                                         from_txn=hold.txn_id,
                                         outcomes={hold.txn_id: "done"},
                                         epoch=hold.epoch),
                          size=self.data_ship_size())
        else:
            rest = fl.tail(1) if fl is not None and len(fl) else ForwardList()
            if rest:
                dispatch_chain(self, hold.item_id, out_version, out_value,
                               rest, mr1w=self.config.mr1w, epoch=hold.epoch)
                forwarded_to_client = True
                head = rest.head
                successor = (head.txns[0].client_id if head.is_read_group
                             else head.writer.client_id)
            else:
                self.send(self.home_of(hold.item_id),
                          ReturnToServer(item_id=hold.item_id,
                                         version=out_version, value=out_value,
                                         from_txn=hold.txn_id,
                                         outcomes={hold.txn_id: "done"},
                                         epoch=hold.epoch),
                          size=self.data_ship_size())
        if tracer is not None:
            # The merged release+grant is one sequential round, charged to
            # the transaction whose termination triggers it.
            if forwarded_to_client:
                tracer.round_charge(hold.txn_id, "handoff")
                tracer.emit("fl.handoff", txn=hold.txn_id,
                            item=hold.item_id, to=successor)
            else:
                tracer.round_charge(hold.txn_id, "release")
                tracer.emit("fl.return", txn=hold.txn_id,
                            item=hold.item_id)
        if forwarded_to_client and self.fault_mode:
            # Progress beacon for the stalled-chain watchdog: this member
            # has passed the item on (returns speak for themselves).
            self.send_control(self.home_of(hold.item_id),
                              HandoffNote(item_id=hold.item_id,
                                          from_txn=hold.txn_id,
                                          epoch=hold.epoch))
        self._holds.pop((hold.txn_id, hold.item_id), None)
        item_set = self._txn_holds.get(hold.txn_id)
        if item_set is not None:
            item_set.discard(hold.item_id)
            if not item_set:
                del self._txn_holds[hold.txn_id]

    # -- transaction execution -------------------------------------------------

    def execute(self, txn):
        """Process body: run one transaction to commit or abort."""
        start_time = self.sim.now
        self._active[txn.txn_id] = txn
        try:
            yield from self._run_ops(txn)
        finally:
            self._active.pop(txn.txn_id, None)
            self._grant_events.pop(txn.txn_id, None)
            self._abort_flags.pop(txn.txn_id, None)
        end_time = self.sim.now
        committed = txn.status.value == "committed"
        if committed:
            if not self.fault_mode:
                # Fault mode: the server already recorded the commit when it
                # acked the ChainCommit registration.
                self.history.record_commit(txn.txn_id, time=self.sim.now)
            self._txn_state[txn.txn_id] = "committed"
        elif txn.abort_reason == "commit-limbo":
            # Crashed while awaiting the ChainCommitAck: the server's record
            # is authoritative (an unregistered commit counts as aborted),
            # so record nothing — and the dead site forwards nothing; chain
            # repair redistributes the holds.
            return self.make_outcome(txn, start_time, end_time)
        elif txn.abort_reason == "client-crash":
            self.history.record_abort(txn.txn_id)
            # Fail-stop: no releases flow from a dead site.
            return self.make_outcome(txn, start_time, end_time)
        else:
            self.history.record_abort(txn.txn_id)
            # Server-initiated aborts (the only kind in g-2PL) were already
            # retired from the precedence graph; no TxnDone follows.
            self._txn_state[txn.txn_id] = (
                "aborted-server" if txn.abort_reason == "precedence-cycle"
                else "aborted")
            for item_id in list(self._txn_holds.get(txn.txn_id, ())):
                self._holds[(txn.txn_id, item_id)].committed_write = False
        self._try_release(txn.txn_id)
        return self.make_outcome(txn, start_time, end_time)

    def _run_ops(self, txn):
        tracer = self.sim.tracer
        try:
            for op in txn.spec.operations:
                home = self.home_of(op.item_id)
                self._txn_servers.setdefault(txn.txn_id, set()).add(home)
                env = self.send(home,
                                LockRequest(txn_id=txn.txn_id,
                                            item_id=op.item_id,
                                            mode=op.mode,
                                            client_id=self.client_id),
                                size=CONTROL_SIZE)
                if tracer is not None:
                    tracer.round_charge(txn.txn_id, "request")
                    tracer.wire_charge(txn.txn_id, env)
                requested_at = self.sim.now
                event = self.sim.event()
                self._grant_events[txn.txn_id] = (op.item_id, event)
                # The hold may already be ready (e.g. data raced ahead);
                # re-check before suspending.
                hold = self._holds.get((txn.txn_id, op.item_id))
                if hold is not None and hold.ready_for_txn \
                        and not event.triggered:
                    del self._grant_events[txn.txn_id]
                    event.succeed(hold)
                msg = yield event
                if isinstance(msg, AbortNotice):
                    txn.abort(msg.reason)
                    break
                self.op_waits.append(self.sim.now - requested_at)
                hold = msg
                if tracer is None:
                    yield self.sim.timeout(op.think_time)
                else:
                    yield from self.think(txn.txn_id, op.think_time)
                notice = self._abort_flags.pop(txn.txn_id, None)
                if notice is not None:
                    txn.abort(notice.reason)
                    break
                txn.ops_done += 1
                if op.mode is LockMode.WRITE:
                    new_version = hold.version + 1
                    hold.committed_write = True  # finalised below on abort
                    hold.new_value = f"t{txn.txn_id}v{new_version}"
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, new_version,
                        self.sim.now)
                else:
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, hold.version,
                        self.sim.now)
            else:
                if self.fault_mode:
                    yield from self._register_commit(txn)
                else:
                    txn.commit()
        except Interrupt:
            # The client site fail-stopped mid-transaction (fault
            # injection); the run's crash controller interrupted us.
            txn.abort("client-crash")

    def _register_commit(self, txn):
        """Fault mode: the commit only counts once the server registers it
        (see :class:`~repro.protocols.messages.ChainCommit`) — send the
        writes and wait for the ack before forwarding any hold."""
        writes = {}
        for item_id in self._txn_holds.get(txn.txn_id, ()):
            hold = self._holds[(txn.txn_id, item_id)]
            if hold.committed_write:
                writes[item_id] = (hold.version + 1, hold.new_value)
        event = self.sim.event()
        self._commit_events[txn.txn_id] = event
        self.send_control(self.server_id,
                          ChainCommit(txn_id=txn.txn_id,
                                      client_id=self.client_id,
                                      writes=writes,
                                      commit_time=self.sim.now))
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.round_charge(txn.txn_id, "commit")
        try:
            yield event
        except Interrupt:
            txn.abort("commit-limbo")
            return
        finally:
            self._commit_events.pop(txn.txn_id, None)
        txn.commit()
