"""Protocol message payloads.

Message sizes are in abstract data units: control messages cost
``CONTROL_SIZE``, every shipped copy of a data item adds the configured item
size, and a piggybacked forward list adds ``FL_ENTRY_SIZE`` per entry. With
the paper's infinite-bandwidth assumption sizes only feed the traffic
statistics; the A2 ablation gives them teeth.
"""

from dataclasses import dataclass, field
from typing import Optional

CONTROL_SIZE = 1.0
FL_ENTRY_SIZE = 0.25


@dataclass(frozen=True)
class LockRequest:
    """Client → server: request ``item_id`` in ``mode`` for ``txn_id``."""

    txn_id: int
    item_id: int
    mode: object  # LockMode
    client_id: int = None
    # Sharded "2pc-opt" commit: True on the transaction's last request at
    # this home server — the grant should carry the shard's prepare vote.
    vote_request: bool = False


@dataclass(frozen=True)
class DataShip:
    """Server → client (s-2PL/c-2PL): lock granted, data attached.

    ``vote`` (sharded "2pc-opt" commit): the grant doubles as this home
    server's PREPARED vote — granting the transaction's last lock at the
    shard is consenting to commit it.
    """

    txn_id: int
    item_id: int
    version: int
    value: object
    mode: object
    from_cache_grant: bool = False
    vote: bool = False


@dataclass(frozen=True)
class CommitRelease:
    """Client → server (s-2PL): transaction commit; carries all updates.

    ``commit_time`` is set under fault injection: the server then records
    the history commit on receipt (the commit only *counts* once the server
    has durably seen it), stamped with the client's decision time so
    strictness checks still measure against the client-side commit point.
    """

    txn_id: int
    updates: dict  # item_id -> new value
    read_items: tuple = ()
    commit_time: float = None


@dataclass(frozen=True)
class AbortRelease:
    """Client → server (s-2PL): client-initiated abort; locks to release."""

    txn_id: int


@dataclass(frozen=True)
class AbortNotice:
    """Server → client: ``txn_id`` was aborted.

    ``expect_items`` (g-2PL) lists items frozen into dispatched forward
    lists that will still arrive at this client and must be forwarded
    onward on behalf of the dead transaction.
    """

    txn_id: int
    reason: str
    expect_items: tuple = ()


@dataclass(frozen=True)
class GShip:
    """g-2PL data dispatch (server → client or client → client).

    Delivers ``item_id`` to ``txn_id`` together with the remaining forward
    list ``fl_tail`` (the entries *after* the recipient's own entry).

    ``release_to`` tells a reader where its release must go: a
    ``(txn_id, client_id)`` pair for the next writer, or ``None`` for the
    server. ``group`` is the recipient's read-group membership (txn ids),
    used by the next writer to count releases. ``await_releases_from`` is
    non-empty for a writer shipped concurrently with its preceding read
    group under MR1W.

    ``epoch`` is the item's chain-repair epoch (fault injection): each
    server-side repair of a stalled chain bumps it, and a re-shipped copy
    with a higher epoch replaces a hold's forward list and awaiting set
    without touching already-received data.
    """

    txn_id: int
    item_id: int
    version: int
    value: object
    mode: object
    fl_tail: object  # ForwardList
    group: tuple = ()
    release_to: Optional[tuple] = None  # (txn_id, client_id) or None
    await_releases_from: tuple = ()
    epoch: int = 0


@dataclass(frozen=True)
class ReaderRelease:
    """g-2PL reader → next writer: read lock released.

    Under basic g-2PL (no MR1W) the writer has not yet received the data,
    so the release carries the unchanged value and the forward list from
    the writer's entry onward.
    """

    item_id: int
    from_txn: int
    to_txn: int
    version: int
    value: object = None
    fl_from_writer: object = None  # ForwardList, basic mode only
    group: tuple = ()              # the releasing reader's group (txn ids)
    carries_data: bool = False
    epoch: int = 0                 # chain-repair epoch (fault injection)


@dataclass(frozen=True)
class ReturnToServer:
    """g-2PL last-entry client → server: item comes home.

    ``outcomes`` maps txn_id -> "committed" / "aborted" for the chain
    members this sender knows terminated (piggybacked bookkeeping).
    """

    item_id: int
    version: int
    value: object
    from_txn: int
    outcomes: dict = field(default_factory=dict)
    epoch: int = 0  # chain-repair epoch (fault injection)


@dataclass(frozen=True)
class TxnDone:
    """g-2PL client → server: transaction outcome notification.

    Carried for transactions whose items all went to *other clients*
    rather than back to the server, so the server can retire them from the
    precedence graph. Piggybacks on the network like any control message.
    """

    txn_id: int
    committed: bool


@dataclass(frozen=True)
class ChainCommit:
    """g-2PL client → server, fault mode only: commit registration.

    Under fault injection a g-2PL client may die between deciding to commit
    and its writes reaching the server via the chain, and chain repair
    would then re-dispatch a stale version — a lost committed write. So in
    fault mode the commit point moves to the server: the client sends its
    writes (item -> (new_version, value)) and *waits for the ack* before
    marking itself committed and forwarding its holds. The server installs
    the writes immediately (guarded by version, so the later chain return
    is a no-op) and records the history commit stamped with the client's
    decision time.
    """

    txn_id: int
    client_id: int
    writes: dict          # item_id -> (version, value)
    commit_time: float


@dataclass(frozen=True)
class ChainCommitAck:
    """Server → client, fault mode: the commit is registered; forward away."""

    txn_id: int


@dataclass(frozen=True)
class HandoffNote:
    """g-2PL client → server, fault mode: progress beacon.

    Sent when a hold is forwarded to a *successor client* (returns to the
    server speak for themselves), so the stalled-chain watchdog knows which
    members already passed the item on and repairs only the suffix that
    never saw it.
    """

    item_id: int
    from_txn: int
    epoch: int = 0


@dataclass(frozen=True)
class ReleaseWaiver:
    """g-2PL server → MR1W writer, fault mode: stop waiting for a reader.

    ``from_txn`` crashed (or was repaired away); the writer's awaiting set
    must drop it or the writer would gate on a release that can never come.
    """

    item_id: int
    from_txn: int
    to_txn: int


@dataclass(frozen=True)
class CommitAck:
    """Server → client (2V-2PL): the commit certified and installed."""

    txn_id: int


@dataclass(frozen=True)
class CacheRecall:
    """c-2PL server → caching client: give back your cached read lock."""

    item_id: int


@dataclass(frozen=True)
class CacheRecallAck:
    """c-2PL client → server.

    ``final=True`` means the cached copy is dropped. ``final=False`` is a
    busy notification: the copy is in use by local transaction ``busy_txn``
    and will be dropped (with a final ack) when that transaction ends — the
    server uses ``busy_txn`` to extend the wait-for graph.
    """

    item_id: int
    client_id: int
    final: bool = True
    busy_txn: int = None


# -- cross-shard atomic commit (sharded deployments) -------------------------

@dataclass(frozen=True)
class PrepareRequest:
    """Coordinator (client) → participant home server: 2PC phase one.

    ``updates`` carries what this participant must install on commit —
    for s-2PL its own shard's item -> value map; for g-2PL the
    transaction's full item -> (version, value) writes map (every
    participant stages it, so any single surviving participant can answer
    a termination query authoritatively). ``participants`` names every
    home server of the transaction, enabling the cooperative termination
    protocol when the coordinator crashes after prepare.
    ``charge`` marks the one participant that accounts the sequential
    "vote" round (the other votes travel concurrently).
    """

    txn_id: int
    client_id: int
    updates: dict
    read_items: tuple = ()
    participants: tuple = ()
    charge: bool = False


@dataclass(frozen=True)
class PrepareVote:
    """Participant home server → coordinator: PREPARED (or refused)."""

    txn_id: int
    shard: int  # voting server's site id
    vote: bool
    charge: bool = False


@dataclass(frozen=True)
class CommitDecision:
    """Coordinator → participant: 2PC phase two.

    ``updates`` is None for classic 2PC (staged at prepare) and carries
    the participant's item -> value map under "2pc-opt", where votes
    piggybacked on lock grants and nothing was staged. ``commit_time``
    is set in fault mode (participants record the history commit on
    receipt, stamped with the coordinator's decision time). ``ack``
    requests a DecisionAck (fault mode: the coordinator only counts as
    committed once every participant has durably decided).
    """

    txn_id: int
    commit: bool
    updates: dict = None
    commit_time: float = None
    ack: bool = False
    charge: bool = False


@dataclass(frozen=True)
class DecisionAck:
    """Participant → coordinator, fault mode: decision applied."""

    txn_id: int
    shard: int
    charge: bool = False


@dataclass(frozen=True)
class OutcomeQuery:
    """Participant → participant, cooperative termination.

    Sent by a home server stuck with a PREPARED transaction whose
    coordinator crashed: ask the other participants what they know.
    """

    txn_id: int
    from_shard: int


@dataclass(frozen=True)
class OutcomeReply:
    """Termination answer: this shard's view of the transaction.

    ``status`` is one of "committed", "aborted", "prepared", "unknown".
    Status alone suffices — every prepared participant already staged the
    writes it would need to commit.
    """

    txn_id: int
    shard: int
    status: str


@dataclass(frozen=True)
class SpecExtend:
    """Server → client: speculative chain extension (clock-assisted).

    The quiescence bound proved the away item's collection window is
    final, so the server pre-freezes it into ``fl`` and ships it to the
    chain's tail writer ``txn_id``: on acceptance the tail splices ``fl``
    onto its own forward-list tail and hands the item off directly
    (1 hop), skipping the return/grant round the window would otherwise
    cost. ``epoch`` stamps the chain generation the extension targets.
    """

    txn_id: int
    item_id: int
    fl: object  # ForwardList
    epoch: int = 0


@dataclass(frozen=True)
class SpecAck:
    """Client → server: outcome of a speculative extension.

    ``accepted`` is False when the tail had already released (the item —
    and a stale extension would dispatch behind it — is on its way home);
    the server then repairs by dispatching the pre-frozen list itself
    under a bumped epoch, exactly like a chain repair.
    """

    item_id: int
    from_txn: int
    accepted: bool = True
    epoch: int = 0
