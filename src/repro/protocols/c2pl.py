"""Caching 2PL (c-2PL): s-2PL with client caching across transactions.

The paper (§3.1) describes c-2PL as the s-2PL variation "that allows
caching of locks across transaction boundaries", and names comparing
against more caching protocols as future work. This implementation follows
the callback-locking family the paper cites [1, 5, 13]:

* Clients retain data items and their read permission after commit. A read
  of a cached item is a pure local hit — zero network rounds.
* Writes always go to the server. Before shipping the item to a writer,
  the server *recalls* every cached copy at other clients. A client whose
  current transaction has used the copy defers the drop to its commit and
  tells the server which transaction is responsible, so callback waits
  feed the same wait-for-graph deadlock detection as lock waits.
* Consistency: a cached copy can never be stale, because every update is
  preceded by recalling all copies.
"""

from repro.locking.lock_table import LockRequestState
from repro.locking.modes import LockMode
from repro.protocols.messages import (
    AbortNotice,
    AbortRelease,
    CacheRecall,
    CacheRecallAck,
    CommitRelease,
    CONTROL_SIZE,
    DataShip,
    LockRequest,
)
from repro.protocols.s2pl import S2PLClient, S2PLServer


class C2PLServer(S2PLServer):
    """s-2PL server extended with a cached-copy registry and callbacks."""

    def __init__(self, sim, config, store, wal, history):
        super().__init__(sim, config, store, wal, history)
        self._cached = {}           # item_id -> set(client_id)
        self._recall_waits = {}     # item_id -> {"txn": writer, "clients": set}
        self._busy_edges = {}       # (writer_txn, busy_txn) -> item_id
        self.callbacks_sent = 0
        self.cache_hits = 0         # server-visible proxy: grants avoided

    # -- request handling ------------------------------------------------------

    def on_LockRequest(self, msg):
        if msg.txn_id in self._dead:
            return
        if msg.txn_id not in self._txns:
            self._txns[msg.txn_id] = (msg.client_id, self.sim.now)
        state = self.lock_table.acquire(msg.txn_id, msg.item_id, msg.mode)
        if state is LockRequestState.WAITING:
            self._detect_and_resolve(msg.txn_id)
            return
        self._grant(msg.txn_id, msg.item_id, msg.mode)

    def _grant(self, txn_id, item_id, mode):
        # Cached-copy registration is CLIENT-driven (it rides the commit
        # release), never grant-driven: a grant-time registration can be
        # erased by a recall ack that is still in flight from the same
        # client, leaving an untracked — and eventually stale — copy.
        if mode is LockMode.WRITE:
            self._grant_write(txn_id, item_id)
        else:
            self._ship(txn_id, item_id, mode)

    def _grant_write(self, txn_id, item_id):
        """The table lock is held; recall foreign cached copies, then ship.

        The requester's own registration is left in place: its copy is
        either overwritten by the write or dropped by the client on abort,
        and an over-registration is harmless (a recall finds nothing).
        With MPL > 1 the writer's own client is recalled too — another
        local transaction may be reading the cached copy, and only the
        recall/busy machinery serialises against it.
        """
        client_id, _ = self._txns[txn_id]
        holders = set(self._cached.get(item_id, set()))
        if self.config.mpl == 1:
            holders.discard(client_id)
        if not holders:
            self._ship(txn_id, item_id, LockMode.WRITE)
            return
        self._recall_waits[item_id] = {"txn": txn_id, "clients": set(holders)}
        for holder in holders:
            self.callbacks_sent += 1
            self.send(holder, CacheRecall(item_id=item_id), size=CONTROL_SIZE)

    def on_CacheRecallAck(self, msg):
        if not msg.final:
            # Busy: the copy is pinned by a running transaction. Feed the
            # wait-for graph so callback deadlocks are caught.
            pending = self._recall_waits.get(msg.item_id)
            if pending is not None and msg.busy_txn is not None:
                self._busy_edges[(pending["txn"], msg.busy_txn)] = msg.item_id
                self._detect_and_resolve(pending["txn"])
            return
        cached = self._cached.get(msg.item_id)
        if cached is not None:
            cached.discard(msg.client_id)
            if not cached:
                self._cached.pop(msg.item_id, None)
        pending = self._recall_waits.get(msg.item_id)
        if pending is None:
            return
        pending["clients"].discard(msg.client_id)
        if pending["clients"]:
            return
        del self._recall_waits[msg.item_id]
        writer = pending["txn"]
        self._drop_busy_edges(writer)
        if writer in self._dead or writer not in self._txns:
            return  # the writer lost a deadlock while waiting for recalls
        if self.lock_table.holds(writer, msg.item_id, LockMode.WRITE):
            self._ship(writer, msg.item_id, LockMode.WRITE)

    # -- deadlock plumbing -------------------------------------------------------

    def _build_waitfor_graph(self):
        wfg = super()._build_waitfor_graph()
        for (writer, busy), _item in self._busy_edges.items():
            wfg.add_edge(writer, busy)
        return wfg

    def _extra_wait_edges(self):
        if not self._busy_edges:
            return None
        extra = {}
        for writer, busy in self._busy_edges:
            extra.setdefault(writer, set()).add(busy)
        return extra

    def _drop_busy_edges(self, writer):
        for key in [k for k in self._busy_edges if k[0] == writer]:
            del self._busy_edges[key]

    def _abort(self, txn_id, reason):
        # A victim may be a writer waiting on recalls: clear its recall
        # state so a late final ack does not ship to a dead transaction.
        for item_id in [i for i, p in self._recall_waits.items()
                        if p["txn"] == txn_id]:
            del self._recall_waits[item_id]
        self._drop_busy_edges(txn_id)
        for key in [k for k in self._busy_edges if k[1] == txn_id]:
            del self._busy_edges[key]
        super()._abort(txn_id, reason)

    def _finish(self, txn_id):
        self._drop_busy_edges(txn_id)
        super()._finish(txn_id)

    def on_CommitRelease(self, msg):
        # The committing client keeps (now caches) everything it touched.
        # Register BEFORE releasing the locks: a writer granted from the
        # queue by this very release must see the fresh registration, or
        # it would skip the recall and leave a stale copy behind.
        client_id = self._txns.get(msg.txn_id, (None,))[0]
        if client_id is not None and msg.txn_id not in self._dead:
            for item_id in list(msg.updates) + list(msg.read_items):
                self._cached.setdefault(item_id, set()).add(client_id)
        super().on_CommitRelease(msg)


class C2PLClient(S2PLClient):
    """s-2PL client with a local cache of data items across transactions."""

    def __init__(self, sim, client_id, config, history):
        super().__init__(sim, client_id, config, history)
        # item_id -> [version, value, published]. "published" flips True
        # when the fetching transaction commits (which is also when the
        # copy gets registered at the server); only published copies are
        # cache-hittable — a copy fetched by a still-active sibling
        # transaction (MPL > 1) is protected by that sibling's server lock
        # only until the sibling ends, which is not long enough for a
        # hitchhiking reader.
        self._cache = {}
        self._cache_order = []      # LRU order for the capacity limit
        self._deferred_recalls = set()
        self._txn_used = {}         # txn_id -> set(item_id) used from cache
        self.cache_hits = 0
        self.cache_misses = 0

    # -- cache plumbing -----------------------------------------------------------

    def _cache_put(self, item_id, version, value, published=False):
        if item_id not in self._cache:
            self._cache_order.append(item_id)
        self._cache[item_id] = [version, value, published]
        capacity = self.config.cache_capacity
        if capacity is not None:
            while len(self._cache) > capacity:
                evict = self._cache_order.pop(0)
                if evict == item_id and len(self._cache) == 1:
                    break
                if evict in self._deferred_recalls:
                    self._cache_order.append(evict)  # pinned: try another
                    continue
                self._cache.pop(evict, None)
                self.send(self.server_id,
                          CacheRecallAck(item_id=evict,
                                         client_id=self.client_id,
                                         final=True),
                          size=CONTROL_SIZE)

    def _cache_drop(self, item_id):
        self._cache.pop(item_id, None)
        if item_id in self._cache_order:
            self._cache_order.remove(item_id)

    def on_CacheRecall(self, msg):
        users = [txn_id for txn_id, used in self._txn_used.items()
                 if msg.item_id in used]
        if users:
            self._deferred_recalls.add(msg.item_id)
            self.send(self.server_id,
                      CacheRecallAck(item_id=msg.item_id,
                                     client_id=self.client_id, final=False,
                                     busy_txn=users[0]),
                      size=CONTROL_SIZE)
            return
        self._cache_drop(msg.item_id)
        self.send(self.server_id,
                  CacheRecallAck(item_id=msg.item_id,
                                 client_id=self.client_id, final=True),
                  size=CONTROL_SIZE)

    def _flush_deferred_recalls(self, txn_id):
        used = self._txn_used.pop(txn_id, set())
        for item_id in list(self._deferred_recalls):
            if item_id not in used:
                continue
            # With MPL > 1 another local transaction may still be using the
            # copy; the drop waits for the last user.
            if any(item_id in other for other in self._txn_used.values()):
                continue
            self._deferred_recalls.discard(item_id)
            self._cache_drop(item_id)
            self.send(self.server_id,
                      CacheRecallAck(item_id=item_id,
                                     client_id=self.client_id,
                                     final=True),
                      size=CONTROL_SIZE)

    # -- transaction execution ------------------------------------------------------

    def execute(self, txn):
        """Like s-2PL, but reads of cached items are local hits."""
        start_time = self.sim.now
        self._active[txn.txn_id] = txn
        self._txn_used[txn.txn_id] = set()
        updates = {}
        read_items = []
        fetched = []  # read misses cached during this transaction
        pending_cache = {}  # writes to cache at commit
        try:
            for op in txn.spec.operations:
                # A copy under a deferred recall is already promised to a
                # remote writer: new local transactions must not start
                # using it (they go to the server and queue instead).
                if (op.mode is LockMode.READ and op.item_id in self._cache
                        and self._cache[op.item_id][2]
                        and op.item_id not in self._deferred_recalls):
                    self.cache_hits += 1
                    self._txn_used[txn.txn_id].add(op.item_id)
                    version = self._cache[op.item_id][0]
                    yield self.sim.timeout(op.think_time)
                    notice = self._abort_flags.pop(txn.txn_id, None)
                    if notice is not None:
                        txn.abort(notice.reason)
                        break
                    txn.ops_done += 1
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, version,
                        self.sim.now)
                    continue
                if op.mode is LockMode.READ:
                    self.cache_misses += 1
                self.send(self.server_id,
                          LockRequest(txn_id=txn.txn_id, item_id=op.item_id,
                                      mode=op.mode, client_id=self.client_id),
                          size=CONTROL_SIZE)
                requested_at = self.sim.now
                event = self.sim.event()
                self._grant_events[txn.txn_id] = event
                msg = yield event
                if isinstance(msg, AbortNotice):
                    txn.abort(msg.reason)
                    break
                self.op_waits.append(self.sim.now - requested_at)
                yield self.sim.timeout(op.think_time)
                notice = self._abort_flags.pop(txn.txn_id, None)
                if notice is not None:
                    txn.abort(notice.reason)
                    break
                txn.ops_done += 1
                self._txn_used[txn.txn_id].add(op.item_id)
                if op.mode is LockMode.WRITE:
                    new_version = msg.version + 1
                    updates[op.item_id] = f"t{txn.txn_id}v{new_version}"
                    # The new value enters the cache only at commit: a
                    # concurrent local transaction (MPL > 1) must never
                    # cache-hit an uncommitted write.
                    pending_cache[op.item_id] = (new_version,
                                                 updates[op.item_id])
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, new_version,
                        self.sim.now)
                else:
                    read_items.append(op.item_id)
                    fetched.append(op.item_id)
                    self._cache_put(op.item_id, msg.version, msg.value)
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, msg.version,
                        self.sim.now)
            else:
                txn.commit()
        finally:
            self._active.pop(txn.txn_id, None)
            self._grant_events.pop(txn.txn_id, None)
            self._abort_flags.pop(txn.txn_id, None)
        end_time = self.sim.now
        if txn.status.value == "committed":
            self.history.record_commit(txn.txn_id, time=self.sim.now)
            for item_id, (version, value) in pending_cache.items():
                self._cache_put(item_id, version, value, published=True)
            for item_id in fetched:
                entry = self._cache.get(item_id)
                if entry is not None:
                    entry[2] = True  # registration rides the commit release
            self.send(self.server_id,
                      CommitRelease(txn_id=txn.txn_id, updates=updates,
                                    read_items=tuple(read_items)),
                      size=CONTROL_SIZE
                      + len(updates) * self.config.data_item_size)
        else:
            self.history.record_abort(txn.txn_id)
            # Copies fetched during this transaction were never registered
            # at the server (the registration rides the commit release),
            # so they go; uncommitted writes never entered the cache.
            for item_id in fetched:
                self._cache_drop(item_id)
            self.send(self.server_id, AbortRelease(txn_id=txn.txn_id),
                      size=CONTROL_SIZE)
        self._flush_deferred_recalls(txn.txn_id)
        return self.make_outcome(txn, start_time, end_time)
