"""Two-version (two-copy) 2PL: the §3.4 comparison point.

The paper remarks that with MR1W "the g-2PL protocol ... behaves similar
to the two-copy version s-2PL protocol [21] which allows more concurrency
than the standard s-2PL protocol". This module implements that comparator
so the remark can be measured (ablation A7).

Two-version 2PL (Bernstein/Hadzilacos/Goodman, ch. 5) at the data server:

* Readers take **read locks** and always read the *committed* copy.
* A writer takes a **write lock** (one writer at a time, writers queue),
  receives the committed copy, and prepares a new version *concurrently
  with active readers* — read and write locks do not conflict.
* Commit is a server-side protocol step: the client sends a commit
  *request* and waits for the ack. The server must **certify** every
  written item — convert the write lock into a certify lock, which
  conflicts with read locks — so the commit waits until all readers of
  the written items have released. Certify waits are ordinary waits: they
  feed the wait-for graph and can deadlock (two committers each reading
  what the other wrote), in which case one commit request is refused and
  the transaction aborts.
* Only after certification are the new versions installed, all locks
  (including the transaction's read locks) released, and the ack sent.

So reads never wait for writes; writes execute concurrently with reads;
writers' *commits* serialize behind the readers — MR1W's "execute now,
release updates after the readers" expressed at the server instead of on
a forward list. The client-observed response time includes the commit
round trip (the price of server-certified commits).
"""

from collections import OrderedDict, deque

from repro.locking.modes import LockMode
from repro.locking.waitfor import WaitForGraph
from repro.protocols.base import ProtocolServer
from repro.protocols.messages import (
    AbortNotice,
    AbortRelease,
    CommitAck,
    CommitRelease,
    CONTROL_SIZE,
    DataShip,
    LockRequest,
)
from repro.protocols.s2pl import S2PLClient


class _ItemState:
    """Two-version lock state of one item."""

    __slots__ = ("readers", "writer", "certifying", "queue")

    def __init__(self):
        self.readers = OrderedDict()   # txn -> True (insertion order)
        self.writer = None             # txn holding the write lock
        self.certifying = None         # txn whose commit holds the certify lock
        self.queue = deque()           # (txn, mode) waiting

    @property
    def write_locked(self):
        return self.writer is not None or self.certifying is not None


class TwoVersionServer(ProtocolServer):
    """The data server running two-version 2PL with certified commits."""

    def __init__(self, sim, config, store, wal, history):
        super().__init__(sim, config, store, wal, history)
        self._items = {}
        self._txns = {}     # txn_id -> client_id
        self._dead = set()
        # txn -> {"updates": dict, "waiting_on": set(item_id)}
        self._certifications = {}
        self.deadlocks_found = 0
        self.certify_waits = 0

    def _item(self, item_id):
        state = self._items.get(item_id)
        if state is None:
            state = self._items[item_id] = _ItemState()
        return state

    # -- message handlers ----------------------------------------------------

    def on_LockRequest(self, msg):
        if msg.txn_id in self._dead:
            return
        self._txns.setdefault(msg.txn_id, msg.client_id)
        state = self._item(msg.item_id)
        if msg.mode is LockMode.READ:
            # Reads conflict only with the certify lock. (They may pass
            # queued writers: read and write locks are compatible in 2V.)
            if state.certifying is None:
                state.readers[msg.txn_id] = True
                self._ship(msg.txn_id, msg.item_id)
                return
            state.queue.append((msg.txn_id, LockMode.READ))
            self._detect(msg.txn_id)
            return
        if not state.write_locked and not any(
                mode is LockMode.WRITE for _t, mode in state.queue):
            state.writer = msg.txn_id
            self._ship(msg.txn_id, msg.item_id)
        else:
            state.queue.append((msg.txn_id, LockMode.WRITE))
            self._detect(msg.txn_id)

    def on_CommitRelease(self, msg):
        """A commit *request*: certify the written items, then finalise."""
        if msg.txn_id in self._dead:
            return
        waiting_on = set()
        for item_id in msg.updates:
            state = self._item(item_id)
            if state.writer != msg.txn_id:
                continue  # defensive
            state.writer = None
            state.certifying = msg.txn_id
            if any(txn != msg.txn_id for txn in state.readers):
                waiting_on.add(item_id)
        self._certifications[msg.txn_id] = {
            "updates": dict(msg.updates), "waiting_on": waiting_on}
        if waiting_on:
            self.certify_waits += 1
            self._detect(msg.txn_id)
            if msg.txn_id in self._dead:
                return
        self._retry_certifications()

    def on_AbortRelease(self, msg):
        self._dead.discard(msg.txn_id)
        self._release_everything(msg.txn_id)

    # -- internals -----------------------------------------------------------

    def _ship(self, txn_id, item_id):
        client_id = self._txns[txn_id]
        item = self.store.read(item_id)
        self.send(client_id,
                  DataShip(txn_id=txn_id, item_id=item_id,
                           version=item.version, value=item.value,
                           mode=None),
                  size=self.data_ship_size())

    def _finalise_commit(self, txn_id, updates):
        self.install_updates(txn_id, updates)
        client_id = self._txns.get(txn_id)
        self._release_everything(txn_id)
        if client_id is not None:
            self.send(client_id, CommitAck(txn_id=txn_id),
                      size=CONTROL_SIZE)

    def _release_everything(self, txn_id):
        self._txns.pop(txn_id, None)
        self._certifications.pop(txn_id, None)
        for item_id, state in list(self._items.items()):
            state.readers.pop(txn_id, None)
            if state.writer == txn_id:
                state.writer = None
            if state.certifying == txn_id:
                state.certifying = None
            if state.queue:
                state.queue = deque(entry for entry in state.queue
                                    if entry[0] != txn_id)
        self._drain_queues()
        self._retry_certifications()

    def _drain_queues(self):
        for item_id, state in list(self._items.items()):
            # Reads wait ONLY on the certify lock (they are compatible with
            # write locks), so every queued read is grantable the moment no
            # certification holds — they must not sit behind queued writers,
            # or the queue manufactures waits the wait-for graph does not
            # model (an undetectable stall).
            if state.certifying is None and state.queue:
                reads = [txn for txn, mode in state.queue
                         if mode is LockMode.READ]
                if reads:
                    state.queue = deque(
                        (txn, mode) for txn, mode in state.queue
                        if mode is not LockMode.READ)
                    for txn_id in reads:
                        state.readers[txn_id] = True
                        self._ship(txn_id, item_id)
            while state.queue and not state.write_locked:
                txn_id, _mode = state.queue.popleft()
                state.writer = txn_id
                self._ship(txn_id, item_id)

    def _retry_certifications(self):
        progressed = True
        while progressed:
            progressed = False
            for txn_id in list(self._certifications):
                pending = self._certifications.get(txn_id)
                if pending is None:
                    continue
                still = {item_id for item_id in pending["waiting_on"]
                         if any(txn != txn_id
                                for txn in self._item(item_id).readers)}
                if still:
                    pending["waiting_on"] = still
                    continue
                del self._certifications[txn_id]
                self._finalise_commit(txn_id, pending["updates"])
                progressed = True

    # -- deadlock handling -----------------------------------------------------

    def _build_waitfor_graph(self):
        wfg = WaitForGraph()
        for item_id, state in self._items.items():
            write_ahead = []
            if state.certifying is not None:
                write_ahead.append(state.certifying)
            if state.writer is not None:
                write_ahead.append(state.writer)
            cert_ahead = ([state.certifying]
                          if state.certifying is not None else [])
            for txn_id, mode in state.queue:
                if mode is LockMode.WRITE:
                    wfg.add_edges(txn_id, write_ahead)
                    write_ahead = write_ahead + [txn_id]
                else:
                    wfg.add_edges(txn_id, cert_ahead)
        for txn_id, pending in self._certifications.items():
            for item_id in pending["waiting_on"]:
                wfg.add_edges(txn_id, [t for t in
                                       self._item(item_id).readers
                                       if t != txn_id])
        return wfg

    def _detect(self, requester):
        cycle = self._build_waitfor_graph().find_cycle_from(requester)
        if cycle is None:
            return
        self.deadlocks_found += 1
        self._abort(requester, reason="deadlock")

    def _abort(self, txn_id, reason):
        client_id = self._txns.get(txn_id)
        if client_id is None or txn_id in self._dead:
            return
        self._dead.add(txn_id)
        self.aborts_initiated += 1
        # Wait edges vanish now: queued requests and any pending
        # certification of the victim are dropped (the certify locks it
        # took revert so others can progress); held read/write locks go
        # when the client's abort-release arrives.
        pending = self._certifications.pop(txn_id, None)
        if pending is not None:
            # Certify locks revert to plain write locks, still held by the
            # victim until its abort-release arrives (symmetric rollback).
            for item_id in pending["updates"]:
                state = self._item(item_id)
                if state.certifying == txn_id:
                    state.certifying = None
                    state.writer = txn_id
        for state in self._items.values():
            if state.queue:
                state.queue = deque(entry for entry in state.queue
                                    if entry[0] != txn_id)
        self._drain_queues()
        self._retry_certifications()
        self.send(client_id, AbortNotice(txn_id=txn_id, reason=reason),
                  size=CONTROL_SIZE)


class TwoVersionClient(S2PLClient):
    """Client side: s-2PL flow plus a commit round trip.

    After the last operation the client sends the commit request and
    waits for the server's ack (certification may refuse it with an
    abort). History commit/abort is recorded at the outcome, so the
    validator sees exactly what the server decided.
    """

    def on_CommitAck(self, msg):
        if msg.txn_id not in self._active:
            return
        event = self._grant_events.pop(msg.txn_id, None)
        if event is not None and not event.triggered:
            event.succeed(msg)

    def execute(self, txn):
        start_time = self.sim.now
        self._active[txn.txn_id] = txn
        updates = {}
        decided_by_server = False
        try:
            for op in txn.spec.operations:
                self.send(self.server_id,
                          LockRequest(txn_id=txn.txn_id, item_id=op.item_id,
                                      mode=op.mode, client_id=self.client_id),
                          size=CONTROL_SIZE)
                requested_at = self.sim.now
                event = self.sim.event()
                self._grant_events[txn.txn_id] = event
                msg = yield event
                if isinstance(msg, AbortNotice):
                    txn.abort(msg.reason)
                    break
                self.op_waits.append(self.sim.now - requested_at)
                yield self.sim.timeout(op.think_time)
                notice = self._abort_flags.pop(txn.txn_id, None)
                if notice is not None:
                    txn.abort(notice.reason)
                    break
                txn.ops_done += 1
                if op.mode is LockMode.WRITE:
                    new_version = msg.version + 1
                    updates[op.item_id] = f"t{txn.txn_id}v{new_version}"
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, new_version,
                        self.sim.now)
                else:
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, msg.version,
                        self.sim.now)
            else:
                # Commit request: the server certifies and acks (or aborts).
                self.send(self.server_id,
                          CommitRelease(txn_id=txn.txn_id, updates=updates,
                                        read_items=()),
                          size=CONTROL_SIZE
                          + len(updates) * self.config.data_item_size)
                event = self.sim.event()
                self._grant_events[txn.txn_id] = event
                msg = yield event
                decided_by_server = True
                if isinstance(msg, AbortNotice):
                    txn.abort(msg.reason)
                else:
                    txn.commit()
        finally:
            self._active.pop(txn.txn_id, None)
            self._grant_events.pop(txn.txn_id, None)
            self._abort_flags.pop(txn.txn_id, None)
        end_time = self.sim.now
        if txn.status.value == "committed":
            self.history.record_commit(txn.txn_id, time=self.sim.now)
        else:
            self.history.record_abort(txn.txn_id)
            # Roll back; locks release at the server when this arrives.
            self.send(self.server_id, AbortRelease(txn_id=txn.txn_id),
                      size=CONTROL_SIZE)
        return self.make_outcome(txn, start_time, end_time)
