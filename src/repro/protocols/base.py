"""Shared plumbing for protocol servers and clients."""

from repro.network.topology import Site
from repro.protocols.messages import CONTROL_SIZE
from repro.protocols.transaction import TxnOutcome, TxnStatus
from repro.storage.wal import LogRecordType

SERVER_SITE_ID = 0


class _Dispatcher(Site):
    """A site that routes payloads to ``on_<PayloadClassName>`` methods.

    When a :class:`~repro.network.reliable.ReliableLink` is installed
    (fault injection), every outgoing protocol message is transparently
    wrapped for ack/retransmit and every incoming one is unwrapped and
    deduplicated — the ``on_*`` handlers never see loss or duplication,
    only (possibly large) delays.
    """

    #: Does this site play the server role? Protocol logic must branch on
    #: this, never on ``site_id == SERVER_SITE_ID`` — sharded deployments
    #: run home servers at other site ids.
    is_server = False
    #: Shard identity for per-shard round accounting (None = unsharded).
    shard_tag = None

    def __init__(self, site_id):
        super().__init__(site_id)
        self._handlers = {}
        self.reliable = None  # ReliableLink under fault injection

    def _handler_for(self, payload):
        handler = self._handlers.get(type(payload))
        if handler is None:
            name = f"on_{type(payload).__name__}"
            handler = getattr(self, name, None)
            if handler is None:
                raise TypeError(
                    f"{type(self).__name__} has no handler {name}")
            self._handlers[type(payload)] = handler
        return handler

    def send(self, dst, payload, size=1.0):
        if self.reliable is not None:
            return self.reliable.send(dst, payload, size=size)
        network = self.network
        if network is None:
            raise RuntimeError(
                f"site {self.site_id} is not attached to a network")
        return network.send(self.site_id, dst, payload, size=size)

    def receive(self, envelope):
        reliable = self.reliable
        if reliable is None:
            self._dispatch(envelope.payload)
            return
        payload = reliable.on_receive(envelope)
        if payload is not None:
            self._dispatch(payload)

    def _unwrap(self, envelope):
        if self.reliable is None:
            return envelope.payload
        return self.reliable.on_receive(envelope)

    def _dispatch(self, payload):
        handler = self._handlers.get(payload.__class__)
        if handler is None:
            handler = self._handler_for(payload)
        handler(payload)


class ProtocolServer(_Dispatcher):
    """Base class for the data server of a protocol.

    Owns the versioned store and the WAL; optionally serialises message
    handling through a single CPU with ``server_processing_time`` per
    message (the paper charges both protocols the same server cost, zero
    by default).
    """

    is_server = True

    def __init__(self, sim, config, store, wal, history,
                 site_id=SERVER_SITE_ID):
        super().__init__(site_id)
        self.sim = sim
        self.config = config
        self.store = store
        self.wal = wal
        self.history = history
        self.aborts_initiated = 0
        self._cpu_free_at = 0.0
        self.recovery = None
        if config.checkpoint_interval is not None:
            from repro.storage.recovery import RecoveryManager

            self.recovery = RecoveryManager(
                store, wal, checkpoint_interval=config.checkpoint_interval)

    def _dispatch(self, payload):
        # Channel bookkeeping (acks, duplicate suppression) was already
        # handled in receive() and costs no server CPU.
        cost = self.config.server_processing_time
        if cost <= 0.0:
            handler = self._handlers.get(payload.__class__)
            if handler is None:
                handler = self._handler_for(payload)
            handler(payload)
            return
        start = max(self.sim.now, self._cpu_free_at)
        tracer = self.sim.tracer
        if tracer is not None:
            # CPU wait + service both count as server queueing for the
            # transaction named by the message (if any).
            txn_id = getattr(payload, "txn_id", None)
            if txn_id is not None:
                tracer.queue_charge(txn_id, start + cost - self.sim.now)
        self._cpu_free_at = start + cost
        self.sim.call_later(self._cpu_free_at - self.sim.now,
                            self._handler_for(payload), payload)

    def install_updates(self, txn_id, updates):
        """WAL-then-install the committed ``updates`` (item -> value), then
        force the log and garbage collect the durable prefix."""
        if not updates:
            return
        for item_id, value in updates.items():
            version = self.store.version(item_id) + 1
            self.wal.append(LogRecordType.UPDATE, txn=txn_id,
                            item_id=item_id, version=version,
                            now=self.sim.now)
            self.store.install(item_id, value=value, now=self.sim.now)
        lsn = self.wal.append(LogRecordType.COMMIT, txn=txn_id,
                              now=self.sim.now)
        self.wal.force(lsn)
        self.truncate_log(len(updates))

    def truncate_log(self, installs):
        """Garbage collect the log; with recovery enabled the horizon stops
        at the last checkpoint so a crash stays survivable."""
        if self.recovery is None:
            self.wal.garbage_collect(self.wal.durable_lsn)
            return
        self.recovery.note_installs(installs, now=self.sim.now)
        self.wal.garbage_collect(self.recovery.gc_horizon())

    def data_ship_size(self, n_items=1, fl=None):
        size = CONTROL_SIZE + n_items * self.config.data_item_size
        if fl is not None:
            size += fl.transfer_size()
        return size

    @property
    def fault_mode(self):
        return getattr(self.config, "faults", None) is not None

    def enable_fault_recovery(self, injector, rto, chain_timeout,
                              sweep_interval):
        """Install the fault-mode failure detector and recovery timers.
        The base server has no recovery machinery; protocol servers that
        support crashed clients override this."""


class ProtocolClient(_Dispatcher):
    """Base class for a client site.

    Subclasses implement :meth:`execute`, a generator run as a simulation
    process that performs one transaction and returns a
    :class:`~repro.protocols.transaction.TxnOutcome`.
    """

    #: Item -> home-server routing; None means the single-server layout
    #: where every item lives at SERVER_SITE_ID.
    shard_map = None

    def __init__(self, sim, client_id, config, history):
        super().__init__(client_id)
        self.sim = sim
        self.client_id = client_id
        self.config = config
        self.history = history
        #: time from each lock request to its grant (diagnostics)
        self.op_waits = []
        self.crashed = False

    @property
    def server_id(self):
        return SERVER_SITE_ID

    def home_of(self, item_id):
        """Site id of the server owning ``item_id``."""
        if self.shard_map is None:
            return SERVER_SITE_ID
        return self.shard_map.server_of(item_id)

    @property
    def fault_mode(self):
        return getattr(self.config, "faults", None) is not None

    # -- crash lifecycle (fault injection) -----------------------------------

    def on_crash(self):
        """Fail-stop: stop retransmitting; volatile protocol state is lost.
        The transport already drops traffic overlapping the crash window,
        and the run's crash controller interrupts the live processes."""
        self.crashed = True
        if self.reliable is not None:
            self.reliable.crash()
        self.reset_protocol_state()

    def on_restart(self):
        """Come back empty: a restarted site remembers nothing about
        pre-crash transactions (their recovery is the server's job)."""
        self.crashed = False
        if self.reliable is not None:
            self.reliable.restart()
        self.reset_protocol_state()

    def reset_protocol_state(self):
        """Drop all volatile per-transaction state; subclasses override."""

    def execute(self, txn):
        raise NotImplementedError

    def think(self, txn_id, duration):
        """Client-side processing pause, charged to the transaction's
        think-time account. Touches only the kernel contract, so it runs
        identically under the simulator and the live kernel.

        Hot op loops may inline the untraced equivalent
        (``yield self.sim.timeout(duration)``) to skip the delegated
        generator frame; this method is the traced path and the contract.
        """
        yield self.sim.timeout(duration)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.think_charge(txn_id, duration)

    def send_control(self, dst, payload):
        self.send(dst, payload, size=CONTROL_SIZE)

    def data_ship_size(self, n_items=1, fl=None):
        size = CONTROL_SIZE + n_items * self.config.data_item_size
        if fl is not None:
            size += fl.transfer_size()
        return size

    def make_outcome(self, txn, start_time, end_time):
        """Assemble the outcome record the driver hands to the collector."""
        return TxnOutcome(
            txn_id=txn.txn_id,
            client_id=txn.client_id,
            committed=txn.status is TxnStatus.COMMITTED,
            start_time=start_time,
            end_time=end_time,
            n_ops=txn.spec.n_ops,
            n_writes=txn.spec.n_writes,
            abort_reason=txn.abort_reason,
        )
