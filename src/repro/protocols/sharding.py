"""Shard maps, geo-placement, and cross-shard coordination helpers.

The sharded deployment partitions the item space across N *home servers*
(shards). Clients route every item-scoped message to the owning server
via the :class:`ShardMap`; the map also fixes the geo-placement used by
:class:`~repro.network.topology.RegionTopology` (shard k lives in region
``k % n_regions``, client c in region ``(c - 1) % n_regions``), so a
client is co-located with its home shard and pays the WAN latency only
for remote items.

Site-id scheme: shard 0 keeps ``SERVER_SITE_ID`` (0) for backward
compatibility with every single-server code path; shard k (k >= 1) lives
at site ``-k``. Client site ids stay 1..n_clients, so the two id spaces
can never collide.

Cross-shard coordination state shared between shard servers:

* :class:`SharedPrecedence` — one precedence DAG for all g-2PL shards,
  reference-counted so a transaction leaves the graph only when *every*
  shard that registered it has retired it.
* :class:`GlobalDeadlockDetector` — the s-2PL union-of-wait-for-graphs
  detector: per-shard detection cannot see a cycle whose edges span
  shards, so a periodic sweep unions the local graphs and aborts victims.
"""

from repro.locking.waitfor import WaitForGraph
from repro.protocols.base import SERVER_SITE_ID
from repro.protocols.precedence import PrecedenceGraph
from repro.sim.timers import Timer


def partition_items(n_items, n_shards):
    """Contiguous, near-equal partition of ``range(n_items)``.

    Returns a tuple of ``n_shards`` tuples. The first ``n_items %
    n_shards`` shards get one extra item. Shared by the shard map and the
    workload generator so "the client's home shard items" means the same
    set in both layers.
    """
    if n_shards < 1:
        raise ValueError(f"n_shards must be >= 1, got {n_shards}")
    if n_shards > n_items:
        raise ValueError(
            f"n_shards {n_shards} exceeds the {n_items}-item pool")
    base, extra = divmod(n_items, n_shards)
    partitions = []
    start = 0
    for shard in range(n_shards):
        size = base + (1 if shard < extra else 0)
        partitions.append(tuple(range(start, start + size)))
        start += size
    return tuple(partitions)


def shard_site_id(shard):
    """Site id of shard ``shard``: 0 for shard 0, -k for shard k."""
    return SERVER_SITE_ID if shard == 0 else -shard


class ShardMap:
    """Item -> shard -> home-server routing table.

    ``assignments`` (optional) overrides the default contiguous
    partition with an explicit item -> shard map covering every item in
    ``range(n_items)`` — the correctness battery uses this to exercise
    random shard maps.
    """

    def __init__(self, n_shards, n_items, assignments=None):
        if assignments is None:
            partitions = partition_items(n_items, n_shards)
            self._shard_of = {}
            for shard, items in enumerate(partitions):
                for item_id in items:
                    self._shard_of[item_id] = shard
        else:
            if set(assignments) != set(range(n_items)):
                raise ValueError(
                    "assignments must cover exactly range(n_items)")
            bad = {s for s in assignments.values()
                   if not 0 <= s < n_shards}
            if bad:
                raise ValueError(f"assignments name unknown shards {bad}")
            self._shard_of = dict(assignments)
        self.n_shards = n_shards
        self.n_items = n_items
        self._items_of = {shard: [] for shard in range(n_shards)}
        for item_id in range(n_items):
            self._items_of[self._shard_of[item_id]].append(item_id)
        self._items_of = {shard: tuple(items)
                          for shard, items in self._items_of.items()}

    def shard_of(self, item_id):
        return self._shard_of[item_id]

    def server_of(self, item_id):
        """Site id of the home server owning ``item_id``."""
        return shard_site_id(self._shard_of[item_id])

    def items_of(self, shard):
        return self._items_of[shard]

    @property
    def server_ids(self):
        """All home-server site ids, shard order (0, -1, -2, ...)."""
        return tuple(shard_site_id(s) for s in range(self.n_shards))

    def region_assignments(self, n_clients, n_regions):
        """Site -> region placement for a :class:`RegionTopology`.

        Shard k lives in region ``k % n_regions``; client c in region
        ``(c - 1) % n_regions`` — co-located with its home shard (the
        workload generator uses the same formula), so local transactions
        stay intra-region.
        """
        region_of = {}
        for shard in range(self.n_shards):
            region_of[shard_site_id(shard)] = shard % n_regions
        for client_id in range(1, n_clients + 1):
            region_of[client_id] = (client_id - 1) % n_regions
        return region_of

    def __repr__(self):
        return f"ShardMap(shards={self.n_shards}, items={self.n_items})"


class SharedPrecedence(PrecedenceGraph):
    """One precedence DAG shared by every g-2PL shard server.

    Cross-shard deadlock avoidance needs cross-shard visibility: a
    transaction's chain position at shard A must order it against
    requests at shard B. All shard servers therefore point at one graph —
    but each server retires a transaction independently (TxnDone fans out
    to every touched shard), so node removal is reference-counted: the
    node (and its edges) really disappears only when the last registered
    shard lets go.
    """

    def __init__(self):
        super().__init__()
        self._refs = {}

    def acquire(self, txn_id):
        """One shard registered ``txn_id``; pin its node."""
        self._refs[txn_id] = self._refs.get(txn_id, 0) + 1
        self.add_node(txn_id)

    def remove_node(self, txn_id):
        refs = self._refs.get(txn_id, 0)
        if refs > 1:
            self._refs[txn_id] = refs - 1
            return
        self._refs.pop(txn_id, None)
        super().remove_node(txn_id)

    def refcount(self, txn_id):
        return self._refs.get(txn_id, 0)


class GlobalDeadlockDetector:
    """Periodic union-of-wait-for-graphs detection for sharded s-2PL.

    Each shard server detects cycles among its own lock queues, but a
    distributed deadlock (T1 waits at shard A for T2, which waits at
    shard B for T1) has no local cycle anywhere. This detector
    periodically unions every shard's wait-for edges, finds cycles, and
    aborts one victim per cycle through the shard where the victim is
    waiting (a waiting transaction has a queued request at exactly the
    shards it is blocked at; aborting it there triggers the normal
    AbortNotice -> client abort -> AbortRelease fan-out that releases
    its locks everywhere).

    Deterministic: driven by a simulation timer, iterating servers in
    shard order and cycles in detection order.
    """

    def __init__(self, sim, servers, interval, victim_policy="requester",
                 stop_when=None):
        self.sim = sim
        self.servers = list(servers)
        self.interval = interval
        self.victim_policy = victim_policy
        self.stop_when = stop_when
        self.distributed_deadlocks = 0
        self._timer = None

    def start(self):
        self._timer = Timer(self.sim, self.interval, self._tick)
        return self

    def _tick(self):
        self._sweep()
        if self.stop_when is None or not self.stop_when():
            self._timer = Timer(self.sim, self.interval, self._tick)

    def _collect(self):
        """Union wait-for graph + bookkeeping for victim selection."""
        union = WaitForGraph()
        waiting_at = {}   # txn -> first server it was seen waiting at
        first_seen = {}   # txn -> min first_seen across shards
        for server in self.servers:
            table = server.lock_table
            for item_id in list(table._items):
                for txn_id, _mode in table.waiters(item_id):
                    union.add_edges(txn_id,
                                    table.blockers_of(txn_id, item_id))
                    waiting_at.setdefault(txn_id, server)
            for txn_id, (_client, seen) in server._txns.items():
                if txn_id not in first_seen or seen < first_seen[txn_id]:
                    first_seen[txn_id] = seen
        return union, waiting_at, first_seen

    def _choose_victim(self, cycle, first_seen):
        members = list(dict.fromkeys(cycle))
        if self.victim_policy == "requester":
            return members[0]
        ages = {txn: first_seen.get(txn, 0.0) for txn in members}
        if self.victim_policy == "youngest":
            return max(members, key=lambda txn: (ages[txn], txn))
        return min(members, key=lambda txn: (ages[txn], txn))

    def _sweep(self):
        union, waiting_at, first_seen = self._collect()
        while True:
            cycle = union.find_any_cycle()
            if cycle is None:
                return
            victim = self._choose_victim(cycle, first_seen)
            server = waiting_at.get(victim)
            if (server is None or victim not in server._txns
                    or victim in server._dead):
                # The cycle resolved between collection and now (a local
                # detector beat us to it); drop the node and move on.
                union.remove_node(victim)
                continue
            self.distributed_deadlocks += 1
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("lock.deadlock.distributed", victim=victim,
                            cycle=len(set(cycle)),
                            shard=server.site_id)
            server._abort(victim, reason="distributed-deadlock")
            union.remove_node(victim)
