"""Sharded protocol variants: multi-server s-2PL / g-2PL with cross-shard
atomic commit.

The item space is partitioned across N home servers (see
:mod:`repro.protocols.sharding`); clients route every item-scoped message
to the owning server. A transaction touching a single home server commits
exactly as in the single-server protocol. A transaction spanning several
home servers needs an atomic commit protocol:

* **s-2PL + classic 2PC** (``commit_protocol="2pc"``) — the client (the
  coordinator; it already holds every lock at commit time) sends each
  participant a PrepareRequest staging that shard's updates, collects the
  votes, and fans out the CommitDecision. Two extra sequential rounds per
  cross-shard transaction: ``2m + 3`` instead of ``2m + 1``.

* **s-2PL + piggybacked votes** (``commit_protocol="2pc-opt"``) — the
  client marks its *last* lock request at each shard; the grant doubles as
  the shard's PREPARED vote (granting the final lock is consenting to
  commit — strict 2PL holds it to commit point either way). The decision
  then carries each shard's updates, collapsing prepare into the growing
  phase: ``2m + 1`` rounds again, the round-optimized variant the paper's
  latency argument suggests.

* **g-2PL** — the commit point is client-local (once every item is
  granted, nothing can abort the transaction), so the non-fault sharded
  path needs *no* commit messages at all: the existing TxnDone
  notification simply fans out to every touched server. Only under fault
  injection — where the commit point must be made durable before the
  client may die — does g-2PL run a 2PC over the touched servers, each
  staging the transaction's **full** writes map so that any single
  surviving participant can answer a termination query authoritatively.

**Coordinator crash** (fault mode, classic 2PC): a participant stuck with
a PREPARED transaction must not reclaim its locks (the transaction may be
committed elsewhere) nor hold them forever. The crash sweep skips
prepared transactions and instead runs *cooperative termination*: query
every other participant; any "committed" answer commits, and once every
peer has answered without one, the transaction is presumed aborted —
sound because the coordinator decides commit only after every vote, and a
decision it sent before dying was either delivered pre-crash (the peer
answers "committed") or lost with it. ``2pc-opt`` is rejected in
combination with crash faults: its decisions carry the updates, so a
participant could learn the outcome but not the data.
"""

from repro.locking.modes import LockMode
from repro.protocols.g2pl import G2PLClient, G2PLServer
from repro.protocols.messages import (
    AbortNotice,
    AbortRelease,
    ChainCommit,
    CommitDecision,
    CommitRelease,
    CONTROL_SIZE,
    DataShip,
    DecisionAck,
    LockRequest,
    OutcomeQuery,
    OutcomeReply,
    PrepareRequest,
    PrepareVote,
)
from repro.protocols.s2pl import S2PLClient, S2PLServer
from repro.protocols.sharding import SharedPrecedence, shard_site_id
from repro.sim.errors import Interrupt
from repro.sim.timers import Timer

#: protocol names that have a sharded deployment
SHARDED_PROTOCOLS = ("s2pl", "g2pl", "g2pl-basic", "g2pl-ro")


class _PreparedTxn:
    """A participant's staging record for an in-doubt transaction."""

    __slots__ = ("client_id", "participants", "updates", "prepared_at")

    def __init__(self, client_id, participants, updates, prepared_at):
        self.client_id = client_id
        self.participants = participants
        self.updates = updates
        self.prepared_at = prepared_at


class TwoPhaseParticipant:
    """Participant-side 2PC machinery shared by the sharded servers.

    Subclasses provide ``_outcome_status`` (this shard's view of a
    transaction) and ``_terminate_commit`` / ``_terminate_abort`` (the
    protocol-specific ways to settle an in-doubt transaction).
    """

    def _init_participant(self):
        self._prepared = {}       # txn_id -> _PreparedTxn
        self._terminating = set()
        self._term_replies = {}   # txn_id -> {peer site id: status}
        # Permanent outcome record, also the termination oracle: a late
        # query about a long-finished transaction still gets the truth.
        self.twopc_commits = set()
        self.twopc_aborts = set()
        self.terminations_started = 0
        self.presumed_aborts = 0

    def _send_vote(self, msg, vote):
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("twopc.prepare", txn=msg.txn_id,
                        shard=self.site_id, vote=vote)
        env = self.send(msg.client_id,
                        PrepareVote(txn_id=msg.txn_id, shard=self.site_id,
                                    vote=vote, charge=msg.charge),
                        size=CONTROL_SIZE)
        if tracer is not None:
            tracer.round_charge(
                msg.txn_id, "vote" if msg.charge else "vote_concurrent",
                shard=self.shard_tag)
            if msg.charge:
                tracer.wire_charge(msg.txn_id, env, phase="commit")

    def _send_decision_ack(self, msg, client_id):
        tracer = self.sim.tracer
        env = self.send(client_id,
                        DecisionAck(txn_id=msg.txn_id, shard=self.site_id,
                                    charge=msg.charge),
                        size=CONTROL_SIZE)
        if tracer is not None:
            tracer.round_charge(
                msg.txn_id,
                "commit_ack" if msg.charge else "commit_ack_concurrent",
                shard=self.shard_tag)
            if msg.charge:
                tracer.wire_charge(msg.txn_id, env, phase="commit")

    # -- cooperative termination ----------------------------------------------

    def _start_termination(self, txn_id):
        staged = self._prepared.get(txn_id)
        if staged is None:
            return
        peers = [p for p in staged.participants if p != self.site_id]
        if not peers:
            # Degenerate single-participant prepare: presume abort.
            self.presumed_aborts += 1
            self._terminate_abort(txn_id)
            return
        self.terminations_started += 1
        self._terminating.add(txn_id)
        self._term_replies[txn_id] = {}
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("twopc.terminate", txn=txn_id, shard=self.site_id,
                        peers=len(peers))
        for peer in peers:
            self.send(peer,
                      OutcomeQuery(txn_id=txn_id, from_shard=self.site_id),
                      size=CONTROL_SIZE)

    def on_OutcomeQuery(self, msg):
        self.send(msg.from_shard,
                  OutcomeReply(txn_id=msg.txn_id, shard=self.site_id,
                               status=self._outcome_status(msg.txn_id)),
                  size=CONTROL_SIZE)

    def on_OutcomeReply(self, msg):
        txn_id = msg.txn_id
        if txn_id not in self._terminating:
            return
        replies = self._term_replies.setdefault(txn_id, {})
        replies[msg.shard] = msg.status
        if msg.status == "committed":
            self._end_termination(txn_id)
            self._terminate_commit(txn_id)
            return
        staged = self._prepared.get(txn_id)
        if staged is None:
            self._end_termination(txn_id)
            return
        peers = {p for p in staged.participants if p != self.site_id}
        if peers <= set(replies):
            # Every peer answered and none committed. The coordinator
            # decides commit only after all votes, and a commit decision
            # it sent before dying was either delivered pre-crash (that
            # peer would have answered "committed") or severed with it —
            # presuming abort can never contradict a recorded commit.
            self._end_termination(txn_id)
            self.presumed_aborts += 1
            self._terminate_abort(txn_id)

    def _end_termination(self, txn_id):
        self._terminating.discard(txn_id)
        self._term_replies.pop(txn_id, None)


class TwoPhaseCoordinator:
    """Coordinator-side (client) vote/ack collection."""

    def _init_coordinator(self):
        self._vote_state = {}  # txn_id -> {"need", "got", "refused", "event"}
        self._ack_state = {}   # txn_id -> {"need", "got", "event"}

    def on_PrepareVote(self, msg):
        state = self._vote_state.get(msg.txn_id)
        if state is None:
            return
        state["got"] += 1
        if not msg.vote:
            state["refused"] = True
        if state["got"] >= state["need"] and not state["event"].triggered:
            state["event"].succeed(state)

    def on_DecisionAck(self, msg):
        state = self._ack_state.get(msg.txn_id)
        if state is None:
            return
        state["got"] += 1
        if state["got"] >= state["need"] and not state["event"].triggered:
            state["event"].succeed(state)


# ---------------------------------------------------------------------------
# s-2PL
# ---------------------------------------------------------------------------

class ShardedS2PLServer(TwoPhaseParticipant, S2PLServer):
    """One shard's home server: strict 2PL plus 2PC participation."""

    def __init__(self, sim, config, store, wal, history, site_id, shard_map):
        super().__init__(sim, config, store, wal, history, site_id=site_id)
        self.shard_map = shard_map
        self.shard_tag = site_id
        self._init_participant()
        # (txn_id, item_id) -> the grant must carry a prepare vote
        self._vote_wanted = {}

    # -- 2pc-opt: votes piggybacked on the last grant -------------------------

    def on_LockRequest(self, msg):
        if (msg.vote_request and msg.txn_id not in self._dead
                and msg.txn_id not in self._swept):
            self._vote_wanted[(msg.txn_id, msg.item_id)] = True
        super().on_LockRequest(msg)

    def _ship(self, txn_id, item_id, mode):
        vote = self._vote_wanted.pop((txn_id, item_id), False)
        if not vote:
            super()._ship(txn_id, item_id, mode)
            return
        client_id, _ = self._txns[txn_id]
        item = self.store.read(item_id)
        env = self.send(client_id,
                        DataShip(txn_id=txn_id, item_id=item_id,
                                 version=item.version, value=item.value,
                                 mode=mode, vote=True),
                        size=self.data_ship_size())
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("lock.grant", txn=txn_id, item=item_id,
                        mode=mode.name)
            tracer.emit("twopc.vote.piggyback", txn=txn_id,
                        shard=self.site_id)
            tracer.round_charge(txn_id, "grant", shard=self.shard_tag)
            tracer.wire_charge(txn_id, env)

    def _purge_vote_marks(self, txn_id):
        if not self._vote_wanted:
            return
        for key in [key for key in self._vote_wanted if key[0] == txn_id]:
            del self._vote_wanted[key]

    def _finish(self, txn_id):
        self._purge_vote_marks(txn_id)
        super()._finish(txn_id)

    # -- classic 2PC -----------------------------------------------------------

    def on_PrepareRequest(self, msg):
        txn_id = msg.txn_id
        vote = (txn_id in self._txns and txn_id not in self._dead
                and txn_id not in self._swept)
        if vote:
            self._prepared[txn_id] = _PreparedTxn(
                client_id=msg.client_id,
                participants=tuple(msg.participants),
                updates=dict(msg.updates),
                prepared_at=self.sim.now)
        self._send_vote(msg, vote)

    def on_CommitDecision(self, msg):
        txn_id = msg.txn_id
        staged = self._prepared.pop(txn_id, None)
        self._end_termination(txn_id)
        if txn_id in self._swept:
            # The locks were reclaimed by the crash sweep — only reachable
            # for an abort decision (prepared transactions are sweep-exempt).
            self.twopc_aborts.add(txn_id)
            return
        client_id = (staged.client_id if staged is not None
                     else self._txns.get(txn_id, (None, None))[0])
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("twopc.decision", txn=txn_id, shard=self.site_id,
                        commit=msg.commit)
        if msg.commit:
            if txn_id in self._txns:
                updates = (msg.updates if msg.updates is not None
                           else (staged.updates if staged is not None
                                 else {}))
                self.install_updates(txn_id, updates or {})
                if msg.commit_time is not None:
                    # Fault mode: the participant is this shard's commit
                    # point of record, stamped with the decision time.
                    self.history.record_commit(txn_id,
                                               time=msg.commit_time)
                self.twopc_commits.add(txn_id)
        elif staged is not None or txn_id in self._txns:
            self.twopc_aborts.add(txn_id)
        self._dead.discard(txn_id)
        self._finish(txn_id)
        if msg.ack and client_id is not None:
            self._send_decision_ack(msg, client_id)

    def on_AbortRelease(self, msg):
        staged = self._prepared.pop(msg.txn_id, None)
        if staged is not None:
            self.twopc_aborts.add(msg.txn_id)
        self._end_termination(msg.txn_id)
        super().on_AbortRelease(msg)

    # -- coordinator-crash recovery -------------------------------------------

    def _crash_sweep(self):
        now = self.sim.now
        crashed = [txn_id for txn_id, (client_id, _) in self._txns.items()
                   if self._injector.is_crashed(client_id, now)
                   and txn_id not in self._prepared]
        if crashed:
            tracer = self.sim.tracer
            if tracer is not None:
                tracer.emit("crash.sweep", reclaimed=len(crashed))
        for txn_id in crashed:
            self._swept.add(txn_id)
            self._dead.discard(txn_id)
            self.crash_reclaims += 1
            for grantee, item_id, mode in self.lock_table.drop_queued(txn_id):
                self._grant(grantee, item_id, mode)
        for txn_id in crashed:
            self._finish(txn_id)
        # PREPARED transactions are in doubt, not dead: their locks must
        # survive the sweep; cooperative termination settles them.
        for txn_id, staged in list(self._prepared.items()):
            if (txn_id not in self._terminating
                    and self._injector.crashed_during(
                        staged.client_id, staged.prepared_at, now)):
                self._start_termination(txn_id)
        Timer(self.sim, self._sweep_interval, self._crash_sweep)

    def _outcome_status(self, txn_id):
        if txn_id in self.twopc_commits:
            return "committed"
        if txn_id in self._prepared:
            return "prepared"
        if (txn_id in self.twopc_aborts or txn_id in self._swept
                or txn_id in self._dead):
            return "aborted"
        return "unknown"

    def _terminate_commit(self, txn_id):
        staged = self._prepared.pop(txn_id, None)
        if staged is None:
            return
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("twopc.terminate.commit", txn=txn_id,
                        shard=self.site_id)
        if txn_id in self._txns:
            self.install_updates(txn_id, staged.updates or {})
        self.twopc_commits.add(txn_id)
        # Idempotent set-add; the peer that saw the decision holds the
        # stamped commit time.
        self.history.record_commit(txn_id)
        self._finish(txn_id)

    def _terminate_abort(self, txn_id):
        staged = self._prepared.pop(txn_id, None)
        if staged is None:
            return
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("twopc.terminate.abort", txn=txn_id,
                        shard=self.site_id)
        self.twopc_aborts.add(txn_id)
        # Same shape as a sweep reclaim: the coordinator is dead, so no
        # decision can ever arrive for this transaction.
        self._swept.add(txn_id)
        self._dead.discard(txn_id)
        self.crash_reclaims += 1
        for grantee, item_id, mode in self.lock_table.drop_queued(txn_id):
            self._grant(grantee, item_id, mode)
        self._finish(txn_id)


class ShardedS2PLClient(TwoPhaseCoordinator, S2PLClient):
    """An s-2PL client that routes per item and coordinates 2PC."""

    def __init__(self, sim, client_id, config, history, shard_map):
        super().__init__(sim, client_id, config, history)
        self.shard_map = shard_map
        self._init_coordinator()
        self._txn_targets = {}  # txn_id -> home servers touched
        self._votes = {}        # txn_id -> shards whose grant carried a vote

    def reset_protocol_state(self):
        super().reset_protocol_state()
        self._vote_state.clear()
        self._ack_state.clear()
        self._txn_targets.clear()
        self._votes.clear()

    def on_DataShip(self, msg):
        if msg.vote and msg.txn_id in self._active:
            self._votes.setdefault(msg.txn_id, set()).add(
                self.home_of(msg.item_id))
        super().on_DataShip(msg)

    # -- transaction execution ----------------------------------------------

    def execute(self, txn):
        start_time = self.sim.now
        self._active[txn.txn_id] = txn
        updates = {}
        read_items = []
        try:
            yield from self._run_ops(txn, updates, read_items)
            if txn.running:
                # Every lock is held; run the commit protocol.
                yield from self._commit_2pc(txn, updates, read_items)
        finally:
            self._active.pop(txn.txn_id, None)
            self._grant_events.pop(txn.txn_id, None)
            self._abort_flags.pop(txn.txn_id, None)
            self._vote_state.pop(txn.txn_id, None)
            self._ack_state.pop(txn.txn_id, None)
            self._votes.pop(txn.txn_id, None)
        end_time = self.sim.now
        targets = sorted(self._txn_targets.pop(txn.txn_id, ())
                         or (self.server_id,))
        if txn.running:  # pragma: no cover - commit path settles status
            raise AssertionError("transaction left running")
        tracer = self.sim.tracer
        if txn.status.value == "committed":
            pass  # releases/decisions already sent by _commit_2pc
        elif txn.abort_reason == "commit-limbo":
            # Crashed while awaiting decision acks: the participants'
            # decision state is authoritative; record nothing.
            pass
        elif txn.abort_reason == "client-crash":
            self.history.record_abort(txn.txn_id)
        elif txn.abort_reason == "2pc-refused":
            # Abort decisions already released every participant's locks.
            self.history.record_abort(txn.txn_id)
        else:
            self.history.record_abort(txn.txn_id)
            for target in targets:
                self.send(target, AbortRelease(txn_id=txn.txn_id),
                          size=CONTROL_SIZE)
            if tracer is not None:
                tracer.round_charge(txn.txn_id, "release")
        return self.make_outcome(txn, start_time, end_time)

    def _run_ops(self, txn, updates, read_items):
        tracer = self.sim.tracer
        targets = self._txn_targets.setdefault(txn.txn_id, set())
        vote_index = frozenset()
        if self.config.commit_protocol == "2pc-opt":
            last_at_home = {}
            for index, op in enumerate(txn.spec.operations):
                last_at_home[self.home_of(op.item_id)] = index
            if len(last_at_home) > 1:
                # Mark each home server's final request: its grant doubles
                # as the shard's prepare vote. Single-home transactions
                # commit with a plain release and need no votes.
                vote_index = frozenset(last_at_home.values())
        try:
            for index, op in enumerate(txn.spec.operations):
                home = self.home_of(op.item_id)
                targets.add(home)
                env = self.send(home,
                                LockRequest(txn_id=txn.txn_id,
                                            item_id=op.item_id,
                                            mode=op.mode,
                                            client_id=self.client_id,
                                            vote_request=index in vote_index),
                                size=CONTROL_SIZE)
                if tracer is not None:
                    tracer.round_charge(txn.txn_id, "request", shard=home)
                    tracer.wire_charge(txn.txn_id, env)
                requested_at = self.sim.now
                event = self.sim.event()
                self._grant_events[txn.txn_id] = event
                msg = yield event
                if isinstance(msg, AbortNotice):
                    txn.abort(msg.reason)
                    break
                self.op_waits.append(self.sim.now - requested_at)
                yield from self.think(txn.txn_id, op.think_time)
                notice = self._abort_flags.pop(txn.txn_id, None)
                if notice is not None:
                    txn.abort(notice.reason)
                    break
                txn.ops_done += 1
                if op.mode is LockMode.WRITE:
                    new_version = msg.version + 1
                    updates[op.item_id] = f"t{txn.txn_id}v{new_version}"
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, new_version,
                        self.sim.now)
                else:
                    read_items.append(op.item_id)
                    self.history.record_access(
                        txn.txn_id, op.item_id, op.mode, msg.version,
                        self.sim.now)
            # No for-else commit here: execute() runs the commit protocol
            # once the loop finishes with the transaction still running.
        except Interrupt:
            txn.abort("client-crash")

    def _commit_2pc(self, txn, updates, read_items):
        tracer = self.sim.tracer
        txn_id = txn.txn_id
        targets = sorted(self._txn_targets.get(txn_id, ())
                         or (self.server_id,))
        if len(targets) == 1:
            # Single home server: the ordinary strict-2PL commit round.
            txn.commit()
            if not self.fault_mode:
                self.history.record_commit(txn_id, time=self.sim.now)
            self.send(targets[0],
                      CommitRelease(
                          txn_id=txn_id, updates=updates,
                          read_items=tuple(read_items),
                          commit_time=(self.sim.now if self.fault_mode
                                       else None)),
                      size=CONTROL_SIZE
                      + len(updates) * self.config.data_item_size)
            if tracer is not None:
                tracer.round_charge(txn_id, "release", shard=targets[0])
            return
        by_server = {target: {} for target in targets}
        for item_id, value in updates.items():
            by_server[self.home_of(item_id)][item_id] = value
        reads_by_server = {target: [] for target in targets}
        for item_id in read_items:
            reads_by_server[self.home_of(item_id)].append(item_id)
        opt = self.config.commit_protocol == "2pc-opt"
        if opt:
            # The votes rode the last grant from each shard; all grants
            # have arrived, so the vote set is complete.
            ok = set(targets) <= self._votes.get(txn_id, set())
        else:
            state = {"need": len(targets), "got": 0, "refused": False,
                     "event": self.sim.event()}
            self._vote_state[txn_id] = state
            for index, target in enumerate(targets):
                env = self.send(
                    target,
                    PrepareRequest(txn_id=txn_id, client_id=self.client_id,
                                   updates=by_server[target],
                                   read_items=tuple(reads_by_server[target]),
                                   participants=tuple(targets),
                                   charge=index == 0),
                    size=CONTROL_SIZE
                    + len(by_server[target]) * self.config.data_item_size)
                if tracer is not None and index == 0:
                    tracer.wire_charge(txn_id, env, phase="commit")
            if tracer is not None:
                tracer.round_charge(txn_id, "prepare")
            try:
                yield state["event"]
            except Interrupt:
                # Coordinator crash between prepare and decision: the
                # participants resolve via cooperative termination.
                txn.abort("client-crash")
                return
            finally:
                self._vote_state.pop(txn_id, None)
            ok = not state["refused"]
        decision_time = self.sim.now
        want_acks = self.fault_mode and ok
        if not ok:
            txn.abort("2pc-refused")
        if want_acks:
            ack_state = {"need": len(targets), "got": 0,
                         "event": self.sim.event()}
            self._ack_state[txn_id] = ack_state
        for index, target in enumerate(targets):
            payload = by_server[target] if (ok and opt) else None
            env = self.send(
                target,
                CommitDecision(txn_id=txn_id, commit=ok, updates=payload,
                               commit_time=(decision_time
                                            if ok and self.fault_mode
                                            else None),
                               ack=want_acks, charge=index == 0),
                size=CONTROL_SIZE
                + (len(payload) * self.config.data_item_size
                   if payload else 0))
            # The decision flight is only *awaited* (and thus chargeable
            # wire time) when acks are requested; in non-fault mode the
            # coordinator commits fire-and-forget, so charging it would
            # overstate response-time wire by one flight and drive the
            # lock_wait residual negative.
            if tracer is not None and index == 0 and want_acks:
                tracer.wire_charge(txn_id, env, phase="commit")
        if tracer is not None:
            tracer.round_charge(txn_id, "decide")
        if not ok:
            return
        if want_acks:
            # The commit only counts once every participant has durably
            # decided — otherwise a crash here could leave a shard that
            # terminates to presumed-abort against a recorded commit.
            try:
                yield ack_state["event"]
            except Interrupt:
                txn.abort("commit-limbo")
                return
            finally:
                self._ack_state.pop(txn_id, None)
        txn.commit()
        if not self.fault_mode:
            self.history.record_commit(txn_id, time=decision_time)


# ---------------------------------------------------------------------------
# g-2PL
# ---------------------------------------------------------------------------

class ShardedG2PLServer(TwoPhaseParticipant, G2PLServer):
    """One shard's g-2PL home server sharing the global precedence DAG."""

    def __init__(self, sim, config, store, wal, history, site_id,
                 shard_map, precedence):
        super().__init__(sim, config, store, wal, history, site_id=site_id)
        self.shard_map = shard_map
        self.shard_tag = site_id
        # Replace the private DAG with the shared, reference-counted one:
        # chain orders at any shard constrain dispatch at every other.
        self.precedence = precedence
        self._init_participant()

    def on_LockRequest(self, msg):
        if msg.txn_id not in self._dead and msg.txn_id not in self._txns:
            # First registration at this shard pins the shared node once;
            # _retire releases exactly one pin per registered shard.
            self.precedence.acquire(msg.txn_id)
        super().on_LockRequest(msg)

    def _retire(self, txn_id):
        entry = self._txns.pop(txn_id, None)
        if entry is None:
            # Never registered here (or already retired): a TxnDone fan-out
            # duplicate must not steal another shard's refcount.
            return
        self.precedence.remove_node(txn_id)
        for item_id in entry.chain_items:
            self._items[item_id].chain_live.discard(txn_id)

    # -- fault-mode cross-shard commit ----------------------------------------

    def _apply_commit(self, txn_id, writes, commit_time):
        """Register the commit and install this shard's share of the full
        writes map (item -> (version, value)), mirroring on_ChainCommit."""
        if txn_id in self._committed:
            return
        self._committed.add(txn_id)
        self.history.record_commit(txn_id, time=commit_time)
        for item_id, (version, value) in sorted(writes.items()):
            if item_id in self._items and version > self.store.version(item_id):
                self._install_returned(item_id, version, value)

    def on_PrepareRequest(self, msg):
        txn_id = msg.txn_id
        vote = txn_id not in self._dead
        if vote:
            self._prepared[txn_id] = _PreparedTxn(
                client_id=msg.client_id,
                participants=tuple(msg.participants),
                updates=dict(msg.updates),
                prepared_at=self.sim.now)
        self._send_vote(msg, vote)

    def on_CommitDecision(self, msg):
        txn_id = msg.txn_id
        staged = self._prepared.pop(txn_id, None)
        self._end_termination(txn_id)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("twopc.decision", txn=txn_id, shard=self.site_id,
                        commit=msg.commit)
        if msg.commit:
            if staged is not None:
                self.twopc_commits.add(txn_id)
                self._apply_commit(txn_id, staged.updates,
                                   commit_time=msg.commit_time)
        else:
            self.twopc_aborts.add(txn_id)
            if txn_id in self._txns and txn_id not in self._dead:
                # Client-initiated abort after a refused vote: retire
                # silently (the client already knows; its holds forward
                # unchanged and TxnDone follows).
                self._dead.add(txn_id)
                self._retire(txn_id)
        if msg.ack and staged is not None:
            self._send_decision_ack(msg, staged.client_id)

    def _repair_chain(self, info):
        """Defer crash-abort for PREPARED chain members: the transaction
        may be committed at another shard, so termination must settle it
        before repair may route around (or abort) it."""
        now = self.sim.now
        deferred = False
        for ref in self._chain_refs_pending(info):
            staged = self._prepared.get(ref.txn_id)
            if staged is not None and self._injector.crashed_during(
                    staged.client_id, staged.prepared_at, now):
                if ref.txn_id not in self._terminating:
                    self._start_termination(ref.txn_id)
                deferred = True
        if deferred:
            self._arm_watchdog(info)
            return
        super()._repair_chain(info)

    def _outcome_status(self, txn_id):
        if txn_id in self._committed or txn_id in self.twopc_commits:
            return "committed"
        if txn_id in self._prepared:
            return "prepared"
        if txn_id in self._dead or txn_id in self.twopc_aborts:
            return "aborted"
        return "unknown"

    def _terminate_commit(self, txn_id):
        staged = self._prepared.pop(txn_id, None)
        if staged is None:
            return
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("twopc.terminate.commit", txn=txn_id,
                        shard=self.site_id)
        self.twopc_commits.add(txn_id)
        # The committed peer holds the stamped decision time.
        self._apply_commit(txn_id, staged.updates, commit_time=None)
        # The dead client forwards nothing; chain repair (no longer
        # deferred now that the doubt is resolved) redistributes its holds.

    def _terminate_abort(self, txn_id):
        staged = self._prepared.pop(txn_id, None)
        if staged is None:
            return
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("twopc.terminate.abort", txn=txn_id,
                        shard=self.site_id)
        self.twopc_aborts.add(txn_id)
        if txn_id in self._txns:
            self._abort(txn_id, reason="client-crash")


class ShardedG2PLClient(TwoPhaseCoordinator, G2PLClient):
    """A g-2PL client that coordinates the fault-mode cross-shard commit.

    Outside fault mode nothing changes: the commit point is client-local
    and the base class already routes requests, returns, and the TxnDone
    fan-out per touched home server.
    """

    def __init__(self, sim, client_id, config, history, shard_map):
        super().__init__(sim, client_id, config, history)
        self.shard_map = shard_map
        self._init_coordinator()

    def reset_protocol_state(self):
        super().reset_protocol_state()
        self._vote_state.clear()
        self._ack_state.clear()

    def _register_commit(self, txn):
        """Fault mode: durably register the commit before forwarding.

        One touched server — the plain ChainCommit round. Several — a 2PC
        in which every participant stages the transaction's full writes
        map, so any single survivor can answer termination queries (and
        install the writes) authoritatively.
        """
        txn_id = txn.txn_id
        writes = {}
        for item_id in self._txn_holds.get(txn_id, ()):
            hold = self._holds[(txn_id, item_id)]
            if hold.committed_write:
                writes[item_id] = (hold.version + 1, hold.new_value)
        targets = sorted(self._txn_servers.get(txn_id, set())
                         or {self.server_id})
        tracer = self.sim.tracer
        if len(targets) == 1:
            event = self.sim.event()
            self._commit_events[txn_id] = event
            self.send_control(targets[0],
                              ChainCommit(txn_id=txn_id,
                                          client_id=self.client_id,
                                          writes=writes,
                                          commit_time=self.sim.now))
            if tracer is not None:
                tracer.round_charge(txn_id, "commit", shard=targets[0])
            try:
                yield event
            except Interrupt:
                txn.abort("commit-limbo")
                return
            finally:
                self._commit_events.pop(txn_id, None)
            txn.commit()
            return
        state = {"need": len(targets), "got": 0, "refused": False,
                 "event": self.sim.event()}
        self._vote_state[txn_id] = state
        for index, target in enumerate(targets):
            env = self.send(target,
                            PrepareRequest(txn_id=txn_id,
                                           client_id=self.client_id,
                                           updates=writes,
                                           participants=tuple(targets),
                                           charge=index == 0),
                            size=CONTROL_SIZE
                            + len(writes) * self.config.data_item_size)
            if tracer is not None and index == 0:
                tracer.wire_charge(txn_id, env, phase="commit")
        if tracer is not None:
            tracer.round_charge(txn_id, "prepare")
        try:
            yield state["event"]
        except Interrupt:
            # Participants are prepared (or not); termination settles them
            # and the server-side record is authoritative.
            txn.abort("commit-limbo")
            return
        finally:
            self._vote_state.pop(txn_id, None)
        if state["refused"]:
            txn.abort("2pc-refused")
            for index, target in enumerate(targets):
                self.send(target,
                          CommitDecision(txn_id=txn_id, commit=False,
                                         charge=index == 0),
                          size=CONTROL_SIZE)
            if tracer is not None:
                tracer.round_charge(txn_id, "decide")
            return
        decision_time = self.sim.now
        ack_state = {"need": len(targets), "got": 0,
                     "event": self.sim.event()}
        self._ack_state[txn_id] = ack_state
        for index, target in enumerate(targets):
            env = self.send(target,
                            CommitDecision(txn_id=txn_id, commit=True,
                                           commit_time=decision_time,
                                           ack=True, charge=index == 0),
                            size=CONTROL_SIZE)
            if tracer is not None and index == 0:
                tracer.wire_charge(txn_id, env, phase="commit")
        if tracer is not None:
            tracer.round_charge(txn_id, "decide")
        try:
            yield ack_state["event"]
        except Interrupt:
            txn.abort("commit-limbo")
            return
        finally:
            self._ack_state.pop(txn_id, None)
        txn.commit()


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------

def _variant_config(name, config):
    """Apply the registry's variant pins (``g2pl-basic`` -> no MR1W,
    ``g2pl-ro`` -> read-group expansion) to a sharded deployment."""
    if name not in SHARDED_PROTOCOLS:
        raise ValueError(
            f"protocol {name!r} does not support sharding; "
            f"choose from {sorted(SHARDED_PROTOCOLS)}")
    overrides = {}
    if name == "g2pl-basic":
        overrides["mr1w"] = False
    elif name == "g2pl-ro":
        overrides["expand_read_groups"] = True
    return config.replace(**overrides) if overrides else config


def make_sharded_protocol(name, sim, config, shard_map, stores, wals,
                          history, client_ids):
    """Instantiate one home server per shard plus the sharded clients.

    ``stores`` and ``wals`` map home-server site id -> per-shard instance
    (each store holds only that shard's items). Returns ``(servers,
    clients)`` with servers keyed by site id in shard order. Mirrors the
    registry's variant pins (``g2pl-basic`` -> no MR1W, ``g2pl-ro`` ->
    read-group expansion).
    """
    config = _variant_config(name, config)
    servers = {}
    if name == "s2pl":
        for site_id in shard_map.server_ids:
            servers[site_id] = ShardedS2PLServer(
                sim, config, stores[site_id], wals[site_id], history,
                site_id, shard_map)
        clients = {client_id: ShardedS2PLClient(sim, client_id, config,
                                                history, shard_map)
                   for client_id in client_ids}
    else:
        precedence = SharedPrecedence()
        for site_id in shard_map.server_ids:
            servers[site_id] = ShardedG2PLServer(
                sim, config, stores[site_id], wals[site_id], history,
                site_id, shard_map, precedence)
        clients = {client_id: ShardedG2PLClient(sim, client_id, config,
                                                history, shard_map)
                   for client_id in client_ids}
    return servers, clients


def make_lp_shard(name, sim, config, shard_map, shard, store, wal, history,
                  client_ids):
    """One shard's home server plus its co-located clients.

    The LP-partitioned runner (:mod:`repro.core.lp`) builds each logical
    process with exactly the sites the full factory would have given that
    shard. A g-2PL shard gets a *private* :class:`SharedPrecedence`: with
    a shard-local workload (``cross_shard_probability=0``) no transaction
    ever registers at two shards, so the serial run's shared DAG is the
    disjoint union of per-shard components and this private graph sees
    precisely its own component — same nodes, same edges, same refcounts.
    """
    config = _variant_config(name, config)
    site_id = shard_site_id(shard)
    if name == "s2pl":
        server = ShardedS2PLServer(sim, config, store, wal, history,
                                   site_id, shard_map)
        clients = {client_id: ShardedS2PLClient(sim, client_id, config,
                                                history, shard_map)
                   for client_id in client_ids}
    else:
        server = ShardedG2PLServer(sim, config, store, wal, history,
                                   site_id, shard_map, SharedPrecedence())
        clients = {client_id: ShardedG2PLClient(sim, client_id, config,
                                                history, shard_map)
                   for client_id in client_ids}
    return server, clients
