"""Adaptive g-2PL: the protocol pair behind ``g2pl-adaptive``,
``hybrid`` and ``g2pl-spec``.

One server/client pair serves all three registry entries; which
controllers are live is decided by the ``adapt_window`` / ``hybrid`` /
``speculate`` config flags (the registry pins one per entry, and the
flags compose — ``--protocol hybrid --speculate`` runs both).

**Adaptive window sizing** (``adapt_window``): plain g-2PL only batches
while an item is away — a home item freezes whatever single request
arrives. The :class:`~repro.adapt.controller.WindowController` may hold
a home item's window open for a bounded, feedback-tuned interval so a
window can form *at* the server, trading first-request delay for longer
forward lists.

**Hybrid switching** (``hybrid``): each item hops between two service
modes on a streaming contention score. ``"single"`` is s-2PL-equivalent
service expressed in the g-2PL chassis: one grant unit per chain (one
writer, or one shared read group), readers graft onto writer-free
chains exactly as a shared lock would admit them, and every release
comes home before the next grant — the 2-hop release/grant round of a
central lock manager. ``"grouped"`` is full g-2PL batching. Transitions
are epoch-stamped and apply at the next window freeze, so an in-flight
chain is never reshaped — that is the whole drain story.

**Speculative dispatch** (``speculate``): with synchronized clocks and
a latency bound, quiescence of ``spec_margin x latency`` proves an away
item's window is final; the server pre-freezes it and ships it to the
chain's tail writer as a :class:`SpecExtend`, which splices it onto the
tail's forward list — the next window costs one handoff hop instead of
a return + grant round. A tail that already released declines (or is
simply missed), and the server re-dispatches the pre-frozen list itself
under a bumped epoch when the item lands: the same shape as PR 2's
chain repair, minus the fault reasoning (speculation rejects fault
injection outright, see config validation).
"""

from dataclasses import replace

from repro.adapt.controller import (
    ContentionController,
    SpeculationController,
    WindowController,
)
from repro.locking.modes import LockMode
from repro.protocols.forward_list import ForwardList
from repro.protocols.g2pl import G2PLClient, G2PLServer, dispatch_chain
from repro.protocols.messages import CONTROL_SIZE, SpecAck, SpecExtend
from repro.sim.timers import Timer


class _Speculation:
    """One outstanding pre-frozen window: the tail it was shipped to and
    the forward list it froze."""

    __slots__ = ("tail_txn", "fl")

    def __init__(self, tail_txn, fl):
        self.tail_txn = tail_txn
        self.fl = fl


class AdaptiveG2PLServer(G2PLServer):
    """g-2PL server with the repro.adapt controllers wired in."""

    def __init__(self, sim, config, store, wal, history, **kwargs):
        super().__init__(sim, config, store, wal, history, **kwargs)
        self._adapt_window = config.adapt_window
        self._hybrid = config.hybrid
        self._speculate = config.speculate
        self._rng = None                  # dedicated adapt.controller stream
        self._window_ctls = {}            # item_id -> WindowController
        self._contention_ctls = {}        # item_id -> ContentionController
        self._spec_ctl = SpeculationController(
            config.spec_margin, config.network_latency)
        self._hold_timers = {}            # item_id -> Timer (home-item hold)
        self._spec_timers = {}            # item_id -> Timer (quiescence)
        self._spec = {}                   # item_id -> _Speculation
        self._tail = {}                   # item_id -> (TxnRef, LockMode)
        # statistics (exported via adapt_stats for adaptive runs only)
        self.window_holds = 0
        self.mode_switches = 0
        self.windows_single = 0
        self.windows_grouped = 0
        self.spec_extensions = 0
        self.spec_hits = 0
        self.spec_misses = 0

    def attach_adapt_rng(self, rng):
        """Install the dedicated ``adapt.controller`` RNG stream (hold
        dither). Never drawn unless a hold is armed, so static-mode runs
        stay byte-identical to plain g-2PL."""
        self._rng = rng

    # -- controllers ---------------------------------------------------------

    def _window(self, item_id):
        ctl = self._window_ctls.get(item_id)
        if ctl is None:
            c = self.config
            lat = c.network_latency
            ctl = self._window_ctls[item_id] = WindowController(
                gain=c.window_gain, target_depth=c.window_target_depth,
                min_hold=c.window_min * lat, max_hold=c.window_max * lat,
                latency=lat, ewma_alpha=c.adapt_ewma)
        return ctl

    def _contention(self, item_id):
        ctl = self._contention_ctls.get(item_id)
        if ctl is None:
            c = self.config
            ctl = self._contention_ctls[item_id] = ContentionController(
                low=c.hybrid_low, high=c.hybrid_high,
                ewma_alpha=c.adapt_ewma, scale=c.hybrid_scale)
        return ctl

    # -- hook overrides ------------------------------------------------------

    def on_LockRequest(self, msg):
        item_id = msg.item_id
        if self._adapt_window and msg.txn_id not in self._dead:
            self._window(item_id).observe_arrival(self.sim.now)
        info = self._items[item_id]
        before = len(info.window)
        super().on_LockRequest(msg)
        if (self._speculate and not info.at_server
                and len(info.window) > before):
            self._arm_spec_timer(item_id)

    def _graft_allowed(self, info):
        if info.item_id in self._spec:
            # Never graft while an extension is in flight: the graft would
            # bump expected_returns under the acceptor's feet.
            return False
        if self._hybrid and self._contention(info.item_id).mode == "single":
            # Single mode == shared-lock compatibility: a reader joins a
            # writer-free grant unit unconditionally.
            return True
        return super()._graft_allowed(info)

    def _select_window(self, info, order):
        if self._hybrid:
            ctl = self._contention(info.item_id)
            if ctl.mode == "single":
                self.windows_single += 1
                mode_of = {w.ref.txn_id: w.mode for w in info.window}
                cut = 1
                if mode_of[order[0]] is LockMode.READ:
                    while (cut < len(order)
                           and mode_of[order[cut]] is LockMode.READ):
                        cut += 1
                return order[:cut], order[cut:]
            self.windows_grouped += 1
        return super()._select_window(info, order)

    def _maybe_dispatch(self, info):
        item_id = info.item_id
        if info.at_server:
            spec = self._spec.pop(item_id, None)
            if spec is not None:
                # The item landed with an extension unresolved: the tail
                # released before (or instead of) accepting. Mis-spec
                # repair — dispatch the pre-frozen list ourselves.
                self._cancel_hold(item_id)
                self._dispatch_prefrozen(info, spec)
                return
        if not info.at_server or not info.window:
            return
        timer = self._hold_timers.get(item_id)
        if timer is not None:
            # Collecting under a hold; cut it short once the window hits
            # the depth setpoint (holding past it only adds latency).
            if len(info.window) >= self._window(item_id).target_depth:
                self._cancel_hold(item_id)
                self._dispatch_now(info)
            return
        if self._adapt_window:
            ctl = self._window(item_id)
            if len(info.window) < ctl.target_depth:
                hold = ctl.hold_time(self._rng)
                if hold > 0.0:
                    self._arm_hold(info, hold)
                    return
        self._dispatch_now(info)

    # -- dispatch paths ------------------------------------------------------

    def _dispatch_now(self, info):
        item_id = info.item_id
        depth = len(info.window)
        mode_of = {w.ref.txn_id: w.mode for w in info.window}
        if self._hybrid:
            ctl = self._contention(item_id)
            ctl.observe(depth)
            switched = ctl.decide()
            if switched is not None:
                self.mode_switches += 1
                tracer = self.sim.tracer
                if tracer is not None:
                    tracer.emit("hybrid.switch", item=item_id,
                                mode=switched, epoch=ctl.epoch,
                                score=round(ctl.score(), 4))
        if self._adapt_window:
            self._window(item_id).observe_freeze(depth)
        super()._maybe_dispatch(info)
        if not info.at_server and info.chain_all:
            tail = info.chain_all[-1]
            self._tail[item_id] = (tail, mode_of[tail.txn_id])

    def _arm_hold(self, info, duration):
        item_id = info.item_id
        self.window_holds += 1
        self._hold_timers[item_id] = Timer(
            self.sim, duration, self._hold_fire, item_id)
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("window.hold", item=item_id,
                        hold=round(duration, 3), depth=len(info.window))

    def _hold_fire(self, item_id):
        self._hold_timers.pop(item_id, None)
        info = self._items[item_id]
        if info.at_server and info.window:
            self._dispatch_now(info)

    def _cancel_hold(self, item_id):
        timer = self._hold_timers.pop(item_id, None)
        if timer is not None:
            timer.cancel()

    # -- speculation ---------------------------------------------------------

    def _arm_spec_timer(self, item_id):
        timer = self._spec_timers.get(item_id)
        if timer is not None:
            timer.cancel()
        self._spec_timers[item_id] = Timer(
            self.sim, self._spec_ctl.bound, self._try_speculate, item_id)

    def _try_speculate(self, item_id):
        self._spec_timers.pop(item_id, None)
        info = self._items[item_id]
        if info.at_server or not info.window or item_id in self._spec:
            return
        tail = self._tail.get(item_id)
        if tail is None or tail[1] is not LockMode.WRITE:
            # Extensions splice after a single writer only: a read-group
            # tail releases to the server per reader, and an FL entry
            # after a reader must be a writer (ReaderRelease routing).
            return
        if info.expected_returns - info.returns_received != 1:
            return
        tail_ref = tail[0]
        fl = self._begin_speculation(info)
        self._spec[item_id] = _Speculation(tail_ref.txn_id, fl)
        self.spec_extensions += 1
        self._spec_ctl.extensions += 1
        self.send(tail_ref.client_id,
                  SpecExtend(txn_id=tail_ref.txn_id, item_id=item_id,
                             fl=fl, epoch=info.epoch),
                  size=CONTROL_SIZE + fl.transfer_size())
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("spec.extend", item=item_id, tail=tail_ref.txn_id,
                        n_txns=fl.txn_count())

    def _begin_speculation(self, info):
        """Freeze the away item's window into an FL without dispatching:
        the quiescence bound proved no earlier request can still arrive,
        so the freeze is exactly the one the item's return would run."""
        window = info.window
        if len(window) == 1:
            order = [window[0].ref.txn_id]
        else:
            order = self.precedence.linear_extension(
                [w.ref.txn_id for w in window],
                key=self._ordering_key(window))
        by_txn = {w.ref.txn_id: w for w in window}
        selected_ids, leftover_ids = self._select_window(info, order)
        selected = [by_txn[txn_id] for txn_id in selected_ids]
        self.window_frozen += len(selected)
        info.window = sorted((by_txn[txn_id] for txn_id in leftover_ids),
                             key=lambda w: w.arrival)
        fl = ForwardList.from_requests([(w.ref, w.mode) for w in selected])
        entries = fl.entries
        add_edge = self.precedence.add_edge_unchecked
        for i in range(len(entries)):
            for j in range(i + 1, len(entries)):
                for src in entries[i].txns:
                    for dst in entries[j].txns:
                        add_edge(src.txn_id, dst.txn_id)
        for w in info.window:
            for s in selected:
                add_edge(s.ref.txn_id, w.ref.txn_id)
        # The pre-frozen members join the live chain immediately: later
        # requests must order after them exactly as after dispatched
        # members, and aborts must know which item holds their position.
        info.chain_all.extend(w.ref for w in selected)
        for w in selected:
            if w.ref.txn_id not in self._dead:
                info.chain_live.add(w.ref.txn_id)
            self._txns[w.ref.txn_id].chain_items.add(info.item_id)
        info.chain_has_writer = info.chain_has_writer or any(
            entry.mode is LockMode.WRITE for entry in entries)
        self.windows_dispatched += 1
        self.fl_lengths.append(fl.txn_count())
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("fl.window_close", item=info.item_id,
                        size=len(selected))
            tracer.emit("fl.window_open", item=info.item_id,
                        carried=len(info.window))
        return fl

    def on_SpecAck(self, msg):
        spec = self._spec.get(msg.item_id)
        if spec is None or spec.tail_txn != msg.from_txn:
            return  # resolved by a home landing (or superseded) meanwhile
        info = self._items[msg.item_id]
        tracer = self.sim.tracer
        if not msg.accepted:
            # The tail could not take the extension; its return (if any)
            # reaches us on the same FIFO link *before* this ack, so if
            # the spec is still registered the item is still in flight.
            # Leave it: the landing runs the mis-spec repair.
            if tracer is not None:
                tracer.emit("spec.decline", item=msg.item_id,
                            tail=msg.from_txn)
            return
        del self._spec[msg.item_id]
        last = spec.fl.entries[-1]
        info.expected_returns = len(last.txns) if last.is_read_group else 1
        info.returns_received = 0
        if last.is_read_group:
            self._tail[msg.item_id] = (last.txns[-1], LockMode.READ)
        else:
            self._tail[msg.item_id] = (last.writer, LockMode.WRITE)
        self.spec_hits += 1
        self._spec_ctl.hits += 1
        if tracer is not None:
            tracer.emit("spec.accept", item=msg.item_id, tail=msg.from_txn,
                        n_txns=spec.fl.txn_count())

    def _dispatch_prefrozen(self, info, spec):
        """Mis-speculation repair: the item came home with its pre-frozen
        window undispatched — dispatch it from the server under a bumped
        epoch (the grant round the speculation tried to save)."""
        item_id = info.item_id
        fl = spec.fl
        entries = fl.entries
        refs = fl.all_txns()
        info.epoch += 1
        info.at_server = False
        info.chain_all = list(refs)
        info.chain_live = {r.txn_id for r in refs
                           if r.txn_id not in self._dead}
        info.chain_has_writer = any(
            entry.mode is LockMode.WRITE for entry in entries)
        last = entries[-1]
        info.expected_returns = len(last.txns) if last.is_read_group else 1
        info.returns_received = 0
        info.returned_version = -1
        for ref in refs:
            entry = self._txns.get(ref.txn_id)
            if entry is not None:
                entry.chain_items.add(item_id)
        if last.is_read_group:
            self._tail[item_id] = (last.txns[-1], LockMode.READ)
        else:
            self._tail[item_id] = (last.writer, LockMode.WRITE)
        self.spec_misses += 1
        self._spec_ctl.misses += 1
        tracer = self.sim.tracer
        if tracer is not None:
            tracer.emit("spec.repair", item=item_id, epoch=info.epoch,
                        n_txns=fl.txn_count())
        item = self.store.read(item_id)
        dispatch_chain(self, item_id, item.version, item.value, fl,
                       mr1w=self.config.mr1w, epoch=info.epoch)

    # -- diagnostics ---------------------------------------------------------

    def window_depth(self):
        """Requests waiting in collection windows (the adaptive window-
        occupancy gauge; identical signal to ``queue_depth``)."""
        return self.queue_depth()

    def hold_pending(self):
        """Home items currently collecting under a window hold."""
        return len(self._hold_timers)

    def single_mode_items(self):
        """Items currently routed to s-2PL-equivalent single mode."""
        return sum(1 for ctl in self._contention_ctls.values()
                   if ctl.mode == "single")

    def spec_outstanding(self):
        """Speculative extensions awaiting acceptance or repair."""
        return len(self._spec)

    def adapt_stats(self):
        """Controller counters, merged into server_stats for adaptive
        runs only (plain runs must keep their fingerprints)."""
        stats = {
            "window_enqueued": self.window_enqueued,
            "window_frozen": self.window_frozen,
            "window_purged": self.window_purged,
        }
        if self._adapt_window:
            stats["window_holds"] = self.window_holds
        if self._hybrid:
            stats["mode_switches"] = self.mode_switches
            stats["windows_single"] = self.windows_single
            stats["windows_grouped"] = self.windows_grouped
        if self._speculate:
            stats["spec_extensions"] = self.spec_extensions
            stats["spec_hits"] = self.spec_hits
            stats["spec_misses"] = self.spec_misses
        return stats


class AdaptiveG2PLClient(G2PLClient):
    """g-2PL client that can accept speculative chain extensions."""

    def __init__(self, sim, client_id, config, history):
        super().__init__(sim, client_id, config, history)
        # (txn_id, item_id) -> ForwardList accepted before the data copy
        # arrived; spliced onto the incoming FL tail at delivery.
        self._pending_ext = {}

    def reset_protocol_state(self):
        super().reset_protocol_state()
        self._pending_ext.clear()

    def _splice(self, fl_tail, ext):
        base = tuple(fl_tail.entries) if fl_tail is not None else ()
        return ForwardList(base + tuple(ext.entries))

    def on_GShip(self, msg):
        ext = self._pending_ext.pop((msg.txn_id, msg.item_id), None)
        if ext is not None:
            msg = replace(msg, fl_tail=self._splice(msg.fl_tail, ext))
        super().on_GShip(msg)

    def on_ReaderRelease(self, msg):
        # Basic mode (mr1w off): a writer's data and FL arrive with the
        # first reader release; an extension accepted early splices here.
        ext = self._pending_ext.pop((msg.to_txn, msg.item_id), None)
        if ext is not None and msg.carries_data:
            msg = replace(msg,
                          fl_from_writer=self._splice(msg.fl_from_writer,
                                                      ext))
        elif ext is not None:
            self._pending_ext[(msg.to_txn, msg.item_id)] = ext
        super().on_ReaderRelease(msg)

    def on_SpecExtend(self, msg):
        key = (msg.txn_id, msg.item_id)
        hold = self._holds.get(key)
        tracer = self.sim.tracer
        if hold is not None and not hold.released:
            accepted = True
            if hold.fl_tail is not None:
                hold.fl_tail = self._splice(hold.fl_tail, msg.fl)
            else:
                self._pending_ext[key] = msg.fl
        elif hold is None and msg.txn_id in self._active:
            # Our own copy is still in flight from the predecessor; stash
            # the extension and splice it onto the FL when the data lands.
            accepted = True
            self._pending_ext[key] = msg.fl
        else:
            accepted = False
        if tracer is not None:
            tracer.emit("spec.splice" if accepted else "spec.refuse",
                        txn=msg.txn_id, item=msg.item_id)
        self.send_control(self.home_of(msg.item_id),
                          SpecAck(item_id=msg.item_id, from_txn=msg.txn_id,
                                  accepted=accepted, epoch=msg.epoch))
