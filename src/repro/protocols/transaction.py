"""Transaction runtime state shared by all protocols."""

import enum
from dataclasses import dataclass


class TxnStatus(enum.Enum):
    RUNNING = "running"
    COMMITTED = "committed"
    ABORTED = "aborted"


class Transaction:
    """A live transaction executing at a client.

    Wraps the immutable workload spec with runtime status; ``birth`` is the
    arrival time used by age-based deadlock victim policies.
    """

    __slots__ = ("txn_id", "client_id", "spec", "status", "birth",
                 "ops_done", "abort_reason")

    def __init__(self, txn_id, client_id, spec, birth):
        self.txn_id = txn_id
        self.client_id = client_id
        self.spec = spec
        self.status = TxnStatus.RUNNING
        self.birth = birth
        self.ops_done = 0
        self.abort_reason = None

    @property
    def running(self):
        return self.status is TxnStatus.RUNNING

    def commit(self):
        if self.status is not TxnStatus.RUNNING:
            raise RuntimeError(f"commit on {self.status.value} txn {self.txn_id}")
        self.status = TxnStatus.COMMITTED

    def abort(self, reason):
        if self.status is TxnStatus.COMMITTED:
            raise RuntimeError(f"abort after commit of txn {self.txn_id}")
        self.status = TxnStatus.ABORTED
        if self.abort_reason is None:
            self.abort_reason = reason

    def __repr__(self):
        return (f"<Txn {self.txn_id}@c{self.client_id} {self.status.value} "
                f"{self.ops_done}/{len(self.spec.operations)} ops>")


@dataclass(frozen=True)
class TxnOutcome:
    """What the client driver reports to the metrics collector."""

    txn_id: int
    client_id: int
    committed: bool
    start_time: float
    end_time: float
    n_ops: int
    n_writes: int
    abort_reason: str = None

    @property
    def response_time(self):
        return self.end_time - self.start_time
