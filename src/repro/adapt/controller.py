"""The adaptive-concurrency-control controllers.

Everything here is pure arithmetic over streamed observations — no
simulator handles, no message types — so the controllers are unit-testable
in isolation and reusable by both the simulated and live protocol stacks.
The only nondeterminism is an optional injected RNG (the dedicated
``adapt.controller`` stream) used to dither window holds; protocols that
never hold never draw from it, which is what keeps the static goldens
byte-identical.
"""


class EwmaEstimator:
    """Exponentially weighted moving average with a "no sample yet" state.

    ``alpha`` is the weight of the newest sample: ``1.0`` tracks the last
    sample exactly, small values average over roughly ``1/alpha`` samples.
    """

    __slots__ = ("alpha", "value", "samples")

    def __init__(self, alpha):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        self.alpha = alpha
        self.value = None
        self.samples = 0

    def observe(self, sample):
        if self.value is None:
            self.value = float(sample)
        else:
            self.value += self.alpha * (float(sample) - self.value)
        self.samples += 1
        return self.value


class WindowController:
    """Adaptive collection-window sizing for one item.

    Plain g-2PL only batches while the item is away: the instant it comes
    home, whatever collected is frozen and dispatched, so an idle item
    serves singleton chains forever even under steady load. This
    controller can *hold* a home item's window open for ``h`` time units
    before freezing, trading a bounded first-request delay for longer
    forward lists (fewer grant/return rounds per transaction).

    ``h`` follows a bounded integral feedback law on observed freeze
    depth::

        h <- clamp(h + gain * (target_depth - depth) * unit,
                   min_hold, max_hold)

    where ``unit`` is one-eighth of the network latency (the natural
    quantum: a hold is only useful if it spans a nontrivial fraction of a
    round trip). Depth below target lengthens the hold, depth above
    target shortens it; the clamp keeps the loop stable under any gain.

    Holding is gated on the inter-arrival EWMA: if requests for the item
    arrive slower than ``max_hold`` apart, holding cannot collect a
    second request and only adds latency, so the controller declines.
    """

    __slots__ = ("gain", "target_depth", "min_hold", "max_hold",
                 "unit", "hold", "interarrival", "last_arrival", "holds")

    #: Hold dither fraction: each armed hold is stretched/shrunk by up to
    #: this much, drawn from the dedicated RNG stream, so synchronized
    #: client populations do not phase-lock onto the hold timer.
    JITTER = 0.05

    def __init__(self, gain, target_depth, min_hold, max_hold, latency,
                 ewma_alpha=0.3):
        self.gain = gain
        self.target_depth = target_depth
        self.min_hold = min_hold
        self.max_hold = max_hold
        self.unit = latency / 8.0
        self.hold = min(max(latency / 2.0, min_hold), max_hold)
        self.interarrival = EwmaEstimator(ewma_alpha)
        self.last_arrival = None
        self.holds = 0

    def observe_arrival(self, now):
        """A request for this item arrived at simulated time ``now``."""
        if self.last_arrival is not None:
            self.interarrival.observe(now - self.last_arrival)
        self.last_arrival = now

    def observe_freeze(self, depth):
        """A window froze at ``depth`` requests: run the feedback law."""
        delta = self.gain * (self.target_depth - depth) * self.unit
        self.hold = min(max(self.hold + delta, self.min_hold), self.max_hold)

    def hold_time(self, rng=None):
        """Hold duration for the window about to open, or 0.0 to dispatch
        immediately (hold would not pay for itself)."""
        if self.hold <= 0.0:
            return 0.0
        tau = self.interarrival.value
        if tau is None or tau > self.max_hold:
            # Unknown or sparse arrivals: a hold cannot collect a second
            # request before it expires, so it is pure added latency.
            return 0.0
        hold = self.hold
        if rng is not None:
            hold *= 1.0 + self.JITTER * (2.0 * rng.random() - 1.0)
        self.holds += 1
        return hold


class ContentionController:
    """Streaming contention score with hysteresis for one item.

    The raw signal is the window depth at each freeze — how many requests
    piled up while the item was away, i.e. the item's wait-for degree.
    Its EWMA ``d`` is squashed to a score in [0, 1)::

        score = d / (d + scale)

    ``scale`` is the depth at which the score reads 0.5. The mode is a
    hysteresis loop over the score:

    - score < ``low``  -> ``"single"``: s-2PL-equivalent service — one
      grant unit (one writer or one shared read group) per chain, reads
      graft onto writer-free chains exactly as a shared lock would grant,
      releases come home each round.
    - score > ``high`` -> ``"grouped"``: full g-2PL windows — batch the
      backlog into one forward list and pay one grant round for all of it.

    Between the thresholds the item keeps its current mode, so modes
    cannot flap on boundary noise. Each switch bumps the item's mode
    epoch; the switch takes effect at the *next* freeze, which is what
    makes transitions drain-safe (an in-flight chain is never reshaped).
    """

    __slots__ = ("low", "high", "scale", "depth", "mode", "epoch",
                 "switches")

    def __init__(self, low, high, ewma_alpha=0.3, scale=3.0,
                 initial_mode="grouped"):
        self.low = low
        self.high = high
        self.scale = scale
        self.depth = EwmaEstimator(ewma_alpha)
        self.mode = initial_mode
        self.epoch = 0
        self.switches = 0

    def score(self):
        d = self.depth.value
        if d is None:
            return 0.0
        return d / (d + self.scale)

    def observe(self, depth):
        self.depth.observe(depth)

    def decide(self):
        """Re-evaluate the mode; returns the new mode if it switched,
        else ``None``."""
        score = self.score()
        if self.mode == "grouped" and score < self.low:
            self.mode = "single"
        elif self.mode == "single" and score > self.high:
            self.mode = "grouped"
        else:
            return None
        self.epoch += 1
        self.switches += 1
        return self.mode


class SpeculationController:
    """The synchronized-clock quiescence bound for speculative dispatch.

    With synchronized clocks and a known one-way latency bound ``L``, a
    server that has seen no new request for an away item for
    ``margin * L`` knows every request sent before its newest window
    entry has already arrived (Tiga-style): the window's contents are
    final *as of the chain tail's release point*, so the window can be
    pre-frozen and shipped to the tail as a chain extension before the
    item formally returns. ``margin >= 1`` is exact under the bound;
    larger margins trade speculation rate for tolerance of bound slack.
    """

    __slots__ = ("bound", "extensions", "hits", "misses")

    def __init__(self, margin, latency):
        self.bound = margin * latency
        self.extensions = 0
        self.hits = 0
        self.misses = 0
