"""repro.adapt — online controllers that turn the static protocol family
into a self-tuning one.

Three cooperating controllers, all consumed by
:mod:`repro.protocols.adaptive`:

- :class:`~repro.adapt.controller.WindowController` — adaptive
  collection-window sizing (bounded feedback loop on window depth).
- :class:`~repro.adapt.controller.ContentionController` — streaming
  contention score with hysteresis, driving per-item switching between
  s-2PL-like immediate service and g-2PL grouped service.
- :class:`~repro.adapt.controller.SpeculationController` — the
  synchronized-clock quiescence bound behind speculative dispatch.
"""

from repro.adapt.controller import (
    ContentionController,
    EwmaEstimator,
    SpeculationController,
    WindowController,
)

__all__ = [
    "ContentionController",
    "EwmaEstimator",
    "SpeculationController",
    "WindowController",
]
