"""Per-run metrics collection with transient-phase elimination."""

from dataclasses import dataclass, field


@dataclass
class RunMetrics:
    """Steady-state metrics of one simulation run."""

    committed: int = 0
    aborted: int = 0
    warmup_discarded: int = 0
    response_times: list = field(default_factory=list)
    abort_reasons: dict = field(default_factory=dict)
    first_measured_at: float = None
    last_measured_at: float = None

    @property
    def finished(self):
        return self.committed + self.aborted

    @property
    def mean_response_time(self):
        if not self.response_times:
            return float("nan")
        return sum(self.response_times) / len(self.response_times)

    @property
    def abort_percentage(self):
        total = self.finished
        if total == 0:
            return float("nan")
        return 100.0 * self.aborted / total

    @property
    def throughput(self):
        """Committed transactions per simulation time unit."""
        if (self.first_measured_at is None or self.last_measured_at is None
                or self.last_measured_at <= self.first_measured_at):
            return float("nan")
        return self.committed / (self.last_measured_at
                                 - self.first_measured_at)


class MetricsCollector:
    """Receives transaction outcomes from the client drivers.

    The first ``warmup_transactions`` finished transactions are the
    transient phase: counted but excluded from every statistic, matching
    the paper's "transient phase of the simulation runs was eliminated".
    Response times are recorded for committed transactions (aborted ones
    are replaced, and contribute to the abort percentage instead).
    """

    def __init__(self, warmup_transactions=0):
        if warmup_transactions < 0:
            raise ValueError("warmup_transactions must be >= 0")
        self.warmup_transactions = warmup_transactions
        self.metrics = RunMetrics()
        self._seen = 0

    def record_outcome(self, outcome):
        self._seen += 1
        metrics = self.metrics
        if self._seen <= self.warmup_transactions:
            metrics.warmup_discarded += 1
            return
        if metrics.first_measured_at is None:
            metrics.first_measured_at = outcome.start_time
        metrics.last_measured_at = outcome.end_time
        if outcome.committed:
            metrics.committed += 1
            metrics.response_times.append(outcome.response_time)
        else:
            metrics.aborted += 1
            reason = outcome.abort_reason or "unknown"
            metrics.abort_reasons[reason] = (
                metrics.abort_reasons.get(reason, 0) + 1)
