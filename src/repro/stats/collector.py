"""Per-run metrics collection with transient-phase elimination."""

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.stats.streaming import ReservoirSampler, Welford, WindowedThroughput


@dataclass
class RunMetrics:
    """Steady-state metrics of one simulation run."""

    committed: int = 0
    aborted: int = 0
    warmup_discarded: int = 0
    response_times: list = field(default_factory=list)
    abort_reasons: dict = field(default_factory=dict)
    first_measured_at: Optional[float] = None
    last_measured_at: Optional[float] = None

    #: exact path: every committed response time is retained
    streaming = False

    def observe_response(self, response_time, end_time):
        """Record one committed transaction's response time."""
        self.response_times.append(response_time)

    @property
    def finished(self):
        return self.committed + self.aborted

    @property
    def mean_response_time(self):
        if not self.response_times:
            return float("nan")
        return sum(self.response_times) / len(self.response_times)

    def percentile(self, p):
        """Linearly-interpolated ``p``-th percentile (0-100) of committed
        response times; NaN when nothing committed."""
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        data = sorted(self.response_times)
        if not data:
            return float("nan")
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        low = int(rank)
        high = min(low + 1, len(data) - 1)
        fraction = rank - low
        return data[low] + (data[high] - data[low]) * fraction

    @property
    def p50_response_time(self):
        return self.percentile(50.0)

    @property
    def p95_response_time(self):
        return self.percentile(95.0)

    @property
    def p99_response_time(self):
        return self.percentile(99.0)

    @property
    def abort_percentage(self):
        total = self.finished
        if total == 0:
            return float("nan")
        return 100.0 * self.aborted / total

    @property
    def throughput(self):
        """Committed transactions per simulation time unit."""
        if (self.first_measured_at is None or self.last_measured_at is None
                or self.last_measured_at <= self.first_measured_at):
            return float("nan")
        return self.committed / (self.last_measured_at
                                 - self.first_measured_at)


@dataclass
class StreamingMetrics(RunMetrics):
    """Bounded-memory :class:`RunMetrics` for large-population runs.

    ``response_times`` stays an (always empty) list; committed response
    times feed a reservoir sample (percentiles), Welford running moments
    (mean/variance), and tumbling throughput windows instead. Everything
    else — counts, abort reasons, the measurement window — is identical
    to the exact path, so downstream consumers (summaries, CIs, reports)
    work unchanged.
    """

    reservoir: Optional[ReservoirSampler] = None
    moments: Optional[Welford] = None
    windows: Optional[WindowedThroughput] = None

    streaming = True

    def observe_response(self, response_time, end_time):
        self.moments.add(response_time)
        self.reservoir.add(response_time)
        self.windows.record(end_time)

    @property
    def mean_response_time(self):
        if self.moments.count == 0:
            return float("nan")
        return self.moments.mean

    @property
    def response_time_std(self):
        return self.moments.std

    def percentile(self, p):
        """Reservoir-estimated percentile (exact while seen <= capacity)."""
        return self.reservoir.percentile(p)


class MetricsCollector:
    """Receives transaction outcomes from the client drivers.

    The first ``warmup_transactions`` finished transactions are the
    transient phase: counted but excluded from every statistic, matching
    the paper's "transient phase of the simulation runs was eliminated".
    Response times are recorded for committed transactions (aborted ones
    are replaced, and contribute to the abort percentage instead).

    With ``streaming=True`` the collector produces a
    :class:`StreamingMetrics` instead: bounded memory regardless of run
    length, reservoir percentiles, running moments. The reservoir draws
    from ``reservoir_rng`` (its own stream, so the simulation trajectory
    is bit-identical whichever collector mode is attached).
    """

    def __init__(self, warmup_transactions=0, streaming=False,
                 reservoir_rng=None, reservoir_capacity=8192,
                 throughput_window=1000.0):
        if warmup_transactions < 0:
            raise ValueError("warmup_transactions must be >= 0")
        self.warmup_transactions = warmup_transactions
        self.streaming = streaming
        if streaming:
            if reservoir_rng is None:
                reservoir_rng = random.Random(8191)
            self.metrics = StreamingMetrics(
                reservoir=ReservoirSampler(reservoir_rng,
                                           capacity=reservoir_capacity),
                moments=Welford(),
                windows=WindowedThroughput(window=throughput_window))
        else:
            self.metrics = RunMetrics()
        self._seen = 0
        self._warmup_ended_at = None

    @property
    def measuring(self):
        """True once the warmup phase is over (the last recorded outcome
        was a measured one)."""
        return self._seen > self.warmup_transactions

    def record_outcome(self, outcome):
        self._seen += 1
        metrics = self.metrics
        if self._seen <= self.warmup_transactions:
            metrics.warmup_discarded += 1
            # The warmup boundary is when the last transient transaction
            # finished; the measurement window can only start there.
            self._warmup_ended_at = outcome.end_time
            return
        if metrics.first_measured_at is None:
            # The first measured transaction usually *started* during the
            # warmup phase; opening the throughput window at its start
            # would stretch the window into the transient phase and
            # understate throughput. Clamp to the warmup boundary.
            start = outcome.start_time
            if (self._warmup_ended_at is not None
                    and start < self._warmup_ended_at):
                start = self._warmup_ended_at
            metrics.first_measured_at = start
        metrics.last_measured_at = outcome.end_time
        if outcome.committed:
            metrics.committed += 1
            metrics.observe_response(outcome.response_time,
                                     outcome.end_time)
        else:
            metrics.aborted += 1
            reason = outcome.abort_reason or "unknown"
            metrics.abort_reasons[reason] = (
                metrics.abort_reasons.get(reason, 0) + 1)
