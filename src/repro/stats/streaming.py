"""Bounded-memory streaming statistics for large-population runs.

The exact metrics pipeline keeps every committed response time in a
Python list — perfect for the paper's 1,500-transaction runs and for the
byte-identical golden fingerprints, hopeless for 10⁵–10⁶-transaction
population runs. This module provides the streaming counterparts:

* :class:`Welford` — running mean/variance in O(1) memory (Welford's
  online algorithm; numerically stable where a naive sum-of-squares is
  not).
* :class:`ReservoirSampler` — Vitter's Algorithm R: a uniform sample of
  a stream of unknown length in O(capacity) memory, from which any
  percentile is estimated with the same linear interpolation the exact
  path uses. The sampler draws from its *own* seeded RNG stream, so
  attaching it never perturbs the simulation trajectory (the same
  discipline the tracer follows).
* :class:`WindowedThroughput` — fixed-width tumbling-window commit
  counters with a bounded ring of recent windows plus running total and
  peak, for time-resolved throughput without a per-event log.
* :class:`RunningStat` — drop-in ``list.append`` replacement keeping
  only count/sum/min/max, used to bound the per-client ``op_waits``
  diagnostic on the streaming path.

Everything here is deterministic given the seed and the input order, so
streaming runs fingerprint and replay bit-identically at ``jobs=1`` and
``jobs=N`` exactly like exact-path runs.
"""

import math
from collections import deque


class Welford:
    """Running count/mean/variance (Welford's online moments)."""

    __slots__ = ("count", "mean", "m2")

    def __init__(self):
        self.count = 0
        self.mean = 0.0
        self.m2 = 0.0

    def add(self, value):
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)

    @property
    def variance(self):
        """Sample variance (n-1 denominator); NaN below two samples."""
        if self.count < 2:
            return float("nan")
        return self.m2 / (self.count - 1)

    @property
    def std(self):
        variance = self.variance
        return math.sqrt(variance) if variance == variance else variance


class ReservoirSampler:
    """Uniform fixed-capacity sample of an unbounded stream (Algorithm R).

    ``rng`` must expose ``random()``; it should be a dedicated stream so
    consuming it cannot perturb any other draw sequence in the run.
    """

    __slots__ = ("capacity", "seen", "values", "_random")

    def __init__(self, rng, capacity=8192):
        if capacity < 2:
            raise ValueError(f"capacity must be >= 2, got {capacity!r}")
        self.capacity = capacity
        self.seen = 0
        self.values = []
        self._random = rng.random

    def add(self, value):
        self.seen += 1
        values = self.values
        if len(values) < self.capacity:
            values.append(value)
            return
        # Replace a random slot with probability capacity/seen: draw a
        # uniform index in [0, seen) and keep only hits below capacity.
        slot = int(self._random() * self.seen)
        if slot < self.capacity:
            values[slot] = value

    def percentile(self, p):
        """Linearly-interpolated percentile of the sample (NaN if empty).

        Matches :meth:`repro.stats.collector.RunMetrics.percentile` exactly
        when the reservoir holds the whole stream (seen <= capacity).
        """
        if not 0.0 <= p <= 100.0:
            raise ValueError(f"percentile must be in [0, 100], got {p!r}")
        data = sorted(self.values)
        if not data:
            return float("nan")
        if len(data) == 1:
            return data[0]
        rank = (p / 100.0) * (len(data) - 1)
        low = int(rank)
        high = min(low + 1, len(data) - 1)
        fraction = rank - low
        return data[low] + (data[high] - data[low]) * fraction


class WindowedThroughput:
    """Tumbling-window commit counters in bounded memory.

    Counts events into fixed-width windows of simulation time; the most
    recent ``max_windows`` (index, count) pairs are retained in a ring,
    older windows fold into the running total/peak only.
    """

    __slots__ = ("window", "recent", "total", "peak_count", "_index",
                 "_count")

    def __init__(self, window=1000.0, max_windows=256):
        if window <= 0:
            raise ValueError(f"window must be positive, got {window!r}")
        self.window = window
        self.recent = deque(maxlen=max_windows)
        self.total = 0
        self.peak_count = 0
        self._index = None
        self._count = 0

    def record(self, when):
        index = int(when / self.window)
        if index != self._index:
            self._roll()
            self._index = index
        self._count += 1
        self.total += 1
        if self._count > self.peak_count:
            self.peak_count = self._count

    def _roll(self):
        if self._index is not None:
            self.recent.append((self._index, self._count))
        self._count = 0

    @property
    def peak_rate(self):
        """Peak commits per time unit over any complete or current window."""
        return self.peak_count / self.window

    def snapshot(self):
        """Recent (window_start_time, count) pairs, current window included."""
        rows = [(index * self.window, count)
                for index, count in self.recent]
        if self._index is not None:
            rows.append((self._index * self.window, self._count))
        return rows


class RunningStat:
    """Count/sum/min/max accumulator with a ``list``-like ``append``.

    Swapped in for unbounded diagnostic lists (``ProtocolClient.op_waits``)
    on the streaming path; exposes enough for the mean the runner reports.
    """

    __slots__ = ("count", "sum", "min", "max")

    def __init__(self):
        self.count = 0
        self.sum = 0.0
        self.min = math.inf
        self.max = -math.inf

    def append(self, value):
        self.count += 1
        self.sum += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self):
        return self.sum / self.count if self.count else 0.0

    def __len__(self):
        return self.count

    def __iter__(self):
        raise TypeError(
            "RunningStat keeps no per-value storage; use count/sum/min/max")
