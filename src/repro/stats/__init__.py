"""Measurement: metrics collection, warmup elimination, confidence intervals.

The paper's methodology (§5): the transient phase is eliminated, each run
generates a fixed number of transactions after it, and 95% confidence
intervals on the mean response time are computed from independent
replications (relative precision ≤ 2% in the paper's full-scale runs).
"""

from repro.stats.ci import ConfidenceInterval, mean_confidence_interval
from repro.stats.collector import (
    MetricsCollector,
    RunMetrics,
    StreamingMetrics,
)
from repro.stats.streaming import (
    ReservoirSampler,
    RunningStat,
    Welford,
    WindowedThroughput,
)

__all__ = [
    "ConfidenceInterval",
    "MetricsCollector",
    "ReservoirSampler",
    "RunMetrics",
    "RunningStat",
    "StreamingMetrics",
    "Welford",
    "WindowedThroughput",
    "mean_confidence_interval",
]
