"""Student-t confidence intervals over replication means."""

import math
from dataclasses import dataclass

# Two-sided Student-t critical values, complete for dof 1-30 at the three
# standard confidence levels; past dof 30 the normal quantile is used (the
# conventional large-sample approximation, within 0.05 of the exact value).
# scipy, when installed, serves any other confidence level exactly; without
# scipy a non-tabulated level raises rather than silently answering the
# 95% question.
_T_TABLES = {
    0.90: ({1: 6.314, 2: 2.920, 3: 2.353, 4: 2.132, 5: 2.015, 6: 1.943,
            7: 1.895, 8: 1.860, 9: 1.833, 10: 1.812, 11: 1.796, 12: 1.782,
            13: 1.771, 14: 1.761, 15: 1.753, 16: 1.746, 17: 1.740, 18: 1.734,
            19: 1.729, 20: 1.725, 21: 1.721, 22: 1.717, 23: 1.714, 24: 1.711,
            25: 1.708, 26: 1.706, 27: 1.703, 28: 1.701, 29: 1.699, 30: 1.697},
           1.645),
    0.95: ({1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
            7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
            13: 2.160, 14: 2.145, 15: 2.131, 16: 2.120, 17: 2.110, 18: 2.101,
            19: 2.093, 20: 2.086, 21: 2.080, 22: 2.074, 23: 2.069, 24: 2.064,
            25: 2.060, 26: 2.056, 27: 2.052, 28: 2.048, 29: 2.045, 30: 2.042},
           1.960),
    0.99: ({1: 63.657, 2: 9.925, 3: 5.841, 4: 4.604, 5: 4.032, 6: 3.707,
            7: 3.499, 8: 3.355, 9: 3.250, 10: 3.169, 11: 3.106, 12: 3.055,
            13: 3.012, 14: 2.977, 15: 2.947, 16: 2.921, 17: 2.898, 18: 2.878,
            19: 2.861, 20: 2.845, 21: 2.831, 22: 2.819, 23: 2.807, 24: 2.797,
            25: 2.787, 26: 2.779, 27: 2.771, 28: 2.763, 29: 2.756, 30: 2.750},
           2.576),
}


def _t_critical(confidence, dof):
    if dof < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {dof}")
    for level, (table, normal) in _T_TABLES.items():
        if abs(confidence - level) < 1e-9:
            return table[dof] if dof <= 30 else normal
    try:
        from scipy import stats as scipy_stats

        return float(scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    except ImportError:
        raise ValueError(
            f"confidence level {confidence} is not tabulated "
            f"({sorted(_T_TABLES)} are) and scipy is not installed; "
            f"install scipy or use a tabulated level") from None


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with its two-sided confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self):
        return self.mean - self.half_width

    @property
    def high(self):
        return self.mean + self.half_width

    @property
    def relative_precision(self):
        """Half-width as a fraction of the mean (paper: ≤ 2%)."""
        if self.mean == 0:
            return float("inf") if self.half_width else 0.0
        return abs(self.half_width / self.mean)

    def __str__(self):
        return f"{self.mean:.4g} ± {self.half_width:.3g} ({self.n} runs)"


def mean_confidence_interval(samples, confidence=0.95):
    """95% (by default) CI on the mean of independent ``samples``.

    A single sample yields a zero-width interval (no variance estimate),
    which the caller should treat as "precision unknown".
    """
    samples = [float(s) for s in samples]
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0,
                                  confidence=confidence, n=1)
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    half = _t_critical(confidence, n - 1) * math.sqrt(variance / n)
    return ConfidenceInterval(mean=mean, half_width=half,
                              confidence=confidence, n=n)
