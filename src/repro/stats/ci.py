"""Student-t confidence intervals over replication means."""

import math
from dataclasses import dataclass

# Two-sided 95% Student-t critical values by degrees of freedom; falls back
# to scipy for other confidence levels when available, else to the normal
# approximation past the table.
_T95 = {
    1: 12.706, 2: 4.303, 3: 3.182, 4: 2.776, 5: 2.571, 6: 2.447,
    7: 2.365, 8: 2.306, 9: 2.262, 10: 2.228, 11: 2.201, 12: 2.179,
    13: 2.160, 14: 2.145, 15: 2.131, 20: 2.086, 25: 2.060, 30: 2.042,
}


def _t_critical(confidence, dof):
    if abs(confidence - 0.95) < 1e-9:
        if dof in _T95:
            return _T95[dof]
        if dof > 30:
            return 1.960
    try:
        from scipy import stats as scipy_stats

        return float(scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    except ImportError:  # pragma: no cover - scipy is an install extra
        return 1.960


@dataclass(frozen=True)
class ConfidenceInterval:
    """A sample mean with its two-sided confidence half-width."""

    mean: float
    half_width: float
    confidence: float
    n: int

    @property
    def low(self):
        return self.mean - self.half_width

    @property
    def high(self):
        return self.mean + self.half_width

    @property
    def relative_precision(self):
        """Half-width as a fraction of the mean (paper: ≤ 2%)."""
        if self.mean == 0:
            return float("inf") if self.half_width else 0.0
        return abs(self.half_width / self.mean)

    def __str__(self):
        return f"{self.mean:.4g} ± {self.half_width:.3g} ({self.n} runs)"


def mean_confidence_interval(samples, confidence=0.95):
    """95% (by default) CI on the mean of independent ``samples``.

    A single sample yields a zero-width interval (no variance estimate),
    which the caller should treat as "precision unknown".
    """
    samples = [float(s) for s in samples]
    n = len(samples)
    if n == 0:
        raise ValueError("no samples")
    mean = sum(samples) / n
    if n == 1:
        return ConfidenceInterval(mean=mean, half_width=0.0,
                                  confidence=confidence, n=1)
    variance = sum((s - mean) ** 2 for s in samples) / (n - 1)
    half = _t_critical(confidence, n - 1) * math.sqrt(variance / n)
    return ConfidenceInterval(mean=mean, half_width=half,
                              confidence=confidence, n=n)
