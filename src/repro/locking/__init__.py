"""Lock management substrate: modes, the lock table, and the wait-for graph.

Implements the strict two-phase locking machinery of the s-2PL baseline
(Eswaran et al. [14]): shared/exclusive locks with FIFO queuing at the data
server, plus the wait-for-graph deadlock detector that the paper runs
whenever a lock cannot be granted.
"""

from repro.locking.lock_table import LockRequestState, LockTable
from repro.locking.modes import LockMode
from repro.locking.waitfor import WaitForGraph

__all__ = ["LockMode", "LockRequestState", "LockTable", "WaitForGraph"]
