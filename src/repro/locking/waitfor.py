"""Wait-for graph with on-demand cycle detection.

The paper (§4): "deadlocks are detected by computing wait-for-graphs and
aborting the transactions necessary to remove the deadlocks ... deadlock
detection is initiated when a lock cannot be granted."
"""


class WaitForGraph:
    """Directed graph: edge waiter → holder means "waiter waits for holder"."""

    def __init__(self):
        self._out = {}

    def add_edge(self, waiter, holder):
        """Record that ``waiter`` waits for ``holder`` (self-edges ignored)."""
        if waiter == holder:
            return
        self._out.setdefault(waiter, set()).add(holder)

    def add_edges(self, waiter, holders):
        for holder in holders:
            self.add_edge(waiter, holder)

    def remove_edge(self, waiter, holder):
        edges = self._out.get(waiter)
        if edges is not None:
            edges.discard(holder)
            if not edges:
                del self._out[waiter]

    def remove_node(self, txn):
        """Drop ``txn`` and every edge touching it (commit/abort cleanup)."""
        self._out.pop(txn, None)
        empty = []
        for waiter, holders in self._out.items():
            holders.discard(txn)
            if not holders:
                empty.append(waiter)
        for waiter in empty:
            del self._out[waiter]

    def successors(self, txn):
        return set(self._out.get(txn, ()))

    @property
    def edge_count(self):
        return sum(len(holders) for holders in self._out.values())

    def find_cycle_from(self, start):
        """Return a cycle (list of txns, first == last) through ``start``,
        or None.

        A cycle through ``start`` exists iff ``start`` is reachable from
        one of its successors; a visited-set DFS makes this O(V+E) (a
        naive all-simple-paths search is exponential on dense wait
        graphs). Deterministic via sorted successor order; the path is
        reconstructed from parent pointers.
        """
        parent = {}
        stack = [start]
        visited = {start}
        while stack:
            node = stack.pop()
            for nxt in sorted(self._out.get(node, ()), key=repr,
                              reverse=True):
                if nxt == start:
                    path = [start, node]
                    cursor = node
                    while cursor != start:
                        cursor = parent[cursor]
                        path.append(cursor)
                    path.reverse()
                    return path
                if nxt not in visited:
                    visited.add(nxt)
                    parent[nxt] = node
                    stack.append(nxt)
        return None

    def find_any_cycle(self):
        """Return any cycle in the graph, or None (for validation sweeps)."""
        for node in sorted(self._out, key=repr):
            cycle = self.find_cycle_from(node)
            if cycle:
                return cycle
        return None

    def __repr__(self):
        return f"<WaitForGraph {len(self._out)} waiters, {self.edge_count} edges>"
