"""The server's lock table: per-item holders and FIFO wait queues."""

import enum
from collections import OrderedDict, deque

from repro.locking.modes import LockMode


class LockRequestState(enum.Enum):
    """Outcome of an acquire call."""

    GRANTED = "granted"
    WAITING = "waiting"


class _ItemLock:
    """Lock state of a single data item."""

    __slots__ = ("holders", "queue")

    def __init__(self):
        # txn -> mode for current holders (all READ, or one WRITE)
        self.holders = OrderedDict()
        # FIFO of (txn, mode) waiting
        self.queue = deque()

    def compatible(self, mode, requester):
        if not self.holders:
            return True
        if any(txn == requester for txn in self.holders):
            # Upgrade/re-request handled by the caller.
            raise AssertionError("requester already holds this lock")
        return mode is LockMode.READ and all(
            held is LockMode.READ for held in self.holders.values())


class LockTable:
    """Shared/exclusive lock table with FIFO granting.

    Grant discipline: a request is granted immediately iff it is compatible
    with all current holders *and* no conflicting request is already queued
    (no reader overtaking — prevents writer starvation and matches a strict
    FIFO server queue). On release, the longest compatible prefix of the
    queue is granted, so a run of readers at the head is granted together.
    """

    def __init__(self):
        self._items = {}
        self._held_by_txn = {}

    def _item(self, item):
        lock = self._items.get(item)
        if lock is None:
            lock = self._items[item] = _ItemLock()
        return lock

    # -- queries -------------------------------------------------------------

    def holders(self, item):
        """Mapping txn -> mode of current holders of ``item``."""
        lock = self._items.get(item)
        return dict(lock.holders) if lock else {}

    def waiters(self, item):
        """List of (txn, mode) queued on ``item`` in FIFO order."""
        lock = self._items.get(item)
        return list(lock.queue) if lock else []

    def total_waiters(self):
        """Total queued requests across all items (a contention gauge)."""
        return sum(len(lock.queue) for lock in self._items.values())

    def held_items(self, txn):
        """Items currently held by ``txn`` as a mapping item -> mode."""
        return dict(self._held_by_txn.get(txn, {}))

    def holds(self, txn, item, mode=None):
        """Does ``txn`` hold ``item`` (in ``mode``, if given)?"""
        held = self._held_by_txn.get(txn, {})
        if item not in held:
            return False
        return mode is None or held[item] is mode

    def blockers_of(self, txn, item):
        """Transactions that ``txn``'s queued request on ``item`` waits for.

        These are the current holders plus any *earlier-queued* conflicting
        requests (which will be granted first under FIFO).
        """
        lock = self._items.get(item)
        if lock is None:
            return []
        mode = None
        ahead = []
        for queued_txn, queued_mode in lock.queue:
            if queued_txn == txn:
                mode = queued_mode
                break
            ahead.append((queued_txn, queued_mode))
        if mode is None:
            return []
        blockers = [holder for holder, held in lock.holders.items()
                    if not mode.compatible_with(held)]
        blockers.extend(queued_txn for queued_txn, queued_mode in ahead
                        if not mode.compatible_with(queued_mode))
        return blockers

    # -- state changes -------------------------------------------------------

    def acquire(self, txn, item, mode):
        """Request ``item`` in ``mode`` for ``txn``.

        Returns :class:`LockRequestState`. Re-requesting a held item in the
        same or weaker mode grants immediately; a READ→WRITE upgrade grants
        iff ``txn`` is the only holder, otherwise it queues (at the front,
        since the upgrade logically precedes every queued request).
        """
        lock = self._item(item)
        held = self._held_by_txn.setdefault(txn, {})
        if item in held:
            if held[item] is LockMode.WRITE or mode is LockMode.READ:
                return LockRequestState.GRANTED
            if len(lock.holders) == 1:  # sole reader upgrading
                lock.holders[txn] = LockMode.WRITE
                held[item] = LockMode.WRITE
                return LockRequestState.GRANTED
            lock.queue.appendleft((txn, LockMode.WRITE))
            return LockRequestState.WAITING
        if not lock.queue and lock.compatible(mode, txn):
            lock.holders[txn] = mode
            held[item] = mode
            return LockRequestState.GRANTED
        lock.queue.append((txn, mode))
        return LockRequestState.WAITING

    def drop_queued(self, txn):
        """Remove ``txn``'s queued (not yet granted) requests everywhere.

        Used when a waiting transaction is chosen as a deadlock victim: its
        wait edges disappear immediately, while its *held* locks are only
        released when its client's abort-release arrives. Returns newly
        granted (txn, item, mode) triples (dropping a queued writer can
        unblock readers behind it).
        """
        granted = []
        for item, lock in list(self._items.items()):
            before = len(lock.queue)
            if before:
                lock.queue = deque(
                    entry for entry in lock.queue if entry[0] != txn)
                if len(lock.queue) != before:
                    granted.extend(self._grant_from_queue(item, lock))
        return granted

    def release_all(self, txn):
        """Release every lock held by ``txn`` and drop its queued requests.

        Returns the list of newly granted (txn, item, mode) triples, in
        grant order.
        """
        granted = []
        held = self._held_by_txn.pop(txn, {})
        for item in held:
            lock = self._items[item]
            lock.holders.pop(txn, None)
            granted.extend(self._grant_from_queue(item, lock))
        # Drop queued requests of the released txn on other items.
        for item, lock in list(self._items.items()):
            before = len(lock.queue)
            if before:
                lock.queue = deque(
                    entry for entry in lock.queue if entry[0] != txn)
                if len(lock.queue) != before:
                    granted.extend(self._grant_from_queue(item, lock))
        return granted

    def _grant_from_queue(self, item, lock):
        granted = []
        while lock.queue:
            txn, mode = lock.queue[0]
            upgrade = txn in lock.holders
            if upgrade:
                # READ→WRITE upgrade waiting at the head.
                if len(lock.holders) != 1:
                    break
                lock.queue.popleft()
                lock.holders[txn] = LockMode.WRITE
                self._held_by_txn[txn][item] = LockMode.WRITE
                granted.append((txn, item, LockMode.WRITE))
                continue
            if lock.holders and not (
                    mode is LockMode.READ and all(
                        held is LockMode.READ
                        for held in lock.holders.values())):
                break
            lock.queue.popleft()
            lock.holders[txn] = mode
            self._held_by_txn.setdefault(txn, {})[item] = mode
            granted.append((txn, item, mode))
            if mode is LockMode.WRITE:
                break
        if not lock.holders and not lock.queue:
            self._items.pop(item, None)
        return granted

    def __repr__(self):
        active = sum(1 for lock in self._items.values() if lock.holders)
        queued = sum(len(lock.queue) for lock in self._items.values())
        return f"<LockTable {active} held items, {queued} queued requests>"
