"""Lock modes and their compatibility."""

import enum


class LockMode(enum.Enum):
    """Shared (read) and exclusive (write) locks, as in the paper §3.1."""

    READ = "read"
    WRITE = "write"

    @property
    def is_shared(self):
        return self is LockMode.READ

    def compatible_with(self, other):
        """Two locks are compatible only when both are shared."""
        return self is LockMode.READ and other is LockMode.READ

    @classmethod
    def from_read_flag(cls, is_read):
        """Map the workload's read/write coin flip to a mode."""
        return cls.READ if is_read else cls.WRITE

    def __str__(self):
        return self.value
