"""Result analysis and rendering: text tables, ASCII plots, crossovers."""

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.crossover import (
    describe_shard_grid,
    find_crossover,
    shard_crossover_grid,
)
from repro.analysis.tables import render_experiment, render_pairs

__all__ = ["ascii_plot", "describe_shard_grid", "find_crossover",
           "render_experiment", "render_pairs", "shard_crossover_grid"]
