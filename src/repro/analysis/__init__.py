"""Result analysis and rendering: text tables, ASCII plots, crossovers."""

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.crossover import find_crossover
from repro.analysis.tables import render_experiment, render_pairs

__all__ = ["ascii_plot", "find_crossover", "render_experiment",
           "render_pairs"]
