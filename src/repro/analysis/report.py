"""One-shot reproduction report: every figure and table as markdown.

Used by ``scripts/reproduce_all.py`` to regenerate the material behind
EXPERIMENTS.md at any fidelity.
"""

from repro.analysis.ascii_plot import ascii_plot
from repro.analysis.crossover import find_crossover
from repro.analysis.tables import (
    render_experiment,
    render_pairs,
    render_rounds_table,
)
from repro.core import experiments as exp
from repro.core.worked_example import run_worked_example
from repro.network.presets import NetworkEnvironment
from repro.obs.rounds import round_table


def _block(title, body):
    return f"## {title}\n\n```\n{body}\n```\n"


def generate_report(fidelity="bench", seed=101, include_plots=True,
                    quick=False, jobs=1):
    """Run the full figure suite; returns a markdown string.

    ``quick`` shrinks every sweep to its endpoints (for tests and smoke
    checks of the reporting pipeline itself).  ``jobs>1`` fans each
    sweep's simulation cells out over a process pool; the report is
    bit-identical to a serial run for the same seed.
    """
    latencies = (1.0, 750.0) if quick else None
    read_probabilities = (0.0, 1.0) if quick else None
    clients = (10, 50) if quick else None
    sections = []

    def kw(**kwargs):
        return {k: v for k, v in kwargs.items() if v is not None}

    def render(result, improvement=True):
        parts = [render_experiment(
            result,
            improvement_between=("s2pl", "g2pl") if improvement
            and "s2pl" in result.series and "g2pl" in result.series
            else None)]
        if include_plots:
            parts.append(ascii_plot(result))
        return "\n\n".join(parts)

    sections.append(_block(
        "Table 1 — Simulation parameters",
        render_pairs("", exp.table1_parameters())))
    sections.append(_block(
        "Table 2 — Networking environments",
        render_pairs("", exp.table2_environments())))
    sections.append(_block(
        "Figure 1 — Worked example", str(run_worked_example())))
    sections.append(_block(
        "Round accounting — 3m vs 2m+1 (traced)",
        render_rounds_table(round_table(ms=(2, 4, 8)))))

    for pr in (0.0, 0.6, 1.0):
        results = exp.latency_sweep_experiment(
            pr, fidelity=fidelity, seed=seed, jobs=jobs,
            **kw(latencies=latencies))
        figure = {0.0: 2, 0.6: 3, 1.0: 4}[pr]
        sections.append(_block(
            f"Figure {figure} — response vs latency (pr={pr:g})",
            render(results["response"])))
        if pr == 0.6:
            sections.append(_block(
                "Figure 8 — aborts vs latency (pr=0.6)",
                render(results["aborts"], improvement=False)))

    for figure, env in ((5, NetworkEnvironment.SS_LAN),
                        (6, NetworkEnvironment.MAN),
                        (7, NetworkEnvironment.L_WAN)):
        result = exp.figure_response_vs_read_probability(
            env, fidelity=fidelity, seed=seed, jobs=jobs,
            **kw(read_probabilities=read_probabilities))
        crossover = find_crossover(result)
        body = render(result)
        body += (f"\n\nmeasured crossover: "
                 f"{crossover if crossover is None else round(crossover, 3)}")
        sections.append(_block(
            f"Figure {figure} — response vs read probability "
            f"({env.name})", body))

    result = exp.figure_aborts_vs_latency(0.8, fidelity=fidelity, seed=seed,
                                          jobs=jobs,
                                          **kw(latencies=latencies))
    sections.append(_block("Figure 9 — aborts vs latency (pr=0.8)",
                           render(result, improvement=False)))

    sections.append(_block(
        "Figure 10 — read-only deadlocks vs latency",
        render(exp.figure_readonly_aborts_vs_latency(fidelity=fidelity,
                                                     seed=seed, jobs=jobs),
               improvement=False)))
    sections.append(_block(
        "Figure 11 — aborts vs forward-list length",
        render(exp.figure_aborts_vs_fl_length(
                   fidelity=fidelity, seed=seed, jobs=jobs,
                   **kw(lengths=(1, 8) if quick else None)),
               improvement=False)))

    for pr, (fig_resp, fig_ab) in ((0.25, (12, 13)), (0.75, (14, 15))):
        results = exp.clients_sweep_experiment(
            pr, fidelity=fidelity, seed=seed, jobs=jobs,
            **kw(client_counts=clients))
        sections.append(_block(
            f"Figure {fig_resp} — response vs clients (pr={pr:g})",
            render(results["response"])))
        sections.append(_block(
            f"Figure {fig_ab} — aborts vs clients (pr={pr:g})",
            render(results["aborts"], improvement=False)))

    header = (f"# Reproduction report (fidelity: {fidelity}, seed {seed})\n")
    return header + "\n" + "\n".join(sections)
