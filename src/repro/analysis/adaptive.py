"""Adaptive-vs-static contention sweep (EXPERIMENTS.md appendix H).

The paper's own crossover analysis shows the s-2PL / g-2PL winner flips
with contention; the hybrid protocol claims to track the winner online.
This module measures that claim: a client-count sweep at the paper's
read-heavy operating point (where the statics split the axis) with
``s2pl``, ``g2pl`` and ``hybrid`` on common random numbers, plus the
acceptance gate the CI job enforces — hybrid within the tolerance of the
best static at *every* point, strictly better than both at *some* point.
"""

from dataclasses import dataclass

#: Client counts swept (the contention axis; latency and items fixed).
ADAPTIVE_CLIENT_SWEEP = (4, 8, 12, 20, 32, 48)

#: Acceptance tolerance: hybrid may trail the best static by at most
#: this fraction at any sweep point (a tighter bar than the repro.perf
#: wall-clock gate's 20% — response means at fixed seeds are stable).
ADAPTIVE_TOLERANCE = 0.05


@dataclass
class AdaptiveRegime:
    """The sweep's two metric views plus the acceptance-gate verdicts."""

    response: object            # ExperimentResult, mean response time
    aborts: object              # ExperimentResult, % aborted
    tolerance: float = ADAPTIVE_TOLERANCE

    def _columns(self):
        hybrid = self.response.series["hybrid"]
        s2pl = self.response.series["s2pl"].ys
        g2pl = self.response.series["g2pl"].ys
        return hybrid.xs, hybrid.ys, s2pl, g2pl

    def matches_best(self):
        """True when hybrid is within ``tolerance`` of the best static
        protocol at every sweep point."""
        xs, hy, s2, g2 = self._columns()
        return all(h <= min(s, g) * (1.0 + self.tolerance)
                   for h, s, g in zip(hy, s2, g2))

    def worst_gap(self):
        """Largest fractional excess of hybrid over the best static
        (negative when hybrid wins everywhere)."""
        _xs, hy, s2, g2 = self._columns()
        return max(h / min(s, g) - 1.0 for h, s, g in zip(hy, s2, g2))

    def beats_both_at(self):
        """Sweep points where hybrid strictly beats *both* statics."""
        xs, hy, s2, g2 = self._columns()
        return [x for x, h, s, g in zip(xs, hy, s2, g2)
                if h < s and h < g]

    @property
    def ok(self):
        return self.matches_best() and bool(self.beats_both_at())


def adaptive_crossover_sweep(fidelity="bench",
                             client_counts=ADAPTIVE_CLIENT_SWEEP,
                             read_probability=0.75, n_items=20,
                             latency=500.0, seed=1, jobs=1,
                             tolerance=ADAPTIVE_TOLERANCE):
    """Sweep client count with both statics and the hybrid protocol.

    ``read_probability=0.75`` is the regime the paper's Figures 14-15
    split: s-2PL's shared read locks win at low load, g-2PL's batching
    wins once backlogs form. The hybrid's contention controller must
    route items to single mode on the left of the axis and grouped mode
    on the right to match (and, between the regimes, beat) the statics.
    """
    from repro.core.experiments import _base_config, sweep_both

    base, replications = _base_config(
        fidelity,
        read_probability=read_probability,
        n_items=n_items,
        network_latency=latency)
    results = sweep_both(
        experiment_ids={"response": "adaptive-response",
                        "aborts": "adaptive-aborts"},
        titles={
            "response": (
                "Mean response time vs client count, "
                f"pr={read_probability:g}, adaptive vs static"),
            "aborts": (
                "Percentage of transactions aborted vs client count, "
                f"pr={read_probability:g}, adaptive vs static")},
        x_label="number of clients",
        base_config=base, replications=replications, xs=client_counts,
        configure=lambda cfg, x: cfg.replace(n_clients=int(x)),
        protocols=("s2pl", "g2pl", "hybrid"),
        seed=seed, jobs=jobs)
    return AdaptiveRegime(response=results["response"],
                          aborts=results["aborts"], tolerance=tolerance)


def describe_adaptive(regime):
    """Human-readable acceptance report for the sweep."""
    xs, hy, s2, g2 = regime._columns()
    lines = [f"adaptive-vs-static gate (tolerance {regime.tolerance:.0%}):"]
    for x, h, s, g in zip(xs, hy, s2, g2):
        best = min(s, g)
        verdict = ("beats both" if h < s and h < g
                   else "matches best" if h <= best * (1 + regime.tolerance)
                   else "LOSES")
        lines.append(
            f"  clients={x:>3g}: hybrid={h:,.0f}  s2pl={s:,.0f}  "
            f"g2pl={g:,.0f}  ({verdict}, vs best "
            f"{(h / best - 1.0):+.1%})")
    wins = regime.beats_both_at()
    lines.append(
        f"  worst gap to best static: {regime.worst_gap():+.1%}; "
        f"beats both statics at "
        f"{len(wins)}/{len(xs)} points"
        + (f" (clients {', '.join(f'{w:g}' for w in wins)})" if wins
           else ""))
    lines.append(f"  gate: {'PASS' if regime.ok else 'FAIL'}")
    return "\n".join(lines)
