"""Plain-text rendering of experiment results."""


def _format_number(value):
    # One decimal everywhere except genuinely small magnitudes (e.g. the
    # scale figure's throughput in txns per time unit), which would all
    # collapse to "0.0".
    if 0.0 < abs(value) < 0.1:
        return f"{value:.3g}"
    return f"{value:,.1f}"


def _format_value(value, half_width):
    if half_width:
        return f"{_format_number(value)} ±{_format_number(half_width)}"
    return f"{_format_number(value)}"


def render_experiment(result, improvement_between=None):
    """Render an :class:`ExperimentResult` as an aligned text table.

    ``improvement_between=(baseline, contender)`` appends the paper-style
    percentage-improvement column.
    """
    names = list(result.series)
    headers = [result.x_label] + names
    if improvement_between:
        headers.append("improvement")
    xs = result.series[names[0]].xs
    rows = []
    for index, x in enumerate(xs):
        row = [f"{x:g}"]
        for name in names:
            series = result.series[name]
            row.append(_format_value(series.ys[index],
                                     series.half_widths[index]))
        if improvement_between:
            baseline, contender = improvement_between
            row.append(f"{result.improvement_at(x, baseline, contender):+.1f}%")
        rows.append(row)
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = [result.title]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    for note in result.notes:
        lines.append(f"note: {note}")
    return "\n".join(lines)


def render_rounds_table(profiles):
    """Render :class:`repro.obs.rounds.RoundProfile` rows as an aligned
    table validating the paper's 3m (s-2PL) vs 2m+1 (g-2PL) message-round
    counts for one fully contended item."""
    headers = ["protocol", "m", "rounds", "expected", "rounds/txn", "ok"]
    rows = []
    for profile in profiles:
        rows.append([
            profile.protocol,
            f"{profile.m}",
            f"{profile.rounds_total}",
            f"{profile.expected_total}",
            f"{profile.mean_rounds_per_commit:.2f}",
            "yes" if profile.matches_expectation else "NO",
        ])
    widths = [max(len(headers[i]), *(len(r[i]) for r in rows))
              for i in range(len(headers))]
    lines = ["Sequential message rounds per committed batch "
             "(one contended item, m competing transactions)"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(c.rjust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def render_pairs(title, pairs):
    """Render simple (name, value) rows — for Tables 1 and 2."""
    width = max(len(str(name)) for name, *_ in pairs)
    lines = [title]
    for name, *rest in pairs:
        lines.append(f"  {str(name).ljust(width)}  "
                     + "  ".join(str(v) for v in rest))
    return "\n".join(lines)
