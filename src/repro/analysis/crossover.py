"""Locating the crossover point between two series (Figures 5-7), plus
the sharded extension: a shard-count x inter-region-latency grid that
maps where each protocol (with cross-shard 2PC) dominates."""

from dataclasses import dataclass
from typing import Optional


def find_crossover(result, first="s2pl", second="g2pl"):
    """The x at which ``second`` stops beating ``first``.

    Scans the difference ``first - second`` and linearly interpolates the
    sign change. Returns None if one protocol dominates everywhere.
    """
    a = result.series[first]
    b = result.series[second]
    diffs = [ya - yb for ya, yb in zip(a.ys, b.ys)]
    for index in range(len(diffs) - 1):
        left, right = diffs[index], diffs[index + 1]
        if left == 0:
            return a.xs[index]
        if (left > 0) != (right > 0):
            x_left, x_right = a.xs[index], a.xs[index + 1]
            fraction = left / (left - right)
            return x_left + fraction * (x_right - x_left)
    return None


# ---------------------------------------------------------------------------
# Sharded dominance grid: shard count x inter-region latency
# ---------------------------------------------------------------------------

#: inter-region one-way latencies swept per shard count (Table 2 span)
SHARD_LATENCY_SWEEP = (1.0, 5.0, 25.0, 100.0, 250.0, 500.0, 750.0)


@dataclass
class ShardRegime:
    """One row of the grid: both response-time curves at a fixed shard
    count, with the latency at which dominance flips (if it does)."""

    n_shards: int
    commit_protocol: str
    response: object            # ExperimentResult, mean response time
    aborts: object              # ExperimentResult, % aborted
    crossover: Optional[float]

    @property
    def dominant(self):
        """``"s2pl"`` / ``"g2pl"`` when one protocol's mean response time
        wins at every swept latency; ``None`` when the axis is split."""
        s = self.response.series["s2pl"].ys
        g = self.response.series["g2pl"].ys
        if all(gy <= sy for sy, gy in zip(s, g)):
            return "g2pl"
        if all(sy <= gy for sy, gy in zip(s, g)):
            return "s2pl"
        return None

    def describe(self):
        xs = self.response.series["s2pl"].xs
        low = self._winner_at(0)
        high = self._winner_at(-1)
        if self.dominant is not None:
            regime = (f"{self.dominant} dominates at every swept "
                      f"inter-region latency")
        elif self.crossover is not None and low != high:
            regime = (f"{low} wins below latency ~{self.crossover:.0f}, "
                      f"{high} above")
        else:
            regime = (f"mixed ({low} at latency {xs[0]:g}, "
                      f"{high} at {xs[-1]:g}, no single sign change)")
        return f"shards={self.n_shards}: {regime}"

    def _winner_at(self, index):
        s = self.response.series["s2pl"].ys[index]
        g = self.response.series["g2pl"].ys[index]
        return "g2pl" if g <= s else "s2pl"


def shard_crossover_grid(shard_counts=(1, 2, 4), latencies=SHARD_LATENCY_SWEEP,
                         fidelity="bench", commit_protocol="2pc",
                         cross_shard_probability=0.2, read_probability=0.6,
                         seed=1, jobs=1):
    """Sweep inter-region latency at each shard count, both protocols.

    Single-shard rows reproduce the paper's one-server sweep; sharded rows
    partition the hot items over ``k`` home servers in two regions (the
    client's home shard is near, the rest are an inter-region hop away)
    and commit cross-shard transactions with 2PC (``commit_protocol``
    picks the classic 2m+3-round protocol or the piggybacked ``2pc-opt``).
    Returns one :class:`ShardRegime` per shard count.
    """
    from repro.core.experiments import _base_config, sweep_both

    regimes = []
    for n_shards in shard_counts:
        sharded = n_shards > 1
        base, replications = _base_config(
            fidelity,
            read_probability=read_probability,
            n_shards=n_shards,
            n_regions=2 if sharded else 1,
            intra_region_latency=1.0,
            commit_protocol=commit_protocol,
            cross_shard_probability=(cross_shard_probability
                                     if sharded else None))
        results = sweep_both(
            experiment_ids={
                "response": f"shard{n_shards}-response",
                "aborts": f"shard{n_shards}-aborts"},
            titles={
                "response": (
                    f"Mean response time vs inter-region latency, "
                    f"{n_shards} shard(s), commit={commit_protocol}"),
                "aborts": (
                    f"Percentage of transactions aborted vs inter-region "
                    f"latency, {n_shards} shard(s), "
                    f"commit={commit_protocol}")},
            x_label="inter-region latency",
            base_config=base, replications=replications, xs=latencies,
            configure=lambda cfg, x: cfg.replace(network_latency=float(x)),
            seed=seed, jobs=jobs)
        regimes.append(ShardRegime(
            n_shards=n_shards, commit_protocol=commit_protocol,
            response=results["response"], aborts=results["aborts"],
            crossover=find_crossover(results["response"])))
    return regimes


def describe_shard_grid(regimes):
    """Human-readable dominance report over the grid rows."""
    if not regimes:
        return "shard grid: no rows"
    head = (f"shard-count x inter-region-latency dominance "
            f"(commit={regimes[0].commit_protocol}):")
    return "\n".join([head] + [f"  {row.describe()}" for row in regimes])
