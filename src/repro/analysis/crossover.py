"""Locating the crossover point between two series (Figures 5-7)."""


def find_crossover(result, first="s2pl", second="g2pl"):
    """The x at which ``second`` stops beating ``first``.

    Scans the difference ``first - second`` and linearly interpolates the
    sign change. Returns None if one protocol dominates everywhere.
    """
    a = result.series[first]
    b = result.series[second]
    diffs = [ya - yb for ya, yb in zip(a.ys, b.ys)]
    for index in range(len(diffs) - 1):
        left, right = diffs[index], diffs[index + 1]
        if left == 0:
            return a.xs[index]
        if (left > 0) != (right > 0):
            x_left, x_right = a.xs[index], a.xs[index + 1]
            fraction = left / (left - right)
            return x_left + fraction * (x_right - x_left)
    return None
