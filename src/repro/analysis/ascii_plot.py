"""Minimal ASCII line plots for experiment series (bench output)."""

from repro.analysis.tables import _format_number

_MARKERS = "*x+o#@"


def ascii_plot(result, width=64, height=16):
    """Plot every series of an ExperimentResult on one ASCII canvas.

    X positions follow the index of each x value (the paper's figures are
    effectively categorical sweeps); y is scaled to the global extent.
    """
    names = list(result.series)
    all_ys = [y for name in names for y in result.series[name].ys]
    if not all_ys:
        return "(empty experiment)"
    y_max = max(all_ys) or 1.0
    y_min = min(0.0, min(all_ys))
    span = (y_max - y_min) or 1.0
    n_points = len(result.series[names[0]].xs)
    grid = [[" "] * width for _ in range(height)]
    for series_index, name in enumerate(names):
        marker = _MARKERS[series_index % len(_MARKERS)]
        series = result.series[name]
        for point_index, y in enumerate(series.ys):
            col = (0 if n_points == 1 else
                   round(point_index * (width - 1) / (n_points - 1)))
            row = height - 1 - round((y - y_min) / span * (height - 1))
            grid[row][col] = marker
    lines = [result.title]
    lines.append(f"y: {result.y_label}  (max {_format_number(y_max)})")
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    xs = result.series[names[0]].xs
    lines.append(f"x: {result.x_label}: "
                 + " ".join(f"{x:g}" for x in xs))
    legend = "  ".join(f"{_MARKERS[i % len(_MARKERS)]}={name}"
                       for i, name in enumerate(names))
    lines.append(f"legend: {legend}")
    return "\n".join(lines)
