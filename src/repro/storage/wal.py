"""A write-ahead log with commit records and garbage collection."""

import enum
from dataclasses import dataclass


class LogRecordType(enum.Enum):
    UPDATE = "update"
    COMMIT = "commit"
    ABORT = "abort"


@dataclass(frozen=True)
class LogRecord:
    """One WAL entry."""

    lsn: int
    record_type: LogRecordType
    txn: object
    item_id: object = None
    version: int = None
    timestamp: float = 0.0


class WriteAheadLog:
    """Append-only log; the server appends UPDATE records before installing
    new versions and a COMMIT record after, then garbage collects the prefix
    made permanent (the paper's §1 assumption).

    ``durable_lsn`` tracks the last forced record; installs must not precede
    the force of their UPDATE records (asserted by tests).
    """

    def __init__(self):
        self._records = []
        self._next_lsn = 1
        self._truncated_before = 1
        self.durable_lsn = 0
        self.forces = 0

    def __len__(self):
        return len(self._records)

    def append(self, record_type, txn, item_id=None, version=None, now=0.0):
        """Append a record; returns its LSN."""
        record = LogRecord(lsn=self._next_lsn, record_type=record_type,
                           txn=txn, item_id=item_id, version=version,
                           timestamp=now)
        self._records.append(record)
        self._next_lsn += 1
        return record.lsn

    def force(self, up_to_lsn=None):
        """Make the log durable up to ``up_to_lsn`` (default: everything)."""
        target = self._next_lsn - 1 if up_to_lsn is None else up_to_lsn
        if target > self._next_lsn - 1:
            raise ValueError(f"cannot force beyond the log end ({target})")
        if target > self.durable_lsn:
            self.durable_lsn = target
            self.forces += 1
        return self.durable_lsn

    def is_durable(self, lsn):
        return lsn <= self.durable_lsn

    def garbage_collect(self, up_to_lsn):
        """Discard records with lsn <= ``up_to_lsn``; they must be durable.

        Returns the number of records discarded.
        """
        if up_to_lsn > self.durable_lsn:
            raise ValueError(
                f"cannot garbage collect past durable_lsn={self.durable_lsn}")
        keep_from = 0
        for keep_from, record in enumerate(self._records):
            if record.lsn > up_to_lsn:
                break
        else:
            keep_from = len(self._records)
        discarded = keep_from
        if discarded:
            self._records = self._records[keep_from:]
            self._truncated_before = up_to_lsn + 1
        return discarded

    def records(self, record_type=None):
        """Live records, optionally filtered by type."""
        if record_type is None:
            return list(self._records)
        return [r for r in self._records if r.record_type is record_type]

    def tail_lsn(self):
        """LSN of the last appended record (0 when empty since start)."""
        return self._next_lsn - 1
