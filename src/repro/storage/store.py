"""The server's versioned data-item store."""

from dataclasses import dataclass


@dataclass
class DataItem:
    """An installed data item: identity, committed version, opaque value."""

    item_id: int
    version: int = 0
    value: object = None
    installed_at: float = 0.0


class VersionedStore:
    """Holds the committed state of every data item at the server.

    Versions increase by one per installed update; reads return the current
    committed version. The version numbers let the serializability validator
    reconstruct reads-from relationships exactly.
    """

    def __init__(self, item_ids=()):
        self._items = {}
        for item_id in item_ids:
            self.create(item_id)
        self.installs = 0

    def create(self, item_id, value=None):
        """Register a new data item at version 0."""
        if item_id in self._items:
            raise ValueError(f"item {item_id!r} already exists")
        item = DataItem(item_id=item_id, value=value)
        self._items[item_id] = item
        return item

    def __contains__(self, item_id):
        return item_id in self._items

    def __len__(self):
        return len(self._items)

    def item_ids(self):
        return list(self._items)

    def read(self, item_id):
        """Return the committed :class:`DataItem` (not a copy)."""
        return self._items[item_id]

    def version(self, item_id):
        return self._items[item_id].version

    def install(self, item_id, value=None, now=0.0):
        """Install a new committed version; returns the new version number."""
        item = self._items[item_id]
        item.version += 1
        item.value = value
        item.installed_at = now
        self.installs += 1
        return item.version

    def install_as(self, item_id, version, value=None, now=0.0):
        """Install an explicit version number (g-2PL: a returning item may
        carry several chained committed updates at once)."""
        item = self._items[item_id]
        if version <= item.version:
            raise ValueError(
                f"item {item_id}: cannot install version {version} over "
                f"{item.version}")
        item.version = version
        item.value = value
        item.installed_at = now
        self.installs += 1
        return item.version

    def snapshot_versions(self):
        """Mapping item -> version (for assertions in tests)."""
        return {item_id: item.version for item_id, item in self._items.items()}
