"""Server storage substrate: the versioned item store and the write-ahead log.

The paper assumes (§1) "the standard protocol adopted by the s-2PL protocol
where each site uses WAL and garbage collects its log once the data are made
permanent at the server". Recovery itself is out of the paper's scope (it
cites [18] for that), but the logging/installation path is on the hot path of
both protocols — every commit installs new versions at the server — so it is
implemented and exercised here.
"""

from repro.storage.store import DataItem, VersionedStore
from repro.storage.wal import LogRecord, LogRecordType, WriteAheadLog

__all__ = [
    "DataItem",
    "LogRecord",
    "LogRecordType",
    "VersionedStore",
    "WriteAheadLog",
]
