"""Server-side recovery: checkpointing and WAL redo.

The paper assumes the standard s-2PL recovery discipline — write-ahead
logging with log garbage collection once data are permanent at the server
(§1) — and defers the full g-2PL recovery framework to its companion
paper [18]. This module implements the substrate both protocols sit on:

* a fuzzy-free **checkpoint** of the committed store state at a log
  position,
* **crash semantics** — only records forced up to ``durable_lsn`` survive,
* a **redo pass** that replays committed updates after the checkpoint and
  reconstructs the store, and
* a :class:`RecoveryManager` that owns the policy (periodic checkpoints,
  garbage collection only up to the last checkpoint) for a live server.

Invariant checked by the tests: for any crash point, recovery yields
exactly the state whose installs' log records were durable — a prefix of
the committed history, never a torn or phantom update.
"""

from dataclasses import dataclass

from repro.storage.store import VersionedStore
from repro.storage.wal import LogRecordType


@dataclass(frozen=True)
class Checkpoint:
    """A consistent snapshot of the committed store at ``lsn``."""

    lsn: int
    versions: dict
    values: dict
    taken_at: float = 0.0


def take_checkpoint(store, wal, now=0.0):
    """Snapshot the store against the current end of the log.

    The server installs synchronously (no fuzziness needed): everything
    with LSN <= the snapshot point is reflected in the snapshot.
    """
    versions = {}
    values = {}
    for item_id in store.item_ids():
        item = store.read(item_id)
        versions[item_id] = item.version
        values[item_id] = item.value
    return Checkpoint(lsn=wal.tail_lsn(), versions=versions, values=values,
                      taken_at=now)


def surviving_records(wal):
    """What a crash leaves behind: the forced prefix of the log."""
    return [record for record in wal.records()
            if record.lsn <= wal.durable_lsn]


def recover(checkpoint, records):
    """Rebuild a store from a checkpoint plus surviving log records.

    Redo rule: an UPDATE is replayed iff (a) it sits after the checkpoint
    and (b) its transaction's COMMIT record survived — updates whose
    commit was lost with the crash are discarded (the client was never
    acknowledged past the server's force).
    """
    committed = {record.txn for record in records
                 if record.record_type is LogRecordType.COMMIT}
    store = VersionedStore()
    for item_id, version in checkpoint.versions.items():
        item = store.create(item_id, value=checkpoint.values[item_id])
        item.version = version
    for record in records:
        if record.lsn <= checkpoint.lsn:
            continue
        if record.record_type is not LogRecordType.UPDATE:
            continue
        if record.txn not in committed:
            continue
        item = store.read(record.item_id)
        if record.version <= item.version:
            raise RecoveryError(
                f"redo of item {record.item_id} would move version "
                f"backwards ({item.version} -> {record.version})")
        item.version = record.version
        item.value = f"redo:{record.txn}"
        store.installs += 1
    return store


class RecoveryError(Exception):
    """The log and the checkpoint disagree — recovery is impossible."""


@dataclass
class RecoveryManager:
    """Checkpoint policy + crash/recover driver for a live server.

    ``checkpoint_interval`` counts installed updates between checkpoints.
    Garbage collection never crosses the last checkpoint, so the
    checkpoint + surviving log always covers the full committed state.
    """

    store: object
    wal: object
    checkpoint_interval: int = 50
    checkpoint: Checkpoint = None
    installs_since_checkpoint: int = 0
    checkpoints_taken: int = 0

    def __post_init__(self):
        if self.checkpoint_interval < 1:
            raise ValueError("checkpoint_interval must be >= 1")
        self.checkpoint = take_checkpoint(self.store, self.wal)

    def note_installs(self, count, now=0.0):
        """Called by the server after installing ``count`` updates."""
        self.installs_since_checkpoint += count
        if self.installs_since_checkpoint >= self.checkpoint_interval:
            self.checkpoint = take_checkpoint(self.store, self.wal, now)
            self.checkpoints_taken += 1
            self.installs_since_checkpoint = 0

    def gc_horizon(self):
        """Highest LSN that may be garbage collected."""
        return min(self.wal.durable_lsn, self.checkpoint.lsn)

    def recover_after_crash(self):
        """Simulate a crash now and return the recovered store."""
        return recover(self.checkpoint, surviving_records(self.wal))

    def verify_against_live(self):
        """Recovered state must equal the live committed state whenever
        the whole log is durable (no in-flight force)."""
        recovered = self.recover_after_crash()
        live = self.store.snapshot_versions()
        rebuilt = recovered.snapshot_versions()
        if live != rebuilt:
            raise RecoveryError(
                f"recovered versions {rebuilt} != live {live}")
        return True
