"""Recording what every transaction actually read and wrote."""

from dataclasses import dataclass

from repro.locking.modes import LockMode


@dataclass(frozen=True)
class AccessRecord:
    """One data access: which version a transaction read or produced.

    For a READ, ``version`` is the committed version observed. For a WRITE,
    ``version`` is the new version the transaction produced (observed
    version + 1 within the item's forwarding chain).
    """

    txn_id: int
    item_id: int
    mode: object  # LockMode
    version: int
    time: float


class HistoryRecorder:
    """Collects access records and transaction outcomes for one run."""

    def __init__(self, enabled=True):
        self.enabled = enabled
        self.accesses = []
        self.committed = set()
        self.aborted = set()
        self.commit_times = {}

    def record_access(self, txn_id, item_id, mode, version, time):
        if self.enabled:
            self.accesses.append(
                AccessRecord(txn_id, item_id, mode, version, time))

    def record_commit(self, txn_id, time=None):
        if self.enabled:
            if txn_id in self.aborted:
                raise ValueError(f"txn {txn_id} committed after abort")
            self.committed.add(txn_id)
            if time is not None:
                self.commit_times[txn_id] = time

    def record_abort(self, txn_id, time=None):
        if self.enabled:
            if txn_id in self.committed:
                raise ValueError(f"txn {txn_id} aborted after commit")
            self.aborted.add(txn_id)

    def committed_accesses(self):
        """Access records of committed transactions only."""
        return [record for record in self.accesses
                if record.txn_id in self.committed]

    def reads(self, committed_only=True):
        records = self.committed_accesses() if committed_only else self.accesses
        return [r for r in records if r.mode is LockMode.READ]

    def writes(self, committed_only=True):
        records = self.committed_accesses() if committed_only else self.accesses
        return [r for r in records if r.mode is LockMode.WRITE]

    def __len__(self):
        return len(self.accesses)
