"""Conflict-graph serializability checking over recorded histories."""

from collections import defaultdict
from dataclasses import dataclass, field

from repro.locking.modes import LockMode


@dataclass
class SerializabilityReport:
    """Outcome of checking one run's history."""

    serializable: bool
    cycle: list = None
    anomalies: list = field(default_factory=list)
    n_txns: int = 0
    n_edges: int = 0

    @property
    def ok(self):
        return self.serializable and not self.anomalies

    def __str__(self):
        if self.ok:
            return (f"serializable: {self.n_txns} committed txns, "
                    f"{self.n_edges} conflict edges")
        problems = []
        if not self.serializable:
            problems.append(f"conflict cycle {self.cycle}")
        problems.extend(self.anomalies)
        return "NOT OK: " + "; ".join(problems)


def build_conflict_graph(history):
    """Return (edges: dict txn -> set(txn), anomalies: list of strings).

    Edges follow version arithmetic per item:
    ww: writer(v) -> writer(v');  wr: writer(v) -> reader(v);
    rw: reader(v) -> writer(v+1)  (only adjacent ww edges are added; the
    rest are implied transitively).
    """
    anomalies = []
    committed = history.committed
    writes_by_item = defaultdict(dict)   # item -> version -> txn
    reads_by_item = defaultdict(list)    # item -> [(version, txn)]
    for record in history.accesses:
        if record.txn_id not in committed:
            continue
        if record.mode is LockMode.WRITE:
            existing = writes_by_item[record.item_id].get(record.version)
            if existing is not None and existing != record.txn_id:
                anomalies.append(
                    f"item {record.item_id}: version {record.version} "
                    f"written by both txn {existing} and txn {record.txn_id}")
            writes_by_item[record.item_id][record.version] = record.txn_id
        else:
            reads_by_item[record.item_id].append(
                (record.version, record.txn_id))

    edges = defaultdict(set)
    for item_id, versions in writes_by_item.items():
        ordered = sorted(versions)
        expected = list(range(ordered[0], ordered[0] + len(ordered)))
        if ordered != expected:
            anomalies.append(
                f"item {item_id}: committed versions {ordered} have gaps")
        for earlier, later in zip(ordered, ordered[1:]):
            if versions[earlier] != versions[later]:
                edges[versions[earlier]].add(versions[later])

    for item_id, read_list in reads_by_item.items():
        versions = writes_by_item.get(item_id, {})
        max_written = max(versions) if versions else 0
        for version, reader in read_list:
            if version > max_written:
                # Read of a version no committed transaction produced
                # (version 0 is the initial state and always fine).
                if version != 0:
                    anomalies.append(
                        f"item {item_id}: txn {reader} read version "
                        f"{version} but max committed is {max_written}")
                continue
            writer = versions.get(version)
            if writer is None and version != 0:
                anomalies.append(
                    f"item {item_id}: txn {reader} read version {version} "
                    f"which no committed transaction wrote")
            if writer is not None and writer != reader:
                edges[writer].add(reader)  # wr
            next_writer = versions.get(version + 1)
            if next_writer is not None and next_writer != reader:
                edges[reader].add(next_writer)  # rw
    return edges, anomalies


def _find_cycle(edges):
    color = {}
    parent = {}
    nodes = set(edges)
    for targets in edges.values():
        nodes |= targets
    for root in nodes:
        if root in color:
            continue
        stack = [(root, iter(edges.get(root, ())))]
        color[root] = "grey"
        while stack:
            node, iterator = stack[-1]
            advanced = False
            for nxt in iterator:
                if color.get(nxt) == "grey":
                    cycle = [nxt]
                    cursor = node
                    while cursor != nxt:
                        cycle.append(cursor)
                        cursor = parent[cursor]
                    cycle.append(nxt)
                    cycle.reverse()
                    return cycle
                if nxt not in color:
                    color[nxt] = "grey"
                    parent[nxt] = node
                    stack.append((nxt, iter(edges.get(nxt, ()))))
                    advanced = True
                    break
            if not advanced:
                color[node] = "black"
                stack.pop()
    return None


def check_history(history):
    """Check one run's history; returns a :class:`SerializabilityReport`."""
    edges, anomalies = build_conflict_graph(history)
    cycle = _find_cycle(edges)
    return SerializabilityReport(
        serializable=cycle is None,
        cycle=cycle,
        anomalies=anomalies,
        n_txns=len(history.committed),
        n_edges=sum(len(targets) for targets in edges.values()),
    )
