"""Strictness / commit-order checks over recorded histories.

Both protocols claim strict executions (locks held to commit; an MR1W
writer's updates are parked until the readers release). Two observable
consequences, checked here independently of the protocols:

1. **Reads see only committed state** — a read of version v happens at or
   after the commit of the transaction that produced v.
2. **No overwriting of uncommitted state** — the write producing version
   v+1 happens at or after the commit of the writer of v.

Both need commit timestamps, which the clients record at their local
commit point.
"""

from collections import defaultdict
from dataclasses import dataclass, field

from repro.locking.modes import LockMode

# Floating-point slack for same-instant events (commit and forward share a
# timestamp at the committing client).
_EPSILON = 1e-9


@dataclass
class StrictnessReport:
    """Outcome of the strictness checks on one run's history."""

    violations: list = field(default_factory=list)
    n_reads_checked: int = 0
    n_writes_checked: int = 0

    @property
    def ok(self):
        return not self.violations

    def __str__(self):
        if self.ok:
            return (f"strict: {self.n_reads_checked} reads and "
                    f"{self.n_writes_checked} overwrites verified")
        return "NOT STRICT: " + "; ".join(self.violations[:5])


def check_strictness(history):
    """Check both strictness consequences; returns a
    :class:`StrictnessReport`. Transactions without a recorded commit time
    are skipped (the recorder may be configured not to collect them)."""
    report = StrictnessReport()
    commit_times = history.commit_times
    committed = history.committed
    writers_of = defaultdict(dict)  # item -> version -> (txn, write time)
    for record in history.accesses:
        if record.txn_id in committed and record.mode is LockMode.WRITE:
            writers_of[record.item_id][record.version] = (
                record.txn_id, record.time)

    for record in history.accesses:
        if record.txn_id not in committed:
            continue
        versions = writers_of.get(record.item_id, {})
        if record.mode is LockMode.READ:
            producer = versions.get(record.version)
            if producer is None:
                continue  # initial version or checked elsewhere
            writer, _write_time = producer
            if writer == record.txn_id:
                continue
            commit = commit_times.get(writer)
            if commit is None:
                continue
            report.n_reads_checked += 1
            if record.time < commit - _EPSILON:
                report.violations.append(
                    f"txn {record.txn_id} read item {record.item_id} "
                    f"v{record.version} at {record.time:.3f} before its "
                    f"writer {writer} committed at {commit:.3f}")
        else:
            predecessor = versions.get(record.version - 1)
            if predecessor is None:
                continue
            prev_writer, _ = predecessor
            if prev_writer == record.txn_id:
                continue
            commit = commit_times.get(prev_writer)
            if commit is None:
                continue
            report.n_writes_checked += 1
            if record.time < commit - _EPSILON:
                report.violations.append(
                    f"txn {record.txn_id} wrote item {record.item_id} "
                    f"v{record.version} at {record.time:.3f} before the "
                    f"previous writer {prev_writer} committed at "
                    f"{commit:.3f}")
    return report
