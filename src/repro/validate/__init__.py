"""Correctness validation: execution histories and serializability checking.

Both protocols claim to produce serializable, strict executions. The
simulator records every committed access with the exact data-item version it
observed or produced; the checker reconstructs the conflict graph from those
versions and asserts acyclicity, independently of any protocol internals.
"""

from repro.validate.history import AccessRecord, HistoryRecorder
from repro.validate.serializability import (
    SerializabilityReport,
    build_conflict_graph,
    check_history,
)
from repro.validate.strictness import StrictnessReport, check_strictness

__all__ = [
    "AccessRecord",
    "HistoryRecorder",
    "SerializabilityReport",
    "StrictnessReport",
    "build_conflict_graph",
    "check_history",
    "check_strictness",
]
