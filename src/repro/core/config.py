"""Simulation configuration: every knob of the paper's system model."""

import dataclasses
import enum
from dataclasses import dataclass
from typing import Optional


class Fidelity(enum.Enum):
    """Run-length bundles (transactions per run, replications).

    ``PAPER`` matches the published methodology (50,000 transactions per
    run after the transient phase, 5 independent replications); ``BENCH``
    is the default scale for the benchmark suite; ``SMOKE`` is for tests.
    """

    SMOKE = ("smoke", 300, 30, 1)
    BENCH = ("bench", 1000, 100, 2)
    PAPER = ("paper", 50_000, 5_000, 5)

    def __init__(self, label, transactions, warmup, replications):
        self.label = label
        self.transactions = transactions
        self.warmup = warmup
        self.replications = replications


#: Protocol names whose client/server pair reads the adapt_* flags
#: (see repro.protocols.adaptive). Kept here so config validation and
#: the runner need not import the protocol registry.
ADAPTIVE_PROTOCOLS = frozenset({"g2pl-adaptive", "hybrid", "g2pl-spec"})


@dataclass
class SimulationConfig:
    """All parameters of one simulation run (Table 1 defaults).

    Workload (Table 1): ``n_clients`` identical clients, MPL 1, each
    transaction accesses 1–5 distinct items out of 25 hot items, each
    access is a read with probability ``read_probability``, think time
    U(1,3) per operation, idle time U(2,10) between transactions.

    Network: uniform latency between every pair of sites; transmission
    delay negligible unless ``bandwidth`` is set (data units per time unit).
    """

    protocol: str = "g2pl"
    n_clients: int = 50
    n_items: int = 25
    min_ops: int = 1
    max_ops: int = 5
    read_probability: float = 0.6
    network_latency: float = 500.0
    bandwidth: Optional[float] = None
    think_min: float = 1.0
    think_max: float = 3.0
    idle_min: float = 2.0
    idle_max: float = 10.0
    data_item_size: float = 8.0
    server_processing_time: float = 0.0
    access_skew: float = 0.0  # 0 = paper's uniform access; >0 = Zipf-like
    mpl: int = 1              # multiprogramming level per client (Table 1: 1)
    # installed updates between server checkpoints; None = aggressive log
    # truncation with no crash-recovery coverage (the paper's assumption)
    checkpoint_interval: Optional[int] = None

    # s-2PL options
    victim_policy: str = "requester"  # or "youngest" / "oldest"

    # g-2PL options
    mr1w: bool = True
    expand_read_groups: bool = False
    max_forward_list_length: Optional[int] = None
    fl_ordering: str = "fifo"  # or "reads_first" / "writes_first"

    # c-2PL options
    cache_capacity: Optional[int] = None  # None = unbounded client cache

    # sharding / geo-topology. With n_shards > 1 the item space is
    # partitioned across that many home servers; n_regions > 1 groups
    # shards and clients into regions (intra-region hops cost
    # intra_region_latency, inter-region hops cost network_latency).
    n_shards: int = 1
    n_regions: int = 1
    intra_region_latency: float = 1.0
    # cross-shard commit: "2pc" (classic prepare/vote/decide) or
    # "2pc-opt" (votes piggyback on the last lock grant per shard)
    commit_protocol: str = "2pc"
    # None keeps the single-server workload untouched; a probability p
    # makes each transaction cross-shard-eligible with probability p
    # (items drawn from the full pool) and home-shard-local otherwise
    cross_shard_probability: Optional[float] = None

    # open-arrival client populations. With population = N, each client
    # site stops being one closed-loop MPL-1 terminal and instead
    # multiplexes its share of N logical users as a state machine: traffic
    # arrives via an open arrival process ("poisson", "burst", or
    # "diurnal") at arrival_rate transactions per user per time unit,
    # with Zipf hot-key skew (access_skew) and a mixed transaction-class
    # profile (txn_mix). None keeps the paper's closed-loop driver and a
    # byte-identical trajectory for every existing experiment and golden.
    population: Optional[int] = None
    arrival: str = "poisson"
    arrival_rate: float = 0.001
    # burst arrivals: the first burst_fraction of every burst_period runs
    # at burst_factor x the base rate, the rest at a reduced rate chosen
    # so the long-run mean stays arrival_rate
    burst_factor: float = 6.0
    burst_fraction: float = 0.1
    burst_period: float = 2000.0
    # diurnal arrivals: rate(t) = base * (1 + amplitude*sin(2*pi*t/period))
    diurnal_period: float = 20000.0
    diurnal_amplitude: float = 0.8
    # transaction-class mix, e.g. "browse:6:1-3:0.9,update:3:2-5:0.3";
    # each class is name:weight:min-max:read_probability. None = one
    # class with the workload's min_ops/max_ops/read_probability.
    txn_mix: Optional[str] = None
    # admission control: arrivals beyond this many in-flight transactions
    # per site are shed (counted, not queued) — bounds memory and models
    # a saturated front door rather than an infinite backlog
    max_inflight_per_site: int = 256

    # streaming metrics: None auto-selects bounded-memory reservoir/
    # Welford collection when total_transactions exceeds
    # streaming_threshold; True/False force the choice. Small runs keep
    # exact per-transaction lists so goldens stay byte-identical.
    streaming: Optional[bool] = None
    streaming_threshold: int = 20_000
    reservoir_capacity: int = 8192
    throughput_window: float = 1000.0

    # fault injection: a FaultSpec, a spec string for FaultSpec.parse
    # ("loss=0.05,crash=3@10000:20000"), or None for a perfect network
    faults: Optional[object] = None

    # run control
    total_transactions: int = 1500
    warmup_transactions: int = 150
    seed: int = 1
    record_history: bool = True
    # run-length accounting: "global" stops at the Nth finished
    # transaction anywhere (the paper's rule); "quota" gives each client
    # total/n_clients transactions (remainder to the lowest client ids)
    # and stops when every client has met its quota. Quota termination is
    # decomposable per client, which is what lets LP-partitioned runs
    # reproduce the serial trajectory exactly.
    termination: str = "global"

    # kernel: coalesce same-timestamp deliveries per link into one heap
    # entry that fans out on pop (bit-identical trajectories; see
    # network/transport.py). Off switch for A/B benchmarking.
    batch_delivery: bool = True
    # run shards as conservatively-synchronized logical processes over
    # a process pool (repro.core.lp); requires n_shards > 1, quota
    # termination, and a shard-local workload (cross_shard_probability=0)
    lp: bool = False

    # adaptive concurrency control (repro.adapt): the three controllers
    # behind the g2pl-adaptive / hybrid / g2pl-spec registry entries.
    # Off by default so every static protocol's trajectory is untouched.
    adapt_window: bool = False   # online collection-window sizing
    hybrid: bool = False         # per-item single/grouped mode switching
    speculate: bool = False      # clock-assisted speculative dispatch
    # window controller: integral gain, depth setpoint, and hold bounds
    # (bounds in multiples of network_latency)
    window_gain: float = 0.5
    window_target_depth: float = 3.0
    window_min: float = 0.0
    window_max: float = 2.0
    # contention controller: hysteresis thresholds on the [0, 1) score,
    # and the EWMA depth at which the score reads 0.5. A freeze depth of
    # 1 scores 0.25 at the default scale, so low=0.3 ~= "windows are
    # mostly singletons", high=0.5 ~= "three-deep backlogs".
    hybrid_low: float = 0.3
    hybrid_high: float = 0.5
    hybrid_scale: float = 3.0
    # smoothing weight shared by the adapt estimators
    adapt_ewma: float = 0.3
    # speculation: quiescence bound in multiples of network_latency
    spec_margin: float = 1.5

    # observability (repro.obs): structured tracing and time-series probes.
    # Tracing never perturbs results — metrics are bit-identical either way.
    trace: bool = False
    probe_interval: Optional[float] = None  # sim-time between gauge samples
    trace_engine: bool = False  # per-heap-entry engine events (very hot)

    def __post_init__(self):
        if self.faults is not None:
            from repro.network.faults import FaultSpec

            self.faults = FaultSpec.parse(self.faults)
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.n_items < 1:
            raise ValueError("need at least one data item")
        if not 0.0 <= self.read_probability <= 1.0:
            raise ValueError("read_probability outside [0, 1]")
        if self.network_latency < 0:
            raise ValueError("negative network latency")
        if self.warmup_transactions >= self.total_transactions:
            raise ValueError(
                "warmup_transactions must be below total_transactions")
        if self.mpl < 1:
            raise ValueError("mpl must be >= 1")
        if self.probe_interval is not None and self.probe_interval <= 0:
            raise ValueError("probe_interval must be positive")
        if self.n_shards < 1:
            raise ValueError("n_shards must be >= 1")
        if self.n_shards > self.n_items:
            raise ValueError(
                f"n_shards {self.n_shards} exceeds the "
                f"{self.n_items}-item pool")
        if self.n_regions < 1:
            raise ValueError("n_regions must be >= 1")
        if self.intra_region_latency < 0:
            raise ValueError("negative intra-region latency")
        if self.commit_protocol not in ("2pc", "2pc-opt"):
            raise ValueError(
                f"unknown commit_protocol {self.commit_protocol!r} "
                f"(expected '2pc' or '2pc-opt')")
        if self.cross_shard_probability is not None and not (
                0.0 <= self.cross_shard_probability <= 1.0):
            raise ValueError("cross_shard_probability outside [0, 1]")
        if self.population is not None:
            if self.population < self.n_clients:
                raise ValueError(
                    f"population {self.population} below n_clients "
                    f"{self.n_clients}: every site needs >= 1 logical user")
            if self.arrival_rate <= 0:
                raise ValueError("arrival_rate must be positive")
        if self.arrival not in ("poisson", "burst", "diurnal"):
            raise ValueError(
                f"unknown arrival process {self.arrival!r} "
                f"(expected 'poisson', 'burst', or 'diurnal')")
        if not 0.0 < self.burst_fraction < 1.0:
            raise ValueError("burst_fraction must be in (0, 1)")
        if self.burst_factor < 1.0:
            raise ValueError("burst_factor must be >= 1")
        if self.burst_factor * self.burst_fraction > 1.0:
            raise ValueError(
                f"burst_factor {self.burst_factor:g} x burst_fraction "
                f"{self.burst_fraction:g} exceeds 1: the off-phase rate "
                f"would be negative (mean rate is preserved)")
        if self.burst_period <= 0 or self.diurnal_period <= 0:
            raise ValueError("arrival modulation periods must be positive")
        if not 0.0 <= self.diurnal_amplitude < 1.0:
            raise ValueError("diurnal_amplitude must be in [0, 1)")
        if self.max_inflight_per_site < 1:
            raise ValueError("max_inflight_per_site must be >= 1")
        if self.txn_mix is not None:
            from repro.workload.population import parse_txn_mix

            # Validate eagerly (raises on malformed specs); the parsed
            # classes are rebuilt where needed, the config keeps the string.
            parse_txn_mix(self.txn_mix, n_items=self.n_items)
        if self.termination not in ("global", "quota"):
            raise ValueError(
                f"unknown termination {self.termination!r} "
                f"(expected 'global' or 'quota')")
        if self.termination == "quota" and self.population is not None:
            raise ValueError(
                "quota termination is defined for the closed-loop client "
                "model; open-arrival populations use 'global'")
        if (self.termination == "quota"
                and self.total_transactions < self.n_clients):
            raise ValueError(
                f"quota termination needs total_transactions >= n_clients "
                f"({self.total_transactions} < {self.n_clients})")
        if self.lp and self.n_shards < 2:
            raise ValueError(
                "lp=True partitions the run along shard boundaries; "
                "it needs n_shards > 1")
        if self.window_gain <= 0:
            raise ValueError("window_gain must be positive")
        if self.window_target_depth <= 0:
            raise ValueError("window_target_depth must be positive")
        if not 0.0 <= self.window_min <= self.window_max:
            raise ValueError(
                f"window bounds must satisfy 0 <= window_min <= window_max "
                f"(got {self.window_min:g}..{self.window_max:g})")
        if not 0.0 <= self.hybrid_low <= self.hybrid_high <= 1.0:
            raise ValueError(
                f"hybrid thresholds must satisfy 0 <= low <= high <= 1 "
                f"(got {self.hybrid_low:g}..{self.hybrid_high:g})")
        if self.hybrid_scale <= 0:
            raise ValueError("hybrid_scale must be positive")
        if not 0.0 < self.adapt_ewma <= 1.0:
            raise ValueError("adapt_ewma must be in (0, 1]")
        if self.spec_margin <= 0:
            raise ValueError("spec_margin must be positive")
        adaptive = self.protocol in ADAPTIVE_PROTOCOLS
        if (self.adapt_window or self.hybrid or self.speculate) \
                and not adaptive:
            raise ValueError(
                "adapt_window/hybrid/speculate need an adaptive protocol "
                f"({', '.join(sorted(ADAPTIVE_PROTOCOLS))}); "
                f"got protocol={self.protocol!r}")
        if adaptive:
            if self.lp and (self.hybrid or self.protocol == "hybrid"):
                raise ValueError(
                    "lp=True is unsupported with hybrid mode switching: "
                    "the LP partitioner replays shard-local trajectories, "
                    "but per-item mode epochs are driven by a shared "
                    "contention stream the partition would have to merge. "
                    "Run the hybrid protocol with lp=False")
            if self.n_shards != 1:
                raise ValueError(
                    "adaptive protocols are single-server for now "
                    f"(protocol={self.protocol!r} with "
                    f"n_shards={self.n_shards})")
            if self.speculate and self.faults is not None:
                raise ValueError(
                    "speculative dispatch is incompatible with fault "
                    "injection: a crash mid-extension would need the "
                    "chain-repair watchdog to reason about pre-frozen "
                    "windows it has never seen. Disable speculate (or "
                    "drop the fault spec) — crash faults with g2pl use "
                    "the chain-repair path instead")
        if self.streaming_threshold < 0:
            raise ValueError("streaming_threshold must be >= 0")
        if self.reservoir_capacity < 2:
            raise ValueError("reservoir_capacity must be >= 2")
        if self.throughput_window <= 0:
            raise ValueError("throughput_window must be positive")

    @property
    def streaming_enabled(self):
        """The run's effective metrics mode (explicit flag or threshold)."""
        if self.streaming is not None:
            return self.streaming
        return self.total_transactions > self.streaming_threshold

    def replace(self, **changes):
        """A copy with ``changes`` applied (validation re-runs)."""
        return dataclasses.replace(self, **changes)

    def with_fidelity(self, fidelity):
        """A copy at the given :class:`Fidelity` run length."""
        if isinstance(fidelity, str):
            fidelity = Fidelity[fidelity.upper()]
        return self.replace(total_transactions=fidelity.transactions,
                            warmup_transactions=fidelity.warmup)

    def workload_params(self):
        from repro.workload.generator import WorkloadParams

        return WorkloadParams(
            n_items=self.n_items,
            min_ops=self.min_ops,
            max_ops=self.max_ops,
            read_probability=self.read_probability,
            think_min=self.think_min,
            think_max=self.think_max,
            idle_min=self.idle_min,
            idle_max=self.idle_max,
            access_skew=self.access_skew,
            n_shards=self.n_shards,
            cross_shard_probability=self.cross_shard_probability,
        )

    def describe(self):
        """One-line summary for experiment logs."""
        sharding = ""
        if self.n_shards > 1:
            sharding = (f" shards={self.n_shards} regions={self.n_regions} "
                        f"commit={self.commit_protocol}")
        popn = ""
        if self.population is not None:
            popn = (f" population={self.population} arrival={self.arrival}"
                    f"@{self.arrival_rate:g}/user zipf={self.access_skew:g}")
        adapt = ""
        if self.adapt_window or self.hybrid or self.speculate:
            knobs = []
            if self.adapt_window:
                knobs.append(f"window(gain={self.window_gain:g} "
                             f"target={self.window_target_depth:g} "
                             f"hold={self.window_min:g}..{self.window_max:g})")
            if self.hybrid:
                knobs.append(f"hybrid({self.hybrid_low:g}"
                             f"..{self.hybrid_high:g})")
            if self.speculate:
                knobs.append(f"spec(margin={self.spec_margin:g})")
            adapt = " adapt=" + "+".join(knobs)
        return (f"{self.protocol} clients={self.n_clients} "
                f"items={self.n_items} pr={self.read_probability:g} "
                f"latency={self.network_latency:g} "
                f"txns={self.total_transactions}{sharding}{popn}{adapt}")
