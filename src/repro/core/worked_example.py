"""Figure 1: the paper's worked example of exclusive access under g-2PL.

Three clients each run a transaction that exclusively accesses the same
data item; every message transfer costs 2 units of network latency and
processing takes 1 unit per transaction; all three requests fall into the
same collection window. The paper's timeline gives a total execution time
of 15 units for s-2PL versus 12 for g-2PL (a 20% reduction); measured from
"lock first available" to "final release arrives at the server", the exact
round arithmetic is m·(2L+P) = 15 for s-2PL versus (m+1)·L + m·P = 11 for
g-2PL (the paper's figure counts one extra unit; see EXPERIMENTS.md).

This module reproduces the scenario *with the actual protocol
implementations*, not with the closed-form formulas: a primer transaction
holds the item so the three requests land in one collection window, and
the span is measured between the server's installation events.
"""

from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.locking.modes import LockMode
from repro.network.topology import UniformTopology
from repro.network.transport import Network
from repro.protocols.registry import make_protocol
from repro.sim.engine import Simulator
from repro.storage.store import VersionedStore
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder
from repro.workload.spec import Operation, TransactionSpec
from repro.protocols.transaction import Transaction


@dataclass(frozen=True)
class WorkedExampleResult:
    """Measured spans (simulation units) for the Figure 1 scenario."""

    s2pl_span: float
    g2pl_span: float
    s2pl_rounds: int
    g2pl_rounds: int

    @property
    def improvement_percentage(self):
        return 100.0 * (self.s2pl_span - self.g2pl_span) / self.s2pl_span

    def __str__(self):
        return (f"Figure 1: s-2PL {self.s2pl_span:g} units "
                f"({self.s2pl_rounds} rounds) vs g-2PL {self.g2pl_span:g} "
                f"units ({self.g2pl_rounds} rounds): "
                f"{self.improvement_percentage:.1f}% faster")


class _RecordingStore(VersionedStore):
    """Versioned store that remembers when each version was installed."""

    def __init__(self, item_ids):
        super().__init__(item_ids)
        self.install_times = []

    def install(self, item_id, value=None, now=0.0):
        version = super().install(item_id, value=value, now=now)
        self.install_times.append((version, now))
        return version

    def install_as(self, item_id, version, value=None, now=0.0):
        version = super().install_as(item_id, version, value=value, now=now)
        self.install_times.append((version, now))
        return version


def _write_spec(think):
    return TransactionSpec(operations=(
        Operation(item_id=0, mode=LockMode.WRITE, think_time=think),))


def _run_scenario(protocol, n_clients=3, latency=2.0, processing=1.0):
    config = SimulationConfig(
        protocol=protocol, n_clients=n_clients + 1, n_items=1,
        network_latency=latency, read_probability=0.0,
        total_transactions=10, warmup_transactions=0, record_history=True)
    sim = Simulator()
    history = HistoryRecorder()
    store = _RecordingStore(range(1))
    wal = WriteAheadLog()
    network = Network(sim, UniformTopology(latency))
    client_ids = list(range(1, n_clients + 2))
    server, clients = make_protocol(protocol, sim, config, store, wal,
                                    history, client_ids)
    network.add_site(server)
    for client in clients.values():
        network.add_site(client)

    primer_client = client_ids[-1]

    def launch(client_id, txn_id, delay):
        def body():
            yield sim.timeout(delay)
            txn = Transaction(txn_id, client_id, _write_spec(processing),
                              birth=sim.now)
            outcome = yield sim.spawn(clients[client_id].execute(txn))
            return outcome
        return sim.spawn(body())

    # The primer transaction takes the item first, so the three contenders'
    # requests all arrive while the item is away — one collection window.
    launch(primer_client, txn_id=100, delay=0.0)
    for index in range(n_clients):
        launch(client_ids[index], txn_id=index + 1, delay=1.0)
    sim.run()

    times = dict(store.install_times)
    # s-2PL installs one version per commit release; g-2PL installs the
    # primer's version and then the chain's final version in one return.
    if 1 not in times or max(times) != n_clients + 1:
        raise RuntimeError(
            f"{protocol}: expected versions 1..{n_clients + 1} to reach the "
            f"server, got {sorted(times)}")
    lock_free_at = times[1]             # primer's release reaches the server
    last_release_at = times[max(times)]  # final contender state installed
    return last_release_at - lock_free_at


def run_worked_example(n_clients=3, latency=2.0, processing=1.0):
    """Reproduce Figure 1; returns a :class:`WorkedExampleResult`."""
    return WorkedExampleResult(
        s2pl_span=_run_scenario("s2pl", n_clients, latency, processing),
        g2pl_span=_run_scenario("g2pl", n_clients, latency, processing),
        s2pl_rounds=3 * n_clients,
        g2pl_rounds=2 * n_clients + 1,
    )
