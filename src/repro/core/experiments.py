"""The paper's experiments: one constructor per table/figure.

Every figure in §5 is a sweep: run both protocols over an x-axis
(network latency, read probability, forward-list length, or client count)
with replications, and collect mean response time and abort percentage.
:class:`ExperimentResult` holds the series; :mod:`repro.analysis` renders
them; ``benchmarks/`` regenerates each one as a pytest-benchmark target.

Scale: the paper ran 50,000 transactions x 5 replications per point on a
1997 workstation (34 hours per run). The default scale here is chosen so
the full figure suite finishes in minutes; pass ``fidelity="paper"`` for
the published run lengths.
"""

from dataclasses import dataclass, field
from typing import Dict

from repro.core.config import Fidelity, SimulationConfig
from repro.core.parallel import run_cells
from repro.core.runner import aggregate_runs, replication_cells
from repro.network.presets import LATENCY_SWEEP, TABLE2_ENVIRONMENTS
from repro.stats.ci import mean_confidence_interval

#: Read probabilities swept in Figures 5-7.
READ_PROBABILITY_SWEEP = (0.0, 0.1, 0.2, 0.3, 0.4, 0.5,
                          0.6, 0.7, 0.8, 0.9, 1.0)

#: Client counts swept in Figures 12-15 (the paper plots 0-150).
CLIENT_SWEEP = (10, 25, 50, 75, 100, 150)

#: Message-loss probabilities swept in the fault-injection experiment
#: (not in the paper, which assumes a reliable network).
LOSS_SWEEP = (0.0, 0.005, 0.01, 0.02, 0.05)


@dataclass
class ExperimentSeries:
    """One curve: y (with CI half-widths) against the x-axis."""

    name: str
    xs: list = field(default_factory=list)
    ys: list = field(default_factory=list)
    half_widths: list = field(default_factory=list)

    def add(self, x, ci):
        self.xs.append(x)
        self.ys.append(ci.mean)
        self.half_widths.append(ci.half_width)

    def y_at(self, x):
        return self.ys[self.xs.index(x)]


@dataclass
class ExperimentResult:
    """Everything a figure/table reproduction produced."""

    experiment_id: str
    title: str
    x_label: str
    y_label: str
    series: Dict[str, ExperimentSeries] = field(default_factory=dict)
    notes: list = field(default_factory=list)

    def series_for(self, name):
        return self.series.setdefault(name, ExperimentSeries(name))

    def improvement_at(self, x, baseline="s2pl", contender="g2pl"):
        """Paper-style percentage improvement of contender over baseline."""
        base = self.series[baseline].y_at(x)
        new = self.series[contender].y_at(x)
        return 100.0 * (base - new) / base if base else 0.0


def _resolve_fidelity(fidelity):
    if isinstance(fidelity, Fidelity):
        return fidelity
    return Fidelity[str(fidelity).upper()]


def _base_config(fidelity, **overrides):
    fid = _resolve_fidelity(fidelity)
    defaults = dict(total_transactions=fid.transactions,
                    warmup_transactions=fid.warmup,
                    record_history=False)
    defaults.update(overrides)
    return SimulationConfig(**defaults), fid.replications


def sweep_both(experiment_ids, titles, x_label, base_config, replications,
               xs, configure, protocols=("s2pl", "g2pl"), seed=1, jobs=1,
               progress=None):
    """Generic experiment driver, collecting both paper metrics per run.

    ``configure(config, x)`` returns the config for one x-axis point.
    Returns ``{"response": ExperimentResult, "aborts": ExperimentResult}``
    built from the *same* simulation runs (mean transaction response time
    and percentage of transactions aborted are two views of one sweep).
    Identical seeds per replication index across protocols (common random
    numbers).

    ``jobs>1`` fans out the full protocols x points x replications
    cross-product over a process pool; the series are bit-identical to
    the serial sweep for the same ``seed``.  ``progress(done, total)``
    reports completed simulation cells.
    """
    results = {
        "response": ExperimentResult(
            experiment_id=experiment_ids.get("response", "?"),
            title=titles.get("response", ""), x_label=x_label,
            y_label="mean response time"),
        "aborts": ExperimentResult(
            experiment_id=experiment_ids.get("aborts", "?"),
            title=titles.get("aborts", ""), x_label=x_label,
            y_label="% transactions aborted"),
    }
    points = []
    cells = []
    for protocol in protocols:
        for x in xs:
            config = configure(base_config.replace(protocol=protocol), x)
            points.append((protocol, x, config))
            cells.extend(replication_cells(config, replications,
                                           base_seed=seed))
    runs = run_cells(cells, jobs=jobs, progress=progress)
    for index, (protocol, x, config) in enumerate(points):
        chunk = runs[index * replications:(index + 1) * replications]
        replicated = aggregate_runs(config, chunk)
        results["response"].series_for(protocol).add(
            x, replicated.response_time)
        results["aborts"].series_for(protocol).add(
            x, replicated.abort_percentage)
    return results


def sweep(experiment_id, title, x_label, y_label, base_config, replications,
          xs, configure, protocols=("s2pl", "g2pl"), metric="response",
          seed=1, jobs=1, progress=None):
    """Single-metric convenience wrapper over :func:`sweep_both`."""
    results = sweep_both({metric: experiment_id}, {metric: title}, x_label,
                         base_config, replications, xs, configure,
                         protocols=protocols, seed=seed, jobs=jobs,
                         progress=progress)
    result = results[metric]
    result.y_label = y_label
    return result


# ---------------------------------------------------------------------------
# Figures 2-4: mean response time vs network latency (pr = 0.0 / 0.6 / 1.0)
# ---------------------------------------------------------------------------

def latency_sweep_experiment(read_probability, fidelity=Fidelity.BENCH,
                             seed=1, latencies=LATENCY_SWEEP, jobs=1):
    """One latency sweep, yielding both metrics.

    The response view is Figure 2/3/4 (pr = 0.0/0.6/1.0); the abort view
    is Figure 8/9 (pr = 0.6/0.8).
    """
    response_fig = {0.0: "2", 0.6: "3", 1.0: "4"}.get(read_probability,
                                                      "2-4")
    abort_fig = {0.6: "8", 0.8: "9"}.get(read_probability, "8-9")
    base, replications = _base_config(fidelity,
                                      read_probability=read_probability)
    return sweep_both(
        experiment_ids={"response": f"figure{response_fig}",
                        "aborts": f"figure{abort_fig}"},
        titles={"response": (
                    f"Mean transaction response time vs network latency, "
                    f"pr={read_probability:g} (50 clients, 25 hot items)"),
                "aborts": (
                    f"Percentage of transactions aborted vs network "
                    f"latency, pr={read_probability:g} (50 clients, "
                    f"25 hot items)")},
        x_label="network latency",
        base_config=base, replications=replications, xs=latencies,
        configure=lambda cfg, x: cfg.replace(network_latency=x),
        seed=seed, jobs=jobs)


def figure_response_vs_latency(read_probability, fidelity=Fidelity.BENCH,
                               seed=1, latencies=LATENCY_SWEEP, jobs=1):
    return latency_sweep_experiment(read_probability, fidelity, seed,
                                    latencies, jobs=jobs)["response"]


# ---------------------------------------------------------------------------
# Figures 5-7: mean response time vs read probability (ss-LAN / MAN / l-WAN)
# ---------------------------------------------------------------------------

def figure_response_vs_read_probability(environment, fidelity=Fidelity.BENCH,
                                        seed=1,
                                        read_probabilities=READ_PROBABILITY_SWEEP,
                                        jobs=1):
    figure = {"SS_LAN": "5", "MAN": "6", "L_WAN": "7"}.get(
        environment.name, "5-7")
    base, replications = _base_config(
        fidelity, network_latency=environment.latency)
    return sweep(
        experiment_id=f"figure{figure}",
        title=(f"Mean response time vs read probability in "
               f"{environment.name} (latency {environment.latency:g})"),
        x_label="read probability", y_label="mean response time",
        base_config=base, replications=replications,
        xs=read_probabilities,
        configure=lambda cfg, x: cfg.replace(read_probability=x),
        seed=seed, jobs=jobs)


# ---------------------------------------------------------------------------
# Figures 8-9: percentage of transactions aborted vs latency (pr 0.6 / 0.8)
# ---------------------------------------------------------------------------

def figure_aborts_vs_latency(read_probability, fidelity=Fidelity.BENCH,
                             seed=1, latencies=LATENCY_SWEEP, jobs=1):
    return latency_sweep_experiment(read_probability, fidelity, seed,
                                    latencies, jobs=jobs)["aborts"]


# ---------------------------------------------------------------------------
# Figure 10: read-only deadlock aborts vs latency
# ---------------------------------------------------------------------------

def figure_readonly_aborts_vs_latency(fidelity=Fidelity.BENCH, seed=1,
                                      latencies=(1, 2, 3, 5, 7, 10, 25, 100),
                                      n_clients=5, jobs=1):
    """Read-only system: aborts are exactly the read-deadlocks of §3.3.

    The paper's caption does not pin the client count for this figure; the
    published abort magnitudes (<= a little over 5%) arise at light load
    (default 5 clients here). The `g2pl-ro` series shows the paper's
    proposed read-only optimization eliminating them entirely.
    """
    base, replications = _base_config(fidelity, read_probability=1.0,
                                      n_clients=n_clients)
    return sweep(
        experiment_id="figure10",
        title=(f"Read-only system: % transactions aborted vs latency "
               f"({n_clients} clients, 25 hot items)"),
        x_label="network latency", y_label="% transactions aborted",
        base_config=base, replications=replications, xs=latencies,
        configure=lambda cfg, x: cfg.replace(network_latency=float(x)),
        protocols=("g2pl", "g2pl-ro"), metric="aborts", seed=seed,
        jobs=jobs)


# ---------------------------------------------------------------------------
# Figure 11: aborts vs forward-list length (read-only, ss-LAN)
# ---------------------------------------------------------------------------

def figure_aborts_vs_fl_length(fidelity=Fidelity.BENCH, seed=1,
                               lengths=(1, 2, 3, 4, 5, 6, 8, 10),
                               n_clients=50, jobs=1):
    base, replications = _base_config(fidelity, read_probability=1.0,
                                      n_clients=n_clients,
                                      network_latency=1.0)
    return sweep(
        experiment_id="figure11",
        title=("Read-only ss-LAN: % transactions aborted vs forward-list "
               f"length cap ({n_clients} clients)"),
        x_label="forward list length", y_label="% transactions aborted",
        base_config=base, replications=replications, xs=lengths,
        configure=lambda cfg, x: cfg.replace(max_forward_list_length=x),
        protocols=("g2pl",), metric="aborts", seed=seed, jobs=jobs)


# ---------------------------------------------------------------------------
# Figures 12-15: response time / aborts vs number of clients (s-WAN)
# ---------------------------------------------------------------------------

def clients_sweep_experiment(read_probability, fidelity=Fidelity.BENCH,
                             seed=1, client_counts=CLIENT_SWEEP, jobs=1):
    """One client-count sweep, yielding both metrics.

    pr=0.25 gives Figures 12 (response) and 13 (aborts); pr=0.75 gives
    Figures 14 and 15.
    """
    response_fig = {0.25: "12", 0.75: "14"}.get(read_probability, "12/14")
    abort_fig = {0.25: "13", 0.75: "15"}.get(read_probability, "13/15")
    base, replications = _base_config(
        fidelity, read_probability=read_probability, network_latency=500.0)
    suffix = (f"vs number of clients, pr={read_probability:g}, s-WAN "
              f"(latency 500), 25 hot items")
    return sweep_both(
        experiment_ids={"response": f"figure{response_fig}",
                        "aborts": f"figure{abort_fig}"},
        titles={"response": f"Mean response time {suffix}",
                "aborts": f"Percentage of transactions aborted {suffix}"},
        x_label="number of clients",
        base_config=base, replications=replications, xs=client_counts,
        configure=lambda cfg, x: cfg.replace(n_clients=x),
        seed=seed, jobs=jobs)


def figure_vs_clients(read_probability, metric, fidelity=Fidelity.BENCH,
                      seed=1, client_counts=CLIENT_SWEEP, jobs=1):
    return clients_sweep_experiment(read_probability, fidelity, seed,
                                    client_counts, jobs=jobs)[metric]


# ---------------------------------------------------------------------------
# Fault injection: response time / abort rate vs message-loss probability
# ---------------------------------------------------------------------------

def loss_sweep_experiment(fidelity=Fidelity.BENCH, seed=1,
                          losses=LOSS_SWEEP, read_probability=0.6, jobs=1):
    """Both metrics against per-link message-loss probability.

    The paper assumes a perfect network; this extension quantifies how the
    two protocols degrade when messages are dropped and must be recovered
    by timeout/retransmission — g-2PL's longer dependency chains mean one
    lost handoff stalls more transactions than one lost lock grant.
    """
    from repro.network.faults import FaultSpec

    base, replications = _base_config(fidelity,
                                      read_probability=read_probability)
    suffix = (f"vs message-loss probability, pr={read_probability:g}, "
              f"s-WAN (latency 500), 25 hot items")
    return sweep_both(
        experiment_ids={"response": "loss-response", "aborts": "loss-aborts"},
        titles={"response": f"Mean response time {suffix}",
                "aborts": f"Percentage of transactions aborted {suffix}"},
        x_label="message-loss probability",
        base_config=base, replications=replications, xs=losses,
        configure=lambda cfg, x: cfg.replace(
            faults=FaultSpec(message_loss=x) if x else None),
        seed=seed, jobs=jobs)


def figure_loss_sweep(metric="response", fidelity=Fidelity.BENCH, seed=1,
                      losses=LOSS_SWEEP, jobs=1):
    return loss_sweep_experiment(fidelity=fidelity, seed=seed,
                                 losses=losses, jobs=jobs)[metric]


# ---------------------------------------------------------------------------
# Figure "scale": open-arrival population scalability (extension)
# ---------------------------------------------------------------------------

#: Logical-user populations swept in the scale figure.
POPULATION_SWEEP = (1_000, 4_000, 16_000, 64_000)

#: Hot-key skews contrasted in the scale figure (uniform vs Zipf-hot).
#: 0.5 is tuned so both curves coincide at the smallest population and
#: the skewed one peels off as the population grows — the crossover the
#: figure exists to show; steeper skews are contention-capped from the
#: first point and flatter ones never separate within the sweep.
SCALE_SKEWS = (0.0, 0.5)


def population_scale_experiment(fidelity=Fidelity.BENCH, seed=1,
                                populations=POPULATION_SWEEP,
                                skews=SCALE_SKEWS, protocol="g2pl",
                                arrival_rate=5e-6, n_items=1000,
                                jobs=1, progress=None):
    """Throughput and p99 response time vs population size.

    Not in the paper: the published client model is closed-loop, so its
    offered load self-throttles. With open arrivals at a fixed per-user
    rate, total offered load grows linearly with the population and the
    system visibly saturates. The two series contrast uniform access
    with Zipf hot-key skew — under skew the same population drives far
    more conflicts on the few hot items, so throughput peels off the
    uniform curve earlier (the hot-key contention crossover); a note
    records where.

    Returns ``{"throughput": ExperimentResult, "p99": ExperimentResult}``
    built from the same runs.
    """
    base, replications = _base_config(
        fidelity, protocol=protocol, n_items=n_items,
        network_latency=500.0, arrival_rate=arrival_rate)
    suffix = (f"vs population, {protocol}, arrival {arrival_rate:g}/user, "
              f"{n_items} items, s-WAN (latency 500)")
    results = {
        "throughput": ExperimentResult(
            experiment_id="scale-throughput",
            title=f"Committed throughput {suffix}",
            x_label="population (logical users)",
            y_label="committed txns per time unit"),
        "p99": ExperimentResult(
            experiment_id="scale-p99",
            title=f"p99 response time {suffix}",
            x_label="population (logical users)",
            y_label="p99 response time"),
    }
    points = []
    cells = []
    for skew in skews:
        for population in populations:
            config = base.replace(population=population, access_skew=skew)
            points.append((skew, population, config))
            cells.extend(replication_cells(config, replications,
                                           base_seed=seed))
    runs = run_cells(cells, jobs=jobs, progress=progress)
    for index, (skew, population, config) in enumerate(points):
        chunk = runs[index * replications:(index + 1) * replications]
        name = f"zipf={skew:g}"
        results["throughput"].series_for(name).add(
            population, mean_confidence_interval(
                [run.throughput for run in chunk]))
        results["p99"].series_for(name).add(
            population, mean_confidence_interval(
                [run.metrics.p99_response_time for run in chunk]))
    throughput = results["throughput"]
    if len(skews) >= 2:
        uniform = throughput.series[f"zipf={skews[0]:g}"]
        skewed = throughput.series[f"zipf={skews[-1]:g}"]
        crossover = next(
            (x for x, flat, hot in zip(uniform.xs, uniform.ys, skewed.ys)
             if flat > 0 and hot < 0.9 * flat), None)
        if crossover is not None:
            note = (f"hot-key contention crossover: zipf={skews[-1]:g} "
                    f"throughput falls >10% below uniform from "
                    f"population {crossover:,}")
        else:
            note = ("no hot-key contention crossover within this sweep "
                    "(skewed throughput stays within 10% of uniform)")
        for result in results.values():
            result.notes.append(note)
    return results


def figure_population_scale(metric="throughput", fidelity=Fidelity.BENCH,
                            seed=1, populations=POPULATION_SWEEP, jobs=1):
    return population_scale_experiment(fidelity=fidelity, seed=seed,
                                       populations=populations,
                                       jobs=jobs)[metric]


# ---------------------------------------------------------------------------
# Tables
# ---------------------------------------------------------------------------

def table1_parameters():
    """Table 1: the simulation parameters, as configured by default."""
    cfg = SimulationConfig()
    return [
        ("Number of servers", "1 (or n_shards home servers when sharded)"),
        ("Number of clients", f"varying (default {cfg.n_clients})"),
        ("Number of hot data items", str(cfg.n_items)),
        ("Transaction execution pattern", "sequential"),
        ("Data items accessed by a transaction",
         f"{cfg.min_ops}-{cfg.max_ops} (uniform, distinct)"),
        ("Percentage of read accesses", "0.00-1.00"),
        ("Network latency", "1-750 time units (Table 2)"),
        ("Computation time per operation",
         f"{cfg.think_min:g}-{cfg.think_max:g} time units"),
        ("Idle time between transactions",
         f"{cfg.idle_min:g}-{cfg.idle_max:g} time units"),
        ("Multiprogramming level at clients", "1"),
    ]


def table2_environments():
    """Table 2: the networking environments."""
    return [(env.description, env.name, env.latency)
            for env in TABLE2_ENVIRONMENTS]
