"""Process-pool execution engine for simulation sweeps.

Every point of every figure is an independent (config, seed) simulation
cell, so the whole figure suite is embarrassingly parallel.  This module
fans cells out over a :class:`concurrent.futures.ProcessPoolExecutor`
(spawn context, so it is safe under any start method and on any
platform) while preserving the headline guarantee of the serial runner:

* **Determinism** — seed assignment is exactly the serial scheme
  (:func:`replication_seed`, ``base_seed + 7919 * index``) and results
  are reassembled in submission order, so a parallel run is bit-identical
  to a serial run of the same cells.  ``tests/test_parallel_runner.py``
  enforces this.
* **Serial bypass** — ``jobs=1`` never touches the pool (no pickling, no
  subprocesses), so the default path is byte-for-byte the old one.
* **Error propagation** — a failed cell cancels the rest of the pool and
  re-raises as :class:`CellError` carrying the cell's config description
  and seed, instead of hanging or silently dropping the point.
"""

import os
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from multiprocessing import get_context

#: Multiplier spacing replication seeds apart (prime, matching the
#: original serial scheme in ``run_replications``).
SEED_STRIDE = 7919


def replication_seed(base_seed, index):
    """Seed for replication ``index`` of a run family (serial scheme)."""
    return base_seed + SEED_STRIDE * index


@dataclass(frozen=True)
class SimulationCell:
    """One picklable unit of work: a single simulation run."""

    config: object                     # SimulationConfig
    seed: int
    check_serializability: object = None

    def describe(self):
        return f"{self.config.describe()} seed={self.seed}"


class CellError(RuntimeError):
    """A simulation cell failed; carries which cell and why."""

    def __init__(self, message, cell=None):
        super().__init__(message)
        self.cell = cell


def resolve_jobs(jobs):
    """Normalise a jobs request: ``None``/``0``/``"auto"`` means one
    worker per CPU; anything below 1 is an error."""
    if jobs is None or jobs == 0 or jobs == "auto":
        return os.cpu_count() or 1
    jobs = int(jobs)
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1 (or 0/'auto'), got {jobs}")
    return jobs


def _execute_cell(cell):
    # Top-level so the spawn pickler can find it; the import is deferred
    # to avoid a circular import with repro.core.runner.
    from repro.core.runner import run_simulation

    return run_simulation(cell.config, seed=cell.seed,
                          check_serializability=cell.check_serializability)


def _run_serial(cells, progress):
    results = []
    for index, cell in enumerate(cells):
        try:
            results.append(_execute_cell(cell))
        except Exception as exc:
            raise CellError(
                f"simulation cell {index} failed "
                f"({cell.describe()}): {exc}", cell=cell) from exc
        if progress is not None:
            progress(len(results), len(cells))
    return results


def run_cells(cells, jobs=1, progress=None):
    """Run simulation cells and return their results in input order.

    ``jobs=1`` runs serially in-process (no pool, no pickling);
    ``jobs>1`` fans out over a spawn-context process pool.  ``0``,
    ``None`` or ``"auto"`` use every CPU.  ``progress(done, total)``,
    when given, is called after each cell completes (from this process).

    A failing cell cancels the outstanding work and raises
    :class:`CellError` naming the cell's configuration and seed.
    """
    cells = list(cells)
    jobs = resolve_jobs(jobs)
    if not cells:
        return []
    if jobs == 1 or len(cells) == 1:
        return _run_serial(cells, progress)

    workers = min(jobs, len(cells))
    with ProcessPoolExecutor(max_workers=workers,
                             mp_context=get_context("spawn")) as pool:
        futures = [pool.submit(_execute_cell, cell) for cell in cells]
        index_of = {future: index for index, future in enumerate(futures)}
        done_count = 0
        for future in as_completed(futures):
            exc = future.exception()
            if exc is not None:
                for other in futures:
                    other.cancel()
                index = index_of[future]
                raise CellError(
                    f"simulation cell {index} failed "
                    f"({cells[index].describe()}): {exc}",
                    cell=cells[index]) from exc
            done_count += 1
            if progress is not None:
                progress(done_count, len(cells))
        return [future.result() for future in futures]
