"""LP-partitioned parallel execution: one process per shard.

A sharded run with a shard-local workload (``cross_shard_probability=0``)
decomposes into ``n_shards`` independent *logical processes* (LPs): shard
``k``'s home server plus the clients whose home shard is ``k`` (client
``c`` -> shard ``(c - 1) % n_shards``, the same formula the workload
generator and the geo-placement use). Each LP runs on its own
:class:`~repro.sim.engine.Simulator` heap in its own OS process; the
parent merges the per-LP results into a :class:`SimulationResult` that is
**bit-identical** to the serial run of the same config — the golden
fingerprints in ``tests/golden`` (and ``tests/test_lp.py``) enforce this.

Why the decomposition is exact
------------------------------

* **Transaction ids and quotas** are pure functions of
  ``(client_id, position)`` under ``termination="quota"``
  (:class:`~repro.workload.driver.QuotaRunControl`), so an LP worker
  mints exactly the ids the serial run would, with no shared counter.
* **Random streams** are name-derived
  (:class:`~repro.sim.rng.RandomStreams`): ``client7.txn`` yields the
  same draws whether or not client 3's streams were ever created.
* **The workload is shard-closed** at ``cross_shard_probability=0``:
  every message of a transaction flows between its client and its home
  server, both inside one LP. The serial trajectory restricted to one
  shard's sites is therefore a complete, self-contained event history —
  the same floats in the same order the LP worker computes. (Heap ties
  between *different* LPs' events never carry information across the
  partition boundary, because no handler reads another shard's state.)
* **The s-2PL global deadlock detector is omitted** in LP workers: with
  single-shard transactions the union wait-for graph is the disjoint
  union of the per-shard graphs, each kept acyclic by local detection at
  request time, so the periodic sweep can never find a victim. Its timer
  events perturb only unfingerprinted engine counters.
* **A g-2PL shard gets a private precedence DAG**
  (:func:`~repro.protocols.sharded.make_lp_shard`): the shared DAG of
  the serial run is the disjoint union of per-shard components.

Synchronization
---------------

The general machinery is conservative window synchronization in the
YAWNS/CMB style: the parent grants every LP the window
``[now, min_i(next_event_i) + lookahead)``, where the lookahead is the
minimum latency of any cross-LP link — no LP can receive a remote event
earlier than a granted horizon, so draining the window is safe. With a
shard-closed workload no cross-LP message can ever exist, the lookahead
is infinite, and the protocol degenerates to its fast path: a single
unbounded window per LP (``sim.run(until=done)``). A finite lookahead
(exercised by ``tests/test_lp.py``) drives the real
:meth:`~repro.sim.engine.Simulator.run_window` round trips.

Nested pools: when this process is itself a worker (``--lp`` inside
``--jobs N``), spawning grandchildren would oversubscribe the machine,
so the caller (:func:`repro.core.runner.run_simulation`) falls back to
the ordinary serial path with a warning — sound because the LP result is
identical to the serial one by construction.
"""

import math
import multiprocessing
import time
from multiprocessing import get_context

from repro.stats.collector import MetricsCollector

#: Worker processes get this long to deliver their result before the
#: parent declares the run wedged (wall-clock; generous on purpose).
_JOIN_TIMEOUT = 60.0


def in_worker_process():
    """True when this process is itself a multiprocessing child (a
    ``--jobs`` pool worker must not spawn LP grandchildren)."""
    return multiprocessing.parent_process() is not None


def lp_client_ids(n_clients, n_shards, shard):
    """The clients co-located with ``shard`` (home-shard formula)."""
    return [c for c in range(1, n_clients + 1)
            if (c - 1) % n_shards == shard]


def validate_lp_config(config):
    """Raise ``ValueError`` unless ``config`` is LP-decomposable."""
    from repro.protocols.sharded import SHARDED_PROTOCOLS

    if config.protocol not in SHARDED_PROTOCOLS:
        raise ValueError(
            f"lp=True needs a sharded protocol "
            f"({sorted(SHARDED_PROTOCOLS)}), got {config.protocol!r}")
    if config.termination != "quota":
        raise ValueError(
            "lp=True requires termination='quota': global termination "
            "('the Nth finished transaction anywhere') couples every "
            "client and cannot be decomposed per shard")
    if config.cross_shard_probability != 0.0:
        raise ValueError(
            "lp=True requires a shard-local workload "
            "(cross_shard_probability=0.0): cross-shard transactions "
            "couple the logical processes")
    if config.faults is not None:
        raise ValueError("lp=True does not support fault injection")
    if config.trace or config.probe_interval is not None:
        raise ValueError(
            "lp=True does not support tracing or probes (the tracer is "
            "a single-process observer); run serially to trace")
    if config.population is not None:
        raise ValueError(
            "lp=True supports the closed-loop client model only "
            "(population=None)")
    if config.mpl != 1:
        raise ValueError("lp=True requires mpl=1")
    if config.streaming_enabled:
        raise ValueError(
            "lp=True requires exact metrics (streaming off): the "
            "reservoir stream is a single-process consumer")
    if config.n_clients < config.n_shards:
        raise ValueError(
            f"lp=True needs at least one client per shard "
            f"({config.n_clients} clients < {config.n_shards} shards)")


def derive_lookahead(config):
    """The conservative lookahead: the minimum latency of any cross-LP
    link, or ``inf`` when no cross-LP message can exist (shard-local
    workload) and every LP may free-run to completion."""
    if (config.cross_shard_probability or 0.0) == 0.0:
        return math.inf
    from repro.core.runner import _build_topology
    from repro.protocols.sharding import ShardMap

    shard_map = ShardMap(config.n_shards, config.n_items)
    topology = _build_topology(config, shard_map)
    groups = []
    for shard in range(config.n_shards):
        groups.append([shard_map.server_ids[shard]]
                      + lp_client_ids(config.n_clients, config.n_shards,
                                      shard))
    lookahead = math.inf
    for i, group in enumerate(groups):
        for other in groups[i + 1:]:
            for a in group:
                for b in other:
                    lookahead = min(lookahead, topology.latency(a, b),
                                    topology.latency(b, a))
    return lookahead


class _OutcomeLog:
    """Collector stand-in inside an LP worker: outcomes are shipped to
    the parent, which replays them through one real
    :class:`MetricsCollector` in global end-time order."""

    #: no tracer in LP workers, so nothing ever reads this mid-run
    measuring = False

    def __init__(self):
        self.outcomes = []

    def record_outcome(self, outcome):
        self.outcomes.append(outcome)


def _build_lp(config, seed, shard):
    """Construct one logical process: shard ``shard``'s server, its
    co-located clients, drivers, and quota control on a private heap."""
    from repro.core.runner import _build_topology
    from repro.network.transport import Network
    from repro.protocols.sharded import make_lp_shard
    from repro.protocols.sharding import ShardMap
    from repro.sim.engine import Simulator
    from repro.sim.rng import RandomStreams
    from repro.storage.store import VersionedStore
    from repro.storage.wal import WriteAheadLog
    from repro.validate.history import HistoryRecorder
    from repro.workload.driver import ClientDriver, QuotaRunControl
    from repro.workload.generator import WorkloadGenerator

    sim = Simulator()
    streams = RandomStreams(seed)
    history = HistoryRecorder(enabled=config.record_history)
    shard_map = ShardMap(config.n_shards, config.n_items)
    # The full region topology: latencies are a function of (src, dst)
    # region placement, identical to the serial run's model even though
    # only this LP's sites are registered.
    network = Network(sim, _build_topology(config, shard_map),
                      bandwidth=config.bandwidth, faults=None,
                      batch_delivery=config.batch_delivery)
    client_ids = lp_client_ids(config.n_clients, config.n_shards, shard)
    store = VersionedStore(shard_map.items_of(shard))
    wal = WriteAheadLog()
    server, clients = make_lp_shard(config.protocol, sim, config, shard_map,
                                    shard, store, wal, history, client_ids)
    network.add_site(server)
    for client in clients.values():
        network.add_site(client)
    # Global total and n_clients, shard-local client ids: the quota and
    # id arithmetic is identical to the serial control's.
    control = QuotaRunControl(sim, config.total_transactions,
                              config.n_clients, client_ids=client_ids)
    sink = _OutcomeLog()
    generator = WorkloadGenerator(config.workload_params(), streams)
    for client_id, client in clients.items():
        ClientDriver(sim, client_id, client, generator, control, sink,
                     mpl=config.mpl).start()
    return sim, network, server, clients, control, sink, history


def _shard_payload(config, shard, sim, network, server, clients, control,
                   sink, history, done_at, check_serializability):
    """Post-run checks plus everything the parent needs for the merge."""
    from repro.validate.serializability import check_history
    from repro.validate.strictness import check_strictness

    if check_serializability:
        # Shard-local histories are complete histories (item sets are
        # disjoint across shards), so serializability decomposes.
        report = check_history(history)
        if not report.ok:
            raise AssertionError(
                f"non-serializable execution under {config.protocol} "
                f"(shard {shard}): {report}")
        strictness = check_strictness(history)
        if not strictness.ok:
            raise AssertionError(
                f"non-strict execution under {config.protocol} "
                f"(shard {shard}): {strictness}")
    if hasattr(server, "assert_invariants"):
        server.assert_invariants()
    server_attrs = {}
    for attr in ("deadlocks_found", "windows_dispatched",
                 "avoidance_aborts", "grafted_reads", "callbacks_sent",
                 "cache_hits"):
        if hasattr(server, attr):
            server_attrs[attr] = getattr(server, attr)
    return {
        "shard": shard,
        "outcomes": sink.outcomes,
        "op_waits": {client_id: list(client.op_waits)
                     for client_id, client in clients.items()},
        "now": done_at,
        "messages_sent": network.stats.messages_sent,
        "data_units_sent": network.stats.data_units_sent,
        "aborts_initiated": server.aborts_initiated,
        "server_attrs": server_attrs,
        "has_fl": hasattr(server, "mean_fl_length"),
        "fl_lengths": list(getattr(server, "fl_lengths", ())),
        "twopc_commits": set(getattr(server, "twopc_commits", ())),
        "twopc_aborts": set(getattr(server, "twopc_aborts", ())),
        "presumed_aborts": getattr(server, "presumed_aborts", 0),
        "processed_events": sim.processed_events,
        "peak_heap_depth": sim.peak_heap_depth,
        "cancelled_events": sim.cancelled_events,
    }


def _lp_worker(conn, config, seed, shard, lookahead, check_serializability):
    """Worker entry point (top-level so the spawn pickler finds it)."""
    from repro.sim.engine import relaxed_gc
    from repro.sim.errors import SimulationError

    try:
        built = _build_lp(config, seed, shard)
        sim, network, server, clients, control, sink, history = built
        cpu_start = time.process_time()
        try:
            if math.isinf(lookahead):
                # Shard-closed workload: one unbounded window, stopping
                # exactly at this LP's quota-done event.
                with relaxed_gc():
                    sim.run(until=control.done_event)
                done_at = sim.now
            else:
                done_at = _run_windows(conn, sim, control)
        except SimulationError as exc:
            raise RuntimeError(
                f"LP shard {shard} stalled after {control.finished} "
                f"transactions: {exc}") from exc
        except KeyError as exc:
            if "unknown destination site" in str(exc):
                raise RuntimeError(
                    f"cross-LP message in shard {shard} ({exc}): the "
                    f"workload broke the cross_shard_probability=0 "
                    f"contract") from exc
            raise
        cpu_seconds = time.process_time() - cpu_start
        payload = _shard_payload(config, shard, sim, network, server,
                                 clients, control, sink, history, done_at,
                                 check_serializability)
        payload["cpu_seconds"] = cpu_seconds
        conn.send(("result", payload))
    except BaseException as exc:  # noqa: BLE001 - shipped to the parent
        try:
            conn.send(("error", f"{type(exc).__name__}: {exc}"))
        except (BrokenPipeError, OSError):
            pass
    finally:
        conn.close()


def _run_windows(conn, sim, control):
    """Finite-lookahead path: drain parent-granted windows until done.

    The quota-done event is a heap entry at the time the last managed
    client finished; its callback captures that timestamp so ``duration``
    matches the serial run even when the granted window runs a few idle
    wakeups past it.
    """
    from repro.sim.engine import relaxed_gc

    done_box = []
    control.done_event.add_callback(lambda _event: done_box.append(sim.now))
    conn.send(("ready", sim.peek(), control.done))
    with relaxed_gc():
        while True:
            command = conn.recv()
            if command[0] == "finish":
                break
            next_when = sim.run_window(command[1])
            done = control.done
            conn.send(("at", math.inf if done else next_when, done))
    if not done_box:
        raise RuntimeError("LP windows exhausted before quota completion")
    return done_box[0]


def _recv(conn, proc, shard):
    """One message from a worker, with error translation."""
    try:
        message = conn.recv()
    except EOFError:
        raise RuntimeError(
            f"LP worker for shard {shard} died without a result "
            f"(exitcode {proc.exitcode})") from None
    if message[0] == "error":
        raise RuntimeError(f"LP worker for shard {shard} failed: "
                           f"{message[1]}")
    return message


def _drive_windows(workers, lookahead):
    """Parent side of the conservative window protocol."""
    states = []
    for shard, (proc, conn) in enumerate(workers):
        _tag, next_when, done = _recv(conn, proc, shard)
        states.append((next_when, done))
    while not all(done for _next_when, done in states):
        floor = min(next_when for next_when, done in states if not done)
        if math.isinf(floor):
            raise RuntimeError(
                "LP window scheduler wedged: an unfinished shard has an "
                "empty event heap")
        horizon = floor + lookahead
        active = [shard for shard, (_next_when, done) in enumerate(states)
                  if not done]
        for shard in active:
            workers[shard][1].send(("window", horizon))
        for shard in active:
            proc, conn = workers[shard]
            _tag, next_when, done = _recv(conn, proc, shard)
            states[shard] = (next_when, done)
    payloads = []
    for shard, (proc, conn) in enumerate(workers):
        conn.send(("finish",))
        _tag, payload = _recv(conn, proc, shard)
        payloads.append(payload)
    return payloads


def _merge_results(config, seed, payloads, wall_seconds):
    """Assemble the parent-side :class:`SimulationResult`, replicating
    the serial runner's aggregation (including float summation order:
    op_waits concatenate in client-id order, fl_lengths in shard order)."""
    from repro.core.runner import SimulationResult

    payloads = sorted(payloads, key=lambda payload: payload["shard"])
    outcomes = [outcome for payload in payloads
                for outcome in payload["outcomes"]]
    # The serial collector records outcomes as completion events process;
    # event times are strictly increasing between completions (continuous
    # think-time sums), so end-time order is the serial record order.
    outcomes.sort(key=lambda o: (o.end_time, o.client_id, o.txn_id))
    collector = MetricsCollector(config.warmup_transactions)
    for outcome in outcomes:
        collector.record_outcome(outcome)

    op_waits = {}
    for payload in payloads:
        op_waits.update(payload["op_waits"])
    all_waits = [wait for client_id in sorted(op_waits)
                 for wait in op_waits[client_id]]
    wait_count = len(all_waits)
    mean_op_wait = sum(all_waits) / wait_count if wait_count else 0.0
    server_stats = {
        "aborts_initiated": sum(payload["aborts_initiated"]
                                for payload in payloads),
        "mean_op_wait": mean_op_wait,
        "n_ops_granted": wait_count,
    }
    for attr in ("deadlocks_found", "windows_dispatched", "avoidance_aborts",
                 "grafted_reads", "callbacks_sent", "cache_hits"):
        if any(attr in payload["server_attrs"] for payload in payloads):
            server_stats[attr] = sum(
                payload["server_attrs"].get(attr, 0)
                for payload in payloads)
    if any(payload["has_fl"] for payload in payloads):
        fl_lengths = [length for payload in payloads
                      for length in payload["fl_lengths"]]
        server_stats["mean_fl_length"] = (
            sum(fl_lengths) / len(fl_lengths) if fl_lengths else 0.0)
    twopc_commits = set()
    twopc_aborts = set()
    for payload in payloads:
        twopc_commits |= payload["twopc_commits"]
        twopc_aborts |= payload["twopc_aborts"]
    conflicted = twopc_commits & twopc_aborts
    if conflicted:
        raise AssertionError(
            f"2PC atomicity violated under {config.protocol} "
            f"(seed {seed}): txns {sorted(conflicted)[:5]} committed "
            f"at one shard and aborted at another")
    server_stats["n_shards"] = config.n_shards
    server_stats["twopc_commits"] = len(twopc_commits)
    server_stats["twopc_aborts"] = len(twopc_aborts)
    server_stats["presumed_aborts"] = sum(payload["presumed_aborts"]
                                          for payload in payloads)
    # Single-shard transactions cannot form cross-shard cycles, so the
    # serial run's global detector (s-2PL) never finds a victim.
    server_stats["distributed_deadlocks"] = 0

    processed = sum(payload["processed_events"] for payload in payloads)
    engine_stats = {
        "processed_events": processed,
        "peak_heap_depth": max(payload["peak_heap_depth"]
                               for payload in payloads),
        "cancelled_events": sum(payload["cancelled_events"]
                                for payload in payloads),
        "wall_seconds": wall_seconds,
        "events_per_sec": (processed / wall_seconds
                           if wall_seconds > 0 else 0.0),
        "lp_workers": len(payloads),
        # Per-shard simulation CPU time (time.process_time in each
        # worker): the critical path on an unloaded multicore host is
        # max + spawn/merge overhead, regardless of how this host's
        # cores were shared during the measurement.
        "lp_max_worker_cpu_seconds": max(
            payload.get("cpu_seconds", 0.0) for payload in payloads),
        "lp_total_worker_cpu_seconds": sum(
            payload.get("cpu_seconds", 0.0) for payload in payloads),
    }
    return SimulationResult(
        config=config,
        seed=seed,
        metrics=collector.metrics,
        duration=max(payload["now"] for payload in payloads),
        messages_sent=sum(payload["messages_sent"]
                          for payload in payloads),
        data_units_sent=sum(payload["data_units_sent"]
                            for payload in payloads),
        serializability=None,  # checked per worker; see _shard_payload
        server_stats=server_stats,
        engine_stats=engine_stats,
        trace=None,
    )


def run_lp_simulation(config, seed=None, check_serializability=None,
                      lookahead=None):
    """Run one simulation as ``n_shards`` logical processes and return a
    :class:`~repro.core.runner.SimulationResult` bit-identical to the
    serial run.

    ``lookahead`` overrides the derived synchronization lookahead (test
    hook: a finite value forces the windowed protocol even though a
    shard-local workload needs no synchronization at all).
    """
    validate_lp_config(config)
    if seed is None:
        seed = config.seed
    if check_serializability is None:
        check_serializability = config.record_history
    if lookahead is None:
        lookahead = derive_lookahead(config)
    if not lookahead > 0.0:
        raise ValueError(f"lookahead must be positive, got {lookahead!r}")

    wall_start = time.perf_counter()
    ctx = get_context("spawn")
    workers = []
    try:
        for shard in range(config.n_shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_lp_worker,
                args=(child_conn, config, seed, shard, lookahead,
                      check_serializability),
                daemon=True)
            proc.start()
            child_conn.close()
            workers.append((proc, parent_conn))
        if math.isinf(lookahead):
            payloads = [_recv(conn, proc, shard)[1]
                        for shard, (proc, conn) in enumerate(workers)]
        else:
            payloads = _drive_windows(workers, lookahead)
    finally:
        for proc, conn in workers:
            conn.close()
            proc.join(timeout=_JOIN_TIMEOUT)
            if proc.is_alive():  # pragma: no cover - wedged worker
                proc.terminate()
                proc.join(timeout=5.0)
    wall_seconds = time.perf_counter() - wall_start
    return _merge_results(config, seed, payloads, wall_seconds)
