"""The public high-level API: configure, run, replicate, compare."""

from repro.core.config import Fidelity, SimulationConfig
from repro.core.runner import (
    ReplicatedResult,
    SimulationResult,
    compare_protocols,
    run_replications,
    run_simulation,
)
from repro.core.worked_example import WorkedExampleResult, run_worked_example

__all__ = [
    "Fidelity",
    "ReplicatedResult",
    "SimulationConfig",
    "SimulationResult",
    "WorkedExampleResult",
    "compare_protocols",
    "run_replications",
    "run_simulation",
    "run_worked_example",
]
