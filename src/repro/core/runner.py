"""Assemble and run simulations; replicate; compare protocols."""

import time
import warnings
from dataclasses import dataclass, field
from typing import Optional

from repro.core.parallel import SimulationCell, replication_seed, run_cells
from repro.network.faults import FaultInjector, derive_recovery_times
from repro.obs.probes import ProbeSampler, default_sources
from repro.obs.summary import TraceSummary
from repro.obs.tracer import Tracer
from repro.network.reliable import ReliableLink
from repro.network.topology import RegionTopology, UniformTopology
from repro.network.transport import Network
from repro.protocols.registry import make_protocol
from repro.protocols.sharded import make_sharded_protocol
from repro.protocols.sharding import GlobalDeadlockDetector, ShardMap
from repro.sim.engine import Simulator, relaxed_gc
from repro.sim.errors import SimulationError
from repro.sim.rng import RandomStreams
from repro.stats.ci import mean_confidence_interval
from repro.stats.collector import MetricsCollector
from repro.stats.streaming import RunningStat
from repro.storage.store import VersionedStore
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder
from repro.validate.serializability import check_history
from repro.validate.strictness import check_strictness
from repro.workload.arrivals import make_arrivals
from repro.workload.driver import ClientDriver, QuotaRunControl, RunControl
from repro.workload.generator import WorkloadGenerator
from repro.workload.population import (
    OpenArrivalGenerator,
    PopulationDriver,
    default_classes,
    parse_txn_mix,
    split_population,
)

#: protocols whose recovery machinery tolerates client crashes (the others
#: still work under message loss / duplication / jitter / partitions, which
#: the reliable channel masks, but have no story for a dead site)
CRASH_CAPABLE_PROTOCOLS = frozenset(
    {"s2pl", "g2pl", "g2pl-basic", "g2pl-ro"})


@dataclass
class SimulationResult:
    """Everything one run produced."""

    config: object
    seed: int
    metrics: object               # RunMetrics
    duration: float               # simulation time at run end
    messages_sent: int
    data_units_sent: float
    serializability: Optional[object] = None  # SerializabilityReport
    server_stats: dict = field(default_factory=dict)
    # engine profiling counters (wall-clock rates are nondeterministic and
    # therefore kept out of server_stats, which replays bit-identically)
    engine_stats: dict = field(default_factory=dict)
    trace: Optional[object] = None  # TraceData when the run was traced

    @property
    def mean_response_time(self):
        return self.metrics.mean_response_time

    @property
    def abort_percentage(self):
        return self.metrics.abort_percentage

    @property
    def throughput(self):
        return self.metrics.throughput

    def summary(self):
        return (f"{self.config.protocol}: response={self.mean_response_time:.1f} "
                f"aborts={self.abort_percentage:.2f}% "
                f"committed={self.metrics.committed} "
                f"messages={self.messages_sent}")

    def engine_summary(self):
        """One-line engine profile (``repro-experiment run --verbose``)."""
        stats = self.engine_stats
        if not stats:
            return "engine: (no counters collected)"
        rate = stats.get("events_per_sec", 0.0)
        return (f"engine: {stats.get('processed_events', 0):,} events, "
                f"peak heap depth {stats.get('peak_heap_depth', 0):,}, "
                f"{stats.get('cancelled_events', 0):,} cancelled-timer "
                f"skips, {rate:,.0f} events/sec wall-clock")


def _validate_faults(config, injector):
    crash_sites = injector.crash_sites()
    if crash_sites and config.population is not None:
        raise ValueError(
            "crash faults are not supported with open-arrival populations: "
            "the population driver multiplexes users with no per-site crash "
            "machinery; use the closed-loop model (population=None) for "
            "crash experiments")
    if crash_sites and config.protocol not in CRASH_CAPABLE_PROTOCOLS:
        raise ValueError(
            f"protocol {config.protocol!r} has no client-crash recovery; "
            f"crash faults require one of {sorted(CRASH_CAPABLE_PROTOCOLS)}")
    if (crash_sites and config.n_shards > 1
            and config.commit_protocol == "2pc-opt"):
        raise ValueError(
            "commit_protocol '2pc-opt' cannot recover from client crashes: "
            "its commit decisions carry the updates, so a surviving "
            "participant could learn the outcome but not the data; use "
            "'2pc' when combining sharding with crash faults")
    unknown = crash_sites - set(range(1, config.n_clients + 1))
    if unknown:
        raise ValueError(
            f"crash faults name unknown client sites {sorted(unknown)}")


def _build_topology(config, shard_map):
    """The run's latency model: uniform for single-region layouts, a
    region matrix (intra cheap, inter = ``network_latency``) when the
    sharded deployment spans regions."""
    if shard_map is None or config.n_regions <= 1:
        return UniformTopology(config.network_latency)
    return RegionTopology(
        shard_map.region_assignments(config.n_clients, config.n_regions),
        intra_latency=config.intra_region_latency,
        inter_latency=config.network_latency)


def _install_fault_layer(sim, config, injector, servers, clients, drivers):
    """Fault-mode wiring: reliable (ack/retransmit) channels on every site,
    the protocol's recovery timers on every home server, and the
    deterministic crash controller driving the spec's crash windows."""
    spec = config.faults
    rto, max_interval, chain_timeout, sweep = derive_recovery_times(
        spec, config.network_latency)
    for site in [*servers, *clients.values()]:
        site.reliable = ReliableLink(sim, site, rto, backoff=spec.retry_backoff,
                                     max_interval=max_interval)
    for server in servers:
        server.enable_fault_recovery(injector, rto, chain_timeout, sweep)
    for crash in spec.crashes:
        client = clients[crash.client_id]
        driver = drivers[crash.client_id]
        sim.call_later(crash.at, _crash_site, client, driver)
        if crash.restart_at is not None:
            sim.call_later(crash.restart_at, _restart_site, client, driver)


def _crash_site(client, driver):
    # Interrupt the in-flight transactions first (delivery is scheduled, so
    # their coroutines observe the already-wiped protocol state), then wipe.
    driver.crash()
    client.on_crash()


def _restart_site(client, driver):
    client.on_restart()
    driver.restart()


def run_simulation(config, seed=None, check_serializability=None):
    """Run one simulation to ``config.total_transactions`` finished
    transactions and return a :class:`SimulationResult`.

    ``check_serializability`` defaults to ``config.record_history``; when
    enabled the run's recorded history is checked and a failure raises —
    a non-serializable execution is a protocol bug, never a result.
    """
    if seed is None:
        seed = config.seed
    if check_serializability is None:
        check_serializability = config.record_history
    if config.lp:
        from repro.core import lp

        lp.validate_lp_config(config)
        if lp.in_worker_process():
            # --lp inside a --jobs pool worker: spawning LP grandchildren
            # would oversubscribe the machine. The serial path below
            # produces the identical result by construction.
            warnings.warn(
                "lp=True inside a worker process: nested process pools "
                "are not supported; running this cell serially instead "
                "(the result is bit-identical)", RuntimeWarning,
                stacklevel=2)
        else:
            return lp.run_lp_simulation(
                config, seed=seed,
                check_serializability=check_serializability)

    sim = Simulator()
    tracer = None
    if config.trace or config.probe_interval is not None:
        tracer = Tracer(sim, engine_events=config.trace_engine)
        sim.tracer = tracer
    streams = RandomStreams(seed)
    history = HistoryRecorder(enabled=config.record_history)
    shard_map = None
    if config.n_shards > 1:
        shard_map = ShardMap(config.n_shards, config.n_items)
    injector = None
    if config.faults is not None:
        injector = FaultInjector(config.faults, streams.spawn("faults"))
        _validate_faults(config, injector)
    network = Network(sim, _build_topology(config, shard_map),
                      bandwidth=config.bandwidth, faults=injector,
                      batch_delivery=config.batch_delivery)
    if tracer is not None:
        tracer.bind_network(network)
    client_ids = list(range(1, config.n_clients + 1))
    if shard_map is not None:
        stores = {}
        wals = {}
        for shard, site_id in enumerate(shard_map.server_ids):
            stores[site_id] = VersionedStore(shard_map.items_of(shard))
            wals[site_id] = WriteAheadLog()
        servers, clients = make_sharded_protocol(
            config.protocol, sim, config, shard_map, stores, wals,
            history, client_ids)
        server_list = [servers[site_id] for site_id in shard_map.server_ids]
    else:
        store = VersionedStore(range(config.n_items))
        wal = WriteAheadLog()
        server, clients = make_protocol(config.protocol, sim, config, store,
                                        wal, history, client_ids)
        server_list = [server]
    for site in server_list:
        network.add_site(site)
        if hasattr(site, "attach_adapt_rng"):
            # Dedicated stream: only adaptive servers ever draw from it,
            # so every static protocol's trajectory is untouched.
            site.attach_adapt_rng(streams.stream("adapt.controller"))
    for client in clients.values():
        network.add_site(client)

    if config.termination == "quota":
        control = QuotaRunControl(sim, config.total_transactions,
                                  config.n_clients)
    else:
        control = RunControl(sim, config.total_transactions)
    streaming = config.streaming_enabled
    collector = MetricsCollector(
        config.warmup_transactions, streaming=streaming,
        # A dedicated stream: reservoir draws cannot perturb the
        # trajectory, so streaming on/off yields identical executions.
        reservoir_rng=(streams.stream("metrics.reservoir")
                       if streaming else None),
        reservoir_capacity=config.reservoir_capacity,
        throughput_window=config.throughput_window)
    if streaming:
        # Bound the per-client lock-wait diagnostic too: a 10⁵-txn run
        # would otherwise grow op_waits without limit.
        for client in clients.values():
            client.op_waits = RunningStat()
    params = config.workload_params()
    drivers = {}
    if config.population is None:
        generator = WorkloadGenerator(params, streams)
        for client_id, client in clients.items():
            driver = ClientDriver(sim, client_id, client, generator, control,
                                  collector, mpl=config.mpl)
            drivers[client_id] = driver
            driver.start()
    else:
        classes = (parse_txn_mix(config.txn_mix, n_items=config.n_items)
                   if config.txn_mix is not None
                   else default_classes(params))
        user_counts = split_population(config.population, config.n_clients)
        for index, (client_id, client) in enumerate(clients.items()):
            n_users = user_counts[index]
            popn_rng = streams.stream(f"client{client_id}.popn")
            arrivals = make_arrivals(
                config, streams.stream(f"client{client_id}.arrival"),
                rate=n_users * config.arrival_rate)
            driver = PopulationDriver(
                sim, client_id, client,
                OpenArrivalGenerator(params, classes, popn_rng),
                control, collector, arrivals, n_users, user_rng=popn_rng,
                max_inflight=config.max_inflight_per_site)
            drivers[client_id] = driver
            driver.start()
    detector = None
    if shard_map is not None and config.protocol == "s2pl":
        # Per-shard detection cannot see cycles whose edges span shards;
        # the periodic union sweep catches distributed deadlocks. The
        # interval covers a request round trip at the worst-case latency.
        detector = GlobalDeadlockDetector(
            sim, server_list,
            interval=2.0 * config.network_latency + 1.0,
            victim_policy=config.victim_policy,
            stop_when=lambda: control.done).start()
    if injector is not None:
        _install_fault_layer(sim, config, injector, server_list, clients,
                             drivers)
    if tracer is not None and config.probe_interval is not None:
        ProbeSampler(sim, tracer, config.probe_interval,
                     default_sources(sim, network, server_list, tracer,
                                     drivers=drivers.values()),
                     stop_when=lambda: control.done).start()

    wall_start = time.perf_counter()
    try:
        with relaxed_gc():
            sim.run(until=control.done_event)
    except SimulationError as exc:
        raise RuntimeError(
            f"simulation stalled after {control.finished} of "
            f"{config.total_transactions} transactions "
            f"({config.describe()}): {exc}") from exc
    wall_seconds = time.perf_counter() - wall_start

    report = None
    if check_serializability:
        report = check_history(history)
        if not report.ok:
            raise AssertionError(
                f"non-serializable execution under {config.protocol} "
                f"(seed {seed}): {report}")
        strictness = check_strictness(history)
        if not strictness.ok:
            raise AssertionError(
                f"non-strict execution under {config.protocol} "
                f"(seed {seed}): {strictness}")
    for srv in server_list:
        if hasattr(srv, "assert_invariants"):
            srv.assert_invariants()

    if streaming:
        # op_waits are RunningStats here (no per-value storage).
        wait_sum = sum(client.op_waits.sum for client in clients.values())
        wait_count = sum(client.op_waits.count for client in clients.values())
        mean_op_wait = wait_sum / wait_count if wait_count else 0.0
    else:
        all_waits = [w for client in clients.values()
                     for w in client.op_waits]
        wait_count = len(all_waits)
        mean_op_wait = (sum(all_waits) / wait_count if wait_count else 0.0)
    server_stats = {"aborts_initiated": sum(s.aborts_initiated
                                            for s in server_list),
                    "mean_op_wait": mean_op_wait,
                    "n_ops_granted": wait_count}
    for attr in ("deadlocks_found", "windows_dispatched", "avoidance_aborts",
                 "grafted_reads", "callbacks_sent", "cache_hits"):
        if any(hasattr(s, attr) for s in server_list):
            server_stats[attr] = sum(getattr(s, attr) for s in server_list
                                     if hasattr(s, attr))
    if any(hasattr(s, "mean_fl_length") for s in server_list):
        fl_lengths = [length for s in server_list
                      for length in getattr(s, "fl_lengths", ())]
        server_stats["mean_fl_length"] = (
            sum(fl_lengths) / len(fl_lengths) if fl_lengths else 0.0)
    if any(hasattr(s, "adapt_stats") for s in server_list):
        merged = {}
        for s in server_list:
            if hasattr(s, "adapt_stats"):
                for key, value in s.adapt_stats().items():
                    merged[key] = merged.get(key, 0) + value
        server_stats.update(merged)
    if shard_map is not None:
        twopc_commits = set()
        twopc_aborts = set()
        for s in server_list:
            twopc_commits |= getattr(s, "twopc_commits", set())
            twopc_aborts |= getattr(s, "twopc_aborts", set())
        conflicted = twopc_commits & twopc_aborts
        if conflicted:
            raise AssertionError(
                f"2PC atomicity violated under {config.protocol} "
                f"(seed {seed}): txns {sorted(conflicted)[:5]} committed "
                f"at one shard and aborted at another")
        server_stats["n_shards"] = config.n_shards
        server_stats["twopc_commits"] = len(twopc_commits)
        server_stats["twopc_aborts"] = len(twopc_aborts)
        server_stats["presumed_aborts"] = sum(
            getattr(s, "presumed_aborts", 0) for s in server_list)
        server_stats["distributed_deadlocks"] = (
            detector.distributed_deadlocks if detector is not None else 0)
    if config.population is not None:
        states = [driver.state for driver in drivers.values()]
        by_class = {}
        for driver in drivers.values():
            for name, count in driver.generator.by_class.items():
                by_class[name] = by_class.get(name, 0) + count
        server_stats["population"] = config.population
        server_stats["popn_arrivals"] = sum(s.arrivals for s in states)
        server_stats["popn_started"] = sum(s.started for s in states)
        server_stats["popn_busy_skipped"] = sum(s.busy_skipped
                                                for s in states)
        server_stats["popn_shed"] = sum(s.shed for s in states)
        server_stats["popn_peak_inflight"] = max(s.peak_active
                                                 for s in states)
        server_stats["popn_by_class"] = {
            name: by_class[name] for name in sorted(by_class)}
    if injector is not None:
        server_stats.update(injector.stats.as_dict())
        links = ([s.reliable for s in server_list]
                 + [c.reliable for c in clients.values()])
        server_stats["retransmissions"] = sum(
            link.retransmissions for link in links)
        server_stats["duplicates_suppressed"] = sum(
            link.duplicates_suppressed for link in links)
        for attr in ("crash_reclaims", "chain_repairs", "watchdog_fires",
                     "crash_aborts", "terminations_started"):
            if any(hasattr(s, attr) for s in server_list):
                server_stats[attr] = sum(getattr(s, attr)
                                         for s in server_list
                                         if hasattr(s, attr))

    engine_stats = {
        "processed_events": sim.processed_events,
        "peak_heap_depth": sim.peak_heap_depth,
        "cancelled_events": sim.cancelled_events,
        "wall_seconds": wall_seconds,
        "events_per_sec": (sim.processed_events / wall_seconds
                           if wall_seconds > 0 else 0.0),
    }
    trace = None
    if tracer is not None:
        # Flush transactions the closing run left in flight (flagged
        # unfinished) so exporters see them instead of leaking them.
        tracer.close()
        trace = tracer.finish(processed_events=sim.processed_events,
                              peak_heap_depth=sim.peak_heap_depth)

    return SimulationResult(
        config=config,
        seed=seed,
        metrics=collector.metrics,
        duration=sim.now,
        messages_sent=network.stats.messages_sent,
        data_units_sent=network.stats.data_units_sent,
        serializability=report,
        server_stats=server_stats,
        engine_stats=engine_stats,
        trace=trace,
    )


@dataclass
class ReplicatedResult:
    """Aggregate over independent replications of one configuration."""

    config: object
    runs: list
    response_time: object   # ConfidenceInterval
    abort_percentage: object  # ConfidenceInterval
    # Merged TraceSummary over the traced runs (None when untraced). The
    # merge is order-stable sums/maxima, so jobs=N equals jobs=1 exactly.
    trace_summary: Optional[object] = None

    @property
    def mean_response_time(self):
        return self.response_time.mean

    @property
    def mean_abort_percentage(self):
        return self.abort_percentage.mean

    def summary(self):
        return (f"{self.config.protocol}: response={self.response_time} "
                f"aborts={self.abort_percentage}%")


def aggregate_runs(config, runs):
    """Fold per-run results into a :class:`ReplicatedResult`."""
    return ReplicatedResult(
        config=config,
        runs=runs,
        response_time=mean_confidence_interval(
            [run.mean_response_time for run in runs]),
        abort_percentage=mean_confidence_interval(
            [run.abort_percentage for run in runs]),
        trace_summary=TraceSummary.merge(
            [run.trace.summary if run.trace is not None else None
             for run in runs]),
    )


def replication_cells(config, replications, base_seed=None,
                      check_serializability=None):
    """The simulation cells of one replicated run (serial seed scheme)."""
    if replications < 1:
        raise ValueError("need at least one replication")
    if base_seed is None:
        base_seed = config.seed
    return [
        SimulationCell(config, replication_seed(base_seed, index),
                       check_serializability)
        for index in range(replications)
    ]


def run_replications(config, replications=3, base_seed=None,
                     check_serializability=None, jobs=1):
    """Run independent replications (distinct seeds) and aggregate.

    ``jobs>1`` fans the replications out over a process pool; results
    are bit-identical to the serial run for the same ``base_seed``.
    """
    cells = replication_cells(config, replications, base_seed,
                              check_serializability)
    return aggregate_runs(config, run_cells(cells, jobs=jobs))


def compare_protocols(config, protocols=("s2pl", "g2pl"), replications=3,
                      base_seed=None, jobs=1):
    """Run the same workload under several protocols (common random
    numbers: identical seeds per replication index) and return
    ``{protocol: ReplicatedResult}``.

    ``jobs>1`` fans out across the full protocols x replications
    cross-product, not one protocol at a time.
    """
    configs = {protocol: config.replace(protocol=protocol)
               for protocol in protocols}
    cells = []
    for protocol in protocols:
        cells.extend(replication_cells(configs[protocol], replications,
                                       base_seed))
    runs = run_cells(cells, jobs=jobs)
    results = {}
    for position, protocol in enumerate(protocols):
        chunk = runs[position * replications:(position + 1) * replications]
        results[protocol] = aggregate_runs(configs[protocol], chunk)
    return results


def improvement_percentage(baseline, contender):
    """Paper-style response-time improvement of ``contender`` over
    ``baseline``: positive means the contender is faster."""
    base = baseline.mean_response_time
    new = contender.mean_response_time
    if base == 0:
        return 0.0
    return 100.0 * (base - new) / base
