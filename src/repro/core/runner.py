"""Assemble and run simulations; replicate; compare protocols."""

import time
from dataclasses import dataclass, field
from typing import Optional

from repro.core.parallel import SimulationCell, replication_seed, run_cells
from repro.network.faults import FaultInjector, derive_recovery_times
from repro.obs.probes import ProbeSampler, default_sources
from repro.obs.summary import TraceSummary
from repro.obs.tracer import Tracer
from repro.network.reliable import ReliableLink
from repro.network.topology import UniformTopology
from repro.network.transport import Network
from repro.protocols.registry import make_protocol
from repro.sim.engine import Simulator
from repro.sim.errors import SimulationError
from repro.sim.rng import RandomStreams
from repro.stats.ci import mean_confidence_interval
from repro.stats.collector import MetricsCollector
from repro.storage.store import VersionedStore
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder
from repro.validate.serializability import check_history
from repro.validate.strictness import check_strictness
from repro.workload.driver import ClientDriver, RunControl
from repro.workload.generator import WorkloadGenerator

#: protocols whose recovery machinery tolerates client crashes (the others
#: still work under message loss / duplication / jitter / partitions, which
#: the reliable channel masks, but have no story for a dead site)
CRASH_CAPABLE_PROTOCOLS = frozenset(
    {"s2pl", "g2pl", "g2pl-basic", "g2pl-ro"})


@dataclass
class SimulationResult:
    """Everything one run produced."""

    config: object
    seed: int
    metrics: object               # RunMetrics
    duration: float               # simulation time at run end
    messages_sent: int
    data_units_sent: float
    serializability: Optional[object] = None  # SerializabilityReport
    server_stats: dict = field(default_factory=dict)
    # engine profiling counters (wall-clock rates are nondeterministic and
    # therefore kept out of server_stats, which replays bit-identically)
    engine_stats: dict = field(default_factory=dict)
    trace: Optional[object] = None  # TraceData when the run was traced

    @property
    def mean_response_time(self):
        return self.metrics.mean_response_time

    @property
    def abort_percentage(self):
        return self.metrics.abort_percentage

    @property
    def throughput(self):
        return self.metrics.throughput

    def summary(self):
        return (f"{self.config.protocol}: response={self.mean_response_time:.1f} "
                f"aborts={self.abort_percentage:.2f}% "
                f"committed={self.metrics.committed} "
                f"messages={self.messages_sent}")

    def engine_summary(self):
        """One-line engine profile (``repro-experiment run --verbose``)."""
        stats = self.engine_stats
        if not stats:
            return "engine: (no counters collected)"
        rate = stats.get("events_per_sec", 0.0)
        return (f"engine: {stats.get('processed_events', 0):,} events, "
                f"peak heap depth {stats.get('peak_heap_depth', 0):,}, "
                f"{stats.get('cancelled_events', 0):,} cancelled-timer "
                f"skips, {rate:,.0f} events/sec wall-clock")


def _validate_faults(config, injector):
    crash_sites = injector.crash_sites()
    if crash_sites and config.protocol not in CRASH_CAPABLE_PROTOCOLS:
        raise ValueError(
            f"protocol {config.protocol!r} has no client-crash recovery; "
            f"crash faults require one of {sorted(CRASH_CAPABLE_PROTOCOLS)}")
    unknown = crash_sites - set(range(1, config.n_clients + 1))
    if unknown:
        raise ValueError(
            f"crash faults name unknown client sites {sorted(unknown)}")


def _install_fault_layer(sim, config, injector, server, clients, drivers):
    """Fault-mode wiring: reliable (ack/retransmit) channels on every site,
    the protocol's recovery timers on the server, and the deterministic
    crash controller driving the spec's crash windows."""
    spec = config.faults
    rto, max_interval, chain_timeout, sweep = derive_recovery_times(
        spec, config.network_latency)
    for site in [server, *clients.values()]:
        site.reliable = ReliableLink(sim, site, rto, backoff=spec.retry_backoff,
                                     max_interval=max_interval)
    server.enable_fault_recovery(injector, rto, chain_timeout, sweep)
    for crash in spec.crashes:
        client = clients[crash.client_id]
        driver = drivers[crash.client_id]
        sim.call_later(crash.at, _crash_site, client, driver)
        if crash.restart_at is not None:
            sim.call_later(crash.restart_at, _restart_site, client, driver)


def _crash_site(client, driver):
    # Interrupt the in-flight transactions first (delivery is scheduled, so
    # their coroutines observe the already-wiped protocol state), then wipe.
    driver.crash()
    client.on_crash()


def _restart_site(client, driver):
    client.on_restart()
    driver.restart()


def run_simulation(config, seed=None, check_serializability=None):
    """Run one simulation to ``config.total_transactions`` finished
    transactions and return a :class:`SimulationResult`.

    ``check_serializability`` defaults to ``config.record_history``; when
    enabled the run's recorded history is checked and a failure raises —
    a non-serializable execution is a protocol bug, never a result.
    """
    if seed is None:
        seed = config.seed
    if check_serializability is None:
        check_serializability = config.record_history

    sim = Simulator()
    tracer = None
    if config.trace or config.probe_interval is not None:
        tracer = Tracer(sim, engine_events=config.trace_engine)
        sim.tracer = tracer
    streams = RandomStreams(seed)
    history = HistoryRecorder(enabled=config.record_history)
    store = VersionedStore(range(config.n_items))
    wal = WriteAheadLog()
    injector = None
    if config.faults is not None:
        injector = FaultInjector(config.faults, streams.spawn("faults"))
        _validate_faults(config, injector)
    network = Network(sim, UniformTopology(config.network_latency),
                      bandwidth=config.bandwidth, faults=injector)
    if tracer is not None:
        tracer.bind_network(network)
    client_ids = list(range(1, config.n_clients + 1))
    server, clients = make_protocol(config.protocol, sim, config, store, wal,
                                    history, client_ids)
    network.add_site(server)
    for client in clients.values():
        network.add_site(client)

    generator = WorkloadGenerator(config.workload_params(), streams)
    control = RunControl(sim, config.total_transactions)
    collector = MetricsCollector(config.warmup_transactions)
    drivers = {}
    for client_id, client in clients.items():
        driver = ClientDriver(sim, client_id, client, generator, control,
                              collector, mpl=config.mpl)
        drivers[client_id] = driver
        driver.start()
    if injector is not None:
        _install_fault_layer(sim, config, injector, server, clients, drivers)
    if tracer is not None and config.probe_interval is not None:
        ProbeSampler(sim, tracer, config.probe_interval,
                     default_sources(sim, network, server, tracer),
                     stop_when=lambda: control.done).start()

    wall_start = time.perf_counter()
    try:
        sim.run(until=control.done_event)
    except SimulationError as exc:
        raise RuntimeError(
            f"simulation stalled after {control.finished} of "
            f"{config.total_transactions} transactions "
            f"({config.describe()}): {exc}") from exc
    wall_seconds = time.perf_counter() - wall_start

    report = None
    if check_serializability:
        report = check_history(history)
        if not report.ok:
            raise AssertionError(
                f"non-serializable execution under {config.protocol} "
                f"(seed {seed}): {report}")
        strictness = check_strictness(history)
        if not strictness.ok:
            raise AssertionError(
                f"non-strict execution under {config.protocol} "
                f"(seed {seed}): {strictness}")
    if hasattr(server, "assert_invariants"):
        server.assert_invariants()

    all_waits = [w for client in clients.values() for w in client.op_waits]
    server_stats = {"aborts_initiated": server.aborts_initiated,
                    "mean_op_wait": (sum(all_waits) / len(all_waits)
                                     if all_waits else 0.0),
                    "n_ops_granted": len(all_waits)}
    for attr in ("deadlocks_found", "windows_dispatched", "avoidance_aborts",
                 "grafted_reads", "callbacks_sent", "cache_hits"):
        if hasattr(server, attr):
            server_stats[attr] = getattr(server, attr)
    if hasattr(server, "mean_fl_length"):
        server_stats["mean_fl_length"] = server.mean_fl_length()
    if injector is not None:
        server_stats.update(injector.stats.as_dict())
        links = [server.reliable] + [c.reliable for c in clients.values()]
        server_stats["retransmissions"] = sum(
            link.retransmissions for link in links)
        server_stats["duplicates_suppressed"] = sum(
            link.duplicates_suppressed for link in links)
        for attr in ("crash_reclaims", "chain_repairs", "watchdog_fires",
                     "crash_aborts"):
            if hasattr(server, attr):
                server_stats[attr] = getattr(server, attr)

    engine_stats = {
        "processed_events": sim.processed_events,
        "peak_heap_depth": sim.peak_heap_depth,
        "cancelled_events": sim.cancelled_events,
        "wall_seconds": wall_seconds,
        "events_per_sec": (sim.processed_events / wall_seconds
                           if wall_seconds > 0 else 0.0),
    }
    trace = None
    if tracer is not None:
        trace = tracer.finish(processed_events=sim.processed_events,
                              peak_heap_depth=sim.peak_heap_depth)

    return SimulationResult(
        config=config,
        seed=seed,
        metrics=collector.metrics,
        duration=sim.now,
        messages_sent=network.stats.messages_sent,
        data_units_sent=network.stats.data_units_sent,
        serializability=report,
        server_stats=server_stats,
        engine_stats=engine_stats,
        trace=trace,
    )


@dataclass
class ReplicatedResult:
    """Aggregate over independent replications of one configuration."""

    config: object
    runs: list
    response_time: object   # ConfidenceInterval
    abort_percentage: object  # ConfidenceInterval
    # Merged TraceSummary over the traced runs (None when untraced). The
    # merge is order-stable sums/maxima, so jobs=N equals jobs=1 exactly.
    trace_summary: Optional[object] = None

    @property
    def mean_response_time(self):
        return self.response_time.mean

    @property
    def mean_abort_percentage(self):
        return self.abort_percentage.mean

    def summary(self):
        return (f"{self.config.protocol}: response={self.response_time} "
                f"aborts={self.abort_percentage}%")


def aggregate_runs(config, runs):
    """Fold per-run results into a :class:`ReplicatedResult`."""
    return ReplicatedResult(
        config=config,
        runs=runs,
        response_time=mean_confidence_interval(
            [run.mean_response_time for run in runs]),
        abort_percentage=mean_confidence_interval(
            [run.abort_percentage for run in runs]),
        trace_summary=TraceSummary.merge(
            [run.trace.summary if run.trace is not None else None
             for run in runs]),
    )


def replication_cells(config, replications, base_seed=None,
                      check_serializability=None):
    """The simulation cells of one replicated run (serial seed scheme)."""
    if replications < 1:
        raise ValueError("need at least one replication")
    if base_seed is None:
        base_seed = config.seed
    return [
        SimulationCell(config, replication_seed(base_seed, index),
                       check_serializability)
        for index in range(replications)
    ]


def run_replications(config, replications=3, base_seed=None,
                     check_serializability=None, jobs=1):
    """Run independent replications (distinct seeds) and aggregate.

    ``jobs>1`` fans the replications out over a process pool; results
    are bit-identical to the serial run for the same ``base_seed``.
    """
    cells = replication_cells(config, replications, base_seed,
                              check_serializability)
    return aggregate_runs(config, run_cells(cells, jobs=jobs))


def compare_protocols(config, protocols=("s2pl", "g2pl"), replications=3,
                      base_seed=None, jobs=1):
    """Run the same workload under several protocols (common random
    numbers: identical seeds per replication index) and return
    ``{protocol: ReplicatedResult}``.

    ``jobs>1`` fans out across the full protocols x replications
    cross-product, not one protocol at a time.
    """
    configs = {protocol: config.replace(protocol=protocol)
               for protocol in protocols}
    cells = []
    for protocol in protocols:
        cells.extend(replication_cells(configs[protocol], replications,
                                       base_seed))
    runs = run_cells(cells, jobs=jobs)
    results = {}
    for position, protocol in enumerate(protocols):
        chunk = runs[position * replications:(position + 1) * replications]
        results[protocol] = aggregate_runs(configs[protocol], chunk)
    return results


def improvement_percentage(baseline, contender):
    """Paper-style response-time improvement of ``contender`` over
    ``baseline``: positive means the contender is faster."""
    base = baseline.mean_response_time
    new = contender.mean_response_time
    if base == 0:
        return 0.0
    return 100.0 * (base - new) / base
