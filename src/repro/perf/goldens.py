"""The fast-path replay golden cells (shared by tests and the refresh
script).

Each golden pins the canonical fingerprint (see
:mod:`repro.perf.fingerprint`) of one small but representative run:
plain, traced, and faulted cells for both protocols. They were captured
on the pre-fast-path kernel; every kernel optimization since must
reproduce them byte for byte, serially and under the process pool,
which is what :mod:`tests.test_fastpath_replay` asserts.

Only regenerate them (``scripts/refresh_goldens.py``) when a change
*intentionally* alters trajectories — never to paper over an unexplained
diff from a "pure" performance change.
"""

import json
import os

from repro.core.config import SimulationConfig

GOLDEN_DIR = os.path.join(
    os.path.dirname(os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))),
    "tests", "golden")

FAULTS = "loss=0.05,dup=0.02,jitter=20,crash=2@2000:4000"

#: name -> (config kwargs, seed).  Small cells: the whole set must stay
#: cheap enough to replay in the tier-1 suite at jobs=1 *and* jobs=4.
GOLDEN_CELLS = {
    "g2pl_plain": (dict(
        protocol="g2pl", n_clients=6, n_items=8, read_probability=0.6,
        network_latency=100.0, total_transactions=120,
        warmup_transactions=20, record_history=False), 11),
    "s2pl_plain": (dict(
        protocol="s2pl", n_clients=6, n_items=8, read_probability=0.6,
        network_latency=100.0, total_transactions=120,
        warmup_transactions=20, record_history=False), 11),
    "g2pl_faulted": (dict(
        protocol="g2pl", n_clients=5, n_items=6, read_probability=0.6,
        network_latency=100.0, total_transactions=100,
        warmup_transactions=15, faults=FAULTS,
        record_history=False), 7),
    "s2pl_faulted_traced": (dict(
        protocol="s2pl", n_clients=5, n_items=6, read_probability=0.6,
        network_latency=100.0, total_transactions=100,
        warmup_transactions=15, faults=FAULTS, trace=True,
        record_history=False), 7),
    "g2pl_traced": (dict(
        protocol="g2pl", n_clients=6, n_items=8, read_probability=0.6,
        network_latency=100.0, total_transactions=120,
        warmup_transactions=20, trace=True, probe_interval=150.0,
        record_history=False), 11),
    "s2pl_sharded_traced": (dict(
        protocol="s2pl", n_clients=6, n_items=8, read_probability=0.6,
        n_shards=4, n_regions=2, cross_shard_probability=0.5,
        network_latency=100.0, intra_region_latency=1.0,
        total_transactions=120, warmup_transactions=20, trace=True,
        record_history=False), 11),
    "s2pl_sharded_opt": (dict(
        protocol="s2pl", n_clients=6, n_items=8, read_probability=0.6,
        n_shards=4, n_regions=2, cross_shard_probability=0.5,
        commit_protocol="2pc-opt", network_latency=100.0,
        intra_region_latency=1.0, total_transactions=120,
        warmup_transactions=20, record_history=False), 11),
    "g2pl_sharded_traced": (dict(
        protocol="g2pl", n_clients=6, n_items=8, read_probability=0.6,
        n_shards=4, n_regions=2, cross_shard_probability=0.5,
        network_latency=100.0, intra_region_latency=1.0,
        total_transactions=120, warmup_transactions=20, trace=True,
        record_history=False), 11),
    # Shard-closed quota cells: the LP partitioner's eligibility class
    # (cross_shard_probability=0.0, quota termination, no faults/trace).
    # Recorded *serially*; tests/test_lp.py replays them through the
    # multi-process LP runner and requires byte identity.
    "g2pl_lp_quota": (dict(
        protocol="g2pl", n_clients=8, n_items=16, read_probability=0.6,
        n_shards=4, n_regions=2, cross_shard_probability=0.0,
        network_latency=100.0, intra_region_latency=1.0,
        total_transactions=160, warmup_transactions=20,
        termination="quota", record_history=False), 11),
    "s2pl_lp_quota": (dict(
        protocol="s2pl", n_clients=8, n_items=16, read_probability=0.6,
        n_shards=4, n_regions=2, cross_shard_probability=0.0,
        network_latency=100.0, intra_region_latency=1.0,
        total_transactions=160, warmup_transactions=20,
        termination="quota", record_history=False), 11),
    # Adaptive cells (repro.adapt): the window controller's hold jitter
    # draws from the dedicated "adapt.controller" stream, so these pin
    # that stream's isolation as well as the controllers' decisions.
    "g2pl_adaptive_plain": (dict(
        protocol="g2pl-adaptive", n_clients=6, n_items=8,
        read_probability=0.6, network_latency=100.0,
        total_transactions=120, warmup_transactions=20,
        record_history=False), 11),
    "hybrid_traced": (dict(
        protocol="hybrid", n_clients=6, n_items=8, read_probability=0.6,
        network_latency=100.0, total_transactions=120,
        warmup_transactions=20, trace=True, probe_interval=150.0,
        record_history=False), 11),
    "g2pl_spec_traced": (dict(
        protocol="g2pl-spec", n_clients=4, n_items=5,
        read_probability=0.6, network_latency=400.0,
        total_transactions=100, warmup_transactions=15, trace=True,
        record_history=False), 7),
}


def golden_config(name):
    """``(SimulationConfig, seed)`` for golden cell ``name``."""
    kwargs, seed = GOLDEN_CELLS[name]
    return SimulationConfig(**kwargs), seed


def golden_path(name):
    return os.path.join(GOLDEN_DIR, f"{name}.json")


def load_golden(name):
    """The committed golden payload for ``name`` (dict)."""
    with open(golden_path(name), "r", encoding="utf-8") as handle:
        return json.load(handle)
