"""The kernel benchmark harness (``repro-experiment bench``).

Runs a fixed set of cells spanning the layers the fast path touches:

* ``engine_churn`` — pure kernel micro-benchmark: timer arm/cancel churn
  and timeout-driven processes, no network, no protocol.  Its events/sec
  is a proxy for raw machine speed, which makes it the natural
  normaliser when comparing numbers recorded on different hosts.
* ``net_ping`` — transport micro-benchmark: two sites exchanging
  messages through :class:`~repro.network.transport.Network`, measuring
  the per-send fast path (envelope construction, delay memoisation,
  FIFO clamp, delivery dispatch).
* ``s2pl_contention`` / ``g2pl_contention`` — the paper's two headline
  protocols on a high-contention workload (40 clients on 12 items).
* ``g2pl_faulted`` — the same kernel under fault injection (loss,
  duplication, jitter, one crash window): exercises the faulted send
  path, the reliable channel, and timer cancellation storms.
* ``g2pl_traced`` — tracing and probes attached: exercises the traced
  send path and the observability hooks.
* ``population_100k`` — the open-arrival population state machine at
  10⁵ logical users (10⁴ in quick mode) with Zipf skew and streaming
  metrics: exercises arrival sampling, user multiplexing, admission
  control, and the bounded-memory metrics path.
* ``hybrid_contention`` / ``g2pl_speculative`` — the repro.adapt
  protocol family: the contention-adaptive hybrid on the static pair's
  workload (controller overhead shows up against ``g2pl_contention``)
  and speculative dispatch on a sparse-arrival cell where the
  quiescence timers actually fire.
* ``sharded_serial`` / ``sharded_lp`` — the same shard-closed g-2PL
  cell run serially and partitioned into one logical process per shard
  (``lp=True``, :mod:`repro.core.lp`).  Identical config and seed, so
  the two digests must agree — a live LP bit-identity probe.  The LP
  cell also records per-shard worker CPU time: on a single-core host
  the wall-clock numbers cannot show the parallel speedup, but
  ``lp_max_worker_cpu_seconds`` (the multicore critical path) can.

Every macro cell embeds the deterministic fingerprint digest of its
result, so a bench run doubles as a determinism probe: if a kernel
"optimization" perturbs trajectories, the digest shifts and
:func:`compare_benchmarks` fails the run before any timing is trusted.

Wall-clock numbers are machine-dependent.  ``compare_benchmarks``
therefore supports normalising each cell's events/sec ratio by the
``engine_churn`` ratio, cancelling host speed out of CI comparisons
against the committed ``BENCH_kernel.json``.
"""

import json
import platform
import sys
import time
from dataclasses import dataclass

from repro.core.config import SimulationConfig
from repro.perf.fingerprint import fingerprint_digest, result_fingerprint

BENCH_SCHEMA_VERSION = 1

#: bump when a cell's workload definition changes, so digests and
#: events/sec are never compared across incompatible cell definitions
CELL_REVISION = 1

_FAULT_SPEC = "loss=0.03,dup=0.01,jitter=25,crash=2@4000:8000"


@dataclass(frozen=True)
class BenchCell:
    """One named benchmark: a zero-arg runner returning measurements."""

    name: str
    kind: str          # "micro" | "macro"
    description: str
    runner: object     # callable(quick: bool) -> dict


# -- micro cells -------------------------------------------------------------

def _engine_churn(quick):
    """Timer arm/cancel churn plus timeout processes on a bare kernel."""
    from repro.sim.engine import Simulator, relaxed_gc
    from repro.sim.timers import Timer

    rounds = 4_000 if quick else 20_000
    sim = Simulator()

    def churner(offset):
        step = 0
        while step < rounds:
            keep = Timer(sim, 3.0, lambda: None)
            Timer(sim, 5.0, lambda: None).cancel()
            yield sim.timeout(1.0 + (offset + step) % 3)
            keep.cancel()
            step += 1

    for offset in range(4):
        sim.spawn(churner(offset))
    start = time.perf_counter()
    with relaxed_gc():
        sim.run()
    wall = time.perf_counter() - start
    events = sim.processed_events
    return {
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "digest": fingerprint_digest({"events": events,
                                      "now": repr(sim.now)}),
    }


def _net_ping(quick):
    """Two sites ping-ponging payloads through the transport."""
    from repro.network.topology import Site, UniformTopology
    from repro.network.transport import Network
    from repro.sim.engine import Simulator, relaxed_gc

    pings = 10_000 if quick else 50_000

    class Pong(Site):
        def __init__(self, site_id, peer_id, budget):
            super().__init__(site_id)
            self.peer_id = peer_id
            self.budget = budget
            self.received = 0

        def receive(self, envelope):
            self.received += 1
            if self.budget > 0:
                self.budget -= 1
                self.send(self.peer_id, envelope.payload, size=2.0)

    sim = Simulator()
    network = Network(sim, UniformTopology(10.0))
    left = network.add_site(Pong(1, 2, budget=pings))
    right = network.add_site(Pong(2, 1, budget=pings))
    payload = ("ping", 42)
    start = time.perf_counter()
    left.send(2, payload, size=2.0)
    with relaxed_gc():
        sim.run()
    wall = time.perf_counter() - start
    events = sim.processed_events
    return {
        "wall_seconds": wall,
        "events": events,
        "events_per_sec": events / wall if wall > 0 else 0.0,
        "messages": network.stats.messages_sent,
        "digest": fingerprint_digest({
            "events": events,
            "messages": network.stats.messages_sent,
            "received": left.received + right.received,
            "now": repr(sim.now),
        }),
    }


# -- macro cells -------------------------------------------------------------

def _macro_config(protocol, quick, **overrides):
    transactions = 400 if quick else 1500
    warmup = 50 if quick else 150
    base = dict(
        protocol=protocol, n_clients=40, n_items=12, read_probability=0.6,
        network_latency=100.0, total_transactions=transactions,
        warmup_transactions=warmup, seed=73, record_history=False)
    base.update(overrides)
    return SimulationConfig(**base)


def _run_macro(config):
    from repro.core.runner import run_simulation

    result = run_simulation(config)
    stats = result.engine_stats
    measured = {
        "wall_seconds": stats["wall_seconds"],
        "events": stats["processed_events"],
        "events_per_sec": stats["events_per_sec"],
        "peak_heap_depth": stats["peak_heap_depth"],
        "cancelled_events": stats.get("cancelled_events", 0),
        "committed": result.metrics.committed,
        "txns_per_wall_sec": (result.metrics.finished
                              / stats["wall_seconds"]
                              if stats["wall_seconds"] > 0 else 0.0),
        "digest": fingerprint_digest(result_fingerprint(result)),
    }
    for key in ("lp_workers", "lp_max_worker_cpu_seconds",
                "lp_total_worker_cpu_seconds"):
        if key in stats:
            measured[key] = stats[key]
    return measured


def _s2pl_contention(quick):
    return _run_macro(_macro_config("s2pl", quick))


def _g2pl_contention(quick):
    return _run_macro(_macro_config("g2pl", quick))


def _g2pl_faulted(quick):
    return _run_macro(_macro_config(
        "g2pl", quick, n_clients=12, n_items=10, faults=_FAULT_SPEC))


def _g2pl_traced(quick):
    return _run_macro(_macro_config(
        "g2pl", quick, trace=True, probe_interval=200.0))


def _population_100k(quick):
    """Open-arrival population with streaming metrics.

    Exercises the population state machine (arrival sampling, user
    multiplexing, admission control, Zipf draws) and the bounded-memory
    metrics path at 10⁵ logical users (10⁴ in quick mode). The offered
    load deliberately exceeds capacity so shedding and busy-skip
    bookkeeping are on the measured path.
    """
    return _run_macro(_macro_config(
        "g2pl", quick, n_clients=50, n_items=1000,
        network_latency=500.0,
        population=10_000 if quick else 100_000,
        arrival_rate=5e-6, access_skew=0.5, streaming=True,
        total_transactions=600 if quick else 2000,
        warmup_transactions=60 if quick else 200))


def _hybrid_contention(quick):
    """The contention-adaptive hybrid on the g2pl_contention workload.

    Same 40-clients-on-12-items cell as the static pair, so the marginal
    cost of the contention controller (per-freeze EWMA update + mode
    decision) shows up directly against ``g2pl_contention``.
    """
    return _run_macro(_macro_config("hybrid", quick))


def _g2pl_speculative(quick):
    """Clock-assisted speculative dispatch on a sparse-arrival workload.

    Low client count and long latency leave quiescence gaps, so the
    speculation timer actually fires: the cell exercises the quiescence
    timers, pre-freeze window extension, SpecExtend/SpecAck traffic, and
    the mis-speculation repair path.
    """
    return _run_macro(_macro_config(
        "g2pl-spec", quick, n_clients=8, n_items=6,
        network_latency=500.0))


def _sharded_config(quick, lp):
    """The LP scaling pair: one shard-closed run, serial vs partitioned.

    40 clients over 4 shards (10 per shard on 8 local items each),
    cross_shard_probability=0.0, quota termination — exactly the
    eligibility class of :mod:`repro.core.lp`.  Both cells run the same
    config and seed, so their digests must be identical: the pair is a
    live LP-vs-serial bit-identity probe as well as a scaling benchmark.
    """
    transactions = 400 if quick else 24_000
    warmup = 50 if quick else 400
    return SimulationConfig(
        protocol="g2pl", n_clients=40, n_items=32, read_probability=0.6,
        n_shards=4, n_regions=4, cross_shard_probability=0.0,
        network_latency=100.0, intra_region_latency=1.0,
        total_transactions=transactions, warmup_transactions=warmup,
        termination="quota", streaming=False, seed=73,
        record_history=False, lp=lp)


def _sharded_serial(quick):
    return _run_macro(_sharded_config(quick, lp=False))


def _sharded_lp(quick):
    return _run_macro(_sharded_config(quick, lp=True))


def bench_cells():
    """The fixed cell set, in run order."""
    return [
        BenchCell("engine_churn", "micro",
                  "bare kernel: timer arm/cancel + timeout churn",
                  _engine_churn),
        BenchCell("net_ping", "micro",
                  "transport send/deliver ping-pong between two sites",
                  _net_ping),
        BenchCell("s2pl_contention", "macro",
                  "s-2PL, 40 clients on 12 items, latency 100",
                  _s2pl_contention),
        BenchCell("g2pl_contention", "macro",
                  "g-2PL, 40 clients on 12 items, latency 100",
                  _g2pl_contention),
        BenchCell("g2pl_faulted", "macro",
                  "g-2PL under loss/dup/jitter and one crash window",
                  _g2pl_faulted),
        BenchCell("g2pl_traced", "macro",
                  "g-2PL with tracing and 200-unit probes attached",
                  _g2pl_traced),
        BenchCell("population_100k", "macro",
                  "open-arrival population (10^5 users full, 10^4 quick), "
                  "Zipf 0.5, streaming metrics",
                  _population_100k),
        BenchCell("hybrid_contention", "macro",
                  "contention-adaptive hybrid on the g2pl_contention "
                  "workload (controller overhead probe)",
                  _hybrid_contention),
        BenchCell("g2pl_speculative", "macro",
                  "g-2PL with clock-assisted speculative dispatch, "
                  "8 clients on 6 items, latency 500",
                  _g2pl_speculative),
        BenchCell("sharded_serial", "macro",
                  "shard-closed g-2PL, 40 clients on 4 shards, serial",
                  _sharded_serial),
        BenchCell("sharded_lp", "macro",
                  "same cell partitioned into 4 logical processes "
                  "(lp=True); digest must equal sharded_serial",
                  _sharded_lp),
    ]


# -- harness -----------------------------------------------------------------

def run_benchmarks(quick=False, repeats=None, progress=None):
    """Run every cell ``repeats`` times, keep the fastest measurement.

    Timing keeps the best of N (standard practice: the minimum is the
    least noise-contaminated estimate of the true cost); deterministic
    fields (events, digest) are asserted identical across repeats.
    """
    if repeats is None:
        repeats = 2 if quick else 3
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    cells = {}
    for cell in bench_cells():
        best = None
        for attempt in range(repeats):
            measured = cell.runner(quick)
            if best is None:
                best = measured
            else:
                if measured.get("digest") != best.get("digest"):
                    raise AssertionError(
                        f"bench cell {cell.name!r} is nondeterministic: "
                        f"digest changed between repeats")
                if measured["wall_seconds"] < best["wall_seconds"]:
                    best = measured
            if progress is not None:
                progress(cell.name, attempt + 1, repeats)
        best.update(kind=cell.kind, description=cell.description,
                    repeats=repeats)
        cells[cell.name] = best
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "cell_revision": CELL_REVISION,
        "mode": "quick" if quick else "full",
        "host": {
            "python": sys.version.split()[0],
            "implementation": platform.python_implementation(),
            "machine": platform.machine(),
        },
        "created": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "cells": cells,
    }


def write_benchmark(path, results):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(results, handle, indent=2, sort_keys=True)
        handle.write("\n")


def load_benchmark(path):
    with open(path, "r", encoding="utf-8") as handle:
        results = json.load(handle)
    version = results.get("schema_version")
    if version != BENCH_SCHEMA_VERSION:
        raise ValueError(
            f"benchmark file {path!r} has schema_version {version!r}; "
            f"this harness reads {BENCH_SCHEMA_VERSION}")
    return results


@dataclass
class CellComparison:
    """Before/after of one cell."""

    name: str
    baseline_eps: float
    current_eps: float
    ratio: float              # current / baseline (raw)
    normalized_ratio: float   # ratio / normaliser-cell ratio
    digest_match: object      # True / False / None (not comparable)

    def describe(self, normalized):
        ratio = self.normalized_ratio if normalized else self.ratio
        flag = ""
        if self.digest_match is False:
            flag = "  DIGEST MISMATCH"
        return (f"  {self.name:18} {self.baseline_eps:>12,.0f} -> "
                f"{self.current_eps:>12,.0f} ev/s  ({ratio:5.2f}x){flag}")


@dataclass
class BenchComparison:
    """Outcome of :func:`compare_benchmarks`."""

    cells: list
    tolerance: float
    normalized: bool
    failures: list

    @property
    def ok(self):
        return not self.failures

    def describe(self):
        lines = [f"benchmark comparison (tolerance {self.tolerance:.0%}"
                 f"{', normalized by engine_churn' if self.normalized else ''}):"]
        lines += [cell.describe(self.normalized) for cell in self.cells]
        if self.failures:
            lines.append("FAILURES:")
            lines += [f"  - {failure}" for failure in self.failures]
        else:
            lines.append("all cells within tolerance")
        return "\n".join(lines)


def compare_benchmarks(current, baseline, tolerance=0.2, normalize=False,
                       check_digests=True):
    """Diff ``current`` against ``baseline``; flag events/sec regressions.

    A cell fails when its events/sec ratio (current/baseline, optionally
    normalised by the ``engine_churn`` ratio to cancel host speed) drops
    below ``1 - tolerance``.  Digest mismatches fail outright when both
    files were produced by the same cell revision and mode — a digest
    shift means the kernel's trajectory changed, and timings of different
    trajectories are not comparable.
    """
    if not 0.0 <= tolerance < 1.0:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance!r}")
    comparable_digests = (
        check_digests
        and current.get("mode") == baseline.get("mode")
        and current.get("cell_revision") == baseline.get("cell_revision"))
    norm_ratio = 1.0
    if normalize:
        base_churn = baseline["cells"].get("engine_churn")
        cur_churn = current["cells"].get("engine_churn")
        if base_churn and cur_churn and base_churn["events_per_sec"] > 0:
            norm_ratio = (cur_churn["events_per_sec"]
                          / base_churn["events_per_sec"])
    comparisons = []
    failures = []
    for name, base_cell in sorted(baseline["cells"].items()):
        cur_cell = current["cells"].get(name)
        if cur_cell is None:
            failures.append(f"cell {name!r} missing from current run")
            continue
        base_eps = base_cell["events_per_sec"]
        cur_eps = cur_cell["events_per_sec"]
        ratio = cur_eps / base_eps if base_eps > 0 else float("inf")
        normalized_ratio = ratio / norm_ratio if norm_ratio > 0 else ratio
        digest_match = None
        if comparable_digests and "digest" in base_cell:
            digest_match = base_cell["digest"] == cur_cell.get("digest")
        comparisons.append(CellComparison(
            name=name, baseline_eps=base_eps, current_eps=cur_eps,
            ratio=ratio, normalized_ratio=normalized_ratio,
            digest_match=digest_match))
        effective = normalized_ratio if normalize else ratio
        if effective < 1.0 - tolerance:
            failures.append(
                f"{name}: events/sec regressed to {effective:.2f}x of "
                f"baseline (tolerance {1.0 - tolerance:.2f}x)")
        if digest_match is False:
            failures.append(
                f"{name}: result digest differs from baseline — the "
                f"kernel's trajectory changed (determinism drift)")
    return BenchComparison(cells=comparisons, tolerance=tolerance,
                           normalized=bool(normalize), failures=failures)
