"""Continuous performance benchmarking (``repro.perf``).

Two jobs:

* :mod:`repro.perf.bench` — the micro/macro benchmark harness behind
  ``repro-experiment bench`` and ``scripts/bench.py``.  It runs a fixed
  set of simulation cells, measures wall time and events/sec, and writes
  a schema-versioned ``BENCH_kernel.json`` so every PR leaves a perf
  trajectory behind.
* :mod:`repro.perf.fingerprint` — canonical, bit-exact fingerprints of
  simulation results.  The bench harness embeds them so a perf run
  doubles as a determinism check, and the fast-path replay tests compare
  them against committed goldens.
"""

from repro.perf.bench import (
    BENCH_SCHEMA_VERSION,
    BenchCell,
    bench_cells,
    compare_benchmarks,
    load_benchmark,
    run_benchmarks,
    write_benchmark,
)
from repro.perf.fingerprint import result_fingerprint, fingerprint_digest

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "BenchCell",
    "bench_cells",
    "compare_benchmarks",
    "load_benchmark",
    "run_benchmarks",
    "write_benchmark",
    "result_fingerprint",
    "fingerprint_digest",
]
