"""Canonical fingerprints of simulation results.

A fingerprint is a plain, JSON-serialisable dict capturing everything a
run produced that is *deterministic*: steady-state metrics, traffic
counters, server statistics, and (when the run was traced) the trace
summary.  Wall-clock quantities (``engine_stats``) are excluded — they
differ between machines and reruns by construction.

Floats are rendered with :func:`repr`, the shortest string that
round-trips exactly, so two fingerprints are equal iff the underlying
results are bit-identical.  The fast-path replay suite keeps goldens of
these fingerprints taken from the pre-optimization kernel; every kernel
optimization must reproduce them byte for byte.
"""

import hashlib
import json


def _canon(value):
    """Recursively convert to canonical JSON-ready form (exact floats)."""
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (int, str, bool)) or value is None:
        return value
    if isinstance(value, dict):
        return {str(key): _canon(item) for key, item in
                sorted(value.items(), key=lambda kv: str(kv[0]))}
    if isinstance(value, (list, tuple)):
        return [_canon(item) for item in value]
    return repr(value)


def _metrics_fingerprint(metrics):
    if getattr(metrics, "streaming", False):
        # Streaming runs have no exact response-time list; the reservoir
        # contents, running moments, and window counters are deterministic
        # (the reservoir draws from its own seeded stream), so they pin a
        # trajectory just as tightly. Exact-path runs keep the historical
        # structure below byte for byte.
        return {
            "streaming": True,
            "committed": metrics.committed,
            "aborted": metrics.aborted,
            "warmup_discarded": metrics.warmup_discarded,
            "abort_reasons": _canon(dict(metrics.abort_reasons)),
            "first_measured_at": _canon(metrics.first_measured_at),
            "last_measured_at": _canon(metrics.last_measured_at),
            "response_mean": _canon(metrics.moments.mean),
            "response_m2": _canon(metrics.moments.m2),
            "response_count": metrics.moments.count,
            "reservoir_seen": metrics.reservoir.seen,
            "reservoir": _canon(list(metrics.reservoir.values)),
            "windows_total": metrics.windows.total,
            "windows_peak": metrics.windows.peak_count,
        }
    return {
        "committed": metrics.committed,
        "aborted": metrics.aborted,
        "warmup_discarded": metrics.warmup_discarded,
        "response_times": _canon(list(metrics.response_times)),
        "abort_reasons": _canon(dict(metrics.abort_reasons)),
        "first_measured_at": _canon(metrics.first_measured_at),
        "last_measured_at": _canon(metrics.last_measured_at),
    }


def _summary_fingerprint(summary):
    out = {
        "runs": summary.runs,
        "committed": summary.committed,
        "aborted": summary.aborted,
        "rounds_total": summary.rounds_total,
        "rounds_by_kind": _canon(summary.rounds_by_kind),
        "response_sum": _canon(summary.response_sum),
        "propagation_sum": _canon(summary.propagation_sum),
        "transmission_sum": _canon(summary.transmission_sum),
        "server_queue_sum": _canon(summary.server_queue_sum),
        "client_think_sum": _canon(summary.client_think_sum),
        "slack_sum": _canon(summary.slack_sum),
        "lock_wait_sum": _canon(summary.lock_wait_sum),
        "messages_sent": summary.messages_sent,
        "msgs_by_kind": _canon(summary.msgs_by_kind),
        "drops_by_cause": _canon(summary.drops_by_cause),
        "duplicates_injected": summary.duplicates_injected,
        "retransmissions": summary.retransmissions,
        "duplicates_suppressed": summary.duplicates_suppressed,
        "trace_events": summary.trace_events,
        "probe_series": _canon(summary.probe_series),
        "processed_events": summary.processed_events,
        "peak_heap_depth": summary.peak_heap_depth,
    }
    # Only sharded runs populate this; conditional inclusion keeps every
    # pre-sharding fingerprint (and golden digest) byte-identical.
    if summary.rounds_by_shard:
        out["rounds_by_shard"] = _canon({
            str(shard): kinds
            for shard, kinds in summary.rounds_by_shard.items()})
    return out


def result_fingerprint(result):
    """Deterministic fingerprint of one :class:`SimulationResult`."""
    fp = {
        "protocol": result.config.protocol,
        "seed": result.seed,
        "duration": _canon(result.duration),
        "messages_sent": result.messages_sent,
        "data_units_sent": _canon(result.data_units_sent),
        "metrics": _metrics_fingerprint(result.metrics),
        "server_stats": _canon(dict(result.server_stats)),
    }
    if result.trace is not None:
        fp["trace_summary"] = _summary_fingerprint(result.trace.summary)
        fp["trace_events"] = len(result.trace.events)
        # Unfinished records (in flight when the run closed, finalised by
        # Tracer.close) are deterministic but excluded so the count means
        # what it meant before close() existed: transactions that finished.
        fp["trace_txns"] = sum(1 for record in result.trace.txns
                               if not record.get("unfinished"))
        fp["trace_probes"] = len(result.trace.probes)
    return fp


def fingerprint_digest(fingerprint):
    """Stable SHA-256 over the canonical JSON encoding of a fingerprint."""
    encoded = json.dumps(fingerprint, sort_keys=True,
                         separators=(",", ":")).encode("utf-8")
    return hashlib.sha256(encoded).hexdigest()
