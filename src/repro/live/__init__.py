"""Live mode: the s-2PL / g-2PL state machines over real asyncio TCP.

The simulator answers *what the protocols do*; live mode answers whether
they do the same thing on an actual network. The same protocol code —
:mod:`repro.protocols` is written against the kernel contract documented
in :mod:`repro.live.clock` — runs unchanged over:

* :mod:`repro.live.codec` — a length-prefixed binary wire codec for every
  payload in :mod:`repro.protocols.messages`;
* :mod:`repro.live.clock` — :class:`~repro.live.clock.LiveKernel`, an
  asyncio-paced drop-in for :class:`~repro.sim.engine.Simulator` (same
  events, same processes, wall-clock time);
* :mod:`repro.live.transport` — a full-mesh TCP transport with per-link
  userspace latency shaping (Table 2 environments on loopback);
* :mod:`repro.live.server` / :mod:`repro.live.client` — endpoint
  processes, one OS process per site;
* :mod:`repro.live.harness` — launches 1 server + N clients, merges the
  per-endpoint histories and traces, validates them with
  :mod:`repro.validate`, and calibrates measured message rounds and
  response times against a simulator run of the same scenario.

Submodules are imported explicitly (``from repro.live import harness``)
rather than re-exported here: endpoint processes import this package on
every spawn, and the codec must not drag asyncio or the harness in.
"""
