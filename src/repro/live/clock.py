"""The live kernel: wall-clock pacing behind the simulator's interface.

The protocol state machines in :mod:`repro.protocols` are written against
a small **kernel contract** — the subset of
:class:`~repro.sim.engine.Simulator` they actually touch:

* ``now`` — the current time, in *simulation time units*;
* ``event()`` / ``timeout(delay)`` / ``all_of`` / ``any_of`` — event
  construction (:mod:`repro.sim.events`);
* ``spawn(generator)`` — run a generator as a process
  (:mod:`repro.sim.process`);
* ``call_soon`` / ``call_later`` / ``call_later_cancellable`` —
  callback scheduling (the latter powers :class:`repro.sim.timers.Timer`);
* ``tracer`` — the optional :class:`~repro.obs.tracer.Tracer`.

:class:`LiveKernel` implements that contract over asyncio: the same
event-heap machinery as the simulator, but the run loop *waits for wall
time to catch up* with each entry's timestamp instead of warping the
clock forward, and external stimuli (decoded network frames) can be
injected between entries. Because the kernel reuses the simulator's own
:class:`~repro.sim.events.Event`, :class:`~repro.sim.events.Timeout`, and
:class:`~repro.sim.process.Process` classes, a protocol client or server
cannot tell which kernel is underneath — which is the whole point: the
exact code the simulator validated is what talks TCP.

Time units: one simulation time unit maps to ``time_scale`` wall-clock
seconds. ``now`` reports elapsed wall time divided by ``time_scale``, so
every measurement a live run records (response times, commit timestamps,
round accounting) is directly comparable with the simulator's numbers
for the same scenario.

The wall clock is :func:`time.monotonic`, which on Linux is
``CLOCK_MONOTONIC`` — a *machine-wide* clock, identical across
processes. The harness exploits that: it distributes one absolute
monotonic origin to every endpoint, so all kernels in a run agree on
``now`` to within scheduling noise.
"""

import asyncio
import heapq
import time
from itertools import count

from repro.sim.engine import Simulator
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.process import Process

#: The kernel methods/attributes protocol code may rely on — the contract
#: shared by Simulator and LiveKernel (checked by the kernel tests so the
#: two cannot drift apart silently).
KERNEL_CONTRACT = (
    "now", "tracer", "event", "timeout", "all_of", "any_of", "spawn",
    "call_soon", "call_later", "call_later_cancellable",
)


class LiveKernel:
    """Wall-clock execution of simulator events and processes.

    Entries are kept on the same ``(when, seq, callback, args)`` heap as
    the simulator (cancellable entries carry the simulator's fifth-slot
    token), so ordering semantics — FIFO at equal timestamps, lazy
    deletion of cancelled timers — are identical. The only difference is
    *when* an entry runs: at its timestamp's wall-clock moment, not
    immediately.
    """

    def __init__(self, time_scale=0.01, origin=None):
        if time_scale <= 0:
            raise ValueError(f"time_scale must be positive, got {time_scale!r}")
        #: wall seconds per simulation time unit
        self.time_scale = time_scale
        self._origin = origin
        self._heap = []
        self._seq = count()
        self._now = 0.0
        self._event_count = 0
        self._peak_heap = 0
        self._cancelled_count = 0
        self.tracer = None
        self._wake = None  # asyncio.Event, created inside the loop
        self._stopped = False

    # -- clock ---------------------------------------------------------------

    @property
    def origin(self):
        """Absolute ``time.monotonic`` instant of simulation time zero."""
        if self._origin is None:
            self._origin = time.monotonic()
        return self._origin

    def set_origin(self, origin):
        """Pin simulation time zero to an absolute ``time.monotonic``
        instant. The harness distributes one origin to every endpoint so
        all kernels in a run agree on ``now`` (CLOCK_MONOTONIC is
        machine-wide on Linux). Must happen before the first entry runs."""
        self._origin = origin

    @property
    def now(self):
        """Current time in simulation units (monotone; see run loop)."""
        return self._now

    def wall_now(self):
        """Elapsed wall time since the origin, in simulation units."""
        return (time.monotonic() - self.origin) / self.time_scale

    def to_wall_seconds(self, sim_duration):
        return sim_duration * self.time_scale

    # -- diagnostics (mirrors Simulator) -------------------------------------

    @property
    def processed_events(self):
        return self._event_count

    @property
    def peak_heap_depth(self):
        return self._peak_heap

    @property
    def cancelled_events(self):
        return self._cancelled_count

    @property
    def pending(self):
        return len(self._heap)

    # -- event construction (identical classes to the simulator) -------------

    def event(self):
        return Event(self)

    def timeout(self, delay, value=None):
        return Timeout(self, delay, value)

    def all_of(self, events):
        return AllOf(self, events)

    def any_of(self, events):
        return AnyOf(self, events)

    def spawn(self, generator):
        return Process(self, generator)

    # -- scheduling -----------------------------------------------------------

    def _push(self, entry):
        heapq.heappush(self._heap, entry)
        if self._wake is not None:
            self._wake.set()

    def call_soon(self, callback, *args):
        self._push((self._now, next(self._seq), callback, args))

    def call_later(self, delay, callback, *args):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        self._push((self._now + delay, next(self._seq), callback, args))

    def call_later_cancellable(self, delay, callback, *args):
        if delay < 0:
            raise ValueError(f"negative delay {delay!r}")
        token = [False]
        self._push((self._now + delay, next(self._seq), callback, args, token))
        return token

    def schedule_at(self, when, callback, *args):
        if when < self._now:
            raise ValueError(
                f"cannot schedule at {when!r} before now={self._now!r}")
        self._push((when, next(self._seq), callback, args))

    # hooks used by Event / Timeout internals
    def _schedule(self, event, delay):
        self._push((self._now + delay, next(self._seq), event._process, ()))

    def _enqueue_triggered(self, event):
        self._push((self._now, next(self._seq), event._process, ()))

    # -- external stimuli -----------------------------------------------------

    def inject(self, callback, *args):
        """Schedule ``callback(*args)`` from *outside* the run loop (an
        asyncio reader task) and wake the loop. The entry is stamped with
        the current wall time, not ``now``: the stimulus happened when it
        happened, even if the loop was asleep waiting on a far-off timer.
        """
        when = self.wall_now()
        if when < self._now:
            when = self._now
        self._push((when, next(self._seq), callback, args))

    def stop(self):
        """Make :meth:`run` return after the current entry."""
        self._stopped = True
        if self._wake is not None:
            self._wake.set()

    # -- run loop -------------------------------------------------------------

    async def run(self, until=None):
        """Process heap entries as wall time reaches them.

        ``until`` may be an :class:`Event` (return its value once it is
        processed), a time horizon in simulation units, or ``None`` (run
        until :meth:`stop`). Unlike the simulator, an empty heap is not an
        exit condition: a live endpoint with nothing scheduled is simply
        *idle*, waiting for the network to inject work.
        """
        if self._wake is None:
            self._wake = asyncio.Event()
        self.origin  # pin time zero before the first entry runs
        done = []
        horizon = None
        if isinstance(until, Event):
            until.add_callback(done.append)
        elif until is not None:
            horizon = float(until)
        heap = self._heap
        while not self._stopped and not done:
            executed = True
            while executed and heap and not done and not self._stopped:
                executed = False
                when = heap[0][0]
                if horizon is not None and when > horizon:
                    break
                wall = self.wall_now()
                if when <= wall:
                    depth = len(heap)
                    if depth > self._peak_heap:
                        self._peak_heap = depth
                    entry = heapq.heappop(heap)
                    # Late entries run at the *real* time they run: the
                    # clock never claims an earlier instant than the wall.
                    self._now = wall if wall > when else when
                    self._event_count += 1
                    if len(entry) == 5 and entry[4][0]:
                        self._cancelled_count += 1
                        executed = True
                        continue
                    entry[2](*entry[3])
                    executed = True
            if done or self._stopped:
                break
            if horizon is not None and self.wall_now() >= horizon \
                    and (not heap or heap[0][0] > horizon):
                break
            # Sleep until the next entry is due or something wakes us.
            if heap:
                next_when = heap[0][0]
                if horizon is not None and next_when > horizon:
                    next_when = horizon
                delay = (next_when - self.wall_now()) * self.time_scale
            elif horizon is not None:
                delay = (horizon - self.wall_now()) * self.time_scale
            else:
                delay = None
            if delay is not None and delay <= 0:
                continue
            self._wake.clear()
            try:
                await asyncio.wait_for(self._wake.wait(), timeout=delay)
            except asyncio.TimeoutError:
                pass
        if horizon is not None and not done and not self._stopped:
            if self._now < horizon:
                self._now = horizon
        if isinstance(until, Event):
            if not done:
                return None  # stopped before the event fired
            if not until.ok:
                until.defused = True
                raise until._exception
            return until._value
        return None


def kernel_contract_holds(kernel):
    """True when ``kernel`` exposes every name protocol code relies on."""
    return all(hasattr(kernel, name) for name in KERNEL_CONTRACT)


# Both kernels must satisfy the contract; checked at import so a drift
# fails the first test that touches live mode, not a 3-process run.
assert kernel_contract_holds(Simulator()), "Simulator broke the contract"
assert kernel_contract_holds(LiveKernel()), "LiveKernel broke the contract"
