"""The live server endpoint process.

Runs the protocol's data server (site 0) over real TCP: waits for every
client to dial in and say hello, broadcasts the common clock origin,
serves the protocol until every client reports done, lingers for a grace
period so in-flight releases and returns land, then broadcasts shutdown
and writes its result payload.

Invoked by the harness as ``python -m repro.live.server CONFIG_JSON``.
"""

import asyncio
import sys
import time

from repro.live.endpoint import DONE, HELLO, SHUTDOWN, START, endpoint_main

#: wall seconds allowed for all clients to connect and say hello
HANDSHAKE_TIMEOUT = 60.0


def _run_deadline(config):
    """Wall-clock budget for the scenario itself (generous: live pacing
    is deterministic, so overrunning this means a wedged endpoint)."""
    return (config.lead + config.spec.horizon() * config.time_scale
            + HANDSHAKE_TIMEOUT)


async def server(config, stack):
    kernel, transport = stack.kernel, stack.transport
    expected = set(config.spec.client_ids)
    hellos, dones = set(), set()
    all_hello, all_done = asyncio.Event(), asyncio.Event()

    def handler(name, sender, data):
        if name == HELLO:
            hellos.add(sender)
            if hellos >= expected:
                all_hello.set()
        elif name == DONE:
            dones.add(sender)
            if dones >= expected:
                all_done.set()
        else:
            raise RuntimeError(f"server got control frame {name!r}")

    transport.control_handler = handler
    await stack.up()
    await asyncio.wait_for(all_hello.wait(), timeout=HANDSHAKE_TIMEOUT)
    # Pin simulation time zero `lead` wall-seconds out, so every endpoint
    # has installed the origin and entered its run loop before t=0.
    origin = time.monotonic() + config.lead
    kernel.set_origin(origin)
    transport.broadcast_control(START, {"origin": origin})
    run_task = asyncio.ensure_future(kernel.run())
    try:
        await asyncio.wait_for(all_done.wait(), timeout=_run_deadline(config))
        # Grace: the last client's final release/return (and any late
        # g-2PL handoff) is still on the wire; let it land and be charged
        # before the tracers are frozen.
        await asyncio.sleep(config.grace)
    finally:
        transport.broadcast_control(SHUTDOWN, {})
        kernel.stop()
        await run_task
    stack.write_results()
    await stack.down()


def main(argv=None):
    return endpoint_main(sys.argv[1:] if argv is None else argv, server)


if __name__ == "__main__":
    sys.exit(main())
