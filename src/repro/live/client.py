"""A live client endpoint process.

Runs one protocol client site over real TCP: dials the full mesh, says
hello to the server, pins its kernel to the broadcast clock origin, then
drives the scenario's client loop in wall-clock time. After its own
transactions finish it reports done but keeps serving the kernel — a
g-2PL client may still have to forward held items to other clients'
transactions — until the server broadcasts shutdown.

Invoked by the harness as ``python -m repro.live.client CONFIG_JSON``.
"""

import asyncio
import sys

from repro.live.endpoint import DONE, HELLO, SHUTDOWN, START, endpoint_main
from repro.live.scenario import client_loop
from repro.protocols.base import SERVER_SITE_ID

#: wall seconds allowed for the mesh to come up and start to arrive
HANDSHAKE_TIMEOUT = 60.0


async def client(config, stack):
    kernel, transport = stack.kernel, stack.transport
    started, shutdown = asyncio.Event(), asyncio.Event()
    origin_box = {}

    def handler(name, sender, data):
        if name == START:
            origin_box["origin"] = data["origin"]
            started.set()
        elif name == SHUTDOWN:
            shutdown.set()
            kernel.stop()
        else:
            raise RuntimeError(f"client got control frame {name!r}")

    transport.control_handler = handler
    await stack.up()
    transport.send_control(SERVER_SITE_ID, HELLO, {"site": config.site_id})
    await asyncio.wait_for(started.wait(), timeout=HANDSHAKE_TIMEOUT)
    kernel.set_origin(origin_box["origin"])

    loop = client_loop(config.spec, kernel, stack.site, config.site_id,
                       stack.sink)
    process = kernel.spawn(loop)
    errors = []

    def notify_done(*_):
        if not process.ok:
            errors.append(repr(process._exception))
            process.defused = True
        transport.send_control(SERVER_SITE_ID, DONE,
                               {"site": config.site_id})

    process.add_callback(notify_done)
    deadline = (config.lead + config.spec.horizon() * config.time_scale
                + config.grace + 2 * HANDSHAKE_TIMEOUT)
    await asyncio.wait_for(kernel.run(), timeout=deadline)
    if errors:
        raise RuntimeError(
            f"client {config.site_id} scenario failed: {errors[0]}")
    stack.write_results()
    await stack.down()


def main(argv=None):
    return endpoint_main(sys.argv[1:] if argv is None else argv, client)


if __name__ == "__main__":
    sys.exit(main())
