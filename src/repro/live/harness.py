"""Run harness: 1 server + N client processes, then sim-vs-live calibration.

:func:`run_live` launches one OS process per site (``python -m
repro.live.server`` / ``...client``), each talking real asyncio TCP on
loopback with userspace latency shaping, waits for them all, and merges
their result payloads into a :class:`~repro.live.results.MergedRun`.

:func:`calibrate` additionally runs the *same scenario* under the
simulator (:func:`repro.live.scenario.run_reference`) and compares:

* **history** — the merged live history must be serializable and strict
  (checked with the same :mod:`repro.validate` checkers the simulator
  uses);
* **rounds** — per-transaction sequential-round counts (the paper's
  3m vs 2m+1 arithmetic) must match the simulator **exactly**,
  transaction by transaction;
* **response** — live wall-clock response times (in simulation units)
  are compared with the simulator's per transaction; shaped latency
  dominates, loopback TCP and scheduler noise are the residue.
"""

import json
import os
import socket
import subprocess
import sys
import tempfile
from dataclasses import dataclass, field

from repro.live.results import MergedRun, load_payload
from repro.live.scenario import run_reference
from repro.protocols.base import SERVER_SITE_ID
from repro.validate.serializability import check_history
from repro.validate.strictness import check_strictness

#: default wall seconds per simulation time unit: latency 2.0 units =
#: 40 ms one-way, calibrate-mode stagger margins >= 10 ms
DEFAULT_TIME_SCALE = 0.02

#: wall seconds budgeted for each handshake phase (mesh dial, hello, done)
HANDSHAKE_BUDGET = 60.0


def free_ports(count, host="127.0.0.1"):
    """Distinct currently-free TCP ports (bind-to-zero trick)."""
    sockets, ports = [], []
    try:
        for _ in range(count):
            sock = socket.socket()
            sock.bind((host, 0))
            sockets.append(sock)
            ports.append(sock.getsockname()[1])
    finally:
        for sock in sockets:
            sock.close()
    return ports


def _python_env():
    """Subprocess environment with ``repro``'s parent dir on PYTHONPATH."""
    import repro

    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(
        repro.__file__)))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src_dir if not existing
                         else f"{src_dir}{os.pathsep}{existing}")
    return env


@dataclass
class LiveRunResult:
    """A finished live run, merged."""

    spec: object
    merged: MergedRun
    time_scale: float
    wall_seconds: float

    @property
    def committed(self):
        return self.merged.committed


def run_live(spec, time_scale=DEFAULT_TIME_SCALE, workdir=None,
             lead=1.0, grace=None, timeout=None):
    """Execute ``spec`` across real processes; returns a
    :class:`LiveRunResult`. Raises with the offender's stderr if any
    endpoint exits non-zero or wedges past the deadline."""
    import time as _time

    if grace is None:
        # Long enough for a full round trip plus scheduling noise.
        grace = max(1.0, 4.0 * spec.latency * time_scale)
    site_ids = [SERVER_SITE_ID] + spec.client_ids
    ports = free_ports(len(site_ids))
    port_map = dict(zip(site_ids, ports))
    if timeout is None:
        timeout = 3 * HANDSHAKE_BUDGET + lead \
            + spec.horizon() * time_scale + grace
    own_dir = workdir is None
    if own_dir:
        workdir = tempfile.mkdtemp(prefix="repro-live-")
    procs = []
    wall_start = _time.monotonic()
    try:
        for site_id in site_ids:
            role = "server" if site_id == SERVER_SITE_ID else "client"
            config = {
                "role": role,
                "site_id": site_id,
                "spec": spec.to_dict(),
                "port_map": {str(s): p for s, p in port_map.items()},
                "time_scale": time_scale,
                "result_path": os.path.join(workdir,
                                            f"result-{site_id}.json"),
                "lead": lead,
                "grace": grace,
            }
            config_path = os.path.join(workdir, f"config-{site_id}.json")
            with open(config_path, "w", encoding="utf-8") as handle:
                json.dump(config, handle)
            procs.append((site_id, subprocess.Popen(
                [sys.executable, "-m", f"repro.live.{role}", config_path],
                env=_python_env(), stdout=subprocess.PIPE,
                stderr=subprocess.PIPE, text=True)))
        failures = []
        for site_id, proc in procs:
            try:
                _, stderr = proc.communicate(timeout=timeout)
            except subprocess.TimeoutExpired:
                proc.kill()
                _, stderr = proc.communicate()
                failures.append((site_id, "timeout", stderr))
                continue
            if proc.returncode != 0:
                failures.append((site_id, f"exit {proc.returncode}", stderr))
        if failures:
            detail = "\n".join(
                f"-- site {site_id} ({why}) --\n{stderr.strip()}"
                for site_id, why, stderr in failures)
            raise RuntimeError(
                f"live run failed on {len(failures)} endpoint(s):\n{detail}")
        payloads = [load_payload(os.path.join(workdir,
                                              f"result-{site_id}.json"))
                    for site_id in site_ids]
    finally:
        for _, proc in procs:
            if proc.poll() is None:
                proc.kill()
    return LiveRunResult(spec=spec, merged=MergedRun(payloads),
                         time_scale=time_scale,
                         wall_seconds=_time.monotonic() - wall_start)


# -- calibration --------------------------------------------------------------


@dataclass
class CalibrationReport:
    """Live-vs-sim comparison for one scenario."""

    spec: object
    live: LiveRunResult
    reference: object                    # SimReference
    serializable: bool = False
    strict: bool = False
    committed_match: bool = False
    n_compared: int = 0
    rounds_matched: int = 0
    round_mismatches: list = field(default_factory=list)
    live_mean_response: float = 0.0
    sim_mean_response: float = 0.0
    mean_abs_delta: float = 0.0          # sim units, mean |live - sim|
    max_abs_delta: float = 0.0
    mean_relative_delta: float = 0.0     # vs sim response, mean |.|/sim

    @property
    def rounds_exact(self):
        return (self.n_compared > 0
                and self.rounds_matched == self.n_compared
                and not self.round_mismatches)

    @property
    def ok(self):
        """Calibrate mode is fully deterministic, so the committed sets
        must be identical. Workload mode is horizon-bounded: wall-clock
        jitter can move the last transaction of a client across the
        ``duration`` boundary, so only the commonly-committed
        transactions are held to the exact-rounds bar."""
        if not (self.serializable and self.strict and self.rounds_exact):
            return False
        if self.spec.mode == "calibrate":
            return self.committed_match
        return True

    def describe(self):
        lines = [
            f"calibration {self.spec.protocol} ({self.spec.mode}, "
            f"{self.spec.n_clients} clients, latency "
            f"{self.spec.latency:g}, time scale {self.live.time_scale:g}"
            f" s/unit):",
            f"  serializable: {self.serializable}   strict: {self.strict}"
            f"   committed sets match: {self.committed_match}",
            f"  committed (live): {len(self.live.committed)}   compared "
            f"measured txns: {self.n_compared}",
            f"  per-txn rounds exact-match: {self.rounds_matched}/"
            f"{self.n_compared}",
        ]
        for txn, live_rounds, sim_rounds in self.round_mismatches[:5]:
            lines.append(f"    txn {txn}: live {live_rounds} != sim "
                         f"{sim_rounds}")
        lines += [
            f"  response mean: live {self.live_mean_response:.3f} vs sim "
            f"{self.sim_mean_response:.3f} units",
            f"  response delta: mean |Δ| {self.mean_abs_delta:.3f} "
            f"units ({100 * self.mean_relative_delta:.2f}% of sim), "
            f"max |Δ| {self.max_abs_delta:.3f} units",
            f"  wall time: {self.live.wall_seconds:.1f}s for "
            f"{self.reference.duration:.0f} simulated units",
        ]
        return "\n".join(lines)


def compare(live, reference):
    """Build the :class:`CalibrationReport` for a finished live run."""
    merged = live.merged
    serializability = check_history(merged.history)
    strictness = check_strictness(merged.history)
    live_records = merged.measured_committed()
    sim_records = {txn: record
                   for txn, record in reference.records_by_txn.items()
                   if record["measured"] and record["committed"]}
    common = sorted(set(live_records) & set(sim_records))
    report = CalibrationReport(
        spec=live.spec, live=live, reference=reference,
        serializable=serializability.ok, strict=strictness.ok,
        committed_match=(merged.history.committed
                         == reference.history.committed),
        n_compared=len(common))
    deltas = []
    live_sum = sim_sum = 0.0
    for txn in common:
        live_rec, sim_rec = live_records[txn], sim_records[txn]
        if (live_rec["rounds"] == sim_rec["rounds"]
                and live_rec["rounds_sequential"]
                == sim_rec["rounds_sequential"]):
            report.rounds_matched += 1
        else:
            report.round_mismatches.append(
                (txn, live_rec["rounds"], sim_rec["rounds"]))
        live_sum += live_rec["response"]
        sim_sum += sim_rec["response"]
        delta = abs(live_rec["response"] - sim_rec["response"])
        deltas.append((delta, sim_rec["response"]))
    if common:
        report.live_mean_response = live_sum / len(common)
        report.sim_mean_response = sim_sum / len(common)
        report.mean_abs_delta = sum(d for d, _ in deltas) / len(deltas)
        report.max_abs_delta = max(d for d, _ in deltas)
        report.mean_relative_delta = (
            sum(d / r for d, r in deltas if r > 0) / len(deltas))
    return report


def calibrate(spec, time_scale=DEFAULT_TIME_SCALE, workdir=None,
              lead=1.0, grace=None, timeout=None):
    """Run ``spec`` live and against the simulator; return the report."""
    live = run_live(spec, time_scale=time_scale, workdir=workdir,
                    lead=lead, grace=grace, timeout=timeout)
    return compare(live, run_reference(spec))
