"""Length-prefixed binary wire codec for protocol payloads.

Every payload class in :mod:`repro.protocols.messages` — plus the value
types they carry (:class:`~repro.protocols.forward_list.ForwardList`,
:class:`~repro.protocols.forward_list.FLEntry`,
:class:`~repro.protocols.forward_list.TxnRef`,
:class:`~repro.locking.modes.LockMode`) and the plain containers the
fields use (ints, floats, strings, tuples, lists, dicts, None, bools) —
round-trips through a tagged, recursive binary encoding.

Framing is a 4-byte big-endian length prefix followed by the encoded
body. Decoding is strict: unknown tags, truncated bodies, trailing
garbage, and absurd frame lengths all raise :class:`CodecError` rather
than producing a partial value — a live endpoint must never act on a
half-read message.

The encoding is deliberately boring (no pickle, no reflection on the
receiving side): the decoder only ever constructs the fixed set of
payload classes below, so a malformed or hostile frame cannot instantiate
anything else.
"""

import dataclasses
import struct

from repro.locking.modes import LockMode
from repro.protocols.forward_list import FLEntry, ForwardList, TxnRef
from repro.protocols.messages import (
    AbortNotice,
    AbortRelease,
    CacheRecall,
    CacheRecallAck,
    ChainCommit,
    ChainCommitAck,
    CommitAck,
    CommitDecision,
    CommitRelease,
    DataShip,
    DecisionAck,
    GShip,
    HandoffNote,
    LockRequest,
    OutcomeQuery,
    OutcomeReply,
    PrepareRequest,
    PrepareVote,
    ReaderRelease,
    ReleaseWaiver,
    ReturnToServer,
    SpecAck,
    SpecExtend,
    TxnDone,
)


class CodecError(ValueError):
    """A frame could not be encoded or decoded."""


#: Hard ceiling on one frame's body. Protocol payloads are tiny (the
#: largest is a GShip with a forward list); anything near this limit is a
#: corrupt or hostile length prefix, not a message.
MAX_FRAME_SIZE = 16 * 1024 * 1024

#: Every payload class the transport may carry, in a fixed order — the
#: index is the wire identifier, so the tuple order is part of the wire
#: format (append only).
MESSAGE_TYPES = (
    LockRequest,
    DataShip,
    CommitRelease,
    AbortRelease,
    AbortNotice,
    GShip,
    ReaderRelease,
    ReturnToServer,
    TxnDone,
    ChainCommit,
    ChainCommitAck,
    HandoffNote,
    ReleaseWaiver,
    CommitAck,
    CacheRecall,
    CacheRecallAck,
    PrepareRequest,
    PrepareVote,
    CommitDecision,
    DecisionAck,
    OutcomeQuery,
    OutcomeReply,
    SpecExtend,
    SpecAck,
)

_MSG_INDEX = {cls: index for index, cls in enumerate(MESSAGE_TYPES)}
_MSG_FIELDS = {cls: tuple(f.name for f in dataclasses.fields(cls))
               for cls in MESSAGE_TYPES}

_HEADER = struct.Struct(">I")
_F64 = struct.Struct(">d")
_U32 = struct.Struct(">I")

_MODE_CODE = {LockMode.READ: 0, LockMode.WRITE: 1}
_MODE_FROM_CODE = {0: LockMode.READ, 1: LockMode.WRITE}


# -- encoding ----------------------------------------------------------------

def _encode_int(out, value):
    out += b"i"
    length = value.bit_length() // 8 + 1  # two's complement width
    if length > 0xFFFF:
        raise CodecError(f"integer too large to encode ({length} bytes)")
    out += length.to_bytes(2, "big")
    out += value.to_bytes(length, "big", signed=True)


def _encode_sized(out, tag, payload):
    out += tag
    out += _U32.pack(len(payload))
    out += payload


def _encode_count(out, tag, count):
    out += tag
    out += _U32.pack(count)


def _encode(out, value):
    # Exact type checks: bool is an int subclass, and a LockMode is an
    # enum — dispatching on type() keeps each value on exactly one path.
    kind = type(value)
    if value is None:
        out += b"N"
    elif kind is bool:
        out += b"T" if value else b"F"
    elif kind is int:
        _encode_int(out, value)
    elif kind is float:
        out += b"f"
        out += _F64.pack(value)
    elif kind is str:
        _encode_sized(out, b"s", value.encode("utf-8"))
    elif kind is bytes:
        _encode_sized(out, b"y", value)
    elif kind is tuple:
        _encode_count(out, b"t", len(value))
        for item in value:
            _encode(out, item)
    elif kind is list:
        _encode_count(out, b"l", len(value))
        for item in value:
            _encode(out, item)
    elif kind is dict:
        _encode_count(out, b"d", len(value))
        for key, item in value.items():
            _encode(out, key)
            _encode(out, item)
    elif kind is LockMode:
        out += b"M"
        out += bytes((_MODE_CODE[value],))
    elif kind is TxnRef:
        out += b"R"
        _encode(out, value.txn_id)
        _encode(out, value.client_id)
    elif kind is FLEntry:
        out += b"E"
        out += bytes((_MODE_CODE[value.mode],))
        _encode_count(out, b"t", len(value.txns))
        for ref in value.txns:
            _encode(out, ref)
    elif kind is ForwardList:
        _encode_count(out, b"L", len(value.entries))
        for entry in value.entries:
            _encode(out, entry)
    else:
        index = _MSG_INDEX.get(kind)
        if index is None:
            raise CodecError(f"cannot encode {kind.__name__!r} value")
        out += b"m"
        out += bytes((index,))
        for name in _MSG_FIELDS[kind]:
            _encode(out, getattr(value, name))


def encode(value):
    """Encode one value to its tagged binary body (no length prefix)."""
    out = bytearray()
    _encode(out, value)
    return bytes(out)


def encode_frame(value):
    """Encode ``value`` as a complete length-prefixed frame."""
    body = encode(value)
    if len(body) > MAX_FRAME_SIZE:
        raise CodecError(f"frame body of {len(body)} bytes exceeds "
                         f"MAX_FRAME_SIZE ({MAX_FRAME_SIZE})")
    return _HEADER.pack(len(body)) + body


# -- decoding ----------------------------------------------------------------

def _need(data, offset, count):
    end = offset + count
    if end > len(data):
        raise CodecError(
            f"truncated frame: needed {count} bytes at offset {offset}, "
            f"have {len(data) - offset}")
    return end


def _decode_count(data, offset):
    end = _need(data, offset, 4)
    return _U32.unpack_from(data, offset)[0], end


def _decode_mode(data, offset):
    end = _need(data, offset, 1)
    mode = _MODE_FROM_CODE.get(data[offset])
    if mode is None:
        raise CodecError(f"unknown lock-mode code {data[offset]!r}")
    return mode, end


def _decode(data, offset):
    end = _need(data, offset, 1)
    tag = data[offset:end]
    offset = end
    if tag == b"N":
        return None, offset
    if tag == b"T":
        return True, offset
    if tag == b"F":
        return False, offset
    if tag == b"i":
        end = _need(data, offset, 2)
        length = int.from_bytes(data[offset:end], "big")
        offset = end
        end = _need(data, offset, length)
        return int.from_bytes(data[offset:end], "big", signed=True), end
    if tag == b"f":
        end = _need(data, offset, 8)
        return _F64.unpack_from(data, offset)[0], end
    if tag == b"s":
        length, offset = _decode_count(data, offset)
        end = _need(data, offset, length)
        try:
            return data[offset:end].decode("utf-8"), end
        except UnicodeDecodeError as exc:
            raise CodecError(f"invalid utf-8 in string field: {exc}") from exc
    if tag == b"y":
        length, offset = _decode_count(data, offset)
        end = _need(data, offset, length)
        return bytes(data[offset:end]), end
    if tag in (b"t", b"l"):
        count, offset = _decode_count(data, offset)
        items = []
        for _ in range(count):
            item, offset = _decode(data, offset)
            items.append(item)
        return (tuple(items) if tag == b"t" else items), offset
    if tag == b"d":
        count, offset = _decode_count(data, offset)
        result = {}
        for _ in range(count):
            key, offset = _decode(data, offset)
            value, offset = _decode(data, offset)
            result[key] = value
        return result, offset
    if tag == b"M":
        return _decode_mode(data, offset)
    if tag == b"R":
        txn_id, offset = _decode(data, offset)
        client_id, offset = _decode(data, offset)
        return TxnRef(txn_id=txn_id, client_id=client_id), offset
    if tag == b"E":
        mode, offset = _decode_mode(data, offset)
        txns, offset = _decode(data, offset)
        if not isinstance(txns, tuple) \
                or not all(type(ref) is TxnRef for ref in txns):
            raise CodecError("forward-list entry txns must be TxnRefs")
        try:
            return FLEntry(mode, txns), offset
        except ValueError as exc:
            raise CodecError(f"invalid forward-list entry: {exc}") from exc
    if tag == b"L":
        count, offset = _decode_count(data, offset)
        entries = []
        for _ in range(count):
            entry, offset = _decode(data, offset)
            if type(entry) is not FLEntry:
                raise CodecError("forward list may only contain FLEntry")
            entries.append(entry)
        return ForwardList(entries), offset
    if tag == b"m":
        end = _need(data, offset, 1)
        index = data[offset]
        offset = end
        if index >= len(MESSAGE_TYPES):
            raise CodecError(f"unknown message-type index {index}")
        cls = MESSAGE_TYPES[index]
        values = []
        for _ in _MSG_FIELDS[cls]:
            value, offset = _decode(data, offset)
            values.append(value)
        try:
            return cls(*values), offset
        except (TypeError, ValueError) as exc:
            raise CodecError(
                f"invalid {cls.__name__} payload: {exc}") from exc
    raise CodecError(f"unknown tag byte {tag!r} at offset {offset - 1}")


def decode(data):
    """Decode one value from a complete body; trailing bytes are an error."""
    value, offset = _decode(data, 0)
    if offset != len(data):
        raise CodecError(
            f"trailing garbage: {len(data) - offset} bytes after the value")
    return value


def decode_frame(data):
    """Decode one length-prefixed frame from the head of ``data``.

    Returns ``(value, bytes_consumed)``. Raises :class:`CodecError` if the
    buffer does not hold a complete, well-formed frame.
    """
    if len(data) < _HEADER.size:
        raise CodecError(
            f"truncated frame header: {len(data)} of {_HEADER.size} bytes")
    (length,) = _HEADER.unpack_from(data, 0)
    if length > MAX_FRAME_SIZE:
        raise CodecError(
            f"frame length {length} exceeds MAX_FRAME_SIZE "
            f"({MAX_FRAME_SIZE}); corrupt or hostile length prefix")
    end = _HEADER.size + length
    if len(data) < end:
        raise CodecError(
            f"truncated frame body: {len(data) - _HEADER.size} of "
            f"{length} bytes")
    return decode(bytes(data[_HEADER.size:end])), end
