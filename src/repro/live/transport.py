"""Full-mesh asyncio TCP transport with userspace latency shaping.

One :class:`LiveTransport` serves one endpoint process. It plays the role
:class:`~repro.network.transport.Network` plays in a simulation — the
``send``/``add_site`` surface protocol sites are attached to — but ships
payloads over real sockets:

* every endpoint listens on its own loopback port and dials a connection
  to every peer (g-2PL forwards data *client → client*, so the mesh is
  full, not a star around the server);
* outgoing payloads are **shaped at the sender**: a send is held in the
  kernel's timer heap for the topology's one-way latency (scaled to wall
  time) before the frame is written to the socket. Constant per-link
  latency preserves per-link FIFO ordering by construction, matching the
  simulator's delivery-clamp semantics. Loopback TCP adds its real
  (micro-second scale) cost on top — that residue is exactly what the
  sim-vs-live calibration measures;
* incoming frames are decoded off the reader task and injected into the
  kernel, which dispatches them to the local site's ``receive`` exactly
  like the simulator's delivery callbacks.

Control frames (hello/start/done/shutdown) bypass shaping: they are
harness coordination, not protocol traffic, and are never counted in the
traffic statistics.
"""

import asyncio
import struct

from repro.live.codec import MAX_FRAME_SIZE, CodecError, decode, encode_frame
from repro.network.message import Envelope
from repro.network.transport import NetworkStats, SiteRegistry, payload_kind

_HEADER = struct.Struct(">I")

#: frame discriminators (first element of every decoded frame tuple)
WIRE_DATA = 0
WIRE_CONTROL = 1

#: payload kinds a transaction *blocks* on — the only frames whose
#: receiver-side lateness (actual arrival vs the sender-shaped delivery
#: time) is response time the transaction actually experienced. Frames a
#: transaction never waits for (releases, returns, retire notices) carry
#: real lateness too, but charging it would book time outside the
#: transaction's critical path and break the span-sum invariant.
OVERHEAD_CHARGED_KINDS = frozenset({
    "LockRequest", "DataShip", "GShip", "AbortNotice",
    "PrepareRequest", "PrepareVote", "CommitDecision", "DecisionAck",
    "ChainCommit", "ChainCommitAck", "CommitAck",
})


class TransportError(RuntimeError):
    """A live-transport invariant was violated (unknown peer, bad frame)."""


class LiveTransport(SiteRegistry):
    """TCP transport for the sites living in this endpoint process."""

    def __init__(self, kernel, topology, site_id, port_map,
                 host="127.0.0.1"):
        super().__init__()
        self.kernel = kernel
        self.topology = topology
        self.bandwidth = None
        self.faults = None
        self.stats = NetworkStats()
        self.site_id = site_id
        self.host = host
        #: site_id -> TCP port, for every endpoint in the run (incl. us)
        self.port_map = dict(port_map)
        #: called as ``control_handler(name, sender_site_id, data)`` from
        #: the reader task — *outside* the kernel; handlers must only
        #: touch asyncio primitives or call ``kernel.inject``.
        self.control_handler = None
        self._writers = {}       # site_id -> StreamWriter (dialled by us)
        self._server = None
        self._reader_tasks = set()
        self._closed = False

    # -- Network-compatible surface ------------------------------------------

    def refresh_fast_path(self):
        """Tracer attach hook (`Tracer.bind_network`); nothing to select —
        the live send path checks ``kernel.tracer`` per send."""

    def delay(self, src, dst, size=1.0):
        """Shaped one-way delay in simulation units (no bandwidth term)."""
        return self.topology.latency(src, dst)

    def send(self, src, dst, payload, size=1.0):
        """Ship ``payload`` to ``dst``, shaped to the topology's latency.

        Returns the envelope with the *predicted* delivery time — the same
        contract as the simulator's transport, so sender-side wire
        accounting (``Tracer.wire_charge``) prices the message
        identically in both worlds.
        """
        kernel = self.kernel
        now = kernel.now
        envelope = Envelope(src, dst, payload, size, now)
        latency = self.topology.latency(src, dst)
        envelope.deliver_time = now + latency
        self.stats.record(envelope)
        tracer = kernel.tracer
        if tracer is not None:
            tracer.net_send(envelope, payload_kind(payload))
        if dst in self._sites:
            # Both endpoints of the link live in this process (used by the
            # in-process transport tests); shape and deliver in-kernel.
            kernel.call_later(latency, self._deliver_local, envelope)
        else:
            frame = encode_frame((WIRE_DATA, src, dst, size, now, payload))
            kernel.call_later(latency, self._write_frame, dst, frame)
        return envelope

    def _deliver_local(self, envelope):
        self._sites[envelope.dst].receive(envelope)

    # -- wire ----------------------------------------------------------------

    def _write_frame(self, dst, frame):
        writer = self._writers.get(dst)
        if writer is None:
            if self._closed:
                return  # run is shutting down; late shaped sends are moot
            raise TransportError(
                f"site {self.site_id} has no connection to site {dst}")
        writer.write(frame)

    def send_control(self, dst, name, data=None):
        """Unshaped, uncounted control-plane frame to a peer endpoint."""
        frame = encode_frame(
            (WIRE_CONTROL, name, self.site_id, data if data is not None else {}))
        writer = self._writers.get(dst)
        if writer is None:
            raise TransportError(
                f"site {self.site_id} has no connection to site {dst}")
        writer.write(frame)

    def broadcast_control(self, name, data=None):
        for peer in self._writers:
            self.send_control(peer, name, data)

    # -- lifecycle ------------------------------------------------------------

    async def start(self):
        """Begin listening on this endpoint's port."""
        self._server = await asyncio.start_server(
            self._on_connection, host=self.host,
            port=self.port_map[self.site_id])

    async def connect_to_peers(self, peer_ids=None, deadline=15.0):
        """Dial every peer (with retries — peers may not be up yet)."""
        if peer_ids is None:
            peer_ids = [sid for sid in self.port_map if sid != self.site_id]
        loop = asyncio.get_running_loop()
        give_up = loop.time() + deadline
        for peer in peer_ids:
            port = self.port_map[peer]
            while True:
                try:
                    _, writer = await asyncio.open_connection(
                        self.host, port)
                    break
                except OSError:
                    if loop.time() >= give_up:
                        raise TransportError(
                            f"site {self.site_id} could not reach site "
                            f"{peer} on {self.host}:{port} within "
                            f"{deadline:.0f}s")
                    await asyncio.sleep(0.05)
            self._writers[peer] = writer

    def _on_connection(self, reader, writer):
        task = asyncio.ensure_future(self._read_loop(reader))
        self._reader_tasks.add(task)
        task.add_done_callback(self._reader_tasks.discard)

    async def _read_loop(self, reader):
        try:
            while True:
                try:
                    header = await reader.readexactly(_HEADER.size)
                except asyncio.IncompleteReadError:
                    return  # peer closed cleanly
                (length,) = _HEADER.unpack(header)
                if length > MAX_FRAME_SIZE:
                    raise CodecError(
                        f"frame length {length} exceeds MAX_FRAME_SIZE")
                body = await reader.readexactly(length)
                self._on_frame(decode(body))
        except (ConnectionResetError, BrokenPipeError):
            return
        except asyncio.CancelledError:
            raise

    def _on_frame(self, frame):
        if not isinstance(frame, tuple) or not frame:
            raise TransportError(f"malformed frame {frame!r}")
        kind = frame[0]
        if kind == WIRE_DATA:
            _, src, dst, size, send_time, payload = frame
            if dst not in self._sites:
                raise TransportError(
                    f"frame for site {dst} arrived at endpoint "
                    f"{self.site_id}")
            envelope = Envelope(src, dst, payload, size, send_time)
            now = self.kernel.wall_now()
            envelope.deliver_time = now
            tracer = self.kernel.tracer
            if tracer is not None:
                # Live process overhead: the sender shaped this frame to
                # land at send_time + latency (the simulator's prediction);
                # whatever arrives later than that is codec + event-loop +
                # kernel-socket time. Charge it to the transaction blocked
                # on the frame — the receiving endpoint's tracer carries it
                # into the cross-process merge as a partial record.
                txn_id = getattr(payload, "txn_id", None)
                if (txn_id is not None
                        and type(payload).__name__ in OVERHEAD_CHARGED_KINDS):
                    excess = (now - send_time
                              - self.topology.latency(src, dst))
                    if excess > 0.0:
                        tracer.overhead_charge(txn_id, excess)
            self.kernel.inject(self._deliver_local, envelope)
        elif kind == WIRE_CONTROL:
            _, name, sender, data = frame
            handler = self.control_handler
            if handler is None:
                raise TransportError(
                    f"control frame {name!r} with no handler installed")
            handler(name, sender, data)
        else:
            raise TransportError(f"unknown frame kind {kind!r}")

    async def close(self):
        self._closed = True
        for writer in self._writers.values():
            try:
                writer.close()
            except Exception:
                pass
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._reader_tasks):
            task.cancel()
        for task in list(self._reader_tasks):
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
