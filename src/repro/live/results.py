"""Per-endpoint result payloads and their cross-process merge.

A live run produces one JSON payload per endpoint process (the server
and every client). Each payload carries that endpoint's *local* view:
its transaction outcomes, its tracer's finished records **and** partial
accumulators (round charges made on behalf of transactions owned by
other endpoints — see :meth:`repro.obs.tracer.Tracer.partial_records`),
its slice of the recorded history, and its traffic counters.

The harness merges the payloads back into the single-run shape the
simulator produces natively: one :class:`~repro.validate.history
.HistoryRecorder`, one complete per-transaction record per transaction.
Round charges are summed across endpoints; ``rounds_sequential`` and the
``lock_wait`` residual are recomputed from the merged components, so a
merged record is directly comparable with the simulator's record for the
same transaction.
"""

import json

from repro.locking.modes import LockMode
from repro.obs.summary import NON_SEQUENTIAL_ROUND_KINDS
from repro.validate.history import HistoryRecorder

#: wire-accounting component keys merged additively across endpoints
_COMPONENT_KEYS = ("propagation", "transmission", "slack", "server_queue",
                   "client_think")

#: phase sub-accounts (see :mod:`repro.obs.spans`), also summed across
#: endpoints; absent from pre-phase payloads, so merged with a 0 default
_PHASE_KEYS = ("commit_coord", "abort_resolution", "overhead")


def outcome_to_dict(outcome, measured):
    return {
        "txn": outcome.txn_id, "client": outcome.client_id,
        "committed": outcome.committed, "start": outcome.start_time,
        "end": outcome.end_time, "response": outcome.response_time,
        "n_ops": outcome.n_ops, "abort_reason": outcome.abort_reason,
        "measured": measured,
    }


def endpoint_payload(role, site_id, spec, kernel, transport, tracer,
                     history, sink):
    """Everything one endpoint contributes to the merged run."""
    trace = tracer.finish(processed_events=kernel.processed_events,
                          peak_heap_depth=kernel.peak_heap_depth)
    payload = {
        "role": role,
        "site": site_id,
        "protocol": spec.protocol,
        "mode": spec.mode,
        "outcomes": [outcome_to_dict(outcome, measured)
                     for outcome, measured in sink.outcomes],
        "txn_records": trace.txns,
        "partial_records": tracer.partial_records(),
        "history": {
            "accesses": [[a.txn_id, a.item_id, a.mode.name, a.version,
                          a.time] for a in history.accesses],
            "committed": sorted(history.committed),
            "aborted": sorted(history.aborted),
            "commit_times": {str(txn): t
                             for txn, t in history.commit_times.items()},
        },
        "net": {
            "messages_sent": transport.stats.messages_sent,
            "data_units_sent": transport.stats.data_units_sent,
            "per_type": dict(transport.stats.per_type),
        },
        "engine": {
            "processed_events": kernel.processed_events,
            "peak_heap_depth": kernel.peak_heap_depth,
            "cancelled_events": kernel.cancelled_events,
            "end_time": kernel.now,
        },
    }
    if getattr(spec, "trace_export", False):
        # All timestamps are already on the shared CLOCK_MONOTONIC origin
        # (every kernel pins sim time zero to the same instant), so the
        # harness can interleave the per-process streams into one timeline
        # without any clock translation.
        payload["trace_events"] = [[when, kind, fields]
                                   for when, kind, fields in trace.events]
        payload["probes"] = [[when, name, value]
                             for when, name, value in trace.probes]
    return payload


def write_payload(path, payload):
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(payload, handle)


def load_payload(path):
    with open(path, "r", encoding="utf-8") as handle:
        return json.load(handle)


class MergedRun:
    """The single-run view reassembled from all endpoint payloads."""

    def __init__(self, payloads):
        self.payloads = list(payloads)
        self.history = HistoryRecorder()
        self.records = {}       # txn_id -> complete per-txn record
        self.orphans = []       # partials with no finished owner record
        self.outcomes = []      # merged outcome dicts
        self.messages_sent = 0
        self.data_units_sent = 0.0
        self.per_type = {}
        self._merge()

    def _merge(self):
        accesses = []
        for payload in self.payloads:
            hist = payload["history"]
            accesses.extend(hist["accesses"])
            for txn in hist["committed"]:
                self.history.committed.add(txn)
            for txn in hist["aborted"]:
                self.history.aborted.add(txn)
            for txn, when in hist["commit_times"].items():
                self.history.commit_times[int(txn)] = when
            self.outcomes.extend(payload["outcomes"])
            net = payload["net"]
            self.messages_sent += net["messages_sent"]
            self.data_units_sent += net["data_units_sent"]
            for kind, count in net["per_type"].items():
                self.per_type[kind] = self.per_type.get(kind, 0) + count
            for record in payload["txn_records"]:
                txn = record["txn"]
                if txn in self.records:
                    raise ValueError(
                        f"txn {txn} finished on two endpoints")
                merged = dict(record, rounds=dict(record["rounds"]))
                for key in _PHASE_KEYS:
                    merged.setdefault(key, 0.0)
                self.records[txn] = merged
        # History accesses in global time order — the order the simulator
        # would have appended them in a single-recorder run.
        accesses.sort(key=lambda a: (a[4], a[0], a[1]))
        for txn, item, mode, version, when in accesses:
            self.history.record_access(txn, item, LockMode[mode], version,
                                       when)
        for payload in self.payloads:
            for partial in payload["partial_records"]:
                record = self.records.get(partial["txn"])
                if record is None:
                    self.orphans.append(dict(partial,
                                             site=payload["site"]))
                    continue
                rounds = record["rounds"]
                for kind, count in partial["rounds"].items():
                    rounds[kind] = rounds.get(kind, 0) + count
                for key in _COMPONENT_KEYS:
                    record[key] += partial[key]
                for key in _PHASE_KEYS:
                    record[key] += partial.get(key, 0.0)
        for record in self.records.values():
            record["rounds_sequential"] = sum(
                count for kind, count in record["rounds"].items()
                if kind not in NON_SEQUENTIAL_ROUND_KINDS)
            explained = sum(record[key] for key in _COMPONENT_KEYS)
            record["lock_wait"] = (record["response"] - explained
                                   - record["overhead"])
        self._enforce_span_invariant()

    def _enforce_span_invariant(self):
        """Decomposition exactness, checked at merge as promised.

        Every merged record's phase spans must sum to its measured
        response time. The residual construction makes this an identity,
        so a failure here always means a charging bug (a component merged
        twice, a phase charged outside the response window) — raise
        loudly rather than report a silently-wrong decomposition.
        """
        from repro.obs.spans import sum_violation

        violations = []
        for record in self.records.values():
            if not record.get("measured", True):
                continue
            bad = sum_violation(record)
            if bad is not None:
                violations.append(bad)
        if violations:
            raise AssertionError(
                "live merge broke the span-sum invariant:\n  "
                + "\n  ".join(violations[:10]))

    # -- views ----------------------------------------------------------------

    def measured_committed(self):
        """Records entering the calibration, keyed by txn id."""
        return {txn: record for txn, record in self.records.items()
                if record["measured"] and record["committed"]}

    @property
    def committed(self):
        return self.history.committed

    def endpoint(self, site_id):
        for payload in self.payloads:
            if payload["site"] == site_id:
                return payload
        raise KeyError(f"no payload for site {site_id}")
