"""Portable live/sim scenarios: one driver, two kernels.

A scenario is a set of per-client generator loops written against the
kernel contract (:data:`repro.live.clock.KERNEL_CONTRACT`), so the exact
same loop runs under the :class:`~repro.sim.engine.Simulator` (one
process, virtual time) and under :class:`~repro.live.clock.LiveKernel`
(one process per site, wall-clock time over TCP). That is what makes the
sim-vs-live calibration meaningful: any divergence is the transport and
the clock, never the workload.

Two modes:

``calibrate``
    The paper's contended-item shape (:mod:`repro.obs.rounds`), repeated
    for ``repeats`` epochs: one *primer* client takes the single data
    item first; the remaining ``m = n_clients - 1`` contenders request it
    while the primer holds, at staggered offsets. The stagger fixes the
    server-side arrival *order* — the quantity wall-clock jitter could
    otherwise scramble — so per-transaction round charges are
    deterministic: live must match sim **exactly** (s-2PL: 3 rounds per
    commit; g-2PL: 2m+1 per epoch across the contenders). Every margin in
    the schedule is a multiple of the network latency, orders of
    magnitude above loopback jitter at the default time scale.

``workload``
    The Table 1 workload. Each client draws from its own named random
    stream (:class:`~repro.sim.rng.RandomStreams` derives streams by
    name, not draw order), so a live client process and its sim
    counterpart generate byte-identical transaction sequences. Clients
    stop *starting* transactions at the ``duration`` horizon; round
    counts are compared on the transactions committed in both worlds.

Transaction ids are ``client_id * 1_000_000 + sequence`` — derivable
per-process, no shared counter across endpoints.
"""

from dataclasses import dataclass, field, replace

from repro.core.config import SimulationConfig
from repro.locking.modes import LockMode
from repro.protocols.transaction import Transaction
from repro.workload.spec import Operation, TransactionSpec

#: txn-id stride per client; sequence numbers stay far below this
TXN_ID_STRIDE = 1_000_000

MODES = ("calibrate", "workload")


@dataclass(frozen=True)
class ScenarioSpec:
    """Everything that defines one live (or reference-sim) run."""

    protocol: str = "s2pl"
    mode: str = "calibrate"
    #: client *sites* (calibrate: m = n_clients - 1 contenders + 1 primer)
    n_clients: int = 4
    latency: float = 2.0
    seed: int = 1
    # calibrate mode
    think: float = 1.0
    repeats: int = 3          # epochs; each epoch commits m contenders
    spacing: float = 0.5      # contender request stagger within an epoch
    epoch_gap: float = 10.0   # quiesce padding between epochs
    # workload mode
    duration: float = 200.0   # stop starting transactions at this time
    n_items: int = 25
    read_probability: float = 0.6
    # observability (live runs): export every endpoint's structured
    # events/probes in its payload so the harness can merge one
    # cross-process Chrome trace; sample gauges every probe_interval
    # sim units when set. Neither changes protocol traffic.
    trace_export: bool = False
    probe_interval: float = None

    def __post_init__(self):
        if self.mode not in MODES:
            raise ValueError(f"unknown mode {self.mode!r}; choose {MODES}")
        if self.n_clients < 2 and self.mode == "calibrate":
            raise ValueError("calibrate needs >= 2 clients (primer + m)")
        if self.n_clients < 1:
            raise ValueError("need at least one client")
        if self.repeats < 1:
            raise ValueError("repeats must be >= 1")
        if self.latency <= 0:
            raise ValueError("latency must be positive")

    @property
    def client_ids(self):
        return list(range(1, self.n_clients + 1))

    @property
    def primer_id(self):
        """Calibrate mode: the highest client id primes each epoch."""
        return self.n_clients

    @property
    def contender_ids(self):
        return list(range(1, self.n_clients))

    def epoch_length(self):
        """Worst-case busy period of one calibrate epoch, padded.

        s-2PL serialises the contenders: primer round trip + think, then
        each contender pays a grant trip, a think, and a release trip.
        g-2PL is strictly faster (merged release/grant). ``epoch_gap``
        absorbs the return-to-server tail and all wall-clock jitter.
        """
        m = self.n_clients - 1
        primer = 2 * self.latency + self.think
        chain = m * (self.think + 2 * self.latency)
        stagger = m * self.spacing
        return primer + chain + stagger + self.epoch_gap

    def sim_config(self):
        """The :class:`SimulationConfig` both worlds assemble from."""
        if self.mode == "calibrate":
            return SimulationConfig(
                protocol=self.protocol, n_clients=self.n_clients, n_items=1,
                network_latency=self.latency, read_probability=0.0,
                think_min=self.think, think_max=self.think,
                total_transactions=10_000, warmup_transactions=0,
                seed=self.seed, record_history=True, trace=True)
        return SimulationConfig(
            protocol=self.protocol, n_clients=self.n_clients,
            n_items=self.n_items, network_latency=self.latency,
            read_probability=self.read_probability,
            total_transactions=10_000, warmup_transactions=0,
            seed=self.seed, record_history=True, trace=True)

    def horizon(self):
        """Upper bound on interesting simulation time (live shutdown aid)."""
        if self.mode == "calibrate":
            return self.repeats * self.epoch_length()
        return self.duration

    def to_dict(self):
        return {
            "protocol": self.protocol, "mode": self.mode,
            "n_clients": self.n_clients, "latency": self.latency,
            "seed": self.seed, "think": self.think,
            "repeats": self.repeats, "spacing": self.spacing,
            "epoch_gap": self.epoch_gap, "duration": self.duration,
            "n_items": self.n_items,
            "read_probability": self.read_probability,
            "trace_export": self.trace_export,
            "probe_interval": self.probe_interval,
        }

    @classmethod
    def from_dict(cls, data):
        return cls(**data)

    def with_(self, **changes):
        return replace(self, **changes)


@dataclass
class OutcomeSink:
    """Collects driver-visible outcomes on one endpoint (or the sim)."""

    outcomes: list = field(default_factory=list)

    def record(self, outcome, measured):
        self.outcomes.append((outcome, measured))


def txn_id_for(client_id, sequence):
    if sequence >= TXN_ID_STRIDE:
        raise ValueError(f"sequence {sequence} overflows the txn-id stride")
    return client_id * TXN_ID_STRIDE + sequence


def _run_txn(kernel, client, txn, sink, measured):
    """Begin, execute, and finalise one transaction (shared sub-loop)."""
    tracer = kernel.tracer
    if tracer is not None:
        tracer.txn_begin(txn)
    outcome = yield kernel.spawn(client.execute(txn))
    sink.record(outcome, measured)
    if tracer is not None:
        tracer.txn_finished(outcome, measured=measured)
    return outcome


def _calibrate_loop(spec, kernel, client, client_id, sink):
    """One client's schedule across all calibrate epochs.

    Absolute-time schedule (within epoch ``e``, base ``B = e * epoch``):
    the primer requests at ``B``; contender ``i`` (1-based) requests at
    ``B + 1 + (i - 1) * spacing``. With latency ``L`` and think ``T``,
    the primer's lock exists at the server from ``B + L`` and its release
    lands at ``B + 3L + T``; contender arrivals span
    ``(B + 1 + L, B + 1 + L + (m-1)s)`` — inside the hold window as long
    as ``1 + (m-1)s < 2L + T``, with ``spacing`` separating consecutive
    arrivals. Both margins are wall-clock-jitter budgets.
    """
    is_primer = client_id == spec.primer_id
    epoch = spec.epoch_length()
    offset = 0.0 if is_primer else 1.0 + (client_id - 1) * spec.spacing
    txn_spec = TransactionSpec(operations=(
        Operation(item_id=0, mode=LockMode.WRITE, think_time=spec.think),))
    for index in range(spec.repeats):
        start = index * epoch + offset
        delay = start - kernel.now
        if delay > 0:
            yield kernel.timeout(delay)
        txn = Transaction(txn_id_for(client_id, index + 1), client_id,
                          txn_spec, birth=kernel.now)
        yield from _run_txn(kernel, client, txn, sink,
                            measured=not is_primer)


def _workload_loop(spec, kernel, client, client_id, sink, generator):
    """The paper's client loop (stagger, run, idle) up to the horizon."""
    yield kernel.timeout(generator.initial_stagger(client_id))
    sequence = 0
    while kernel.now < spec.duration:
        sequence += 1
        txn = Transaction(txn_id_for(client_id, sequence), client_id,
                          generator.next_spec(client_id), birth=kernel.now)
        yield from _run_txn(kernel, client, txn, sink, measured=True)
        yield kernel.timeout(generator.idle_time(client_id))


def make_generator(spec):
    """The Table 1 generator for ``spec`` (workload mode); per-client
    streams are name-derived, so any process can build its own."""
    from repro.sim.rng import RandomStreams
    from repro.workload.generator import WorkloadGenerator

    return WorkloadGenerator(spec.sim_config().workload_params(),
                             RandomStreams(spec.seed))


def client_loop(spec, kernel, client, client_id, sink, generator=None):
    """The generator driving ``client_id``, for either kernel."""
    if spec.mode == "calibrate":
        return _calibrate_loop(spec, kernel, client, client_id, sink)
    if generator is None:
        generator = make_generator(spec)
    return _workload_loop(spec, kernel, client, client_id, sink, generator)


# -- the reference run: same scenario, simulator kernel ----------------------


@dataclass
class SimReference:
    """What the simulator says the live run should look like."""

    spec: object
    history: object           # HistoryRecorder
    trace: object             # TraceData (complete per-txn records)
    outcomes: list            # [(TxnOutcome, measured), ...]
    messages_sent: int
    duration: float

    @property
    def records_by_txn(self):
        return {record["txn"]: record for record in self.trace.txns}


def run_reference(spec):
    """Run ``spec`` under the simulator; the calibration baseline."""
    from repro.network.topology import UniformTopology
    from repro.network.transport import Network
    from repro.obs.tracer import Tracer
    from repro.protocols.registry import make_protocol
    from repro.sim.engine import Simulator
    from repro.storage.store import VersionedStore
    from repro.storage.wal import WriteAheadLog
    from repro.validate.history import HistoryRecorder

    config = spec.sim_config()
    sim = Simulator()
    tracer = Tracer(sim)
    sim.tracer = tracer
    history = HistoryRecorder()
    store = VersionedStore(range(config.n_items))
    wal = WriteAheadLog()
    network = Network(sim, UniformTopology(config.network_latency))
    tracer.bind_network(network)
    server, clients = make_protocol(config.protocol, sim, config, store,
                                    wal, history, spec.client_ids)
    network.add_site(server)
    for client in clients.values():
        network.add_site(client)
    sink = OutcomeSink()
    generator = make_generator(spec) if spec.mode == "workload" else None
    processes = [
        sim.spawn(client_loop(spec, sim, clients[client_id], client_id,
                              sink, generator))
        for client_id in spec.client_ids
    ]
    sim.run(until=sim.all_of(processes))
    # Drain the tail (returns/releases still in flight) so late round
    # charges land before the trace is frozen — live runs get the same
    # courtesy from the harness's shutdown grace period.
    sim.run()
    return SimReference(
        spec=spec, history=history,
        trace=tracer.finish(processed_events=sim.processed_events,
                            peak_heap_depth=sim.peak_heap_depth),
        outcomes=sink.outcomes,
        messages_sent=network.stats.messages_sent,
        duration=sim.now)
