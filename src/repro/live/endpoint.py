"""Shared plumbing for live endpoint processes (server and clients).

An endpoint process is configured by a single JSON file (written by the
harness) naming its role, site id, the run's :class:`~repro.live
.scenario.ScenarioSpec`, the port map, and where to write results. Both
endpoint mains follow the same lifecycle::

    listen -> dial the full mesh -> handshake (hello/start) ->
    run the kernel -> handshake (done/shutdown) -> write results

Control frames are the handshake; they are unshaped and never counted.
The ``start`` frame carries the absolute ``time.monotonic`` origin every
kernel pins simulation time zero to — CLOCK_MONOTONIC is machine-wide on
Linux, so all endpoints agree on ``now`` to within scheduling noise.
"""

import asyncio
import json

from repro.live.clock import LiveKernel
from repro.live.scenario import OutcomeSink, ScenarioSpec
from repro.live.transport import LiveTransport
from repro.network.topology import UniformTopology
from repro.obs.tracer import Tracer
from repro.protocols.base import SERVER_SITE_ID
from repro.protocols.registry import make_protocol
from repro.storage.store import VersionedStore
from repro.storage.wal import WriteAheadLog
from repro.validate.history import HistoryRecorder

#: control-frame names of the run handshake
HELLO = "hello"
START = "start"
DONE = "done"
SHUTDOWN = "shutdown"


class EndpointConfig:
    """Parsed per-process configuration."""

    def __init__(self, data):
        self.role = data["role"]
        self.site_id = int(data["site_id"])
        self.spec = ScenarioSpec.from_dict(data["spec"])
        self.port_map = {int(site): port
                         for site, port in data["port_map"].items()}
        self.time_scale = float(data["time_scale"])
        self.result_path = data["result_path"]
        #: wall seconds between the start broadcast and sim time zero
        self.lead = float(data.get("lead", 1.0))
        #: wall seconds the server lingers after the last client is done,
        #: letting in-flight releases/returns land before shutdown
        self.grace = float(data.get("grace", 1.0))

    @classmethod
    def load(cls, path):
        with open(path, "r", encoding="utf-8") as handle:
            return cls(json.load(handle))


class EndpointStack:
    """One process's kernel, transport, tracer, history, and sites."""

    def __init__(self, config):
        self.config = config
        spec = config.spec
        sim_config = spec.sim_config()
        self.kernel = LiveKernel(time_scale=config.time_scale)
        self.tracer = Tracer(self.kernel)
        self.kernel.tracer = self.tracer
        self.history = HistoryRecorder()
        self.transport = LiveTransport(
            self.kernel, UniformTopology(spec.latency), config.site_id,
            config.port_map)
        self.tracer.bind_network(self.transport)
        self.sink = OutcomeSink()
        # make_protocol builds the server and every client; only the site
        # living in this process is registered — the rest of the mesh is
        # reached over TCP by site id, exactly like the simulator reaches
        # it over the in-memory network.
        store = VersionedStore(range(sim_config.n_items))
        wal = WriteAheadLog()
        server, clients = make_protocol(
            spec.protocol, self.kernel, sim_config, store, wal,
            self.history, spec.client_ids)
        if config.site_id == SERVER_SITE_ID:
            self.site = self.transport.add_site(server)
        else:
            self.site = self.transport.add_site(clients[config.site_id])
        self.probes = None
        if spec.probe_interval is not None:
            from repro.obs.probes import ProbeSampler, default_sources

            # Same gauge set as the simulator's runner, sampled on this
            # endpoint's kernel heap; the first tick lands one interval
            # after sim time zero. Gauges are read-only, so probing never
            # perturbs protocol traffic.
            self.probes = ProbeSampler(
                self.kernel, self.tracer, spec.probe_interval,
                default_sources(self.kernel, self.transport, self.site,
                                self.tracer)).start()

    def payload(self):
        from repro.live.results import endpoint_payload

        return endpoint_payload(
            self.config.role, self.config.site_id, self.config.spec,
            self.kernel, self.transport, self.tracer, self.history,
            self.sink)

    def write_results(self):
        from repro.live.results import write_payload

        write_payload(self.config.result_path, self.payload())

    async def up(self):
        """Listen, then dial every peer in the port map."""
        await self.transport.start()
        await self.transport.connect_to_peers()

    async def down(self):
        await self.transport.close()


def endpoint_main(argv, runner):
    """Shared ``main`` for the endpoint console entry points."""
    if len(argv) != 1:
        raise SystemExit(
            f"usage: python -m repro.live.{runner.__name__} CONFIG_JSON")
    config = EndpointConfig.load(argv[0])
    stack = EndpointStack(config)
    asyncio.run(runner(config, stack))
    return 0
